"""Tests for the register-file delay/energy model (Figure 9, Section 4.4)."""

import pytest

from repro.power.rixner_model import (FP_FILE_PORTS, INT_FILE_PORTS,
                                      LUS_TABLE_GEOMETRY, RegisterFileGeometry,
                                      RixnerModel)


@pytest.fixture(scope="module")
def model():
    return RixnerModel()


class TestGeometry:
    def test_lus_table_geometry_matches_paper(self):
        # Section 4.4: 32 entries, 9-bit word, 32 read + 24 write ports.
        assert LUS_TABLE_GEOMETRY.entries == 32
        assert LUS_TABLE_GEOMETRY.word_bits == 9
        assert LUS_TABLE_GEOMETRY.ports == 56

    def test_port_counts_match_paper(self):
        assert INT_FILE_PORTS == 44
        assert FP_FILE_PORTS == 50

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            RegisterFileGeometry(entries=0, word_bits=64, ports=10)


class TestCalibrationAnchors:
    def test_lus_table_access_time(self, model):
        assert model.access_time_ns(LUS_TABLE_GEOMETRY) == pytest.approx(0.98, abs=1e-6)

    def test_lus_table_energy(self, model):
        assert model.energy_pj(LUS_TABLE_GEOMETRY) == pytest.approx(193.2, abs=1e-6)

    def test_delay_margin_vs_smallest_int_file(self, model):
        smallest_int = model.int_register_file(40)
        margin = 1.0 - (model.access_time_ns(LUS_TABLE_GEOMETRY)
                        / model.access_time_ns(smallest_int))
        assert margin == pytest.approx(0.26, abs=0.01)

    def test_energy_fraction_vs_smallest_int_file(self, model):
        smallest_int = model.int_register_file(40)
        fraction = model.energy_pj(LUS_TABLE_GEOMETRY) / model.energy_pj(smallest_int)
        assert fraction == pytest.approx(0.20, abs=0.03)

    def test_section44_energy_totals(self, model):
        # Paper: E(64int + 79fp) ≈ 3850 pJ; E(56int + 72fp + 2 LUsT) ≈ 3851 pJ.
        conv = model.configuration_energy_pj(64, 79)
        early = model.configuration_energy_pj(56, 72, include_lus_tables=True)
        assert conv == pytest.approx(3850, rel=0.05)
        assert early == pytest.approx(3851, rel=0.05)
        # Energy neutrality: within a few per cent of each other.
        assert early / conv == pytest.approx(1.0, abs=0.05)


class TestScaling:
    def test_access_time_monotone_in_registers(self, model):
        times = [model.access_time_ns(model.int_register_file(size))
                 for size in range(40, 161, 8)]
        assert all(b > a for a, b in zip(times, times[1:], strict=False))

    def test_energy_monotone_in_registers(self, model):
        energies = [model.energy_pj(model.fp_register_file(size))
                    for size in range(40, 161, 8)]
        assert all(b > a for a, b in zip(energies, energies[1:], strict=False))

    def test_fp_file_costs_more_than_int_file(self, model):
        # More ports (50 vs 44) at equal size.
        assert (model.access_time_ns(model.fp_register_file(80))
                > model.access_time_ns(model.int_register_file(80)))
        assert (model.energy_pj(model.fp_register_file(80))
                > model.energy_pj(model.int_register_file(80)))

    def test_lus_table_below_every_register_file(self, model):
        for size in range(40, 161, 8):
            assert (model.access_time_ns(LUS_TABLE_GEOMETRY)
                    < model.access_time_ns(model.int_register_file(size)))

    def test_figure9_curves_structure(self, model):
        curves = model.figure9_curves(range(40, 161, 8))
        assert set(curves) == {"INT", "FP", "LUsT"}
        assert len(curves["INT"]) == 16
        # The LUs Table series is flat.
        lus_times = {time for _, time, _ in curves["LUsT"]}
        assert len(lus_times) == 1

    def test_largest_file_below_two_ns(self, model):
        # Figure 9a's axis tops out at 2 ns; the largest FP file sits near it.
        assert model.access_time_ns(model.fp_register_file(160)) < 2.2
