"""Tests for the storage-cost model (Section 4.4)."""

import pytest

from repro.power.storage import (StorageModel, basic_mechanism_storage_bits,
                                 extended_mechanism_storage_bits,
                                 lus_table_storage_bits)


class TestFormulas:
    def test_extended_mechanism_matches_paper_example(self):
        # ROS = 80, 8-bit ids, 152 physical registers, 20 pending branches
        # → 10 000 bits = 1250 B ≈ 1.22 KB.
        bits = extended_mechanism_storage_bits(ros_size=80, physical_id_bits=8,
                                               num_physical=152,
                                               max_pending_branches=20)
        assert bits == 10_000
        assert bits / 8 / 1024 == pytest.approx(1.22, abs=0.01)

    def test_extended_mechanism_components_scale(self):
        small = extended_mechanism_storage_bits(ros_size=32, physical_id_bits=6,
                                                num_physical=64,
                                                max_pending_branches=8)
        large = extended_mechanism_storage_bits(ros_size=128, physical_id_bits=8,
                                                num_physical=256,
                                                max_pending_branches=20)
        assert large > small

    def test_lus_table_default_width_derived_from_ros(self):
        bits = lus_table_storage_bits(num_logical=32, ros_size=80)
        # 7-bit ROS id + 2 Kind bits + C bit = 10 bits per entry, two tables.
        assert bits == 2 * 32 * 10

    def test_lus_table_padded_width(self):
        assert lus_table_storage_bits(bits_per_entry=16) == 2 * 32 * 16

    def test_basic_mechanism_storage(self):
        bits = basic_mechanism_storage_bits(ros_size=80, physical_id_bits=8,
                                            logical_id_bits=5)
        assert bits == 80 * (3 * 5 + 2 * 8 + 3 + 1)


class TestStorageModel:
    def test_alpha_21264_configuration(self):
        model = StorageModel(ros_size=80, num_physical_int=80, num_physical_fp=72,
                             max_pending_branches=20)
        assert model.physical_id_bits == 8
        assert model.num_physical_total == 152
        assert model.extended_mechanism_bytes() == pytest.approx(1250, abs=1)
        assert model.lus_tables_bytes() == pytest.approx(128, abs=1)
        assert model.total_extended_bytes() == pytest.approx(1378, abs=2)

    def test_basic_cheaper_than_extended(self):
        model = StorageModel()
        assert model.basic_mechanism_bytes() < model.extended_mechanism_bytes()

    def test_paper_evaluated_processor(self):
        # The simulated processor: ROS 128, up to 160+160 registers.
        model = StorageModel(ros_size=128, num_physical_int=160,
                             num_physical_fp=160, max_pending_branches=20)
        assert model.physical_id_bits == 9
        assert model.extended_mechanism_bytes() > 1250
