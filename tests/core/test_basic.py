"""Tests for the basic early-release mechanism (paper Section 3)."""

import pytest

from repro.backend.ros import DEST_SLOT_BIT, src_slot_bit

from tests.core.helpers import PolicyHarness


@pytest.fixture
def harness():
    return PolicyHarness("basic", num_physical=40)


class TestFigure4Scenarios:
    def test_source_last_use_schedules_early_release(self, harness):
        """Figure 4a: LU reads r1 for the last time; NV redefines r1."""
        producer = harness.rename(dest=1)              # i : r1 = ...
        old_version = producer.pd
        lu = harness.rename(dest=3, srcs=(2, 1))       # LU: r3 = r2 + r1
        nv = harness.rename(dest=1)                    # NV: r1 = ...
        # The early-release bit for source slot 1 (r1) must be set on LU.
        assert lu.early_release_mask & src_slot_bit(1)
        assert not nv.rel_old
        # Release happens at LU commit, before NV commits.
        harness.commit(producer)
        assert not harness.register_file.is_free(old_version)
        harness.commit(lu)
        assert harness.register_file.is_free(old_version)
        # NV commit must not release it again (no double free).
        harness.commit(nv)
        assert harness.allocated_consistency()

    def test_dest_last_use_schedules_early_release(self, harness):
        """Figure 4b: the previous definer is itself the last use (no readers)."""
        lu = harness.rename(dest=3)                    # LU: r3 = ...
        nv = harness.rename(dest=3)                    # NV: r3 = ...
        assert lu.early_release_mask & DEST_SLOT_BIT
        assert not nv.rel_old
        harness.commit(lu)
        assert harness.register_file.is_free(lu.pd)

    def test_committed_lu_reuses_register(self, harness):
        """Renaming 2, C = 1: reuse the physical register, no new allocation."""
        producer = harness.rename(dest=1)
        lu = harness.rename(dest=3, srcs=(1,))
        harness.commit(producer)
        harness.commit(lu)
        free_before = harness.register_file.n_free
        nv = harness.rename(dest=1)
        assert nv.reused and not nv.allocated_new
        assert nv.pd == producer.pd
        assert harness.register_file.n_free == free_before
        assert harness.policy.register_reuses == 1

    def test_committed_lu_without_reuse_releases_immediately(self):
        harness = PolicyHarness("basic", num_physical=40,
                                reuse_on_committed_lu=False)
        producer = harness.rename(dest=1)
        lu = harness.rename(dest=3, srcs=(1,))
        harness.commit(producer)
        harness.commit(lu)
        nv = harness.rename(dest=1)
        assert not nv.reused and nv.allocated_new
        assert nv.pd != producer.pd
        assert harness.register_file.is_free(producer.pd)
        assert harness.policy.immediate_releases == 1

    def test_self_reading_redefinition(self, harness):
        """r1 = r1 + r2: the NV is its own LU; release at its own commit."""
        producer = harness.rename(dest=1)
        harness.commit(producer)
        nv = harness.rename(dest=1, srcs=(1, 2))
        # The early-release bit must be on the NV itself (source slot 0).
        assert nv.early_release_mask & src_slot_bit(0)
        assert not nv.rel_old
        harness.commit(nv)
        assert harness.register_file.is_free(producer.pd)
        assert harness.allocated_consistency()


class TestSpeculationLimits:
    def test_pending_branch_between_lu_and_nv_falls_back(self, harness):
        """Case 2 of the paper: the basic mechanism gives up."""
        producer = harness.rename(dest=1)
        lu = harness.rename(dest=3, srcs=(1,))
        branch = harness.rename(is_branch=True)
        nv = harness.rename(dest=1)
        assert lu.early_release_mask == 0
        assert nv.rel_old                       # conventional release kept
        assert harness.policy.fallback_conventional >= 1
        # Conventional release still happens at NV commit.
        harness.commit(producer)
        harness.commit(lu)
        harness.resolve_branch(branch, mispredicted=False)
        harness.commit(branch)
        assert not harness.register_file.is_free(producer.pd)
        harness.commit(nv)
        assert harness.register_file.is_free(producer.pd)

    def test_pending_branch_older_than_lu_does_not_block(self, harness):
        """Only branches *between* LU and NV matter."""
        producer = harness.rename(dest=1)
        branch = harness.rename(is_branch=True)
        lu = harness.rename(dest=3, srcs=(1,))
        nv = harness.rename(dest=1)
        assert lu.early_release_mask & src_slot_bit(0)
        assert not nv.rel_old

    def test_mispredicted_branch_squashes_lu_and_nv_consistently(self, harness):
        """If the NV is squashed, its LU is squashed too; nothing leaks."""
        producer = harness.rename(dest=1)
        harness.commit(producer)
        allocated_before = harness.register_file.n_allocated
        branch = harness.rename(is_branch=True)
        lu = harness.rename(dest=3, srcs=(1,))      # wrong-path last use
        nv = harness.rename(dest=1)                 # wrong-path redefinition
        assert lu.early_release_mask != 0
        harness.resolve_branch(branch, mispredicted=True)
        # Wrong-path allocations returned; previous version still allocated.
        assert harness.register_file.n_allocated == allocated_before
        assert not harness.register_file.is_free(producer.pd)
        assert harness.map_table.lookup(1) == producer.pd
        # Correct path redefines r1: released exactly once at the new LU commit.
        lu2 = harness.rename(dest=4, srcs=(1,))
        nv2 = harness.rename(dest=1)
        harness.commit(lu2)
        assert harness.register_file.is_free(producer.pd)
        harness.commit(nv2)
        assert harness.allocated_consistency()

    def test_lus_table_restored_from_checkpoint(self, harness):
        producer = harness.rename(dest=1)
        lu = harness.rename(dest=3, srcs=(1,))
        branch = harness.rename(is_branch=True)
        harness.rename(dest=5, srcs=(1,))           # wrong-path use of r1
        harness.resolve_branch(branch, mispredicted=True)
        # After recovery the recorded last use of r1 must be LU again.
        entry = harness.policy.lus_table.lookup(1)
        assert entry is not None and entry.seq == lu.seq


class TestSteadyState:
    def test_no_leaks_over_many_redefinitions(self, harness):
        for index in range(50):
            entry = harness.rename(dest=index % 4, srcs=((index + 1) % 4,))
            harness.commit(entry)
        assert harness.quiescent_allocated() == 32
        assert harness.allocated_consistency()

    def test_exception_flush_then_redefinition_is_safe(self, harness):
        producer = harness.rename(dest=1)
        lu = harness.rename(dest=3, srcs=(1,))
        nv = harness.rename(dest=1)
        harness.commit(producer)
        harness.commit(lu)                           # early release fires here
        assert harness.register_file.is_free(producer.pd)
        # NV still in flight; an exception flushes the pipeline.
        harness.exception_flush()
        # The architectural mapping of r1 points at the released register,
        # and is marked stale; the next redefinition must not double free.
        assert harness.map_table.is_stale(1)
        nv2 = harness.rename(dest=1)
        harness.commit(nv2)
        assert harness.allocated_consistency()
