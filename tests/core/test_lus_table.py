"""Tests for the Last-Uses Table."""

import pytest

from repro.core.lus_table import DST_SLOT, LastUse, LastUsesTable


class TestRecordLookup:
    def test_empty_lookup(self):
        table = LastUsesTable(8)
        assert table.lookup(3) is None

    def test_record_and_lookup(self):
        table = LastUsesTable(8)
        table.record_use(3, seq=10, slot=1)
        entry = table.lookup(3)
        assert entry == LastUse(seq=10, slot=1)

    def test_youngest_use_wins(self):
        table = LastUsesTable(8)
        table.record_use(3, seq=10, slot=0)
        table.record_use(3, seq=12, slot=DST_SLOT)
        assert table.lookup(3).seq == 12
        assert table.lookup(3).is_dest_use

    def test_kind_field(self):
        assert not LastUse(seq=1, slot=0).is_dest_use
        assert LastUse(seq=1, slot=DST_SLOT).is_dest_use

    def test_clear_single(self):
        table = LastUsesTable(8)
        table.record_use(3, 10, 0)
        table.clear(3)
        assert table.lookup(3) is None

    def test_reset(self):
        table = LastUsesTable(8)
        table.record_use(3, 10, 0)
        table.record_use(5, 11, 2)
        table.reset()
        assert table.lookup(3) is None and table.lookup(5) is None

    def test_entries_view(self):
        table = LastUsesTable(8)
        table.record_use(2, 5, 1)
        assert table.entries() == {2: LastUse(5, 1)}


class TestSnapshotRestore:
    def test_round_trip(self):
        table = LastUsesTable(4)
        table.record_use(0, 3, 0)
        snapshot = table.snapshot()
        table.record_use(0, 9, DST_SLOT)
        table.record_use(1, 10, 1)
        table.restore(snapshot)
        assert table.lookup(0) == LastUse(3, 0)
        assert table.lookup(1) is None

    def test_snapshot_independent_of_later_updates(self):
        table = LastUsesTable(4)
        snapshot = table.snapshot()
        table.record_use(2, 7, 0)
        assert snapshot[2] is None

    def test_restore_rejects_wrong_size(self):
        table = LastUsesTable(4)
        with pytest.raises(ValueError):
            table.restore((None, None))
