"""Tests for the extended early-release mechanism (paper Section 4)."""

import pytest

from repro.backend.ros import src_slot_bit

from tests.core.helpers import PolicyHarness


@pytest.fixture
def harness():
    return PolicyHarness("extended", num_physical=40)


class TestNonSpeculativeBehaviour:
    """Without pending branches the extended mechanism matches the basic one."""

    def test_inflight_lu_gets_rwc0_bit(self, harness):
        producer = harness.rename(dest=1)
        lu = harness.rename(dest=3, srcs=(1,))
        nv = harness.rename(dest=1)
        assert lu.early_release_mask & src_slot_bit(0)
        assert not nv.rel_old                       # extended never uses rel_old
        harness.commit(producer)
        harness.commit(lu)
        assert harness.register_file.is_free(producer.pd)

    def test_committed_lu_reuse(self, harness):
        producer = harness.rename(dest=1)
        lu = harness.rename(dest=3, srcs=(1,))
        harness.commit(producer)
        harness.commit(lu)
        nv = harness.rename(dest=1)
        assert nv.reused and nv.pd == producer.pd

    def test_rel_old_never_enabled(self, harness):
        entries = [harness.rename(dest=index % 3, srcs=((index + 1) % 3,))
                   for index in range(6)]
        assert all(not entry.rel_old for entry in entries if entry.has_dest)


class TestConditionalReleases:
    def test_committed_lu_behind_pending_branch_goes_to_rwns(self, harness):
        """Step 2, first case: RwNS scheduling, released on branch confirm."""
        producer = harness.rename(dest=1)
        lu = harness.rename(dest=3, srcs=(1,))
        harness.commit(producer)
        harness.commit(lu)
        branch = harness.rename(is_branch=True)
        nv = harness.rename(dest=1)                  # speculative NV
        assert not nv.reused                         # cannot reuse speculatively
        assert harness.policy.release_queue.total_scheduled() == 1
        assert not harness.register_file.is_free(producer.pd)
        # Branch verified correct: Branch-Confirm Release.
        harness.resolve_branch(branch, mispredicted=False)
        assert harness.register_file.is_free(producer.pd)

    def test_inflight_lu_behind_pending_branch_goes_to_rwc(self, harness):
        """Step 2, second case: RwC scheduling tied to the in-flight LU."""
        producer = harness.rename(dest=1)
        harness.commit(producer)
        lu = harness.rename(dest=3, srcs=(1,))       # still in flight
        branch = harness.rename(is_branch=True)
        nv = harness.rename(dest=1)
        queue = harness.policy.release_queue
        assert queue.total_scheduled() == 1
        assert lu.early_release_mask == 0            # conditional, not RwC0 yet
        # Branch confirms first: the scheduling becomes a plain RwC0 bit.
        harness.resolve_branch(branch, mispredicted=False)
        assert lu.early_release_mask & src_slot_bit(0)
        assert not harness.register_file.is_free(producer.pd)
        harness.commit(lu)
        assert harness.register_file.is_free(producer.pd)

    def test_lu_commit_before_branch_resolution_moves_to_rwns(self, harness):
        """Step 5: commit of the LU moves its RwC bits to RwNS."""
        producer = harness.rename(dest=1)
        harness.commit(producer)
        lu = harness.rename(dest=3, srcs=(1,))
        branch = harness.rename(is_branch=True)
        nv = harness.rename(dest=1)
        harness.commit(lu)                           # LU commits while speculative
        levels = harness.policy.release_queue.levels()
        assert levels[0].rwc == {}
        assert (producer.pd, 1) in levels[0].rwns
        assert not harness.register_file.is_free(producer.pd)
        harness.resolve_branch(branch, mispredicted=False)
        assert harness.register_file.is_free(producer.pd)

    def test_release_waits_for_all_pending_branches(self, harness):
        producer = harness.rename(dest=1)
        lu = harness.rename(dest=3, srcs=(1,))
        harness.commit(producer)
        harness.commit(lu)
        branch1 = harness.rename(is_branch=True)
        branch2 = harness.rename(is_branch=True)
        nv = harness.rename(dest=1)
        # Confirming the younger branch is not enough.
        harness.resolve_branch(branch2, mispredicted=False)
        assert not harness.register_file.is_free(producer.pd)
        harness.resolve_branch(branch1, mispredicted=False)
        assert harness.register_file.is_free(producer.pd)

    def test_misprediction_squashes_conditional_release(self, harness):
        producer = harness.rename(dest=1)
        lu = harness.rename(dest=3, srcs=(1,))
        harness.commit(producer)
        harness.commit(lu)
        allocated_before = harness.register_file.n_allocated
        branch = harness.rename(is_branch=True)
        nv = harness.rename(dest=1)                  # wrong-path redefinition
        harness.resolve_branch(branch, mispredicted=True)
        assert harness.policy.release_queue.total_scheduled() == 0
        assert not harness.register_file.is_free(producer.pd)
        assert harness.register_file.n_allocated == allocated_before
        assert harness.map_table.lookup(1) == producer.pd
        # The correct path later redefines r1.  Its last use has committed and
        # nothing is pending, so the register is *reused* (the other legal
        # outcome would be a single early release); either way nothing leaks.
        nv2 = harness.rename(dest=1)
        assert nv2.reused and nv2.pd == producer.pd
        harness.commit(nv2)
        assert harness.quiescent_allocated() == 32
        assert harness.allocated_consistency()

    def test_nested_speculation_merges_levels(self, harness):
        producer = harness.rename(dest=1)
        lu = harness.rename(dest=3, srcs=(1,))
        harness.commit(producer)
        harness.commit(lu)
        branch1 = harness.rename(is_branch=True)
        branch2 = harness.rename(is_branch=True)
        nv = harness.rename(dest=1)                  # guarded by both branches
        # Out-of-order verification: the younger branch confirms first.
        harness.resolve_branch(branch2, mispredicted=False)
        assert harness.policy.release_queue.depth == 1
        # Then the older branch mispredicts: everything conditional vanishes.
        harness.resolve_branch(branch1, mispredicted=True)
        assert harness.policy.release_queue.total_scheduled() == 0
        assert not harness.register_file.is_free(producer.pd)


class TestWrongPathAndExceptions:
    def test_wrong_path_redefinition_of_live_register_is_safe(self, harness):
        """A wrong-path NV must never cause the release of a live register."""
        producer = harness.rename(dest=1)
        harness.commit(producer)
        branch = harness.rename(is_branch=True)      # will mispredict
        wrong_lu = harness.rename(dest=3, srcs=(1,))
        wrong_nv = harness.rename(dest=1)
        wrong_nv2 = harness.rename(dest=1)           # second wrong-path version
        harness.resolve_branch(branch, mispredicted=True)
        assert not harness.register_file.is_free(producer.pd)
        assert harness.allocated_consistency()
        # A correct-path reader can still use the value.
        reader = harness.rename(dest=5, srcs=(1,))
        assert reader.src_regs[0][2] == producer.pd

    def test_exception_flush_drops_conditional_releases(self, harness):
        producer = harness.rename(dest=1)
        lu = harness.rename(dest=3, srcs=(1,))
        harness.commit(producer)
        harness.commit(lu)
        branch = harness.rename(is_branch=True)
        nv = harness.rename(dest=1)
        harness.exception_flush()
        assert harness.policy.release_queue.depth == 0
        assert not harness.register_file.is_free(producer.pd)
        # Redefining r1 afterwards reuses (or releases) the old version;
        # either way the steady-state register count is exactly the 32
        # architectural versions — nothing leaks and nothing double-frees.
        nv2 = harness.rename(dest=1)
        harness.commit(nv2)
        assert harness.quiescent_allocated() == 32
        assert harness.allocated_consistency()

    def test_exception_after_early_release_marks_stale_mapping(self, harness):
        producer = harness.rename(dest=1)
        lu = harness.rename(dest=3, srcs=(1,))
        nv = harness.rename(dest=1)
        harness.commit(producer)
        harness.commit(lu)                           # early release of producer.pd
        assert harness.register_file.is_free(producer.pd)
        harness.exception_flush()                    # NV squashed
        assert harness.map_table.is_stale(1)
        nv2 = harness.rename(dest=1)
        harness.commit(nv2)
        assert harness.allocated_consistency()


class TestSteadyState:
    def test_no_leaks_with_mixed_speculation(self, harness):
        """Interleave branches and redefinitions; everything must drain to 32."""
        for index in range(30):
            if index % 5 == 4:
                branch = harness.rename(is_branch=True)
                harness.resolve_branch(branch, mispredicted=False)
                harness.commit(branch)
            else:
                entry = harness.rename(dest=index % 6, srcs=((index + 1) % 6,))
                harness.commit(entry)
        assert harness.quiescent_allocated() == 32
        assert harness.allocated_consistency()

    def test_conditional_scheduling_counter(self, harness):
        producer = harness.rename(dest=1)
        harness.commit(producer)
        branch = harness.rename(is_branch=True)
        harness.rename(dest=1)
        assert harness.policy.conditional_schedulings == 1
