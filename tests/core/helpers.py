"""Test harness for driving release policies without the full pipeline.

The :class:`PolicyHarness` reproduces, at the functional level, exactly the
sequence of calls the processor makes into a release policy — rename
(sources, destination, branches), branch resolution, commit, squash and
exception flush — but without any timing, so policy unit tests can build
precise scenarios (like the paper's Figure 4 examples) in a few lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.backend.ros import ROSEntry
from repro.core import make_release_policy
from repro.core.release_policy import PolicyOptions
from repro.isa import Instruction, OpClass, RegClass
from repro.rename.iomt import InOrderMapTable
from repro.rename.map_table import MapTable
from repro.rename.register_file import PhysicalRegisterFile


class FakeView:
    """Minimal PipelineView implementation controlled by the harness."""

    def __init__(self) -> None:
        self.committed_watermark = -1
        self.pending_branches: List[int] = []
        self.entries: Dict[int, ROSEntry] = {}
        self.cycle = 0

    def is_committed(self, seq: int) -> bool:
        return seq <= self.committed_watermark

    def has_pending_branch_younger_than(self, seq: int) -> bool:
        return any(branch > seq for branch in self.pending_branches)

    def count_pending_branches(self) -> int:
        return len(self.pending_branches)

    def ros_entry(self, seq: int) -> Optional[ROSEntry]:
        return self.entries.get(seq)

    def current_cycle(self) -> int:
        return self.cycle


@dataclass
class HarnessCheckpoint:
    """Map-table + policy state captured at a branch rename."""

    branch_seq: int
    map_snapshot: object
    policy_snapshot: object


class PolicyHarness:
    """Drives one register class's policy through rename/commit/squash events."""

    def __init__(self, policy_name: str, num_physical: int = 40,
                 reg_class: RegClass = RegClass.INT,
                 reuse_on_committed_lu: bool = True) -> None:
        self.reg_class = reg_class
        self.register_file = PhysicalRegisterFile(reg_class, num_physical)
        self.map_table = MapTable(reg_class.num_logical,
                                  range(reg_class.num_logical))
        self.iomt = InOrderMapTable(reg_class.num_logical,
                                    range(reg_class.num_logical))
        self.view = FakeView()
        self.policy = make_release_policy(
            policy_name, reg_class, self.register_file, self.map_table, self.iomt,
            self.view, options=PolicyOptions(reuse_on_committed_lu=reuse_on_committed_lu))
        self._seq = 0
        self.checkpoints: List[HarnessCheckpoint] = []
        #: all renamed entries in program order (committed ones included).
        self.program: List[ROSEntry] = []

    # ------------------------------------------------------------------
    # Rename-side events
    # ------------------------------------------------------------------
    def rename(self, dest: Optional[int] = None,
               srcs: Tuple[int, ...] = (),
               is_branch: bool = False) -> ROSEntry:
        """Rename one instruction of this harness's register class."""
        op = OpClass.BRANCH if is_branch else OpClass.INT_ALU
        inst = Instruction(
            pc=0x1000 + 4 * self._seq, op=op,
            dest=None if dest is None else (self.reg_class, dest),
            srcs=tuple((self.reg_class, src) for src in srcs))
        entry = ROSEntry(self._seq, inst)
        self._seq += 1
        self.view.entries[entry.seq] = entry
        self.program.append(entry)

        for slot, src in enumerate(srcs):
            physical = self.map_table.lookup(src)
            entry.src_regs.append((self.reg_class, src, physical))
            self.policy.note_source_use(entry, slot, src, physical)

        if dest is not None:
            old_pd = self.map_table.lookup(dest)
            outcome = self.policy.rename_destination(entry, dest, old_pd)
            if outcome.reuse_previous:
                pd = old_pd
                entry.allocated_new = False
                entry.reused = True
                self.register_file.set_producer(pd, entry.seq)
            else:
                pd = self.register_file.allocate(self.view.cycle, entry.seq)
                self.map_table.set_mapping(dest, pd)
                entry.allocated_new = True
            entry.dest_class = self.reg_class
            entry.dest_logical = dest
            entry.pd = pd
            entry.old_pd = old_pd
            entry.rel_old = outcome.release_previous_at_commit
            self.policy.note_dest_definition(entry, dest)

        if is_branch:
            self.checkpoints.append(HarnessCheckpoint(
                branch_seq=entry.seq,
                map_snapshot=self.map_table.snapshot(),
                policy_snapshot=self.policy.snapshot_state()))
            self.view.pending_branches.append(entry.seq)
            self.policy.on_branch_renamed(entry)
        self.view.cycle += 1
        return entry

    # ------------------------------------------------------------------
    # Back-end events
    # ------------------------------------------------------------------
    def commit(self, entry: ROSEntry) -> None:
        """Commit ``entry`` (in program order responsibility lies with the test)."""
        self.view.committed_watermark = entry.seq
        self.view.entries.pop(entry.seq, None)
        if entry.has_dest:
            self.iomt.commit_mapping(entry.dest_logical, entry.pd)
        self.policy.on_commit(entry, self.view.cycle)
        self.view.cycle += 1

    def commit_up_to(self, entry: ROSEntry) -> None:
        """Commit every renamed-and-unsquashed instruction up to ``entry``."""
        for candidate in self.program:
            if candidate.seq > entry.seq:
                break
            if candidate.squashed or self.view.is_committed(candidate.seq):
                continue
            self.commit(candidate)

    def resolve_branch(self, entry: ROSEntry, mispredicted: bool) -> None:
        """Resolve a pending branch, squashing younger state on a misprediction."""
        if mispredicted:
            for younger in [e for e in self.program
                            if e.seq > entry.seq and not e.squashed]:
                self.squash(younger)
            self.policy.on_branch_mispredicted(entry.seq)
            checkpoint = next(cp for cp in self.checkpoints
                              if cp.branch_seq == entry.seq)
            self.map_table.restore(checkpoint.map_snapshot)
            self.policy.restore_state(checkpoint.policy_snapshot)
            self.checkpoints = [cp for cp in self.checkpoints
                                if cp.branch_seq < entry.seq]
            self.view.pending_branches = [b for b in self.view.pending_branches
                                          if b < entry.seq]
        else:
            self.policy.on_branch_confirmed(entry.seq)
            self.checkpoints = [cp for cp in self.checkpoints
                                if cp.branch_seq != entry.seq]
            self.view.pending_branches = [b for b in self.view.pending_branches
                                          if b != entry.seq]
        self.view.cycle += 1

    def squash(self, entry: ROSEntry) -> None:
        """Squash one in-flight entry (frees its destination allocation)."""
        entry.squashed = True
        self.view.entries.pop(entry.seq, None)
        if entry.has_dest and entry.allocated_new:
            self.register_file.release(entry.pd, self.view.cycle)
        elif entry.has_dest and entry.reused:
            self.register_file.set_producer(entry.pd, None)
        self.policy.on_squash(entry, self.view.cycle)

    def exception_flush(self) -> None:
        """Flush everything in flight and rebuild the map table from the IOMT."""
        for entry in reversed([e for e in self.program
                               if not e.squashed
                               and not self.view.is_committed(e.seq)]):
            self.squash(entry)
        self.map_table.restore_architectural(self.iomt.snapshot())
        self.checkpoints.clear()
        self.view.pending_branches.clear()
        self.policy.on_exception_flush(self.view.cycle)
        self.view.cycle += 1

    # ------------------------------------------------------------------
    # Invariant helpers
    # ------------------------------------------------------------------
    def allocated_consistency(self) -> bool:
        """free + allocated == P (checked free list invariant)."""
        return (self.register_file.free_list.n_free
                + self.register_file.free_list.n_allocated
                == self.register_file.num_physical)

    def quiescent_allocated(self) -> int:
        """Number of allocated registers (meaningful once everything committed)."""
        return self.register_file.n_allocated
