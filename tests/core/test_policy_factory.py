"""Tests for the policy registry/factory and shared policy plumbing."""

import pytest

from repro.core import (BasicEarlyRelease, ConventionalRelease,
                        ExtendedEarlyRelease, POLICIES, make_release_policy)
from repro.core.release_policy import DestRenameOutcome, PipelineView, PolicyOptions

from tests.core.helpers import FakeView, PolicyHarness


class TestRegistry:
    def test_known_names(self):
        assert POLICIES["conv"] is ConventionalRelease
        assert POLICIES["conventional"] is ConventionalRelease
        assert POLICIES["basic"] is BasicEarlyRelease
        assert POLICIES["extended"] is ExtendedEarlyRelease

    def test_factory_builds_named_policy(self):
        harness = PolicyHarness("extended")
        assert isinstance(harness.policy, ExtendedEarlyRelease)

    def test_factory_rejects_unknown_name(self):
        harness = PolicyHarness("conv")
        with pytest.raises(ValueError, match="unknown release policy"):
            make_release_policy("bogus", harness.reg_class, harness.register_file,
                                harness.map_table, harness.iomt, harness.view)

    def test_policy_names(self):
        assert ConventionalRelease.name == "conv"
        assert BasicEarlyRelease.name == "basic"
        assert ExtendedEarlyRelease.name == "extended"


class TestOptionsAndProtocol:
    def test_default_options(self):
        assert PolicyOptions().reuse_on_committed_lu is True

    def test_fake_view_satisfies_protocol(self):
        assert isinstance(FakeView(), PipelineView)

    def test_dest_rename_outcome_defaults(self):
        outcome = DestRenameOutcome()
        assert outcome.release_previous_at_commit
        assert not outcome.reuse_previous
        assert not outcome.scheduled_early
        assert not outcome.released_immediately

    def test_options_propagate_to_policy(self):
        harness = PolicyHarness("basic", reuse_on_committed_lu=False)
        assert harness.policy.options.reuse_on_committed_lu is False
