"""Tests for the Empty/Ready/Idle occupancy tracker (paper Figure 2/3)."""

import pytest

from repro.core.register_state import (OccupancyAverages, OccupancyTotals,
                                       RegisterOccupancyTracker, RegState)


class TestLifecycle:
    def test_full_lifecycle_attribution(self):
        tracker = RegisterOccupancyTracker(4)
        tracker.on_allocate(0, cycle=10)
        tracker.on_write(0, cycle=13)
        tracker.on_use_commit(0, cycle=20)
        tracker.on_release(0, cycle=27)
        totals = tracker.finalize(end_cycle=30, allocated_registers=[])
        assert totals.empty == pytest.approx(3)
        assert totals.ready == pytest.approx(7)
        assert totals.idle == pytest.approx(7)

    def test_states_in_order(self):
        tracker = RegisterOccupancyTracker(2)
        assert tracker.state_of(1) is RegState.FREE
        tracker.on_allocate(1, 0)
        assert tracker.state_of(1) is RegState.EMPTY
        tracker.on_write(1, 2)
        assert tracker.state_of(1) is RegState.READY
        tracker.on_use_commit(1, 5)
        assert tracker.state_of(1) is RegState.IDLE
        tracker.on_release(1, 7)
        assert tracker.state_of(1) is RegState.FREE

    def test_never_written_is_all_empty(self):
        tracker = RegisterOccupancyTracker(2)
        tracker.on_allocate(0, 5)
        tracker.on_release(0, 15)
        totals = tracker.finalize(end_cycle=20, allocated_registers=[])
        assert totals.empty == pytest.approx(10)
        assert totals.ready == 0 and totals.idle == 0

    def test_no_use_commit_means_no_idle(self):
        tracker = RegisterOccupancyTracker(2)
        tracker.on_allocate(0, 0)
        tracker.on_write(0, 4)
        tracker.on_release(0, 10)
        totals = tracker.finalize(end_cycle=10, allocated_registers=[])
        assert totals.ready == pytest.approx(0)
        assert totals.idle == pytest.approx(6)

    def test_still_allocated_attributed_at_finalize(self):
        tracker = RegisterOccupancyTracker(2)
        tracker.on_allocate(0, 0)
        tracker.on_write(0, 2)
        totals = tracker.finalize(end_cycle=12, allocated_registers=[0])
        assert totals.empty == pytest.approx(2)
        assert totals.ready + totals.idle == pytest.approx(10)

    def test_double_write_keeps_first(self):
        tracker = RegisterOccupancyTracker(1)
        tracker.on_allocate(0, 0)
        tracker.on_write(0, 3)
        tracker.on_write(0, 8)
        tracker.on_release(0, 10)
        totals = tracker.finalize(10, [])
        assert totals.empty == pytest.approx(3)

    def test_reallocation_after_release(self):
        tracker = RegisterOccupancyTracker(1)
        tracker.on_allocate(0, 0)
        tracker.on_write(0, 1)
        tracker.on_release(0, 5)
        tracker.on_allocate(0, 7)
        assert tracker.state_of(0) is RegState.EMPTY
        tracker.on_write(0, 9)
        tracker.on_release(0, 12)
        totals = tracker.finalize(12, [])
        assert totals.empty == pytest.approx(1 + 2)


class TestTotalsAndAverages:
    def test_averages(self):
        totals = OccupancyTotals(cycles=10, empty=20.0, ready=50.0, idle=30.0)
        averages = totals.averages()
        assert averages.empty == pytest.approx(2.0)
        assert averages.ready == pytest.approx(5.0)
        assert averages.idle == pytest.approx(3.0)
        assert averages.allocated == pytest.approx(10.0)
        assert averages.used == pytest.approx(7.0)

    def test_idle_overhead(self):
        averages = OccupancyAverages(empty=2.0, ready=5.0, idle=3.5)
        assert averages.idle_overhead == pytest.approx(0.5)

    def test_idle_overhead_zero_used(self):
        assert OccupancyAverages(0.0, 0.0, 1.0).idle_overhead == 0.0

    def test_zero_cycles(self):
        averages = OccupancyTotals().averages()
        assert averages.allocated == 0.0
