"""Tests for the Release Queue of the extended mechanism (paper Section 4)."""

import pytest

from repro.core.release_queue import ReleaseQueue


class Recorder:
    """Collects release / promote callbacks."""

    def __init__(self):
        self.released = []
        self.promoted = []

    def release(self, physical, logical):
        self.released.append((physical, logical))

    def promote(self, lu_seq, mask):
        self.promoted.append((lu_seq, mask))


class TestLevels:
    def test_push_levels_in_order(self):
        queue = ReleaseQueue()
        queue.push_level(1)
        queue.push_level(5)
        assert queue.depth == 2
        with pytest.raises(ValueError):
            queue.push_level(3)

    def test_capacity(self):
        queue = ReleaseQueue(capacity=2)
        queue.push_level(1)
        queue.push_level(2)
        with pytest.raises(RuntimeError):
            queue.push_level(3)

    def test_schedule_requires_pending_branch(self):
        queue = ReleaseQueue()
        with pytest.raises(RuntimeError):
            queue.schedule_committed_lu(5, 1, 100)
        with pytest.raises(RuntimeError):
            queue.schedule_inflight_lu(7, 1, 100)

    def test_schedules_land_at_tail(self):
        queue = ReleaseQueue()
        queue.push_level(1)
        queue.push_level(2)
        queue.schedule_committed_lu(40, 3, 10)
        queue.schedule_inflight_lu(17, 0b100, 11)
        levels = queue.levels()
        assert levels[1].rwns == {(40, 3): 10}
        assert levels[1].rwc == {17: {0b100: 11}}
        assert levels[0].n_scheduled == 0
        assert queue.total_scheduled() == 2


class TestBranchConfirmation:
    def test_oldest_confirm_releases_rwns(self):
        queue = ReleaseQueue()
        recorder = Recorder()
        queue.push_level(1)
        queue.schedule_committed_lu(33, 4, 10)
        queue.on_branch_confirmed(1, recorder.release, recorder.promote)
        assert recorder.released == [(33, 4)]
        assert queue.depth == 0
        assert queue.confirm_releases == 1

    def test_oldest_confirm_promotes_rwc_to_rwc0(self):
        queue = ReleaseQueue()
        recorder = Recorder()
        queue.push_level(1)
        queue.schedule_inflight_lu(9, 0b010, 10)
        queue.on_branch_confirmed(1, recorder.release, recorder.promote)
        assert recorder.promoted == [(9, 0b010)]
        assert recorder.released == []

    def test_non_oldest_confirm_merges_into_older_level(self):
        queue = ReleaseQueue()
        recorder = Recorder()
        queue.push_level(1)
        queue.push_level(2)
        queue.schedule_committed_lu(50, 7, 10)   # at level of branch 2
        queue.on_branch_confirmed(2, recorder.release, recorder.promote)
        assert recorder.released == []           # still conditional on branch 1
        assert queue.depth == 1
        assert queue.levels()[0].rwns == {(50, 7): 10}

    def test_out_of_order_confirmation_chain(self):
        queue = ReleaseQueue()
        recorder = Recorder()
        queue.push_level(1)
        queue.push_level(2)
        queue.push_level(3)
        queue.schedule_committed_lu(60, 2, 10)   # guarded by branches 1..3
        queue.on_branch_confirmed(2, recorder.release, recorder.promote)
        queue.on_branch_confirmed(3, recorder.release, recorder.promote)
        assert recorder.released == []
        queue.on_branch_confirmed(1, recorder.release, recorder.promote)
        assert recorder.released == [(60, 2)]

    def test_confirm_unknown_branch_is_noop(self):
        queue = ReleaseQueue()
        recorder = Recorder()
        queue.push_level(1)
        queue.on_branch_confirmed(99, recorder.release, recorder.promote)
        assert queue.depth == 1

    def test_rwc_merge_or_combines_masks(self):
        queue = ReleaseQueue()
        recorder = Recorder()
        queue.push_level(1)
        queue.schedule_inflight_lu(5, 0b001, 10)
        queue.push_level(2)
        queue.schedule_inflight_lu(5, 0b100, 12)
        queue.on_branch_confirmed(2, recorder.release, recorder.promote)
        assert queue.levels()[0].rwc == {5: {0b001: 10, 0b100: 12}}


class TestMispredictionAndCommit:
    def test_mispredict_clears_level_and_younger(self):
        queue = ReleaseQueue()
        queue.push_level(1)
        queue.schedule_committed_lu(40, 0, 10)
        queue.push_level(2)
        queue.schedule_committed_lu(41, 1, 20)
        queue.push_level(3)
        queue.schedule_committed_lu(42, 2, 30)
        dropped = queue.on_branch_mispredicted(2)
        assert dropped == 2
        assert queue.depth == 1
        assert queue.total_scheduled() == 1
        assert queue.squashed_schedulings == 2

    def test_mispredict_unknown_branch(self):
        queue = ReleaseQueue()
        queue.push_level(1)
        assert queue.on_branch_mispredicted(9) == 0
        assert queue.depth == 1

    def test_lu_commit_moves_rwc_to_rwns(self):
        queue = ReleaseQueue()
        queue.push_level(1)
        queue.schedule_inflight_lu(7, 0b001, 10)

        def resolver(bit):
            assert bit == 0b001
            return (22, 6)

        queue.on_lu_commit(7, resolver)
        assert queue.levels()[0].rwc == {}
        assert queue.levels()[0].rwns == {(22, 6): 10}

    def test_lu_commit_without_schedulings_is_noop(self):
        queue = ReleaseQueue()
        queue.push_level(1)
        queue.on_lu_commit(99, lambda bit: (0, 0))
        assert queue.total_scheduled() == 0

    def test_clear(self):
        queue = ReleaseQueue()
        queue.push_level(1)
        queue.schedule_committed_lu(40, 0, 10)
        assert queue.clear() == 1
        assert queue.depth == 0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            ReleaseQueue(capacity=0)
