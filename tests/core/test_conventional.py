"""Tests for the conventional release policy (the paper's baseline)."""

import pytest

from repro.core.conventional import ConventionalRelease

from tests.core.helpers import PolicyHarness


@pytest.fixture
def harness():
    return PolicyHarness("conv", num_physical=40)


class TestConventionalRelease:
    def test_previous_version_released_at_nv_commit(self, harness):
        producer = harness.rename(dest=1)
        old_version = producer.pd
        nv = harness.rename(dest=1)
        assert nv.old_pd == old_version
        assert nv.rel_old
        # Not released before the NV commits.
        harness.commit(producer)
        assert not harness.register_file.is_free(old_version)
        harness.commit(nv)
        assert harness.register_file.is_free(old_version)

    def test_initial_architectural_register_released_on_redefinition(self, harness):
        nv = harness.rename(dest=5)
        harness.commit(nv)
        # Logical r5 was initially mapped to physical 5.
        assert harness.register_file.is_free(5)

    def test_no_early_release_bits_ever_set(self, harness):
        first = harness.rename(dest=1)
        harness.rename(dest=2, srcs=(1,))
        harness.rename(dest=1, srcs=(2,))
        assert all(entry.early_release_mask == 0 for entry in harness.program)
        assert first.early_release_mask == 0

    def test_register_never_reused(self, harness):
        producer = harness.rename(dest=1)
        harness.commit(producer)
        nv = harness.rename(dest=1)
        assert nv.allocated_new and not nv.reused
        assert nv.pd != nv.old_pd

    def test_squashed_nv_does_not_release_previous(self, harness):
        producer = harness.rename(dest=1)
        harness.commit(producer)
        branch = harness.rename(is_branch=True)
        nv = harness.rename(dest=1)               # speculative redefinition
        harness.resolve_branch(branch, mispredicted=True)
        assert not harness.register_file.is_free(producer.pd)
        assert harness.map_table.lookup(1) == producer.pd
        assert harness.allocated_consistency()

    def test_steady_state_register_count(self, harness):
        # After many committed redefinitions, exactly the 32 architectural
        # versions remain allocated.
        for _ in range(20):
            entry = harness.rename(dest=3)
            harness.commit(entry)
        assert harness.quiescent_allocated() == 32

    def test_statistics_counters(self, harness):
        producer = harness.rename(dest=1)
        harness.commit(producer)
        nv = harness.rename(dest=1)
        harness.commit(nv)
        assert harness.policy.conventional_releases == 2
        assert harness.policy.early_releases_scheduled == 0
        assert harness.policy.register_reuses == 0

    def test_policy_name(self):
        assert ConventionalRelease.name == "conv"
