"""Regression tests for the (fixed) seed-era ``FreeListError`` crashes.

The seed processor carried three related holes in the basic mechanism's
squash/release bookkeeping, all of which corrupted the free list under
non-default configurations:

1. ``on_commit`` updated the architectural-liveness flag *after* the
   early-release mask fired, so a destination-slot self-release lost its
   ``arch_version_released`` mark and a later exception flush rebuilt a
   live-looking mapping to a freed (and re-allocated) register — the
   "double release" crash.
2. Early-release bits scheduled *on a branch entry* by younger
   next-version instructions survived that branch's own misprediction,
   releasing a register the restored map table still named.
3. ``may_avoid_allocation`` probed the LUs table before rename recorded
   the instruction's own source reads, so a self-referencing definition
   (``LOAD r11 <- [r11]``) was waved past a dry free list and crashed in
   ``allocate()`` instead of stalling.

The *extended* policy carried a fourth hole, fixed in PR 4 (these tests
were strict-xfail until then and now pin the fix): a next-version
instruction reading its own destination register is its own last use,
but its ROS entry is unpublished while it renames, so the Release
Queue's "unknown LU" fallback scheduled an RwNS release of a register
whose in-flight definer an exception flush would release again.  Such
self-LU schedulings are now RwC entries tied to the NV's own entry, and
every scheduling carries the NV's sequence number so squashes cancel it
wherever confirmation merges moved it.

These tests pin the fixed behaviour on the exact configurations that used
to crash.
"""

import pytest

from repro.pipeline.config import ProcessorConfig
from repro.pipeline.processor import simulate
from repro.trace.workloads import get_workload

TRACE_LENGTH = 2_000  # shortest length reproducing the seed-era crashes (seed 0)


def test_basic_policy_exception_squash_double_release_fixed():
    """Seed-era crash 1: basic policy + exceptions on compress now completes."""
    trace = get_workload("compress", TRACE_LENGTH, seed=0)
    config = ProcessorConfig(release_policy="basic", exception_rate=0.003)
    stats = simulate(trace, config)
    assert stats.committed_instructions > 0
    assert stats.exceptions_taken > 0  # the crashing path is actually exercised


def test_basic_policy_tight_file_empty_free_list_fixed():
    """Seed-era crash 3: basic policy with a 34-register file on li completes."""
    trace = get_workload("li", TRACE_LENGTH, seed=0)
    config = ProcessorConfig(release_policy="basic",
                             num_physical_int=34, num_physical_fp=34)
    stats = simulate(trace, config)
    assert stats.committed_instructions > 0
    # The fix converts the crash into honest register-shortage stalls.
    assert stats.dispatch_stalls["no_free_int_register"] > 0


@pytest.mark.parametrize("workload", ["compress", "li"])
def test_basic_policy_exceptions_and_tight_file_combined(workload):
    """The fixed paths compose: tight file *and* exception flushes together."""
    trace = get_workload(workload, TRACE_LENGTH, seed=0)
    config = ProcessorConfig(release_policy="basic", exception_rate=0.003,
                             num_physical_int=34, num_physical_fp=34)
    stats = simulate(trace, config)
    assert stats.committed_instructions > 0


@pytest.mark.parametrize("workload", ["li", "perl"])
def test_extended_policy_exception_stale_release_queue_fixed(workload):
    """Seed-era crash 4: extended policy + exceptions on the pointer chasers.

    The self-LU ``p = p->next`` redefinitions used to schedule premature
    RwNS releases (see module docstring); the run now completes with the
    crashing path exercised.
    """
    trace = get_workload(workload, 1_500, seed=0)
    config = ProcessorConfig(release_policy="extended", exception_rate=0.003)
    stats = simulate(trace, config)
    assert stats.committed_instructions > 0
    assert stats.exceptions_taken > 0


def test_extended_policy_exceptions_and_tight_file_combined():
    """The fix composes with a tight register file (stall, not crash)."""
    trace = get_workload("li", 2_000, seed=0)
    config = ProcessorConfig(release_policy="extended", exception_rate=0.003,
                             num_physical_int=40, num_physical_fp=40)
    stats = simulate(trace, config)
    assert stats.committed_instructions > 0
