"""Regression pins for the known seed-era ``FreeListError`` crashes.

ROADMAP records two reachable crashes in the *basic* release policy's
squash/release bookkeeping, carried verbatim from the seed per-cycle
processor into the engine.  Until the release-policy fix lands these
tests pin the exact crash signatures (strict xfail): if a change makes
either configuration start passing — or crash differently — the suite
flags it, so the fix (or an accidental behaviour change) is noticed.
"""

import pytest

from repro.pipeline.config import ProcessorConfig
from repro.pipeline.processor import simulate
from repro.rename.free_list import FreeListError
from repro.trace.workloads import get_workload

TRACE_LENGTH = 2_000  # shortest length reproducing both crashes (seed 0)


@pytest.mark.xfail(raises=FreeListError, strict=True,
                   reason="seed-era bug: basic policy double-releases a "
                          "register during exception squash recovery "
                          "(ROADMAP known pre-existing bug)")
def test_basic_policy_exception_squash_double_release():
    trace = get_workload("compress", TRACE_LENGTH, seed=0)
    config = ProcessorConfig(release_policy="basic", exception_rate=0.003)
    simulate(trace, config)


@pytest.mark.xfail(raises=FreeListError, strict=True,
                   reason="seed-era bug: basic policy allocates from an "
                          "empty free list with a 34-register file "
                          "(ROADMAP known pre-existing bug)")
def test_basic_policy_tight_file_empty_free_list():
    trace = get_workload("li", TRACE_LENGTH, seed=0)
    config = ProcessorConfig(release_policy="basic",
                             num_physical_int=34, num_physical_fp=34)
    simulate(trace, config)
