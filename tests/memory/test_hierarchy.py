"""Tests for the two-level memory hierarchy (Table 2 latencies)."""

from repro.memory.hierarchy import MemoryConfig, MemoryHierarchy


class TestDefaults:
    def test_paper_geometries(self):
        config = MemoryConfig()
        assert config.l1i.size_bytes == 32 * 1024 and config.l1i.line_bytes == 32
        assert config.l1d.size_bytes == 32 * 1024 and config.l1d.line_bytes == 64
        assert config.l2.size_bytes == 1024 * 1024 and config.l2.hit_latency == 12
        assert config.main_memory_latency == 50


class TestLatencies:
    def test_l1_hit_latency(self):
        memory = MemoryHierarchy()
        memory.data_read(0x1000)                     # warm the line
        assert memory.data_read(0x1000) == 1

    def test_cold_miss_goes_to_main_memory(self):
        memory = MemoryHierarchy()
        # L1 miss (1) + L2 miss (12) + memory (50).
        assert memory.data_read(0x1000) == 1 + 12 + 50

    def test_l2_hit_after_l1_eviction(self):
        memory = MemoryHierarchy()
        memory.data_read(0x1000)
        # Evict the line from L1 by filling its set (L1D: 2-way, 256 sets,
        # set stride = 64 * 256 = 16 KB).
        set_stride = 64 * 256
        memory.data_read(0x1000 + set_stride)
        memory.data_read(0x1000 + 2 * set_stride)
        latency = memory.data_read(0x1000)
        assert latency == 1 + 12                    # L1 miss, L2 hit

    def test_instruction_access_uses_l1i(self):
        memory = MemoryHierarchy()
        memory.instruction_access(0x400)
        assert memory.l1i.accesses == 1
        assert memory.l1d.accesses == 0

    def test_data_write_counts_as_l1d_access(self):
        memory = MemoryHierarchy()
        memory.data_write(0x2000)
        assert memory.l1d.accesses == 1

    def test_memory_access_counter(self):
        memory = MemoryHierarchy()
        memory.data_read(0x1000)
        memory.data_read(0x1000)
        assert memory.memory_accesses == 1


class TestUnifiedL2:
    def test_instruction_miss_warms_l2_for_data(self):
        memory = MemoryHierarchy()
        memory.instruction_access(0x3000)
        # The same line fetched as data should now hit in L2.
        latency = memory.data_read(0x3000)
        assert latency == 1 + 12

    def test_reset_statistics(self):
        memory = MemoryHierarchy()
        memory.data_read(0x1000)
        memory.instruction_access(0x2000)
        memory.reset_statistics()
        assert memory.l1d.accesses == 0
        assert memory.l1i.accesses == 0
        assert memory.l2.accesses == 0
        assert memory.memory_accesses == 0
        # Contents preserved: the line still hits.
        assert memory.data_read(0x1000) == 1
