"""Tests for the set-associative cache model."""

import pytest

from repro.memory.cache import Cache, CacheConfig


def small_cache(size=1024, assoc=2, line=64, latency=1, name="test"):
    return Cache(CacheConfig(name, size_bytes=size, associativity=assoc,
                             line_bytes=line, hit_latency=latency))


class TestConfig:
    def test_n_sets(self):
        config = CacheConfig("L1", 32 * 1024, 2, 64, 1)
        assert config.n_sets == 256

    def test_paper_l1i_geometry(self):
        config = CacheConfig("L1I", 32 * 1024, 2, 32, 1)
        assert config.n_sets == 512

    def test_rejects_non_multiple_size(self):
        with pytest.raises(ValueError):
            CacheConfig("bad", 1000, 3, 64, 1)

    def test_rejects_zero_latency(self):
        with pytest.raises(ValueError):
            CacheConfig("bad", 1024, 2, 64, 0)

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            CacheConfig("bad", -1024, 2, 64, 1)


class TestAccess:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        first = cache.access(0x1000)
        second = cache.access(0x1000)
        assert not first.hit and second.hit
        assert cache.hits == 1 and cache.misses == 1

    def test_same_line_hits(self):
        cache = small_cache(line=64)
        cache.access(0x1000)
        assert cache.access(0x1000 + 63).hit
        assert not cache.access(0x1000 + 64).hit

    def test_latency_reported(self):
        cache = small_cache(latency=12)
        assert cache.access(0x0).latency == 12
        assert cache.access(0x0).latency == 12

    def test_lru_within_set(self):
        cache = small_cache(size=256, assoc=2, line=64)  # 2 sets
        set_stride = 64 * 2
        a, b, c = 0x0, set_stride, 2 * set_stride       # all map to set 0
        cache.access(a)
        cache.access(b)
        cache.access(c)               # evicts a
        assert not cache.access(a).hit
        assert cache.access(c).hit

    def test_lru_refresh_on_hit(self):
        cache = small_cache(size=256, assoc=2, line=64)
        set_stride = 64 * 2
        a, b, c = 0x0, set_stride, 2 * set_stride
        cache.access(a)
        cache.access(b)
        cache.access(a)               # refresh a
        cache.access(c)               # evicts b, not a
        assert cache.access(a).hit
        assert not cache.access(b).hit

    def test_probe_does_not_affect_state(self):
        cache = small_cache()
        assert not cache.probe(0x100)
        assert cache.misses == 0
        cache.access(0x100)
        assert cache.probe(0x100)

    def test_write_marks_dirty_and_writeback_counted(self):
        cache = small_cache(size=128, assoc=1, line=64)  # 2 sets, direct mapped
        cache.access(0x0, is_write=True)
        # Same set, different tag: evicts the dirty line.
        result = cache.access(0x0 + 128, is_write=False)
        assert result.evicted_dirty
        assert cache.writebacks == 1

    def test_clean_eviction_not_counted(self):
        cache = small_cache(size=128, assoc=1, line=64)
        cache.access(0x0, is_write=False)
        result = cache.access(0x0 + 128)
        assert not result.evicted_dirty
        assert cache.writebacks == 0


class TestStatistics:
    def test_miss_rate(self):
        cache = small_cache()
        cache.access(0x0)
        cache.access(0x0)
        cache.access(0x1000)
        assert cache.accesses == 3
        assert cache.miss_rate == pytest.approx(2 / 3)

    def test_miss_rate_empty(self):
        assert small_cache().miss_rate == 0.0

    def test_flush_invalidates_but_keeps_stats(self):
        cache = small_cache()
        cache.access(0x0)
        cache.flush()
        assert cache.misses == 1
        assert not cache.access(0x0).hit

    def test_reset_statistics_keeps_contents(self):
        cache = small_cache()
        cache.access(0x0)
        cache.reset_statistics()
        assert cache.misses == 0
        assert cache.access(0x0).hit
