"""Tests for the logical register model."""

import pytest

from repro.isa import (NUM_LOGICAL, NUM_LOGICAL_FP, NUM_LOGICAL_INT,
                       LogicalRegister, RegClass, logical_registers)


class TestRegClass:
    def test_two_classes(self):
        assert set(RegClass) == {RegClass.INT, RegClass.FP}

    def test_num_logical_matches_paper(self):
        # The paper uses 32 int + 32 FP logical registers (Table 2).
        assert RegClass.INT.num_logical == 32
        assert RegClass.FP.num_logical == 32
        assert NUM_LOGICAL_INT == 32
        assert NUM_LOGICAL_FP == 32

    def test_num_logical_indexable_by_class(self):
        assert NUM_LOGICAL[RegClass.INT] == NUM_LOGICAL_INT
        assert NUM_LOGICAL[RegClass.FP] == NUM_LOGICAL_FP

    def test_short_names(self):
        assert RegClass.INT.short_name == "int"
        assert RegClass.FP.short_name == "fp"

    def test_int_values_usable_as_indices(self):
        assert int(RegClass.INT) == 0
        assert int(RegClass.FP) == 1


class TestLogicalRegister:
    def test_tuple_equivalence(self):
        reg = LogicalRegister(RegClass.INT, 5)
        assert reg == (RegClass.INT, 5)

    def test_str_prefix(self):
        assert str(LogicalRegister(RegClass.INT, 3)) == "r3"
        assert str(LogicalRegister(RegClass.FP, 7)) == "f7"

    def test_is_valid_in_range(self):
        assert LogicalRegister(RegClass.INT, 0).is_valid
        assert LogicalRegister(RegClass.INT, 31).is_valid
        assert LogicalRegister(RegClass.FP, 31).is_valid

    def test_is_valid_out_of_range(self):
        assert not LogicalRegister(RegClass.INT, 32).is_valid
        assert not LogicalRegister(RegClass.FP, -1).is_valid


class TestLogicalRegisters:
    @pytest.mark.parametrize("reg_class", [RegClass.INT, RegClass.FP])
    def test_enumeration_covers_class(self, reg_class):
        regs = list(logical_registers(reg_class))
        assert len(regs) == reg_class.num_logical
        assert all(reg.reg_class is reg_class for reg in regs)
        assert [reg.index for reg in regs] == list(range(reg_class.num_logical))
