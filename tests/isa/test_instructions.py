"""Tests for instruction records and the builder."""

import pytest

from repro.isa import Instruction, InstructionBuilder, OpClass, RegClass


class TestInstruction:
    def test_alu_properties(self):
        inst = Instruction(pc=0x1000, op=OpClass.INT_ALU, dest=(RegClass.INT, 1),
                           srcs=((RegClass.INT, 2),))
        assert inst.has_dest
        assert not inst.is_branch and not inst.is_mem
        inst.validate()

    def test_load_properties(self):
        inst = Instruction(pc=0x1000, op=OpClass.LOAD, dest=(RegClass.INT, 1),
                           srcs=((RegClass.INT, 2),), mem_addr=0x100)
        assert inst.is_load and inst.is_mem and not inst.is_store
        inst.validate()

    def test_store_has_no_dest(self):
        inst = Instruction(pc=0x1000, op=OpClass.STORE,
                           srcs=((RegClass.INT, 1), (RegClass.INT, 2)),
                           mem_addr=0x100)
        assert inst.is_store and not inst.has_dest
        inst.validate()

    def test_branch_properties(self):
        inst = Instruction(pc=0x1000, op=OpClass.BRANCH, srcs=((RegClass.INT, 1),),
                           taken=True, target=0x2000)
        assert inst.is_branch and inst.taken and inst.target == 0x2000
        inst.validate()

    def test_frozen(self):
        inst = Instruction(pc=0x1000, op=OpClass.NOP)
        with pytest.raises(AttributeError):
            inst.pc = 0x2000

    # ------------------------------------------------------------------
    # validate() rejections
    # ------------------------------------------------------------------
    def test_validate_rejects_out_of_range_dest(self):
        inst = Instruction(pc=0, op=OpClass.INT_ALU, dest=(RegClass.INT, 99))
        with pytest.raises(ValueError):
            inst.validate()

    def test_validate_rejects_out_of_range_src(self):
        inst = Instruction(pc=0, op=OpClass.INT_ALU, dest=(RegClass.INT, 1),
                           srcs=((RegClass.FP, 64),))
        with pytest.raises(ValueError):
            inst.validate()

    def test_validate_rejects_store_with_dest(self):
        inst = Instruction(pc=0, op=OpClass.STORE, dest=(RegClass.INT, 1),
                           srcs=((RegClass.INT, 2),), mem_addr=8)
        with pytest.raises(ValueError):
            inst.validate()

    def test_validate_rejects_wrong_dest_class(self):
        inst = Instruction(pc=0, op=OpClass.FP_ADD, dest=(RegClass.INT, 1))
        with pytest.raises(ValueError):
            inst.validate()

    def test_validate_rejects_int_dest_on_fp_load(self):
        inst = Instruction(pc=0, op=OpClass.FP_LOAD, dest=(RegClass.INT, 1),
                           srcs=((RegClass.INT, 2),), mem_addr=8)
        with pytest.raises(ValueError):
            inst.validate()


class TestInstructionBuilder:
    def test_pc_advances(self):
        builder = InstructionBuilder(pc=0x1000)
        first = builder.alu(dest=1, srcs=(2,))
        second = builder.alu(dest=2, srcs=(1,))
        assert second.pc == first.pc + 4

    def test_alu_fp_flag(self):
        builder = InstructionBuilder()
        inst = builder.alu(dest=3, srcs=(1, 2), fp=True)
        assert inst.op is OpClass.FP_ADD
        assert inst.dest == (RegClass.FP, 3)
        assert all(cls is RegClass.FP for cls, _ in inst.srcs)

    def test_alu_op_override(self):
        builder = InstructionBuilder()
        inst = builder.alu(dest=3, srcs=(1,), op=OpClass.INT_MULT)
        assert inst.op is OpClass.INT_MULT

    def test_load_uses_int_address(self):
        builder = InstructionBuilder()
        inst = builder.load(dest=4, addr_reg=7, mem_addr=0x40, fp=True)
        assert inst.op is OpClass.FP_LOAD
        assert inst.dest == (RegClass.FP, 4)
        assert inst.srcs == ((RegClass.INT, 7),)

    def test_store_sources(self):
        builder = InstructionBuilder()
        inst = builder.store(value_reg=4, addr_reg=7, mem_addr=0x40)
        assert inst.srcs == ((RegClass.INT, 4), (RegClass.INT, 7))
        assert inst.mem_addr == 0x40

    def test_branch(self):
        builder = InstructionBuilder()
        inst = builder.branch(taken=True, target=0x4000, srcs=(1,))
        assert inst.is_branch and inst.taken and inst.target == 0x4000

    def test_trace_returns_copy(self):
        builder = InstructionBuilder()
        builder.nop()
        trace = builder.trace()
        builder.nop()
        assert len(trace) == 1
        assert len(builder.trace()) == 2

    def test_validation_enabled_by_default(self):
        builder = InstructionBuilder()
        with pytest.raises(ValueError):
            builder.alu(dest=64, srcs=())
