"""Tests for operation classes, FU mapping and latencies."""

import pytest

from repro.isa import DEFAULT_LATENCY, FU_KIND, FUKind, OpClass
from repro.isa.opcodes import (is_branch_op, is_load_op, is_memory_op,
                               is_store_op, uses_fp_dest)


class TestLatencies:
    """Latencies must match Table 2 of the paper."""

    @pytest.mark.parametrize("op, latency", [
        (OpClass.INT_ALU, 1),
        (OpClass.INT_MULT, 7),
        (OpClass.FP_ADD, 4),
        (OpClass.FP_MULT, 4),
        (OpClass.FP_DIV, 16),
    ])
    def test_table2_latencies(self, op, latency):
        assert DEFAULT_LATENCY[op] == latency

    def test_every_op_has_latency(self):
        for op in OpClass:
            assert op in DEFAULT_LATENCY
            assert DEFAULT_LATENCY[op] >= 1


class TestFUMapping:
    def test_every_op_has_fu(self):
        for op in OpClass:
            assert op in FU_KIND

    @pytest.mark.parametrize("op, kind", [
        (OpClass.INT_ALU, FUKind.SIMPLE_INT),
        (OpClass.BRANCH, FUKind.SIMPLE_INT),
        (OpClass.INT_MULT, FUKind.INT_MULT),
        (OpClass.FP_ADD, FUKind.SIMPLE_FP),
        (OpClass.FP_MULT, FUKind.FP_MULT),
        (OpClass.FP_DIV, FUKind.FP_DIV),
        (OpClass.LOAD, FUKind.LOAD_STORE),
        (OpClass.STORE, FUKind.LOAD_STORE),
        (OpClass.FP_LOAD, FUKind.LOAD_STORE),
        (OpClass.FP_STORE, FUKind.LOAD_STORE),
    ])
    def test_mapping(self, op, kind):
        assert FU_KIND[op] is kind


class TestPredicates:
    def test_memory_ops(self):
        assert is_memory_op(OpClass.LOAD)
        assert is_memory_op(OpClass.FP_STORE)
        assert not is_memory_op(OpClass.INT_ALU)
        assert not is_memory_op(OpClass.BRANCH)

    def test_load_store_split(self):
        assert is_load_op(OpClass.LOAD) and is_load_op(OpClass.FP_LOAD)
        assert not is_load_op(OpClass.STORE)
        assert is_store_op(OpClass.STORE) and is_store_op(OpClass.FP_STORE)
        assert not is_store_op(OpClass.FP_LOAD)

    def test_branch(self):
        assert is_branch_op(OpClass.BRANCH)
        assert not is_branch_op(OpClass.LOAD)

    def test_fp_dest_classification(self):
        assert uses_fp_dest(OpClass.FP_ADD)
        assert uses_fp_dest(OpClass.FP_LOAD)
        assert not uses_fp_dest(OpClass.FP_STORE)
        assert not uses_fp_dest(OpClass.LOAD)
        assert not uses_fp_dest(OpClass.INT_ALU)
