"""Tests for the multiprocessing sweep runner."""

import pytest

from repro.analysis.parallel import ParallelSweepRunner, available_workers
from repro.analysis.sweep import SweepConfig, run_sweep
from repro.pipeline.config import ProcessorConfig

FAST = ProcessorConfig(warmup=False, enable_wrong_path=False)


class TestAvailableWorkers:
    def test_default_leaves_one_core(self):
        import os
        assert available_workers() <= max(1, (os.cpu_count() or 1))

    def test_explicit_bound(self):
        assert available_workers(2) <= 2
        assert available_workers(10_000) >= 1

    def test_at_least_one(self):
        assert available_workers(0) == 1


class TestParallelRunner:
    def test_empty_points(self):
        runner = ParallelSweepRunner(max_workers=2)
        assert runner.run(SweepConfig(benchmarks=("swim",)), []) == {}

    def test_runs_all_points(self):
        config = SweepConfig(benchmarks=("swim", "gcc"), policies=("conv",),
                             register_sizes=(48,), trace_length=500,
                             base_config=FAST)
        runner = ParallelSweepRunner(max_workers=2)
        results = runner.run(config, config.points())
        assert len(results) == 2
        for point, stats in results.items():
            assert stats.benchmark == point.benchmark
            assert stats.ipc > 0

    def test_parallel_and_serial_agree(self):
        # The simulations are deterministic, so both execution modes must
        # produce identical IPC values.
        config = SweepConfig(benchmarks=("swim",), policies=("conv", "extended"),
                             register_sizes=(48,), trace_length=600,
                             base_config=FAST)
        serial = run_sweep(config, parallel=False)
        parallel = run_sweep(config, parallel=True, max_workers=2)
        for point in config.points():
            assert serial.ipc(point.benchmark, point.policy, point.num_registers) \
                == pytest.approx(parallel.ipc(point.benchmark, point.policy,
                                              point.num_registers))
