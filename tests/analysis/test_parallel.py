"""Tests for the multiprocessing sweep runner."""

import pytest

from repro.analysis.parallel import ParallelSweepRunner, available_workers
from repro.analysis.sweep import SweepConfig, run_sweep
from repro.pipeline.config import ProcessorConfig

FAST = ProcessorConfig(warmup=False, enable_wrong_path=False)


class TestAvailableWorkers:
    def test_default_leaves_one_core(self):
        import os
        assert available_workers() <= max(1, (os.cpu_count() or 1))

    def test_explicit_bound(self):
        assert available_workers(2) <= 2
        assert available_workers(10_000) >= 1

    def test_at_least_one(self):
        assert available_workers(0) == 1


class TestParallelRunner:
    def test_empty_points(self):
        runner = ParallelSweepRunner(max_workers=2)
        assert runner.run(SweepConfig(benchmarks=("swim",)), []) == {}

    def test_runs_all_points(self):
        config = SweepConfig(benchmarks=("swim", "gcc"), policies=("conv",),
                             register_sizes=(48,), trace_length=500,
                             base_config=FAST)
        runner = ParallelSweepRunner(max_workers=2)
        results = runner.run(config, config.points())
        assert len(results) == 2
        for point, stats in results.items():
            assert stats.benchmark == point.benchmark
            assert stats.ipc > 0

    def test_parallel_and_serial_agree(self):
        # The simulations are deterministic, so both execution modes must
        # produce identical IPC values.
        config = SweepConfig(benchmarks=("swim",), policies=("conv", "extended"),
                             register_sizes=(48,), trace_length=600,
                             base_config=FAST)
        serial = run_sweep(config, parallel=False)
        parallel = run_sweep(config, parallel=True, max_workers=2)
        for point in config.points():
            assert serial.ipc(point.benchmark, point.policy, point.num_registers) \
                == pytest.approx(parallel.ipc(point.benchmark, point.policy,
                                              point.num_registers))


class TestSweepTelemetry:
    """Export-cache counters and the deduplicated fallback summary."""

    def test_sweep_result_carries_export_cache_counters(self):
        config = SweepConfig(benchmarks=("swim",), policies=("conv", "basic"),
                             register_sizes=(40, 48), trace_length=400,
                             base_config=FAST)
        result = run_sweep(config, parallel=False, cache=False)
        assert result.export_cache_hits >= 0
        assert result.export_cache_misses >= 0
        assert result.compiled_fallback_reason is None  # nothing fell back

    def test_runner_telemetry_resets_per_run(self):
        config = SweepConfig(benchmarks=("swim",), policies=("conv",),
                             register_sizes=(48,), trace_length=400,
                             base_config=FAST)
        runner = ParallelSweepRunner(max_workers=1)
        runner.telemetry["export_cache_hits"] = 99_999
        runner.run(config, config.points())
        assert runner.telemetry["export_cache_hits"] < 99_999
        assert set(runner.telemetry) == {"export_cache_hits",
                                         "export_cache_misses",
                                         "fallback_chunks", "fallback_reason"}

    def test_merge_sums_telemetry(self):
        config = SweepConfig(benchmarks=("swim",), policies=("conv",),
                             register_sizes=(48,), trace_length=400,
                             base_config=FAST)
        result = run_sweep(config, parallel=False, cache=False)
        a = type(result)(config, {}, export_cache_hits=3, export_cache_misses=1)
        b = type(result)(config, {}, export_cache_hits=2, export_cache_misses=4,
                         compiled_fallback_reason="toolchain broken")
        merged = a.merge(b)
        assert merged.export_cache_hits == 5
        assert merged.export_cache_misses == 5
        assert merged.compiled_fallback_reason == "toolchain broken"

    def test_fallback_warning_emitted_once_per_sweep(self, monkeypatch, caplog):
        # Six points on a broken toolchain: without deduplication every
        # simulation (or every pool worker) would log the same warning;
        # the sweep must surface exactly one summary and still finish on
        # the Python engine.
        import dataclasses
        import logging

        from repro.engine import accel

        monkeypatch.setenv("REPRO_ACCEL_CC", "/nonexistent/compiler-xyz")
        accel.reset_backend_cache()
        try:
            config = SweepConfig(
                benchmarks=("swim",), policies=("conv", "basic", "extended"),
                register_sizes=(40, 48), trace_length=400,
                base_config=dataclasses.replace(FAST, engine="compiled"))
            with caplog.at_level(logging.WARNING, logger="repro.engine.accel"):
                result = run_sweep(config, parallel=False, cache=False)
            warnings = [r for r in caplog.records
                        if "using the Python engine" in r.message]
            assert len(warnings) == 1
            assert result.compiled_fallback_reason is not None
            assert "unavailable" in result.compiled_fallback_reason
            assert len(result) == 6
        finally:
            accel.reset_backend_cache()
