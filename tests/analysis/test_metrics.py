"""Tests for the performance metrics."""

import pytest

from repro.analysis.metrics import (geometric_mean, harmonic_mean,
                                    iso_ipc_register_requirement,
                                    percentage_speedup, speedup,
                                    summarize_speedups)


class TestMeans:
    def test_harmonic_mean_known_value(self):
        assert harmonic_mean([1.0, 2.0]) == pytest.approx(4 / 3)

    def test_harmonic_mean_of_equal_values(self):
        assert harmonic_mean([2.5, 2.5, 2.5]) == pytest.approx(2.5)

    def test_harmonic_below_geometric_below_arithmetic(self):
        values = [1.0, 2.0, 4.0]
        assert harmonic_mean(values) < geometric_mean(values) < sum(values) / 3

    def test_harmonic_mean_rejects_empty(self):
        with pytest.raises(ValueError):
            harmonic_mean([])

    def test_harmonic_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])

    def test_geometric_mean_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])


class TestSpeedup:
    def test_speedup(self):
        assert speedup(2.2, 2.0) == pytest.approx(1.1)

    def test_percentage(self):
        assert percentage_speedup(2.16, 2.0) == pytest.approx(8.0)

    def test_slowdown_is_negative(self):
        assert percentage_speedup(1.9, 2.0) < 0

    def test_rejects_zero_baseline(self):
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)

    def test_summarize_speedups(self):
        table = {"swim": {"conv": 2.0, "extended": 2.2},
                 "gcc": {"conv": 1.5, "extended": 1.5}}
        result = summarize_speedups(table)
        assert result["swim"]["extended"] == pytest.approx(10.0)
        assert result["swim"]["conv"] == pytest.approx(0.0)
        assert result["gcc"]["extended"] == pytest.approx(0.0)


class TestIsoIPC:
    SIZES = [40, 48, 56, 64]
    IPCS = [1.0, 1.5, 2.0, 2.5]

    def test_exact_point(self):
        assert iso_ipc_register_requirement(self.SIZES, self.IPCS, 2.0) == 56

    def test_interpolated_point(self):
        result = iso_ipc_register_requirement(self.SIZES, self.IPCS, 1.75)
        assert result == pytest.approx(52.0)

    def test_below_minimum_returns_smallest(self):
        assert iso_ipc_register_requirement(self.SIZES, self.IPCS, 0.5) == 40

    def test_unreachable_target_returns_none(self):
        assert iso_ipc_register_requirement(self.SIZES, self.IPCS, 3.0) is None

    def test_unsorted_input_handled(self):
        sizes = [64, 40, 56, 48]
        ipcs = [2.5, 1.0, 2.0, 1.5]
        assert iso_ipc_register_requirement(sizes, ipcs, 2.0) == 56

    def test_flat_segment(self):
        result = iso_ipc_register_requirement([40, 48, 56], [1.0, 2.0, 2.0], 2.0)
        assert result == pytest.approx(48.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            iso_ipc_register_requirement([1, 2], [1.0], 1.0)

    def test_empty_input(self):
        assert iso_ipc_register_requirement([], [], 1.0) is None
