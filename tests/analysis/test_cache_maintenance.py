"""Tests of the cache maintenance layer: stats, pruning and the
``repro-experiments cache`` subcommand."""

import pickle
import time

import pytest

from repro.analysis.cache import SweepCache
from repro.analysis.sweep import SweepConfig, SweepPoint, run_sweep
from repro.experiments import runner
from repro.pipeline.config import ProcessorConfig

FAST = ProcessorConfig(warmup=False, enable_wrong_path=False)


def tiny_config(**kwargs):
    defaults = dict(benchmarks=("swim",), policies=("conv",),
                    register_sizes=(48,), trace_length=400, base_config=FAST)
    defaults.update(kwargs)
    return SweepConfig(**defaults)


def populated_cache(tmp_path, benchmarks=("swim", "gcc")):
    cache = SweepCache(tmp_path / "cache")
    run_sweep(tiny_config(benchmarks=tuple(benchmarks)), parallel=False,
              cache=cache)
    return cache


class TestCacheStats:
    def test_per_workload_counts_and_sizes(self, tmp_path):
        cache = populated_cache(tmp_path)
        stats = cache.stats()
        assert stats.total_entries == 2
        assert set(stats.workloads) == {"swim", "gcc"}
        for count, nbytes in stats.workloads.values():
            assert count == 1 and nbytes > 0
        assert stats.total_bytes == sum(b for _, b in stats.workloads.values())
        assert stats.stale_code_entries == 0
        assert stats.oldest is not None
        report = stats.format()
        assert "swim" in report and "entries: 2" in report

    def test_unreadable_entries_are_counted(self, tmp_path):
        cache = populated_cache(tmp_path, benchmarks=("swim",))
        bad = cache.cache_dir / "zz" / ("0" * 64 + ".pkl")
        bad.parent.mkdir(parents=True)
        bad.write_bytes(b"not a pickle")
        stats = cache.stats()
        assert stats.total_entries == 2
        assert stats.unreadable_entries == 1

    def test_unreadable_bucket_accounts_bytes(self, tmp_path):
        """Corrupt/foreign entries get a distinct bucket with their own
        byte count — dead weight is visible, never blended into a
        workload's live totals."""
        cache = populated_cache(tmp_path, benchmarks=("swim",))
        garbage = b"x" * 2048
        bad = cache.cache_dir / "zz" / ("0" * 64 + ".pkl")
        bad.parent.mkdir(parents=True)
        bad.write_bytes(garbage)
        stats = cache.stats()
        assert stats.unreadable_entries == 1
        assert stats.unreadable_bytes == len(garbage)
        # total includes the dead weight; the workload map never does
        assert stats.total_bytes == \
            stats.unreadable_bytes + sum(b for _, b in
                                         stats.workloads.values())
        assert set(stats.workloads) == {"swim"}

    def test_unreadable_bucket_in_format(self, tmp_path):
        cache = populated_cache(tmp_path, benchmarks=("swim",))
        bad = cache.cache_dir / "zz" / ("0" * 64 + ".pkl")
        bad.parent.mkdir(parents=True)
        bad.write_bytes(b"x" * 2048)
        report = cache.stats().format()
        assert "unreadable (corrupt/foreign/outdated schema)" in report
        assert "2.0 KiB" in report
        assert "dead weight" in report

    def test_outdated_schema_entry_lands_in_unreadable_bucket(self,
                                                              tmp_path):
        """A structurally valid pickle from an older schema version can
        never be served again: it is dead weight, same as corruption."""
        cache = populated_cache(tmp_path, benchmarks=("swim",))
        stale = cache.cache_dir / "ff" / ("f" * 64 + ".pkl")
        stale.parent.mkdir(parents=True)
        stale.write_bytes(pickle.dumps({"schema": 1, "stats": None,
                                        "point": ("swim", "conv", 48)}))
        stats = cache.stats()
        assert stats.unreadable_entries == 1
        assert stats.unreadable_bytes == stale.stat().st_size

    def test_clean_cache_format_has_no_unreadable_line(self, tmp_path):
        cache = populated_cache(tmp_path, benchmarks=("swim",))
        assert "unreadable" not in cache.stats().format()

    def test_empty_cache(self, tmp_path):
        stats = SweepCache(tmp_path / "missing").stats()
        assert stats.total_entries == 0
        assert "entries: 0" in stats.format()


class TestPrune:
    def test_prune_requires_a_criterion(self, tmp_path):
        with pytest.raises(ValueError):
            SweepCache(tmp_path).prune()

    def test_prune_by_age(self, tmp_path):
        cache = populated_cache(tmp_path, benchmarks=("swim",))
        assert cache.prune(max_age_days=1) == 0
        future = time.time() + 7 * 86400
        assert cache.prune(max_age_days=1, now=future) == 1
        assert cache.stats().total_entries == 0

    def test_prune_by_stale_code(self, tmp_path, monkeypatch):
        import repro.analysis.cache as cache_module

        cache = populated_cache(tmp_path, benchmarks=("swim",))
        assert cache.prune(stale_code=True) == 0
        # Pretend the simulator source changed since the entry was written.
        monkeypatch.setattr(cache_module, "code_digest",
                            lambda: "new-code-version")
        assert cache.stats().stale_code_entries == 1
        assert cache.prune(stale_code=True) == 1

    def test_prune_drops_unreadable_and_old_schema_entries(self, tmp_path):
        cache = populated_cache(tmp_path, benchmarks=("swim",))
        point = SweepPoint("swim", "conv", 48)
        path = cache.path_for(tiny_config(), point)
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        payload["schema"] = 1                     # previous schema version
        with open(path, "wb") as handle:
            pickle.dump(payload, handle)
        assert cache.prune(stale_code=True) == 1
        assert cache.stats().total_entries == 0


class TestPruneToSize:
    def _set_created(self, cache, config, point, created):
        path = cache.path_for(config, point)
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        payload["created"] = created
        with open(path, "wb") as handle:
            pickle.dump(payload, handle)

    def test_no_eviction_when_under_cap(self, tmp_path):
        cache = populated_cache(tmp_path)
        report = cache.prune_to_size(1024)
        assert report.removed == 0
        assert report.per_workload == {}
        assert cache.stats().total_entries == 2

    def test_evicts_oldest_first_until_under_cap(self, tmp_path):
        cache = populated_cache(tmp_path, benchmarks=("swim", "gcc", "li"))
        config = tiny_config(benchmarks=("swim", "gcc", "li"))
        now = time.time()
        # li oldest, gcc next, swim newest.
        self._set_created(cache, config, SweepPoint("li", "conv", 48), now - 300)
        self._set_created(cache, config, SweepPoint("gcc", "conv", 48), now - 200)
        self._set_created(cache, config, SweepPoint("swim", "conv", 48), now - 100)
        total = cache.stats().total_bytes
        one_entry = total / 3
        # Cap that fits roughly one entry: the two oldest must go.
        report = cache.prune_to_size(one_entry * 1.5 / (1024 * 1024))
        assert report.removed == 2
        assert set(report.per_workload) == {"li", "gcc"}
        assert report.bytes_freed > 0
        remaining = cache.stats()
        assert set(remaining.workloads) == {"swim"}
        assert report.bytes_remaining == remaining.total_bytes

    def test_zero_cap_empties_the_cache_with_summary(self, tmp_path):
        cache = populated_cache(tmp_path)
        report = cache.prune_to_size(0)
        assert report.removed == 2
        assert sum(report.per_workload.values()) == 2
        assert report.bytes_remaining == 0
        assert "evicted 2 entries" in report.format()

    def test_unreadable_entries_are_evicted_first(self, tmp_path):
        cache = populated_cache(tmp_path, benchmarks=("swim",))
        bad = cache.cache_dir / "zz" / ("0" * 64 + ".pkl")
        bad.parent.mkdir(parents=True)
        bad.write_bytes(b"junk" * 10)
        total = cache.stats().total_bytes
        report = cache.prune_to_size((total - 1) / (1024 * 1024))
        assert report.per_workload.get("<unreadable>") == 1
        assert cache.stats().workloads.get("swim") is not None

    def test_rejects_negative_cap(self, tmp_path):
        with pytest.raises(ValueError):
            SweepCache(tmp_path).prune_to_size(-1)


class TestCacheSubcommand:
    def test_stats_output(self, tmp_path, capsys, monkeypatch):
        cache = populated_cache(tmp_path)
        assert runner.main(["cache", "--cache-dir",
                            str(cache.cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "entries: 2" in out and "swim" in out

    def test_prune_flow(self, tmp_path, capsys):
        cache = populated_cache(tmp_path, benchmarks=("swim",))
        assert runner.main(["cache", "--cache-dir", str(cache.cache_dir),
                            "--prune", "--stale-code"]) == 0
        assert "pruned 0 entries" in capsys.readouterr().out

    def test_prune_without_criterion_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            runner.main(["cache", "--cache-dir", str(tmp_path), "--prune"])

    def test_prune_size_cap_flow(self, tmp_path, capsys):
        cache = populated_cache(tmp_path)
        assert runner.main(["cache", "--cache-dir", str(cache.cache_dir),
                            "--prune", "--max-size-mb", "0"]) == 0
        out = capsys.readouterr().out
        assert "size cap 0 MB" in out and "evicted 2 entries" in out
        assert cache.stats().total_entries == 0

    def test_size_cap_without_prune_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            runner.main(["cache", "--cache-dir", str(tmp_path),
                         "--max-size-mb", "5"])

    def test_criteria_without_prune_error(self, tmp_path):
        with pytest.raises(SystemExit):
            runner.main(["cache", "--cache-dir", str(tmp_path),
                         "--stale-code"])

    def test_env_default_directory(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path / "envcache"))
        assert runner.main(["cache"]) == 0
        assert "envcache" in capsys.readouterr().out
