"""Tests for the sweep driver (serial path; the pool is tested separately)."""

import pytest

from repro.analysis.sweep import (SweepConfig, SweepPoint,
                                  run_simulation_point, run_sweep)
from repro.pipeline.config import ProcessorConfig

FAST = ProcessorConfig(warmup=False, enable_wrong_path=False)


@pytest.fixture(scope="module")
def tiny_sweep():
    config = SweepConfig(benchmarks=("swim", "gcc"), policies=("conv", "extended"),
                         register_sizes=(48, 96), trace_length=800,
                         base_config=FAST)
    return config, run_sweep(config, parallel=False)


class TestSweepConfig:
    def test_points_enumeration(self):
        config = SweepConfig(benchmarks=("a", "b"), policies=("conv",),
                             register_sizes=(40, 48))
        points = config.points()
        assert len(points) == 4
        assert SweepPoint("a", "conv", 40) in points

    def test_config_for_point(self):
        config = SweepConfig(benchmarks=("swim",), base_config=FAST)
        point = SweepPoint("swim", "extended", 56)
        processor_config = config.config_for(point)
        assert processor_config.release_policy == "extended"
        assert processor_config.num_physical_int == 56
        assert processor_config.num_physical_fp == 56
        assert processor_config.warmup is False       # base config preserved


class TestRunSweep:
    def test_all_points_present(self, tiny_sweep):
        config, result = tiny_sweep
        assert len(result) == len(config.points())
        for point in config.points():
            assert result.ipc(point.benchmark, point.policy, point.num_registers) > 0

    def test_stats_identify_their_point(self, tiny_sweep):
        _config, result = tiny_sweep
        stats = result.stats("gcc", "extended", 48)
        assert stats.benchmark == "gcc"
        assert stats.release_policy == "extended"

    def test_harmonic_mean_between_min_and_max(self, tiny_sweep):
        _config, result = tiny_sweep
        ipcs = [result.ipc(name, "conv", 96) for name in ("swim", "gcc")]
        hm = result.harmonic_mean_ipc(["swim", "gcc"], "conv", 96)
        assert min(ipcs) <= hm <= max(ipcs)

    def test_ipc_curve_shape(self, tiny_sweep):
        _config, result = tiny_sweep
        curve = result.ipc_curve(["swim"], "conv")
        assert [size for size, _ in curve] == [48, 96]

    def test_iso_ipc_size(self, tiny_sweep):
        _config, result = tiny_sweep
        target = result.harmonic_mean_ipc(["swim"], "conv", 48)
        needed = result.iso_ipc_size(["swim"], "extended", target)
        assert needed is not None
        assert needed <= 96

    def test_missing_point_raises_helpful_error(self, tiny_sweep):
        _config, result = tiny_sweep
        with pytest.raises(KeyError) as excinfo:
            result.stats("swim", "conv", 12345)
        message = str(excinfo.value)
        assert "swim/conv/P12345" in message
        assert "conv" in message and "extended" in message
        assert "48" in message and "96" in message

    def test_contains_probe(self, tiny_sweep):
        _config, result = tiny_sweep
        assert SweepPoint("swim", "conv", 48) in result
        assert ("swim", "conv", 48) in result
        assert ("swim", "conv", 12345) not in result
        assert ("swim", "nope", 48) not in result
        assert "not-a-point" not in result

    def test_run_simulation_point_standalone(self):
        config = SweepConfig(benchmarks=("swim",), trace_length=500,
                             base_config=FAST)
        stats = run_simulation_point(config, SweepPoint("swim", "basic", 64))
        assert stats.committed_instructions >= 500

    def test_merge_disjoint(self, tiny_sweep):
        config, result = tiny_sweep
        other_config = SweepConfig(benchmarks=("swim",), policies=("basic",),
                                   register_sizes=(48,), trace_length=800,
                                   base_config=FAST)
        other = run_sweep(other_config, parallel=False)
        merged = result.merge(other)
        assert len(merged) == len(result) + len(other)
        assert merged.ipc("swim", "basic", 48) > 0
        assert merged.ipc("gcc", "extended", 96) > 0
        assert "basic" in merged.config.policies
        assert merged.config.benchmarks == ("swim", "gcc")
        # every original point survives untouched
        for point in config.points():
            assert merged.ipc(point.benchmark, point.policy,
                              point.num_registers) == \
                result.ipc(point.benchmark, point.policy, point.num_registers)

    def test_merge_overlapping_prefers_other(self, tiny_sweep):
        config, result = tiny_sweep
        # Same grid re-run with a longer trace: every point overlaps, and
        # the merged result must carry the other sweep's statistics.
        longer_config = SweepConfig(benchmarks=config.benchmarks,
                                    policies=config.policies,
                                    register_sizes=config.register_sizes,
                                    trace_length=1_000, base_config=FAST)
        longer = run_sweep(longer_config, parallel=False)
        merged = result.merge(longer)
        assert len(merged) == len(result)
        assert merged.points() and set(merged.points()) == set(result.points())
        for point in config.points():
            assert merged.stats(point.benchmark, point.policy,
                                point.num_registers) is \
                longer.stats(point.benchmark, point.policy, point.num_registers)

    def test_merge_keeps_size_and_policy_union_sorted(self, tiny_sweep):
        _config, result = tiny_sweep
        other_config = SweepConfig(benchmarks=("li",), policies=("basic",),
                                   register_sizes=(64,), trace_length=800,
                                   base_config=FAST)
        other = run_sweep(other_config, parallel=False)
        merged = result.merge(other)
        assert merged.config.register_sizes == (48, 64, 96)
        assert set(merged.config.policies) == {"conv", "extended", "basic"}
