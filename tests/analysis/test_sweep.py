"""Tests for the sweep driver (serial path; the pool is tested separately)."""

import pytest

from repro.analysis.sweep import (SweepConfig, SweepPoint, SweepResult,
                                  run_simulation_point, run_sweep)
from repro.pipeline.config import ProcessorConfig

FAST = ProcessorConfig(warmup=False, enable_wrong_path=False)


@pytest.fixture(scope="module")
def tiny_sweep():
    config = SweepConfig(benchmarks=("swim", "gcc"), policies=("conv", "extended"),
                         register_sizes=(48, 96), trace_length=800,
                         base_config=FAST)
    return config, run_sweep(config, parallel=False)


class TestSweepConfig:
    def test_points_enumeration(self):
        config = SweepConfig(benchmarks=("a", "b"), policies=("conv",),
                             register_sizes=(40, 48))
        points = config.points()
        assert len(points) == 4
        assert SweepPoint("a", "conv", 40) in points

    def test_config_for_point(self):
        config = SweepConfig(benchmarks=("swim",), base_config=FAST)
        point = SweepPoint("swim", "extended", 56)
        processor_config = config.config_for(point)
        assert processor_config.release_policy == "extended"
        assert processor_config.num_physical_int == 56
        assert processor_config.num_physical_fp == 56
        assert processor_config.warmup is False       # base config preserved


class TestRunSweep:
    def test_all_points_present(self, tiny_sweep):
        config, result = tiny_sweep
        assert len(result) == len(config.points())
        for point in config.points():
            assert result.ipc(point.benchmark, point.policy, point.num_registers) > 0

    def test_stats_identify_their_point(self, tiny_sweep):
        _config, result = tiny_sweep
        stats = result.stats("gcc", "extended", 48)
        assert stats.benchmark == "gcc"
        assert stats.release_policy == "extended"

    def test_harmonic_mean_between_min_and_max(self, tiny_sweep):
        _config, result = tiny_sweep
        ipcs = [result.ipc(name, "conv", 96) for name in ("swim", "gcc")]
        hm = result.harmonic_mean_ipc(["swim", "gcc"], "conv", 96)
        assert min(ipcs) <= hm <= max(ipcs)

    def test_ipc_curve_shape(self, tiny_sweep):
        _config, result = tiny_sweep
        curve = result.ipc_curve(["swim"], "conv")
        assert [size for size, _ in curve] == [48, 96]

    def test_iso_ipc_size(self, tiny_sweep):
        _config, result = tiny_sweep
        target = result.harmonic_mean_ipc(["swim"], "conv", 48)
        needed = result.iso_ipc_size(["swim"], "extended", target)
        assert needed is not None
        assert needed <= 96

    def test_missing_point_raises(self, tiny_sweep):
        _config, result = tiny_sweep
        with pytest.raises(KeyError):
            result.stats("swim", "conv", 12345)

    def test_run_simulation_point_standalone(self):
        config = SweepConfig(benchmarks=("swim",), trace_length=500,
                             base_config=FAST)
        stats = run_simulation_point(config, SweepPoint("swim", "basic", 64))
        assert stats.committed_instructions >= 500

    def test_merge(self, tiny_sweep):
        config, result = tiny_sweep
        other_config = SweepConfig(benchmarks=("swim",), policies=("basic",),
                                   register_sizes=(48,), trace_length=800,
                                   base_config=FAST)
        other = run_sweep(other_config, parallel=False)
        merged = result.merge(other)
        assert merged.ipc("swim", "basic", 48) > 0
        assert merged.ipc("gcc", "extended", 96) > 0
        assert "basic" in merged.config.policies
