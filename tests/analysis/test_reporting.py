"""Tests for the plain-text table/series/chart renderers."""

from repro.analysis.reporting import (ascii_bar_chart, format_percent,
                                      format_series, format_table)


class TestFormatTable:
    def test_headers_and_rows_present(self):
        text = format_table(["name", "ipc"], [["swim", 2.345], ["gcc", 1.5]])
        assert "name" in text and "swim" in text and "2.345" in text

    def test_title_underlined(self):
        text = format_table(["a"], [[1]], title="My Table")
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert set(lines[1]) == {"="}

    def test_float_digits(self):
        text = format_table(["x"], [[1.23456]], float_digits=1)
        assert "1.2" in text and "1.2345" not in text

    def test_column_alignment(self):
        text = format_table(["col", "value"], [["a", 1], ["longer", 2]])
        lines = text.splitlines()
        assert len(lines[-1]) == len(lines[-2])

    def test_non_float_cells_stringified(self):
        text = format_table(["a"], [[None], [True]])
        assert "None" in text and "True" in text


class TestFormatSeries:
    def test_series_merged_on_x(self):
        series = {"conv": [(40, 1.0), (48, 1.2)], "ext": [(40, 1.1), (48, 1.3)]}
        text = format_series(series, "registers", "IPC")
        assert "conv IPC" in text and "ext IPC" in text
        assert "40" in text and "1.3" in text

    def test_empty_series(self):
        assert format_series({}, "x", "y", title="nothing") == "nothing"


class TestAsciiBarChart:
    def test_bars_scale_with_values(self):
        chart = ascii_bar_chart({"a": 10.0, "b": 5.0}, width=10)
        lines = chart.splitlines()
        bar_a = lines[0].count("#")
        bar_b = lines[1].count("#")
        assert bar_a == 10 and bar_b == 5

    def test_title_and_units(self):
        chart = ascii_bar_chart({"x": 1.0}, title="Chart", unit=" regs")
        assert chart.startswith("Chart")
        assert "regs" in chart

    def test_empty_chart(self):
        assert ascii_bar_chart({}, title="t") == "t"

    def test_zero_values(self):
        chart = ascii_bar_chart({"a": 0.0, "b": 0.0})
        assert "#" not in chart


class TestFormatPercent:
    def test_sign_included(self):
        assert format_percent(6.24) == "+6.2%"
        assert format_percent(-3.0) == "-3.0%"
        assert format_percent(0.0) == "+0.0%"
