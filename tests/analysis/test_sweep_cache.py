"""Tests for the persistent sweep result cache."""

import dataclasses
import pickle

import pytest

from repro.analysis.cache import (CACHE_SCHEMA_VERSION, SweepCache,
                                  config_digest, point_key, resolve_cache)
from repro.analysis.sweep import SweepConfig, SweepPoint, run_sweep
from repro.pipeline.config import ProcessorConfig

FAST = ProcessorConfig(warmup=False, enable_wrong_path=False)


def tiny_config(**kwargs):
    defaults = dict(benchmarks=("swim",), policies=("conv",),
                    register_sizes=(48,), trace_length=400, base_config=FAST)
    defaults.update(kwargs)
    return SweepConfig(**defaults)


class TestKeys:
    def test_config_digest_is_stable(self):
        assert config_digest(FAST) == config_digest(
            ProcessorConfig(warmup=False, enable_wrong_path=False))

    def test_config_digest_sees_every_knob(self):
        base = config_digest(FAST)
        assert config_digest(dataclasses.replace(FAST, ros_size=64)) != base
        assert config_digest(dataclasses.replace(FAST, release_policy="basic")) != base
        assert config_digest(dataclasses.replace(FAST, seed=7)) != base

    def test_point_key_includes_simulator_code_digest(self, monkeypatch):
        # A simulator source change must invalidate every cached point,
        # even when SimStats keeps its shape (no schema bump).
        import repro.analysis.cache as cache_module

        config = tiny_config()
        point = SweepPoint("swim", "conv", 48)
        before = point_key(config, point)
        monkeypatch.setattr(cache_module, "code_digest",
                            lambda: "different-code-version")
        assert point_key(config, point) != before

    def test_code_digest_is_cached_and_stable(self):
        from repro.analysis.cache import code_digest

        assert code_digest() == code_digest()
        assert len(code_digest()) == 64

    def test_point_key_depends_on_all_inputs(self):
        config = tiny_config()
        point = SweepPoint("swim", "conv", 48)
        base = point_key(config, point)
        assert point_key(config, SweepPoint("gcc", "conv", 48)) != base
        assert point_key(config, SweepPoint("swim", "basic", 48)) != base
        assert point_key(config, SweepPoint("swim", "conv", 96)) != base
        assert point_key(tiny_config(trace_length=800), point) != base
        assert point_key(tiny_config(seed=3), point) != base


class TestSweepCacheStore:
    def test_roundtrip(self, tmp_path):
        cache = SweepCache(tmp_path)
        config = tiny_config()
        point = SweepPoint("swim", "conv", 48)
        assert cache.get(config, point) is None
        from repro.analysis.sweep import run_simulation_point
        stats = run_simulation_point(config, point)
        cache.put(config, point, stats)
        assert (config, point) in cache
        loaded = cache.get(config, point)
        assert dataclasses.asdict(loaded) == dataclasses.asdict(stats)
        assert cache.hits == 1 and cache.misses == 1 and cache.stores == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = SweepCache(tmp_path)
        config = tiny_config()
        point = SweepPoint("swim", "conv", 48)
        path = cache.path_for(config, point)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle")
        assert cache.get(config, point) is None

    def test_foreign_pickle_is_a_miss(self, tmp_path):
        # An entry that unpickles to something other than our payload dict
        # (legacy format, another tool) must be a miss, not a crash.
        cache = SweepCache(tmp_path)
        config = tiny_config()
        point = SweepPoint("swim", "conv", 48)
        path = cache.path_for(config, point)
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps([1, 2, 3]))
        assert cache.get(config, point) is None

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        cache = SweepCache(tmp_path)
        config = tiny_config()
        point = SweepPoint("swim", "conv", 48)
        path = cache.path_for(config, point)
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps({"schema": CACHE_SCHEMA_VERSION + 1,
                                       "stats": None}))
        assert cache.get(config, point) is None

    def test_unwritable_cache_degrades_instead_of_crashing(self, tmp_path):
        # An unwritable cache location must not discard completed
        # simulation work.  (A regular file as cache root fails mkdir even
        # for root, unlike permission bits.)
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        cache = SweepCache(blocker)
        config = tiny_config()
        result = run_sweep(config, parallel=False, cache=cache)
        assert result.simulated == 1
        assert cache.store_errors == 1 and cache.stores == 0

    def test_clear(self, tmp_path):
        cache = SweepCache(tmp_path)
        config = tiny_config()
        point = SweepPoint("swim", "conv", 48)
        from repro.analysis.sweep import run_simulation_point
        cache.put(config, point, run_simulation_point(config, point))
        assert cache.clear() == 1
        assert cache.get(config, point) is None

    def test_resolve_cache_forms(self, tmp_path):
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None
        as_path = resolve_cache(tmp_path)
        assert isinstance(as_path, SweepCache)
        assert as_path.cache_dir == tmp_path
        instance = SweepCache(tmp_path)
        assert resolve_cache(instance) is instance


class TestCachedRunSweep:
    def test_second_run_performs_zero_simulations(self, tmp_path):
        config = tiny_config(benchmarks=("swim", "gcc"),
                             policies=("conv", "extended"),
                             register_sizes=(48, 96))
        first = run_sweep(config, parallel=False, cache=tmp_path)
        assert first.simulated == len(config.points())
        assert first.cached == 0
        second = run_sweep(config, parallel=False, cache=tmp_path)
        assert second.simulated == 0
        assert second.cached == len(config.points())
        for point in config.points():
            assert second.ipc(point.benchmark, point.policy,
                              point.num_registers) == \
                first.ipc(point.benchmark, point.policy, point.num_registers)

    def test_partial_sweep_only_simulates_missing_points(self, tmp_path):
        small = tiny_config(register_sizes=(48,))
        run_sweep(small, parallel=False, cache=tmp_path)
        larger = tiny_config(register_sizes=(48, 64, 96))
        result = run_sweep(larger, parallel=False, cache=tmp_path)
        assert result.cached == 1
        assert result.simulated == 2

    def test_cache_shared_by_parallel_path(self, tmp_path):
        config = tiny_config(benchmarks=("swim", "gcc"),
                             register_sizes=(48, 96))
        warm = run_sweep(config, parallel=True, max_workers=2, cache=tmp_path)
        assert warm.simulated == 4
        again = run_sweep(config, parallel=True, max_workers=2, cache=tmp_path)
        assert again.simulated == 0

    def test_interrupted_sweep_keeps_completed_points(self, tmp_path,
                                                      monkeypatch):
        # A crash mid-sweep must not discard points already simulated: the
        # re-run should only simulate what is genuinely missing.
        import repro.analysis.sweep as sweep_module

        config = tiny_config(register_sizes=(48, 64, 96))
        real = sweep_module.run_simulation_point
        calls = []

        def dies_on_third(sweep_config, point):
            calls.append(point)
            if len(calls) == 3:
                raise RuntimeError("simulated crash")
            return real(sweep_config, point)

        monkeypatch.setattr(sweep_module, "run_simulation_point", dies_on_third)
        with pytest.raises(RuntimeError, match="simulated crash"):
            run_sweep(config, parallel=False, cache=tmp_path)
        monkeypatch.setattr(sweep_module, "run_simulation_point", real)
        resumed = run_sweep(config, parallel=False, cache=tmp_path)
        assert resumed.cached == 2
        assert resumed.simulated == 1

    def test_uncached_run_is_unaffected(self):
        config = tiny_config()
        result = run_sweep(config, parallel=False, cache=None)
        assert result.simulated == 1
        assert result.cached == 0
