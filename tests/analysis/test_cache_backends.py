"""Backend-contract suite for the pluggable sweep-cache storage layer.

Every backend (local directory, remote HTTP, tiered composition) must
honour the same contract: get/put round-trips, ``None``/``False`` on
failure (never an exception), idempotent concurrent puts, degradation
with a surfaced reason when a remote becomes unreachable, and — for the
tiered composition — write-through consistency once a remote recovers,
plus the integrity property that a value is *never* served unless it
verifies against its point key and content digest.

The remote side is a controllable in-process HTTP store
(:class:`FakeRemoteStore`) whose failure mode can be toggled per test,
so retry/degradation/recovery are driven deterministically (with the
injectable clock/sleep hooks, no real waiting).
"""

from __future__ import annotations

import http.server
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.backends import (
    CACHE_BACKEND_ENV,
    HTTPCacheBackend,
    LocalDirBackend,
    TieredBackend,
    resolve_backend,
    unwrap_envelope,
    wrap_envelope,
)

KEY_A = "a" * 64
KEY_B = "b" * 64


class FakeRemoteStore:
    """A tiny in-process ``/v1/cache`` remote with a failure toggle.

    ``mode`` is ``"ok"`` (normal store), ``"error"`` (every request is a
    500 — an unhealthy remote) or ``"hang"`` is deliberately absent:
    timeouts are exercised against a connection-refused port instead,
    which fails just as a dead host does but without slow tests.
    """

    def __init__(self):
        self.blobs = {}
        self.mode = "ok"
        self.requests = 0
        store = self

        class Handler(http.server.BaseHTTPRequestHandler):
            def log_message(self, *args):
                pass

            def _key(self):
                return self.path.rsplit("/", 1)[-1]

            def do_GET(self):
                store.requests += 1
                if store.mode == "error":
                    self.send_error(500)
                    return
                blob = store.blobs.get(self._key())
                if blob is None:
                    self.send_error(404)
                    return
                self.send_response(200)
                self.send_header("Content-Length", str(len(blob)))
                self.end_headers()
                self.wfile.write(blob)

            def do_PUT(self):
                store.requests += 1
                if store.mode == "error":
                    self.send_error(500)
                    return
                length = int(self.headers.get("Content-Length", "0"))
                store.blobs[self._key()] = self.rfile.read(length)
                self.send_response(204)
                self.send_header("Content-Length", "0")
                self.end_headers()

        self.server = http.server.ThreadingHTTPServer(("127.0.0.1", 0),
                                                      Handler)
        self.thread = threading.Thread(target=self.server.serve_forever,
                                       daemon=True)
        self.thread.start()
        self.url = f"http://127.0.0.1:{self.server.server_address[1]}"

    def close(self):
        self.server.shutdown()
        self.server.server_close()
        self.thread.join(timeout=10)


@pytest.fixture
def remote_store():
    store = FakeRemoteStore()
    yield store
    store.close()


def make_http_backend(url, **overrides):
    """An HTTP backend with fast, injectable timing for tests."""
    options = dict(timeout=5.0, retries=1, backoff=0.0,
                   recovery_interval=30.0, _sleep=lambda seconds: None)
    options.update(overrides)
    return HTTPCacheBackend(url, **options)


# ----------------------------------------------------------------------
# The shared contract, run against all three backends.
# ----------------------------------------------------------------------
@pytest.fixture(params=["local", "http", "tiered"])
def backend(request, tmp_path, remote_store):
    if request.param == "local":
        return LocalDirBackend(tmp_path / "store")
    if request.param == "http":
        return make_http_backend(remote_store.url)
    return TieredBackend(LocalDirBackend(tmp_path / "store"),
                         make_http_backend(remote_store.url))


class TestBackendContract:
    def test_get_put_round_trip(self, backend):
        payload = b"pickled sweep result bytes"
        assert backend.get_blob(KEY_A) is None
        assert backend.put_blob(KEY_A, payload) is True
        assert backend.get_blob(KEY_A) == payload

    def test_keys_are_independent(self, backend):
        backend.put_blob(KEY_A, b"alpha")
        backend.put_blob(KEY_B, b"beta")
        assert backend.get_blob(KEY_A) == b"alpha"
        assert backend.get_blob(KEY_B) == b"beta"

    def test_overwrite_is_last_writer_wins(self, backend):
        backend.put_blob(KEY_A, b"first")
        backend.put_blob(KEY_A, b"second")
        assert backend.get_blob(KEY_A) == b"second"

    def test_concurrent_identical_puts_are_idempotent(self, backend):
        """Racing writers of the same entry (sweep shards finishing the
        same point on two machines) must all succeed and leave the
        payload intact — no torn or interleaved bytes."""
        payload = b"x" * 4096
        failures = []

        def put():
            if not backend.put_blob(KEY_A, payload):
                failures.append(True)

        threads = [threading.Thread(target=put) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        assert backend.get_blob(KEY_A) == payload

    def test_healthy_backend_reports_no_degradation(self, backend):
        backend.put_blob(KEY_A, b"payload")
        backend.get_blob(KEY_A)
        assert backend.degradation_reason() is None


# ----------------------------------------------------------------------
# Local backend specifics.
# ----------------------------------------------------------------------
class TestLocalDirBackend:
    def test_layout_matches_the_historical_cache(self, tmp_path):
        backend = LocalDirBackend(tmp_path)
        backend.put_blob(KEY_A, b"payload")
        assert (tmp_path / KEY_A[:2] / f"{KEY_A}.pkl").read_bytes() == \
            b"payload"

    def test_local_dir_exposed_for_maintenance(self, tmp_path):
        assert LocalDirBackend(tmp_path).local_dir == tmp_path

    def test_unwritable_dir_returns_false_not_raise(self, tmp_path):
        target = tmp_path / "blocked"
        target.write_text("a file where the store dir should be")
        backend = LocalDirBackend(target)
        assert backend.put_blob(KEY_A, b"payload") is False
        assert backend.get_blob(KEY_A) is None


# ----------------------------------------------------------------------
# HTTP backend: misses, retries, degradation, recovery.
# ----------------------------------------------------------------------
class TestHTTPCacheBackend:
    def test_miss_is_not_a_fault(self, remote_store):
        backend = make_http_backend(remote_store.url)
        assert backend.get_blob(KEY_A) is None
        assert backend.degradation_reason() is None
        assert backend.remote_misses == 1

    def test_unreachable_remote_degrades_with_reason(self):
        # A refused connection (no listener) fails exactly like a dead
        # host, without tying the test to real timeouts.
        backend = make_http_backend("http://127.0.0.1:9")
        assert backend.get_blob(KEY_A) is None
        reason = backend.degradation_reason()
        assert reason is not None
        assert "unreachable" in reason and "local-only" in reason
        assert "127.0.0.1:9" in reason

    def test_server_errors_retry_then_degrade(self, remote_store):
        remote_store.mode = "error"
        sleeps = []
        backend = make_http_backend(remote_store.url, retries=2,
                                    backoff=0.2, _sleep=sleeps.append)
        assert backend.get_blob(KEY_A) is None
        assert remote_store.requests == 3          # initial + 2 retries
        assert sleeps == [0.2, 0.4]                # exponential backoff
        assert "HTTP 500" in backend.degradation_reason()

    def test_degraded_backend_short_circuits(self, remote_store):
        remote_store.mode = "error"
        backend = make_http_backend(remote_store.url, retries=0)
        backend.get_blob(KEY_A)
        seen = remote_store.requests
        for _ in range(5):
            assert backend.get_blob(KEY_A) is None
            assert backend.put_blob(KEY_A, b"data") is False
        assert remote_store.requests == seen       # no further traffic

    def test_recovery_after_interval(self, remote_store):
        clock = [0.0]
        remote_store.mode = "error"
        backend = make_http_backend(remote_store.url, retries=0,
                                    recovery_interval=30.0,
                                    _clock=lambda: clock[0])
        backend.get_blob(KEY_A)
        assert backend.degradation_reason() is not None

        remote_store.mode = "ok"
        clock[0] = 10.0                            # interval not elapsed
        remote_store.blobs[KEY_A] = b"payload"
        assert backend.get_blob(KEY_A) is None     # still short-circuited

        clock[0] = 31.0                            # interval elapsed: probe
        assert backend.get_blob(KEY_A) == b"payload"
        assert backend.degradation_reason() is None

    def test_still_down_remote_redegrades_quietly(self, remote_store):
        clock = [0.0]
        remote_store.mode = "error"
        backend = make_http_backend(remote_store.url, retries=0,
                                    recovery_interval=30.0,
                                    _clock=lambda: clock[0])
        backend.get_blob(KEY_A)
        clock[0] = 31.0
        assert backend.get_blob(KEY_A) is None     # probe fails
        assert backend.degradation_reason() is not None
        seen = remote_store.requests
        clock[0] = 40.0                            # interval restarted
        backend.get_blob(KEY_A)
        assert remote_store.requests == seen

    def test_put_round_trips_raw_bytes(self, remote_store):
        backend = make_http_backend(remote_store.url)
        assert backend.put_blob(KEY_A, b"\x00\xffraw") is True
        assert backend.get_blob(KEY_A) == b"\x00\xffraw"
        assert backend.remote_hits == 1

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError):
            HTTPCacheBackend("http://127.0.0.1:9", retries=-1)


# ----------------------------------------------------------------------
# Tiered backend: write-through, degradation, recovery consistency.
# ----------------------------------------------------------------------
def make_tiered(tmp_path, remote_store, **http_overrides):
    return TieredBackend(LocalDirBackend(tmp_path / "local"),
                         make_http_backend(remote_store.url,
                                           **http_overrides))


class TestTieredBackend:
    def test_put_writes_envelope_to_remote(self, tmp_path, remote_store):
        tiered = make_tiered(tmp_path, remote_store)
        tiered.put_blob(KEY_A, b"payload")
        assert tiered.local.get_blob(KEY_A) == b"payload"
        assert unwrap_envelope(KEY_A, remote_store.blobs[KEY_A]) == b"payload"

    def test_remote_hit_written_through_to_local(self, tmp_path,
                                                 remote_store):
        remote_store.blobs[KEY_A] = wrap_envelope(KEY_A, b"payload")
        tiered = make_tiered(tmp_path, remote_store)
        assert tiered.get_blob(KEY_A) == b"payload"
        assert tiered.remote_serves == 1
        # second read is served locally, no remote round trip
        seen = remote_store.requests
        assert tiered.get_blob(KEY_A) == b"payload"
        assert remote_store.requests == seen
        assert tiered.local_serves == 1

    def test_local_read_preferred_over_remote(self, tmp_path, remote_store):
        tiered = make_tiered(tmp_path, remote_store)
        tiered.local.put_blob(KEY_A, b"local copy")
        remote_store.blobs[KEY_A] = wrap_envelope(KEY_A, b"remote copy")
        assert tiered.get_blob(KEY_A) == b"local copy"

    def test_remote_outage_degrades_but_serves_local(self, tmp_path,
                                                     remote_store):
        tiered = make_tiered(tmp_path, remote_store, retries=0)
        tiered.put_blob(KEY_A, b"payload")
        remote_store.mode = "error"
        assert tiered.get_blob(KEY_A) == b"payload"    # local, no remote
        assert tiered.get_blob(KEY_B) is None          # miss degrades
        assert tiered.degradation_reason() is not None
        # writes keep succeeding against the local source of truth
        assert tiered.put_blob(KEY_B, b"new payload") is True
        assert tiered.get_blob(KEY_B) == b"new payload"

    def test_write_through_consistency_after_recovery(self, tmp_path,
                                                      remote_store):
        """Entries written during an outage reach the remote once it is
        back: a fresh node (empty local layer) sees the same bytes."""
        clock = [0.0]
        tiered = make_tiered(tmp_path, remote_store, retries=0,
                             recovery_interval=30.0,
                             _clock=lambda: clock[0])
        remote_store.mode = "error"
        tiered.put_blob(KEY_A, b"written during outage")
        assert KEY_A not in remote_store.blobs
        assert tiered.degradation_reason() is not None

        remote_store.mode = "ok"
        clock[0] = 31.0
        tiered.put_blob(KEY_A, b"written during outage")   # re-sync
        assert tiered.degradation_reason() is None
        fresh_node = TieredBackend(
            LocalDirBackend(tmp_path / "fresh"),
            make_http_backend(remote_store.url))
        assert fresh_node.get_blob(KEY_A) == b"written during outage"

    def test_corrupt_remote_blob_rejected_not_served(self, tmp_path,
                                                     remote_store):
        envelope = bytearray(wrap_envelope(KEY_A, b"payload"))
        envelope[-1] ^= 0x01                       # flip one payload bit
        remote_store.blobs[KEY_A] = bytes(envelope)
        tiered = make_tiered(tmp_path, remote_store)
        assert tiered.get_blob(KEY_A) is None
        assert tiered.remote_rejects == 1
        assert tiered.local.get_blob(KEY_A) is None    # never written through

    def test_misrouted_remote_blob_rejected(self, tmp_path, remote_store):
        remote_store.blobs[KEY_A] = wrap_envelope(KEY_B, b"other point")
        tiered = make_tiered(tmp_path, remote_store)
        assert tiered.get_blob(KEY_A) is None
        assert tiered.remote_rejects == 1

    def test_local_dir_is_the_local_layers(self, tmp_path, remote_store):
        tiered = make_tiered(tmp_path, remote_store)
        assert tiered.local_dir == tmp_path / "local"


class TestTieredIntegrityProperty:
    """The required property: a tiered backend never serves a value whose
    point key does not verify against its content digest — whatever bytes
    a (hostile, corrupt, confused) remote returns."""

    @settings(max_examples=200, deadline=None)
    @given(blob=st.binary(max_size=300))
    def test_arbitrary_remote_bytes_never_served(self, blob):
        served = unwrap_envelope(KEY_A, blob)
        if served is not None:
            # Only a well-formed envelope for exactly this key verifies;
            # then the digest must match the body by construction.
            assert wrap_envelope(KEY_A, served) == blob

    @settings(max_examples=100, deadline=None)
    @given(body=st.binary(max_size=200),
           flip=st.integers(min_value=0, max_value=10_000))
    def test_any_single_byte_corruption_is_rejected(self, body, flip):
        envelope = bytearray(wrap_envelope(KEY_A, body))
        index = flip % len(envelope)
        envelope[index] ^= 0xFF
        assert unwrap_envelope(KEY_A, bytes(envelope)) is None

    @settings(max_examples=100, deadline=None)
    @given(body=st.binary(max_size=200))
    def test_round_trip_always_verifies(self, body):
        assert unwrap_envelope(KEY_A, wrap_envelope(KEY_A, body)) == body

    @settings(max_examples=100, deadline=None)
    @given(body=st.binary(max_size=200))
    def test_wrong_key_never_verifies(self, body):
        assert unwrap_envelope(KEY_B, wrap_envelope(KEY_A, body)) is None


class TestEnvelope:
    def test_rejects_short_blob(self):
        assert unwrap_envelope(KEY_A, b"RSB1short") is None

    def test_rejects_none(self):
        assert unwrap_envelope(KEY_A, None) is None

    def test_rejects_foreign_magic(self):
        blob = b"PK\x03\x04" + b"\x00" * 200
        assert unwrap_envelope(KEY_A, blob) is None

    def test_wrap_requires_full_length_key(self):
        with pytest.raises(ValueError):
            wrap_envelope("abc", b"payload")


# ----------------------------------------------------------------------
# Spec resolution.
# ----------------------------------------------------------------------
class TestResolveBackend:
    def test_local_spec(self, tmp_path):
        backend = resolve_backend("local", cache_dir=tmp_path)
        assert isinstance(backend, LocalDirBackend)
        assert backend.cache_dir == tmp_path

    def test_http_spec_is_tiered(self, tmp_path):
        backend = resolve_backend("http://127.0.0.1:9", cache_dir=tmp_path)
        assert isinstance(backend, TieredBackend)
        assert isinstance(backend.local, LocalDirBackend)
        assert isinstance(backend.remote, HTTPCacheBackend)
        assert backend.local_dir == tmp_path

    def test_remote_spec_is_pure_http(self, tmp_path):
        backend = resolve_backend("remote:http://127.0.0.1:9",
                                  cache_dir=tmp_path)
        assert isinstance(backend, HTTPCacheBackend)
        assert backend.local_dir is None

    def test_empty_spec_reads_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_BACKEND_ENV, "http://127.0.0.1:9")
        backend = resolve_backend(None, cache_dir=tmp_path)
        assert isinstance(backend, TieredBackend)

    def test_environment_defaults_to_local(self, tmp_path, monkeypatch):
        monkeypatch.delenv(CACHE_BACKEND_ENV, raising=False)
        assert isinstance(resolve_backend(None, cache_dir=tmp_path),
                          LocalDirBackend)

    def test_unknown_spec_is_an_error(self, tmp_path):
        with pytest.raises(ValueError):
            resolve_backend("ftp://files", cache_dir=tmp_path)

    def test_remote_spec_requires_http_url(self, tmp_path):
        with pytest.raises(ValueError):
            resolve_backend("remote:files", cache_dir=tmp_path)

    def test_http_options_forwarded(self, tmp_path):
        backend = resolve_backend("remote:http://127.0.0.1:9",
                                  cache_dir=tmp_path,
                                  timeout=1.5, retries=7)
        assert backend.timeout == 1.5
        assert backend.retries == 7
