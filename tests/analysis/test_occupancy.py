"""Tests for the Figure 3 occupancy helpers."""

import pytest

from repro.analysis.occupancy import (OccupancyRow, idle_overhead_percent,
                                      mean_row, occupancy_breakdown)
from repro.core.register_state import OccupancyAverages
from repro.pipeline.stats import RegisterFileStats, SimStats


def make_stats(benchmark="swim", empty=10.0, ready=30.0, idle=5.0, focus="fp"):
    file_stats = RegisterFileStats(occupancy=OccupancyAverages(empty, ready, idle))
    stats = SimStats(benchmark=benchmark)
    if focus == "fp":
        stats.fp_registers = file_stats
    else:
        stats.int_registers = file_stats
    return stats


class TestOccupancyRow:
    def test_derived_quantities(self):
        row = OccupancyRow("swim", "fp", empty=10.0, ready=30.0, idle=8.0)
        assert row.allocated == pytest.approx(48.0)
        assert row.used == pytest.approx(40.0)
        assert row.idle_overhead_percent == pytest.approx(20.0)

    def test_zero_used(self):
        row = OccupancyRow("x", "int", 0.0, 0.0, 5.0)
        assert row.idle_overhead_percent == 0.0


class TestBreakdown:
    def test_extracts_focus_file(self):
        row = occupancy_breakdown(make_stats(), "fp")
        assert row.benchmark == "swim"
        assert row.ready == pytest.approx(30.0)

    def test_int_focus(self):
        row = occupancy_breakdown(make_stats(benchmark="gcc", focus="int"), "int")
        assert row.register_class == "int"
        assert row.empty == pytest.approx(10.0)

    def test_missing_occupancy_defaults_to_zero(self):
        stats = SimStats(benchmark="x")
        row = occupancy_breakdown(stats, "int")
        assert row.allocated == 0.0


class TestAggregation:
    def test_mean_row(self):
        rows = [OccupancyRow("a", "int", 10, 20, 10),
                OccupancyRow("b", "int", 20, 40, 20)]
        mean = mean_row(rows)
        assert mean.benchmark == "Amean"
        assert mean.empty == pytest.approx(15.0)
        assert mean.idle == pytest.approx(15.0)

    def test_mean_row_rejects_empty(self):
        with pytest.raises(ValueError):
            mean_row([])

    def test_idle_overhead_percent_matches_paper_definition(self):
        # idle / (empty + ready) over the suite means.
        rows = [OccupancyRow("a", "int", 10, 20, 15),
                OccupancyRow("b", "int", 10, 20, 12)]
        assert idle_overhead_percent(rows) == pytest.approx(100 * 13.5 / 30.0)
