"""Tests for the trace-driven fetch unit (prediction, grouping, wrong path)."""

import pytest

from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.fetch import FetchUnit
from repro.frontend.gshare import GsharePredictor
from repro.isa import InstructionBuilder, RegClass
from repro.trace.records import Trace
from repro.trace.wrongpath import WrongPathGenerator, WrongPathMix


def make_fetch_unit(trace, memory=None, wrongpath=None, **kwargs):
    predictor = GsharePredictor(history_bits=8, initial_counter=2)
    btb = BranchTargetBuffer(entries=64, associativity=2)
    return FetchUnit(trace, predictor, btb, memory, wrongpath, **kwargs)


def straightline(n=20):
    builder = InstructionBuilder()
    for i in range(n):
        builder.alu(dest=1 + i % 8, srcs=(2,))
    return Trace(name="fetch-test", focus_class=RegClass.INT,
                 instructions=builder.trace())


def trace_with_branch(taken: bool):
    builder = InstructionBuilder()
    builder.alu(dest=1, srcs=(2,))
    builder.branch(taken=taken, target=0x8000, srcs=(1,))
    for i in range(10):
        builder.alu(dest=2 + i % 4, srcs=(1,))
    return Trace(name="fetch-branch", focus_class=RegClass.INT,
                 instructions=builder.trace())


class TestBasicFetch:
    def test_fetch_width_limit(self):
        unit = make_fetch_unit(straightline(30), fetch_width=8)
        group = unit.fetch_cycle(0)
        assert len(group) == 8

    def test_consecutive_groups_advance(self):
        unit = make_fetch_unit(straightline(20), fetch_width=8)
        first = unit.fetch_cycle(0)
        second = unit.fetch_cycle(1)
        assert first[0].inst.pc != second[0].inst.pc
        assert unit.fetched_correct == 16

    def test_trace_exhaustion(self):
        unit = make_fetch_unit(straightline(5), fetch_width=8)
        group = unit.fetch_cycle(0)
        assert len(group) == 5
        assert unit.trace_exhausted
        assert unit.fetch_cycle(1) == []

    def test_resume_cursor_points_past_instruction(self):
        unit = make_fetch_unit(straightline(10), fetch_width=4)
        group = unit.fetch_cycle(0)
        assert [op.resume_cursor for op in group] == [1, 2, 3, 4]


class TestBranchHandling:
    def test_correctly_predicted_not_taken(self):
        # Predictor initialised weakly-taken, but BTB is empty so a taken
        # prediction cannot redirect; a not-taken branch is predicted
        # correctly either way.
        unit = make_fetch_unit(trace_with_branch(taken=False))
        group = unit.fetch_cycle(0)
        branch_ops = [op for op in group if op.inst.is_branch]
        assert len(branch_ops) == 1
        assert not branch_ops[0].mispredicted
        assert not unit.on_wrong_path

    def test_mispredicted_taken_branch_enters_wrong_path(self):
        mix = WrongPathMix()
        wrongpath = WrongPathGenerator(mix, seed=1)
        unit = make_fetch_unit(trace_with_branch(taken=True), wrongpath=wrongpath)
        group = unit.fetch_cycle(0)
        branch_ops = [op for op in group if op.inst.is_branch]
        assert branch_ops and branch_ops[0].mispredicted
        assert unit.on_wrong_path
        # Subsequent instructions in the group (and later groups) are wrong path.
        index = group.index(branch_ops[0])
        assert all(op.wrong_path for op in group[index + 1:])
        later = unit.fetch_cycle(1)
        assert later and all(op.wrong_path for op in later)

    def test_recover_returns_to_correct_path(self):
        mix = WrongPathMix()
        unit = make_fetch_unit(trace_with_branch(taken=True),
                               wrongpath=WrongPathGenerator(mix, seed=1))
        group = unit.fetch_cycle(0)
        branch_op = next(op for op in group if op.inst.is_branch)
        unit.recover(branch_op.resume_cursor)
        assert not unit.on_wrong_path
        resumed = unit.fetch_cycle(1)
        assert resumed[0].inst.pc == trace_with_branch(True)[branch_op.resume_cursor].pc
        assert not resumed[0].wrong_path

    def test_recover_rejects_wrong_path_cursor(self):
        unit = make_fetch_unit(straightline(4))
        with pytest.raises(ValueError):
            unit.recover(-1)

    def test_wrong_path_branches_resolve_as_predicted(self):
        mix = WrongPathMix(branch=1.0)  # wrong path made of branches only
        unit = make_fetch_unit(trace_with_branch(taken=True),
                               wrongpath=WrongPathGenerator(mix, seed=3))
        unit.fetch_cycle(0)
        assert unit.on_wrong_path
        group = unit.fetch_cycle(1)
        for op in group:
            if op.inst.is_branch:
                assert not op.mispredicted
                assert op.inst.taken == op.predicted_taken

    def test_max_taken_branches_per_cycle(self):
        # Build a trace of taken branches whose targets are in the BTB.
        builder = InstructionBuilder()
        for _ in range(8):
            builder.branch(taken=True, target=builder.pc + 4, srcs=(1,))
        trace = Trace(name="takens", focus_class=RegClass.INT,
                      instructions=builder.trace())
        unit = make_fetch_unit(trace, max_taken_per_cycle=2)
        # Prime the BTB so predictions can be taken.
        for inst in trace:
            unit.btb.update(inst.pc, inst.target)
        group = unit.fetch_cycle(0)
        taken_predictions = sum(1 for op in group if op.predicted_taken)
        assert taken_predictions <= 2
        assert len(group) <= 2 + 1  # group ends at the second taken branch


class TestICacheStall:
    def test_icache_miss_stalls_fetch(self):
        from repro.memory.hierarchy import MemoryHierarchy

        memory = MemoryHierarchy()
        unit = make_fetch_unit(straightline(16), memory=memory)
        assert unit.fetch_cycle(0) == []          # cold I-cache miss
        assert unit.icache_stall_cycles > 0
        # After the miss latency, fetch resumes.
        later = unit.fetch_cycle(unit._stall_until)
        assert later
