"""Tests for the gshare predictor with speculative history update."""

import pytest

from repro.frontend.gshare import GsharePredictor


class TestConstruction:
    def test_table_size(self):
        predictor = GsharePredictor(history_bits=10)
        assert predictor.table_size == 1024
        assert len(predictor.table) == 1024

    def test_default_is_18_bits(self):
        # Table 2: "18-bit gshare".
        assert GsharePredictor().history_bits == 18

    def test_rejects_bad_history_bits(self):
        with pytest.raises(ValueError):
            GsharePredictor(history_bits=0)
        with pytest.raises(ValueError):
            GsharePredictor(history_bits=30)


class TestPrediction:
    def test_learns_always_taken_branch(self):
        predictor = GsharePredictor(history_bits=8, initial_counter=1)
        pc = 0x4000
        mispredicts = 0
        for _ in range(200):
            record = predictor.predict(pc)
            if predictor.resolve(record, True):
                mispredicts += 1
        # After warm-up the branch must be predicted correctly.
        record = predictor.predict(pc)
        assert record.predicted_taken
        assert mispredicts < 200 * 0.3

    def test_learns_alternating_pattern(self):
        predictor = GsharePredictor(history_bits=8)
        pc = 0x4000
        outcomes = [True, False] * 300
        mispredicts = 0
        for index, taken in enumerate(outcomes):
            record = predictor.predict(pc)
            if predictor.resolve(record, taken) and index > 100:
                mispredicts += 1
        # The pattern is fully determined by one bit of history.
        assert mispredicts < 10

    def test_speculative_history_update(self):
        predictor = GsharePredictor(history_bits=8)
        before = predictor.history
        record = predictor.predict(0x4000)
        assert record.history_before == before
        expected = ((before << 1) | int(record.predicted_taken)) & (predictor.table_size - 1)
        assert predictor.history == expected

    def test_history_repair_on_mispredict(self):
        predictor = GsharePredictor(history_bits=8, initial_counter=0)
        record = predictor.predict(0x4000)
        assert not record.predicted_taken
        # A couple of younger speculative predictions pollute the history.
        predictor.predict(0x4010)
        predictor.predict(0x4020)
        mispredicted = predictor.resolve(record, True)
        assert mispredicted
        expected = ((record.history_before << 1) | 1) & (predictor.table_size - 1)
        assert predictor.history == expected

    def test_no_history_repair_on_correct_prediction(self):
        predictor = GsharePredictor(history_bits=8, initial_counter=3)
        record = predictor.predict(0x4000)
        history_after_predict = predictor.history
        assert not predictor.resolve(record, True)
        assert predictor.history == history_after_predict


class TestCounters:
    def test_saturation_up(self):
        predictor = GsharePredictor(history_bits=4, initial_counter=3)
        record = predictor.predict(0x40)
        predictor.resolve(record, True)
        assert predictor.table[record.table_index] == 3

    def test_saturation_down(self):
        predictor = GsharePredictor(history_bits=4, initial_counter=0)
        record = predictor.predict(0x40)
        predictor.resolve(record, False)
        assert predictor.table[record.table_index] == 0

    def test_counter_moves_toward_outcome(self):
        predictor = GsharePredictor(history_bits=4, initial_counter=2)
        record = predictor.predict(0x40)
        predictor.resolve(record, False)
        assert predictor.table[record.table_index] == 1


class TestStatistics:
    def test_accuracy_tracking(self):
        predictor = GsharePredictor(history_bits=6, initial_counter=3)
        for _ in range(10):
            record = predictor.predict(0x80)
            predictor.resolve(record, True)
        assert predictor.accuracy == 1.0
        assert predictor.predictions == 10

    def test_reset_statistics_keeps_state(self):
        predictor = GsharePredictor(history_bits=6)
        record = predictor.predict(0x80)
        predictor.resolve(record, True)
        table_before = list(predictor.table)
        predictor.reset_statistics()
        assert predictor.predictions == 0 and predictor.mispredictions == 0
        assert list(predictor.table) == table_before

    def test_accuracy_with_no_predictions(self):
        assert GsharePredictor().accuracy == 1.0
