"""Tests for the return address stack."""

import pytest

from repro.frontend.ras import ReturnAddressStack


class TestRAS:
    def test_push_pop_order(self):
        ras = ReturnAddressStack(depth=4)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100

    def test_underflow_returns_none(self):
        ras = ReturnAddressStack(depth=2)
        assert ras.pop() is None
        assert ras.underflows == 1

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(depth=2)
        ras.push(0x100)
        ras.push(0x200)
        ras.push(0x300)
        assert len(ras) == 2
        assert ras.pop() == 0x300
        assert ras.pop() == 0x200
        assert ras.pop() is None

    def test_snapshot_restore(self):
        ras = ReturnAddressStack(depth=4)
        ras.push(0x100)
        ras.push(0x200)
        snapshot = ras.snapshot()
        ras.pop()
        ras.push(0x999)
        ras.restore(snapshot)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100

    def test_rejects_zero_depth(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(depth=0)

    def test_counters(self):
        ras = ReturnAddressStack(depth=4)
        ras.push(0x1)
        ras.pop()
        ras.pop()
        assert ras.pushes == 1 and ras.pops == 2 and ras.underflows == 1
