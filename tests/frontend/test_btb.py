"""Tests for the branch target buffer."""

import pytest

from repro.frontend.btb import BranchTargetBuffer


class TestConstruction:
    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(entries=0)
        with pytest.raises(ValueError):
            BranchTargetBuffer(entries=10, associativity=4)

    def test_set_count(self):
        btb = BranchTargetBuffer(entries=64, associativity=4)
        assert btb.n_sets == 16


class TestLookupUpdate:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(entries=64, associativity=2)
        assert btb.lookup(0x1000) is None
        btb.update(0x1000, 0x2000)
        assert btb.lookup(0x1000) == 0x2000

    def test_update_overwrites_target(self):
        btb = BranchTargetBuffer(entries=64, associativity=2)
        btb.update(0x1000, 0x2000)
        btb.update(0x1000, 0x3000)
        assert btb.lookup(0x1000) == 0x3000

    def test_distinct_branches(self):
        btb = BranchTargetBuffer(entries=64, associativity=2)
        btb.update(0x1000, 0x2000)
        btb.update(0x1004, 0x4000)
        assert btb.lookup(0x1000) == 0x2000
        assert btb.lookup(0x1004) == 0x4000

    def test_lru_eviction(self):
        btb = BranchTargetBuffer(entries=4, associativity=2)  # 2 sets
        set_stride = 4 * btb.n_sets
        pcs = [0x1000, 0x1000 + set_stride, 0x1000 + 2 * set_stride]
        btb.update(pcs[0], 0xA)
        btb.update(pcs[1], 0xB)
        btb.update(pcs[2], 0xC)          # evicts pcs[0] (least recently used)
        assert btb.lookup(pcs[0]) is None
        assert btb.lookup(pcs[1]) == 0xB
        assert btb.lookup(pcs[2]) == 0xC

    def test_lookup_refreshes_lru(self):
        btb = BranchTargetBuffer(entries=4, associativity=2)
        set_stride = 4 * btb.n_sets
        pcs = [0x1000, 0x1000 + set_stride, 0x1000 + 2 * set_stride]
        btb.update(pcs[0], 0xA)
        btb.update(pcs[1], 0xB)
        btb.lookup(pcs[0])               # make pcs[0] most recently used
        btb.update(pcs[2], 0xC)          # evicts pcs[1]
        assert btb.lookup(pcs[0]) == 0xA
        assert btb.lookup(pcs[1]) is None


class TestStatistics:
    def test_hit_rate(self):
        btb = BranchTargetBuffer(entries=64, associativity=2)
        btb.lookup(0x1000)
        btb.update(0x1000, 0x2000)
        btb.lookup(0x1000)
        assert btb.hits == 1 and btb.misses == 1
        assert btb.hit_rate == 0.5

    def test_hit_rate_empty(self):
        assert BranchTargetBuffer().hit_rate == 1.0

    def test_reset_statistics(self):
        btb = BranchTargetBuffer(entries=64, associativity=2)
        btb.update(0x1000, 0x2000)
        btb.lookup(0x1000)
        btb.reset_statistics()
        assert btb.hits == 0 and btb.misses == 0
        assert btb.lookup(0x1000) == 0x2000  # contents preserved
