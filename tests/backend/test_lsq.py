"""Tests for the load/store queue (conservative load issue + forwarding)."""

import pytest

from repro.backend.lsq import LoadStoreQueue


class TestInsertRemove:
    def test_program_order_enforced(self):
        lsq = LoadStoreQueue(capacity=8)
        lsq.insert(3, is_store=False, address=0x10)
        with pytest.raises(ValueError):
            lsq.insert(2, is_store=True, address=0x20)

    def test_capacity(self):
        lsq = LoadStoreQueue(capacity=2)
        lsq.insert(0, False, 0)
        lsq.insert(1, False, 8)
        assert lsq.is_full
        with pytest.raises(RuntimeError):
            lsq.insert(2, False, 16)

    def test_default_capacity_matches_paper(self):
        assert LoadStoreQueue().capacity == 64

    def test_remove(self):
        lsq = LoadStoreQueue()
        lsq.insert(0, False, 0)
        lsq.insert(1, True, 8)
        lsq.remove(0)
        assert len(lsq) == 1
        assert lsq.find(0) is None and lsq.find(1) is not None

    def test_squash_younger_than(self):
        lsq = LoadStoreQueue()
        for seq in range(4):
            lsq.insert(seq, seq % 2 == 0, seq * 8)
        lsq.squash_younger_than(1)
        assert [entry.seq for entry in lsq._entries] == [0, 1]

    def test_clear(self):
        lsq = LoadStoreQueue()
        lsq.insert(0, True, 0)
        lsq.clear()
        assert len(lsq) == 0


class TestLoadIssueRule:
    """Paper rule: loads wait for all previous store addresses."""

    def test_load_blocked_by_unknown_store_address(self):
        lsq = LoadStoreQueue()
        lsq.insert(0, is_store=True, address=0x100)
        lsq.insert(1, is_store=False, address=0x200)
        assert not lsq.load_may_issue(1)
        lsq.mark_address_known(0)
        assert lsq.load_may_issue(1)

    def test_load_not_blocked_by_younger_store(self):
        lsq = LoadStoreQueue()
        lsq.insert(0, is_store=False, address=0x200)
        lsq.insert(1, is_store=True, address=0x100)
        assert lsq.load_may_issue(0)

    def test_load_not_blocked_by_other_loads(self):
        lsq = LoadStoreQueue()
        lsq.insert(0, is_store=False, address=0x100)
        lsq.insert(1, is_store=False, address=0x200)
        assert lsq.load_may_issue(1)

    def test_multiple_pending_stores(self):
        lsq = LoadStoreQueue()
        lsq.insert(0, True, 0x100)
        lsq.insert(1, True, 0x180)
        lsq.insert(2, False, 0x200)
        lsq.mark_address_known(0)
        assert not lsq.load_may_issue(2)
        lsq.mark_address_known(1)
        assert lsq.load_may_issue(2)


class TestForwarding:
    def test_forward_from_matching_store(self):
        lsq = LoadStoreQueue()
        lsq.insert(0, True, 0x100)
        lsq.insert(1, False, 0x100)
        lsq.mark_address_known(0)
        assert lsq.store_forwards_to(1, 0x100)
        assert lsq.forwarded_loads == 1

    def test_no_forward_from_different_address(self):
        lsq = LoadStoreQueue()
        lsq.insert(0, True, 0x100)
        lsq.insert(1, False, 0x180)
        lsq.mark_address_known(0)
        assert not lsq.store_forwards_to(1, 0x180)

    def test_no_forward_from_unknown_address(self):
        lsq = LoadStoreQueue()
        lsq.insert(0, True, 0x100)
        lsq.insert(1, False, 0x100)
        assert not lsq.store_forwards_to(1, 0x100)

    def test_no_forward_from_younger_store(self):
        lsq = LoadStoreQueue()
        lsq.insert(0, False, 0x100)
        lsq.insert(1, True, 0x100)
        lsq.mark_address_known(1)
        assert not lsq.store_forwards_to(0, 0x100)

    def test_word_granularity(self):
        lsq = LoadStoreQueue()
        lsq.insert(0, True, 0x100)
        lsq.insert(1, False, 0x104)     # same 8-byte word
        lsq.mark_address_known(0)
        assert lsq.store_forwards_to(1, 0x104)

    def test_mark_done(self):
        lsq = LoadStoreQueue()
        lsq.insert(0, False, 0x100)
        lsq.mark_done(0)
        assert lsq.find(0).done
