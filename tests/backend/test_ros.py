"""Tests for the Reorder Structure and its entries."""

import pytest

from repro.backend.ros import DEST_SLOT_BIT, ROSEntry, ReorderStructure, src_slot_bit
from repro.isa import Instruction, OpClass, RegClass


def make_entry(seq, op=OpClass.INT_ALU):
    inst = Instruction(pc=0x1000 + 4 * seq, op=op, dest=(RegClass.INT, 1),
                       srcs=((RegClass.INT, 2),))
    return ROSEntry(seq, inst)


class TestROSEntry:
    def test_initial_state(self):
        entry = make_entry(0)
        assert not entry.issued and not entry.completed and not entry.squashed
        assert entry.early_release_mask == 0
        assert entry.ready                      # no producers recorded yet

    def test_ready_tracks_producers(self):
        entry = make_entry(0)
        entry.wait_producers.add(5)
        assert not entry.ready
        entry.wait_producers.discard(5)
        assert entry.ready

    def test_slot_bits(self):
        assert src_slot_bit(0) == 1
        assert src_slot_bit(1) == 2
        assert src_slot_bit(2) == 4
        assert DEST_SLOT_BIT == 8

    def test_physical_of_slot_source(self):
        entry = make_entry(0)
        entry.src_regs.append((RegClass.INT, 2, 17))
        reg_class, physical, logical = entry.physical_of_slot(src_slot_bit(0))
        assert reg_class is RegClass.INT and physical == 17 and logical == 2

    def test_physical_of_slot_dest(self):
        entry = make_entry(0)
        entry.dest_class = RegClass.FP
        entry.dest_logical = 4
        entry.pd = 33
        reg_class, physical, logical = entry.physical_of_slot(DEST_SLOT_BIT)
        assert reg_class is RegClass.FP and physical == 33 and logical == 4

    def test_has_dest(self):
        entry = make_entry(0)
        assert not entry.has_dest
        entry.dest_class = RegClass.INT
        assert entry.has_dest


class TestReorderStructure:
    def test_fifo_order(self):
        ros = ReorderStructure(capacity=8)
        for seq in range(3):
            ros.append(make_entry(seq))
        assert ros.head().seq == 0
        assert ros.tail().seq == 2
        assert len(ros) == 3

    def test_capacity(self):
        ros = ReorderStructure(capacity=2)
        ros.append(make_entry(0))
        ros.append(make_entry(1))
        assert ros.is_full
        with pytest.raises(RuntimeError):
            ros.append(make_entry(2))

    def test_program_order_enforced(self):
        ros = ReorderStructure(capacity=8)
        ros.append(make_entry(5))
        with pytest.raises(ValueError):
            ros.append(make_entry(5))

    def test_pop_head(self):
        ros = ReorderStructure(capacity=8)
        ros.append(make_entry(0))
        ros.append(make_entry(1))
        assert ros.pop_head().seq == 0
        assert ros.head().seq == 1

    def test_squash_younger_than(self):
        ros = ReorderStructure(capacity=8)
        for seq in range(5):
            ros.append(make_entry(seq))
        squashed = ros.squash_younger_than(2)
        assert [entry.seq for entry in squashed] == [4, 3]   # youngest first
        assert ros.tail().seq == 2

    def test_squash_all(self):
        ros = ReorderStructure(capacity=8)
        for seq in range(3):
            ros.append(make_entry(seq))
        squashed = ros.squash_all()
        assert [entry.seq for entry in squashed] == [2, 1, 0]
        assert ros.is_empty

    def test_find(self):
        ros = ReorderStructure(capacity=8)
        for seq in range(3):
            ros.append(make_entry(seq))
        assert ros.find(1).seq == 1
        assert ros.find(9) is None

    def test_empty_queries(self):
        ros = ReorderStructure(capacity=4)
        assert ros.is_empty
        assert ros.head() is None and ros.tail() is None

    def test_default_capacity_matches_paper(self):
        assert ReorderStructure().capacity == 128

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            ReorderStructure(capacity=0)
