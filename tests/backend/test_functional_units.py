"""Tests for the functional unit pools."""

import pytest

from repro.backend.functional_units import FUConfig, FunctionalUnitPool
from repro.isa import FUKind, OpClass


class TestDefaults:
    def test_paper_unit_counts(self):
        config = FUConfig()
        assert config.counts[FUKind.SIMPLE_INT] == 8
        assert config.counts[FUKind.INT_MULT] == 4
        assert config.counts[FUKind.SIMPLE_FP] == 6
        assert config.counts[FUKind.FP_MULT] == 4
        assert config.counts[FUKind.FP_DIV] == 4
        assert config.counts[FUKind.LOAD_STORE] == 4

    def test_fp_div_unpipelined(self):
        assert FUKind.FP_DIV in FUConfig().unpipelined


class TestIssue:
    def test_latency_returned(self):
        pool = FunctionalUnitPool()
        assert pool.issue(OpClass.INT_ALU, 0) == 1
        assert pool.issue(OpClass.FP_DIV, 0) == 16

    def test_pipelined_unit_reusable_next_cycle(self):
        pool = FunctionalUnitPool()
        for _ in range(6):
            pool.issue(OpClass.FP_ADD, 0)
        assert not pool.can_issue(OpClass.FP_ADD, 0)     # all 6 busy this cycle
        assert pool.can_issue(OpClass.FP_ADD, 1)         # pipelined: free next cycle

    def test_unpipelined_unit_blocks_for_latency(self):
        pool = FunctionalUnitPool()
        for _ in range(4):
            pool.issue(OpClass.FP_DIV, 0)
        assert not pool.can_issue(OpClass.FP_DIV, 1)
        assert not pool.can_issue(OpClass.FP_DIV, 15)
        assert pool.can_issue(OpClass.FP_DIV, 16)

    def test_per_cycle_capacity(self):
        pool = FunctionalUnitPool()
        issued = 0
        while pool.can_issue(OpClass.INT_ALU, 0):
            pool.issue(OpClass.INT_ALU, 0)
            issued += 1
        assert issued == 8

    def test_issue_without_capacity_raises(self):
        pool = FunctionalUnitPool()
        for _ in range(4):
            pool.issue(OpClass.LOAD, 0)
        with pytest.raises(RuntimeError):
            pool.issue(OpClass.STORE, 0)

    def test_branches_share_simple_int(self):
        pool = FunctionalUnitPool()
        for _ in range(8):
            pool.issue(OpClass.BRANCH, 0)
        assert not pool.can_issue(OpClass.INT_ALU, 0)

    def test_statistics(self):
        pool = FunctionalUnitPool()
        pool.issue(OpClass.INT_ALU, 0)
        pool.issue(OpClass.FP_MULT, 0)
        pool.note_structural_stall()
        assert pool.issues[FUKind.SIMPLE_INT] == 1
        assert pool.issues[FUKind.FP_MULT] == 1
        assert pool.structural_stalls == 1

    def test_latency_of_and_kind_of(self):
        pool = FunctionalUnitPool()
        assert pool.latency_of(OpClass.INT_MULT) == 7
        assert pool.kind_of(OpClass.FP_LOAD) is FUKind.LOAD_STORE
