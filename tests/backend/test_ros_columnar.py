"""Edge cases of the columnar Reorder Structure.

The scenarios here are the ones the ring/column representation makes
delicate: wraparound at full capacity, squashing a window that is partly
interleaved with committed (retired) entries, handle recycling across
squash, and checkpoint-restore recoveries whose squash undo releases
registers through the bulk free-list path.
"""

import dataclasses

import pytest

from repro.backend.ros import ROSEntry, ReorderStructure
from repro.engine import CycleClock, EventClock, SimulationEngine
from repro.isa import Instruction, OpClass, RegClass
from repro.pipeline.config import ProcessorConfig
from repro.trace.workloads import get_workload


def entry(seq: int) -> ROSEntry:
    inst = Instruction(pc=0x1000 + 4 * seq, op=OpClass.INT_ALU,
                       dest=(RegClass.INT, 1), srcs=((RegClass.INT, 2),))
    return ROSEntry(seq, inst)


class TestWraparound:
    def test_fill_retire_refill_wraps_cleanly(self):
        # Fill to capacity, retire a prefix, refill past the physical end
        # of the arrays: age order, find() and the window probes must all
        # survive the wrap.
        ros = ReorderStructure(capacity=8)
        for seq in range(8):
            ros.append(entry(seq))
        assert ros.is_full
        for e in ros:
            e.completed = True
            ros.note_completed(e, cycle=5)
        assert ros.completed_prefix(limit=3) == 3
        retired = ros.retire_prefix(3)
        assert [e.seq for e in retired] == [0, 1, 2]
        # The new tail rows physically wrap to the start of the arrays.
        for seq in range(8, 11):
            ros.append(entry(seq))
        assert ros.is_full
        assert [e.seq for e in ros] == list(range(3, 11))
        assert ros.head().seq == 3 and ros.tail().seq == 10
        assert ros.find(8).row < ros.find(7).row   # wrapped physically
        # Fresh (wrapped) rows must not inherit the retired rows' flags.
        assert ros.completed_prefix(limit=8) == 5   # 3..7 completed, 8.. not

    def test_wraparound_squash_boundary_search(self):
        # Squash with the occupied window split across the wrap point:
        # the boundary binary search spans both ring segments.
        ros = ReorderStructure(capacity=6)
        for seq in range(6):
            ros.append(entry(seq))
        for e in list(ros)[:4]:
            ros.note_completed(e, cycle=1)
        ros.retire_prefix(4)
        for seq in range(6, 10):
            ros.append(entry(seq))           # rows wrap: window is 4..9
        assert [e.seq for e in ros] == [4, 5, 6, 7, 8, 9]
        squashed = ros.squash_younger_than(6)
        assert [e.seq for e in squashed] == [9, 8, 7]
        assert all(e.squashed for e in squashed)
        assert [e.seq for e in ros] == [4, 5, 6]
        assert ros.find(8) is None and ros.find(6) is not None

    def test_full_capacity_begin_rename_raises(self):
        ros = ReorderStructure(capacity=2)
        ros.append(entry(0))
        ros.append(entry(1))
        with pytest.raises(RuntimeError):
            ros.begin_rename(2, entry(2).inst)


class TestPartiallyCommittedBatch:
    def test_squash_after_partial_retire(self):
        # Retire part of a completed run, then squash into the remainder:
        # the retired rows must stay retired, the surviving prefix intact,
        # and the squashed suffix fully reset for recycling.
        ros = ReorderStructure(capacity=8)
        for seq in range(6):
            ros.append(entry(seq))
        for e in list(ros)[:4]:
            ros.note_completed(e, cycle=2)
        assert ros.completed_prefix(limit=8) == 4
        retired = ros.retire_prefix(2)        # commit-width truncation
        assert [e.seq for e in retired] == [0, 1]
        squashed = ros.squash_younger_than(3)
        assert [e.seq for e in squashed] == [5, 4]
        assert [e.seq for e in ros] == [2, 3]
        # Entries 2 and 3 completed before the squash and stay that way.
        assert ros.completed_prefix(limit=8) == 2
        # Rows vacated by the squash recycle with clean flags.
        recycled = ros.begin_rename(6, entry(6).inst)
        assert not recycled.completed and not recycled.squashed
        ros.push(recycled)
        assert ros.completed_prefix(limit=8) == 2   # the new tail is live

    def test_exception_in_prefix_truncates_at_first_excepting(self):
        ros = ReorderStructure(capacity=8)
        for seq in range(4):
            e = entry(seq)
            e.exception = seq == 2
            ros.append(e)
            ros.note_completed(e, cycle=1)
        assert ros.completed_prefix(limit=4) == 4
        assert ros.exception_in_prefix(4) == 2

    def test_recycled_handle_is_same_object_with_new_identity(self):
        # Row-id stability + recycling: the handle object parked at a row
        # is reused, and stale references are detectable via seq.
        ros = ReorderStructure(capacity=4)
        first = ros.begin_rename(0, entry(0).inst)
        ros.push(first)
        stale_ref = ros.find(0)
        assert stale_ref is first
        ros.squash_all()
        again = ros.begin_rename(1, entry(1).inst)
        assert again is first                # same object, recycled
        ros.push(again)
        assert stale_ref.seq == 1            # the old identity is gone


class TestCheckpointRestoreWithBulkRelease:
    """Misprediction recoveries on real workloads: the squash undo path
    releases every squashed destination register through the bulk
    free-list call while the map/LUs checkpoints restore.  The checked
    free list would raise on any double or missed release; the two
    clocks must agree bit-for-bit afterwards."""

    @pytest.mark.parametrize("policy", ["conv", "basic", "extended"])
    def test_recovery_heavy_run_stays_consistent(self, policy):
        # gcc is branch-dense: hundreds of mispredictions, deep squashes.
        config = ProcessorConfig(release_policy=policy, warmup=False,
                                 num_physical_int=40, num_physical_fp=40)
        trace = get_workload("gcc", 2_500, seed=0)
        reference = SimulationEngine(trace, config, clock=CycleClock()).run()
        engine = SimulationEngine(trace, config, clock=EventClock())
        fast = engine.run()
        assert reference.branch_mispredictions > 0
        assert reference.squashed_instructions > 0
        assert dataclasses.asdict(fast) == dataclasses.asdict(reference)
        # Everything drained: free + allocated == P in both files.
        for register_file in engine.state.register_files.values():
            register_file.check_invariants()

    def test_bulk_release_preserves_free_list_order(self):
        # The bulk release must hand registers back youngest-first within
        # each class — the order later allocations pop them in.  Compare
        # against a per-entry release reference on the same squash batch.
        config = ProcessorConfig(release_policy="conv", warmup=False,
                                 num_physical_int=48, num_physical_fp=48)
        trace = get_workload("gcc", 1_200, seed=0)
        engine = SimulationEngine(trace, config, clock=CycleClock())
        state = engine.state
        # Run until a recovery happens, capturing free-list order after it.
        baseline = state.stats
        while not engine.finished and baseline.branch_mispredictions == 0:
            engine.step()
        assert baseline.branch_mispredictions > 0
        snapshot = state.register_files[RegClass.INT].free_list.snapshot_free_set()
        # The set is internally consistent with the checked flags.
        free_list = state.register_files[RegClass.INT].free_list
        assert all(free_list.is_free(reg) for reg in snapshot)
        assert free_list.n_free == len(snapshot)
