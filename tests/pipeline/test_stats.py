"""Tests for the statistics container."""

import pickle

import pytest

from repro.core.register_state import OccupancyAverages
from repro.pipeline.stats import RegisterFileStats, SimStats


class TestSimStats:
    def test_ipc(self):
        stats = SimStats(cycles=200, committed_instructions=500)
        assert stats.ipc == pytest.approx(2.5)

    def test_ipc_zero_cycles(self):
        assert SimStats().ipc == 0.0

    def test_branch_misprediction_rate(self):
        stats = SimStats(branches_resolved=200, branch_mispredictions=10)
        assert stats.branch_misprediction_rate == pytest.approx(0.05)
        assert SimStats().branch_misprediction_rate == 0.0

    def test_wrong_path_fraction(self):
        stats = SimStats(fetched_instructions=1000, fetched_wrong_path=100)
        assert stats.wrong_path_fraction == pytest.approx(0.1)
        assert SimStats().wrong_path_fraction == 0.0

    def test_stall_fraction(self):
        stats = SimStats(cycles=100, dispatch_stalls={"ros_full": 25})
        assert stats.stall_fraction("ros_full") == pytest.approx(0.25)
        assert stats.stall_fraction("unknown") == 0.0

    def test_register_stats_selector(self):
        stats = SimStats(int_registers=RegisterFileStats(num_physical=48),
                         fp_registers=RegisterFileStats(num_physical=96))
        assert stats.register_stats("int").num_physical == 48
        assert stats.register_stats("fp").num_physical == 96

    def test_summary_line_contains_key_fields(self):
        stats = SimStats(benchmark="swim", release_policy="extended",
                         cycles=10, committed_instructions=20)
        line = stats.summary_line()
        assert "swim" in line and "extended" in line and "IPC" in line

    def test_pickleable(self):
        stats = SimStats(benchmark="gcc", cycles=10, committed_instructions=5,
                         int_registers=RegisterFileStats(
                             occupancy=OccupancyAverages(1.0, 2.0, 3.0)))
        clone = pickle.loads(pickle.dumps(stats))
        assert clone.benchmark == "gcc"
        assert clone.int_registers.occupancy.idle == 3.0


class TestRegisterFileStats:
    def test_early_release_fraction(self):
        stats = RegisterFileStats(releases=100, early_releases=40)
        assert stats.early_release_fraction == pytest.approx(0.4)

    def test_early_release_fraction_no_releases(self):
        assert RegisterFileStats().early_release_fraction == 0.0
