"""Unit-level tests of the cycle-level processor on tiny hand-built traces."""

import pytest

from repro.isa import InstructionBuilder, RegClass
from repro.pipeline.config import ProcessorConfig
from repro.pipeline.processor import DeadlockError, Processor, simulate
from repro.trace.records import Trace


def run_trace(trace, **config_kwargs):
    # Warm-up is enabled by default so the micro-benchmarks below measure the
    # pipeline behaviour of interest rather than cold instruction-cache misses.
    defaults = dict(warmup=True, enable_wrong_path=False)
    defaults.update(config_kwargs)
    return simulate(trace, ProcessorConfig(**defaults))


def make_trace(name, instructions):
    return Trace(name=name, focus_class=RegClass.INT, instructions=instructions)


class TestBasicExecution:
    def test_commits_every_instruction(self, straightline_trace, quick_config):
        stats = simulate(straightline_trace, quick_config)
        assert stats.committed_instructions == len(straightline_trace)
        assert stats.cycles > 0
        assert stats.ipc > 0

    def test_mixed_trace_completes(self, mixed_trace, quick_config):
        stats = simulate(mixed_trace, quick_config)
        assert stats.committed_instructions == len(mixed_trace)
        assert stats.branches_resolved == 1

    def test_dependence_chain_latency(self):
        # A chain of N dependent single-cycle ALU ops takes at least N cycles.
        builder = InstructionBuilder()
        n = 20
        builder.alu(dest=1, srcs=(2,))
        for _ in range(n - 1):
            builder.alu(dest=1, srcs=(1,))
        stats = run_trace(make_trace("chain", builder.trace()))
        assert stats.cycles >= n

    def test_independent_ops_exploit_width(self):
        # Independent ALU ops should commit at much better than 1 IPC.
        builder = InstructionBuilder()
        for i in range(64):
            builder.alu(dest=1 + i % 16, srcs=(20 + i % 4,))
        stats = run_trace(make_trace("parallel", builder.trace()))
        assert stats.ipc > 2.0

    def test_fp_latency_respected(self):
        builder = InstructionBuilder()
        n = 10
        builder.alu(dest=1, srcs=(2,), fp=True)
        for _ in range(n - 1):
            builder.alu(dest=1, srcs=(1,), fp=True)          # 4-cycle FP adds
        stats = run_trace(make_trace("fpchain", builder.trace()))
        assert stats.cycles >= 4 * n

    def test_max_instructions_limit(self, small_swim_trace):
        config = ProcessorConfig(warmup=False, enable_wrong_path=False)
        stats = simulate(small_swim_trace, config, max_instructions=200)
        assert 200 <= stats.committed_instructions <= 210

    def test_max_cycles_limit(self, small_swim_trace):
        config = ProcessorConfig(warmup=False, enable_wrong_path=False)
        stats = simulate(small_swim_trace, config, max_cycles=50)
        assert stats.cycles <= 51

    def test_step_and_finished(self, straightline_trace, quick_config):
        processor = Processor(straightline_trace, quick_config)
        assert not processor.finished
        for _ in range(200):
            processor.step()
            if processor.finished:
                break
        assert processor.finished

    def test_facade_attribute_writes_reach_machine_state(self, straightline_trace,
                                                         quick_config):
        # The facade forwards reads *and* writes to the MachineState, so
        # callers written against the monolithic Processor see one object.
        processor = Processor(straightline_trace, quick_config)
        processor.step()
        processor.cycle = 0
        assert processor.engine.state.cycle == 0
        processor.step()
        assert processor.cycle == 1


class TestRegisterPressure:
    def test_tight_file_stalls_dispatch(self):
        # 33 live integer values cannot fit in 40 physical registers minus the
        # 32 architectural ones, so dispatch must stall on the free list.
        builder = InstructionBuilder()
        for _block in range(12):
            for i in range(16):
                builder.alu(dest=i, srcs=(16 + (i % 8),))
        trace = make_trace("pressure", builder.trace())
        tight = run_trace(trace, num_physical_int=40, num_physical_fp=40)
        loose = run_trace(trace, num_physical_int=160, num_physical_fp=160)
        assert tight.dispatch_stalls["no_free_int_register"] > 0
        assert loose.dispatch_stalls["no_free_int_register"] == 0
        assert loose.ipc >= tight.ipc

    def test_conservation_of_registers(self, mixed_trace):
        config = ProcessorConfig(warmup=False, enable_wrong_path=False)
        processor = Processor(mixed_trace, config)
        processor.run()
        for register_file in processor.register_files.values():
            register_file.check_invariants()

    def test_quiescent_register_count(self, small_gcc_trace):
        for policy in ("conv", "basic", "extended"):
            config = ProcessorConfig(warmup=False, enable_wrong_path=True,
                                     release_policy=policy)
            processor = Processor(small_gcc_trace, config)
            processor.run()
            int_file = processor.register_files[RegClass.INT]
            # Everything has committed: only architectural versions remain —
            # no physical register was leaked and none was double freed.
            assert int_file.n_allocated == 32, policy
            assert processor.register_files[RegClass.FP].n_allocated == 32, policy


class TestBranchesAndMemory:
    def test_misprediction_penalty_costs_cycles(self):
        builder = InstructionBuilder()
        # Alternating taken/not-taken branch that gshare learns, followed by
        # one with random-looking behaviour.
        for i in range(60):
            builder.alu(dest=1, srcs=(2,))
            builder.branch(taken=(i * 7 + 3) % 5 < 2, target=0x8000, srcs=(1,))
        trace = make_trace("branches", builder.trace())
        # No warm-up: the predictor starts cold so some mispredictions occur.
        stats = run_trace(trace, warmup=False)
        assert stats.branches_resolved == 60
        assert stats.branch_mispredictions > 0
        assert stats.cycles > 60

    def test_wrong_path_instructions_fetched_when_enabled(self, small_gcc_trace):
        with_wp = simulate(small_gcc_trace,
                           ProcessorConfig(warmup=False, enable_wrong_path=True),
                           max_instructions=1000)
        without_wp = simulate(small_gcc_trace,
                              ProcessorConfig(warmup=False, enable_wrong_path=False),
                              max_instructions=1000)
        assert with_wp.fetched_wrong_path > 0
        assert without_wp.fetched_wrong_path == 0

    def test_load_store_forwarding_possible(self):
        builder = InstructionBuilder()
        builder.alu(dest=1, srcs=(2,))
        builder.store(value_reg=1, addr_reg=3, mem_addr=0x5000)
        builder.load(dest=4, addr_reg=3, mem_addr=0x5000)
        builder.alu(dest=5, srcs=(4,))
        stats = run_trace(make_trace("forward", builder.trace()))
        assert stats.forwarded_loads == 1

    def test_cache_miss_latency_visible(self):
        builder = InstructionBuilder()
        # Two dependent loads to far-apart addresses: cold misses reach memory.
        builder.load(dest=1, addr_reg=2, mem_addr=0x10000)
        builder.alu(dest=3, srcs=(1,))
        trace = make_trace("coldload", builder.trace())
        stats = run_trace(trace, warmup=False)
        assert stats.cycles > 60           # 1 + 12 + 50 cycle miss on the path
        assert stats.l1d_miss_rate == 1.0

    def test_warmup_removes_cold_misses(self):
        builder = InstructionBuilder()
        builder.load(dest=1, addr_reg=2, mem_addr=0x10000)
        builder.alu(dest=3, srcs=(1,))
        trace = make_trace("warmload", builder.trace())
        stats = run_trace(trace, warmup=True)
        assert stats.l1d_miss_rate == 0.0


class TestExceptions:
    def test_exceptions_taken_and_completes(self, small_gcc_trace):
        config = ProcessorConfig(warmup=False, exception_rate=0.01, seed=3)
        stats = simulate(small_gcc_trace, config, max_instructions=1500)
        assert stats.exceptions_taken > 0
        assert stats.committed_instructions >= 1500

    def test_exceptions_with_early_release_policies(self, small_swim_trace):
        for policy in ("basic", "extended"):
            config = ProcessorConfig(warmup=False, exception_rate=0.02, seed=5,
                                     release_policy=policy,
                                     num_physical_int=48, num_physical_fp=48)
            stats = simulate(small_swim_trace, config, max_instructions=1200)
            assert stats.exceptions_taken > 0
            assert stats.committed_instructions >= 1200

    def test_ipc_reported_even_with_exceptions(self, small_gcc_trace):
        config = ProcessorConfig(warmup=False, exception_rate=0.05, seed=1)
        stats = simulate(small_gcc_trace, config, max_instructions=500)
        assert stats.ipc > 0


class TestDiagnostics:
    def test_deadlock_detection(self, straightline_trace):
        processor = Processor(straightline_trace,
                              ProcessorConfig(warmup=True, enable_wrong_path=False))
        # Sabotage: make the oldest in-flight entry wait on a producer that
        # never exists, so commit can never make progress.
        for _ in range(200):
            processor.step()
            if not processor.ros.is_empty:
                break
        assert not processor.ros.is_empty
        for entry in processor.ros:
            entry.wait_producers.add(10_000_000)
        with pytest.raises(DeadlockError):
            processor.run(deadlock_threshold=500)

    def test_stats_identify_benchmark_and_policy(self, small_swim_trace):
        config = ProcessorConfig(warmup=False, release_policy="extended")
        stats = simulate(small_swim_trace, config, max_instructions=300)
        assert stats.benchmark == "swim"
        assert stats.release_policy == "extended"
