"""Tests for the processor configuration (Table 2 defaults)."""

import pytest

from repro.pipeline.config import ProcessorConfig


class TestDefaults:
    def test_table2_values(self):
        config = ProcessorConfig()
        assert config.fetch_width == 8
        assert config.commit_width == 8
        assert config.max_taken_branches_per_cycle == 2
        assert config.ros_size == 128
        assert config.lsq_size == 64
        assert config.max_pending_branches == 20
        assert config.gshare_history_bits == 18
        assert config.num_logical_int == 32 and config.num_logical_fp == 32

    def test_default_policy_is_conventional(self):
        assert ProcessorConfig().release_policy == "conv"

    def test_memory_defaults(self):
        config = ProcessorConfig()
        assert config.memory.l2.hit_latency == 12
        assert config.memory.main_memory_latency == 50


class TestValidation:
    def test_rejects_too_few_registers(self):
        with pytest.raises(ValueError):
            ProcessorConfig(num_physical_int=16)
        with pytest.raises(ValueError):
            ProcessorConfig(num_physical_fp=31)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            ProcessorConfig(release_policy="magic")

    def test_rejects_bad_exception_rate(self):
        with pytest.raises(ValueError):
            ProcessorConfig(exception_rate=1.5)

    def test_rejects_nonpositive_widths(self):
        with pytest.raises(ValueError):
            ProcessorConfig(fetch_width=0)
        with pytest.raises(ValueError):
            ProcessorConfig(ros_size=-1)

    def test_accepts_all_policies(self):
        for policy in ("conv", "conventional", "basic", "extended"):
            assert ProcessorConfig(release_policy=policy).release_policy == policy


class TestHelpers:
    def test_with_registers(self):
        config = ProcessorConfig().with_registers(num_int=48, num_fp=56)
        assert config.num_physical_int == 48
        assert config.num_physical_fp == 56

    def test_with_registers_partial(self):
        config = ProcessorConfig(num_physical_fp=80).with_registers(num_int=40)
        assert config.num_physical_int == 40 and config.num_physical_fp == 80

    def test_with_policy(self):
        assert ProcessorConfig().with_policy("extended").release_policy == "extended"

    def test_loose_tight_classification(self):
        # Paper Section 2: loose ⇔ P ≥ L + N.
        loose = ProcessorConfig(num_physical_int=160, ros_size=128)
        tight = ProcessorConfig(num_physical_int=96, ros_size=128)
        assert loose.is_loose_int and not tight.is_loose_int
        assert ProcessorConfig(num_physical_fp=160).is_loose_fp
