"""Fuzz loop determinism, report shape, and the CLI surface."""

import json

import pytest

import repro.fuzz.oracles as oracles_mod
from repro.experiments.runner import main as experiments_main
from repro.experiments.scenarios import resolve_scenario_names
from repro.fuzz.cli import fuzz_main
from repro.fuzz.oracles import OracleOutcome
from repro.fuzz.runner import run_fuzz
from repro.trace.workloads import scenario_workloads


class TestRunFuzz:
    def test_two_runs_are_identical(self):
        kwargs = dict(samples=3, oracles=("generation", "conservation"))
        first = run_fuzz(77, **kwargs).to_dict()
        second = run_fuzz(77, **kwargs).to_dict()
        first.pop("elapsed_seconds")
        second.pop("elapsed_seconds")
        assert first == second

    def test_budget_stop_is_a_prefix(self):
        # A budget-stopped run visits a prefix of the same sample
        # sequence; with a generous budget the outcomes match a
        # samples-stopped run point for point.
        by_samples = run_fuzz(77, samples=2, oracles=("generation",))
        by_both = run_fuzz(77, samples=2, budget_seconds=600,
                           oracles=("generation",))
        assert by_samples.outcomes == by_both.outcomes
        assert by_samples.stopped_by == "samples"

    def test_budget_stops_the_run(self):
        report = run_fuzz(77, budget_seconds=0.001,
                          oracles=("conservation",))
        assert report.stopped_by == "budget"

    def test_needs_a_limit(self):
        with pytest.raises(ValueError, match="sample count, a time budget"):
            run_fuzz(77)

    def test_report_dict_shape(self):
        report = run_fuzz(77, samples=1, oracles=("conservation",))
        data = report.to_dict()
        assert data["master_seed"] == 77
        assert data["samples_run"] == 1
        assert data["oracles"] == ["conservation"]
        assert data["outcomes"]["conservation"]["pass"] == 1
        assert data["failures"] == []

    def test_failure_carries_corpus_entry_and_repro(self, monkeypatch):
        def always_fail(sample, ctx):
            return OracleOutcome("fail", "synthetic failure")

        monkeypatch.setitem(oracles_mod.ORACLES, "conservation",
                            always_fail)
        report = run_fuzz(77, samples=1, oracles=("conservation",),
                          shrink_budget=10)
        assert report.failed
        failure = report.failures[0]
        entry = failure.corpus_entry()
        assert entry["scenario"]["name"] == failure.shrunk.scenario.name
        assert "repro-experiments fuzz --replay" in \
            failure.repro_command("x.json")
        # The always-failing predicate lets the shrinker reach floors.
        assert failure.shrunk.trace_length <= failure.sample.trace_length


class TestCli:
    def test_sampling_run_writes_report(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        code = fuzz_main(["--seed", "77", "--samples", "2",
                          "--oracles", "conservation",
                          "--report", str(report_path)])
        assert code == 0
        data = json.loads(report_path.read_text())
        assert data["samples_run"] == 2
        assert data["failures"] == []
        assert "conservation" in capsys.readouterr().out

    def test_dispatched_from_experiments_runner(self, capsys):
        code = experiments_main(["fuzz", "--seed", "77", "--samples", "1",
                                 "--oracles", "conservation"])
        assert code == 0
        assert "fuzz: seed=77" in capsys.readouterr().out

    def test_replay_corpus_directory(self, capsys):
        from tests.fuzz.test_corpus_replay import CORPUS_DIR
        code = fuzz_main(["--replay", str(CORPUS_DIR)])
        assert code == 0
        out = capsys.readouterr().out
        assert "replayed" in out and "0 oracle failures" in out

    def test_replay_excludes_sampling_flags(self, capsys):
        with pytest.raises(SystemExit):
            fuzz_main(["--replay", "x.json", "--samples", "5"])

    def test_needs_some_limit(self):
        with pytest.raises(SystemExit):
            fuzz_main(["--seed", "1"])

    def test_unknown_oracle_lists_known(self, capsys):
        with pytest.raises(SystemExit):
            fuzz_main(["--samples", "1", "--oracles", "quantum"])
        err = capsys.readouterr().err
        assert "unknown oracles: quantum" in err
        assert "backend, clocks, conservation, generation" in err

    def test_failures_exit_nonzero_and_write_entries(self, tmp_path,
                                                     monkeypatch, capsys):
        def always_fail(sample, ctx):
            return OracleOutcome("fail", "synthetic failure")

        monkeypatch.setitem(oracles_mod.ORACLES, "conservation",
                            always_fail)
        failure_dir = tmp_path / "failures"
        report_path = tmp_path / "report.json"
        code = fuzz_main(["--seed", "77", "--samples", "1",
                          "--oracles", "conservation",
                          "--no-shrink",
                          "--failure-dir", str(failure_dir),
                          "--report", str(report_path)])
        assert code == 1
        entries = list(failure_dir.glob("*.json"))
        assert len(entries) == 1
        entry = json.loads(entries[0].read_text())
        assert entry["oracles"] == ["conservation"]
        data = json.loads(report_path.read_text())
        assert data["failures"][0]["entry_path"] == str(entries[0])
        assert str(entries[0]) in data["failures"][0]["repro_command"]
        out = capsys.readouterr().out
        assert "corpus entry written" in out
        assert "repro: repro-experiments fuzz --replay" in out


class TestDirectedMode:
    def test_directed_run_uses_registered_scenarios(self, capsys):
        code = fuzz_main(["--seed", "77", "--samples", "2",
                          "--oracles", "conservation",
                          "--scenarios", "pointer_hop"])
        assert code == 0
        assert "directed mode" in capsys.readouterr().out

    def test_unknown_scenario_error_lists_known_sorted(self, capsys):
        """Satellite fix: the fuzz CLI shares resolve_scenario_names with
        the grid experiments, so its unknown-name error pins the same
        sorted known-scenario list."""
        with pytest.raises(SystemExit):
            fuzz_main(["--samples", "1", "--scenarios", "zz_nope"])
        err = capsys.readouterr().err
        assert "unknown scenarios: zz_nope" in err
        assert ", ".join(sorted(scenario_workloads())) in err


class TestResolveScenarioNamesSorted:
    """The shared validation path lists known scenarios in sorted order."""

    def test_unknown_name_error_is_sorted(self):
        with pytest.raises(ValueError) as err:
            resolve_scenario_names(["zz_nope"])
        message = str(err.value)
        assert f"known scenarios: {', '.join(sorted(scenario_workloads()))}" \
            in message

    def test_empty_selection_error_is_sorted(self):
        with pytest.raises(ValueError) as err:
            resolve_scenario_names([])
        assert ", ".join(sorted(scenario_workloads())) in str(err.value)

    def test_selection_returned_in_grid_order(self):
        known = scenario_workloads()
        assert resolve_scenario_names(list(reversed(known))) == known
