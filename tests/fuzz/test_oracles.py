"""Oracle outcomes: pass paths, and every skip path recorded — never a
silent pass."""

import dataclasses

import pytest

import repro.engine.accel as accel
import repro.fuzz.oracles as oracles_mod
from repro.fuzz.oracles import (DEFAULT_ORACLES, ORACLES, SampleContext,
                                ephemeral_scenario, resolve_oracle_names,
                                run_oracle)
from repro.fuzz.runner import run_fuzz
from repro.fuzz.sampling import sample
from repro.trace.workloads import has_workload


@pytest.fixture(scope="module")
def good_sample():
    """One sampled point known to pass every oracle (seeded)."""
    return sample(20260808, 0)


class TestPassPaths:
    def test_all_oracles_pass_on_good_sample(self, good_sample):
        ctx = SampleContext(good_sample)
        for name in DEFAULT_ORACLES:
            outcome = run_oracle(name, good_sample, ctx)
            assert outcome.status in ("pass", "skip"), \
                f"{name}: {outcome.detail}"
            # Only the backend oracle may legitimately skip here (no C
            # toolchain on the host); the other three must pass.
            if name != "backend":
                assert outcome.status == "pass", f"{name}: {outcome.detail}"

    def test_context_shares_python_run(self, good_sample):
        ctx = SampleContext(good_sample)
        run_oracle("clocks", good_sample, ctx)
        stats_first = ctx.python_stats()
        run_oracle("conservation", good_sample, ctx)
        assert ctx.python_stats() is stats_first


class TestGenerationSkips:
    def test_scalar_env_forces_skip(self, good_sample, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SCALAR", "1")
        outcome = run_oracle("generation", good_sample)
        assert outcome.status == "skip"
        assert "REPRO_TRACE_SCALAR" in outcome.detail

    def test_replay_probe_trip_forces_skip(self, good_sample, monkeypatch):
        monkeypatch.setattr(oracles_mod, "replay_supported", lambda: False)
        outcome = run_oracle("generation", good_sample)
        assert outcome.status == "skip"
        assert "scalar-fallback probe" in outcome.detail


class TestBackendSkips:
    def test_unsupported_config_skips_with_reason(self, good_sample):
        config = dataclasses.replace(good_sample.config,
                                     release_policy="extended",
                                     max_pending_branches=300)
        unsupported = dataclasses.replace(good_sample, config=config)
        outcome = run_oracle("backend", unsupported)
        assert outcome.status == "skip"
        assert "max_pending_branches" in outcome.detail

    def test_toolchain_fallback_skips_with_reason(self, good_sample,
                                                  monkeypatch):
        monkeypatch.setattr(accel, "resolve_engine_backend",
                            lambda config=None: "python")
        monkeypatch.setattr(accel, "backend_fallback_reason",
                            lambda: "no C compiler found")
        outcome = run_oracle("backend", good_sample)
        assert outcome.status == "skip"
        assert "no C compiler found" in outcome.detail


class TestFailurePaths:
    def test_engine_exception_is_conservation_failure(self, good_sample,
                                                      monkeypatch):
        def explode(self):
            raise RuntimeError("injected engine fault")

        monkeypatch.setattr(oracles_mod.SimulationEngine, "run", explode)
        outcome = run_oracle("conservation", good_sample)
        assert outcome.status == "fail"
        assert "injected engine fault" in outcome.detail

    def test_stats_divergence_reported_by_field(self, good_sample,
                                                monkeypatch):
        real_run = oracles_mod.SimulationEngine.run

        def skewed_run(self):
            stats = real_run(self)
            if type(self.clock).__name__ == "CycleClock":
                return dataclasses.replace(stats, cycles=stats.cycles + 1)
            return stats

        monkeypatch.setattr(oracles_mod.SimulationEngine, "run", skewed_run)
        outcome = run_oracle("clocks", good_sample)
        assert outcome.status == "fail"
        assert "cycles" in outcome.detail


class TestSkipsAreCounted:
    """Satellite: skipped oracles must appear as counts in the report."""

    def test_report_counts_generation_skips(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SCALAR", "1")
        report = run_fuzz(5, samples=2,
                          oracles=("generation", "conservation"))
        assert report.outcomes["generation"]["skip"] == 2
        assert report.outcomes["generation"]["pass"] == 0
        (reason, count), = report.skip_reasons["generation"].items()
        assert "REPRO_TRACE_SCALAR" in reason and count == 2
        # The other oracle keeps running and passing.
        assert report.outcomes["conservation"]["pass"] == 2

    def test_report_counts_backend_fallback_skips(self, monkeypatch):
        monkeypatch.setattr(accel, "resolve_engine_backend",
                            lambda config=None: "python")
        monkeypatch.setattr(accel, "backend_fallback_reason",
                            lambda: "probe compile failed")
        report = run_fuzz(5, samples=2, oracles=("backend",))
        assert report.outcomes["backend"]["skip"] == 2
        reasons = report.skip_reasons["backend"]
        assert any("probe compile failed" in reason for reason in reasons)

    def test_summary_mentions_top_skip_reason(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SCALAR", "1")
        report = run_fuzz(5, samples=2, oracles=("generation",))
        assert "REPRO_TRACE_SCALAR" in report.summary()


class TestOracleSelection:
    def test_default_selection(self):
        assert resolve_oracle_names(None) == DEFAULT_ORACLES
        assert set(DEFAULT_ORACLES) == set(ORACLES)

    def test_unknown_oracle_lists_known_sorted(self):
        with pytest.raises(ValueError) as err:
            resolve_oracle_names(("nope",))
        assert ", ".join(sorted(ORACLES)) in str(err.value)

    def test_empty_selection_rejected(self):
        with pytest.raises(ValueError, match="empty oracle selection"):
            resolve_oracle_names(())


class TestEphemeralScenario:
    def test_profile_resolvable_only_inside_block(self, good_sample):
        name = good_sample.scenario.name
        assert not has_workload(name)
        with ephemeral_scenario(good_sample.scenario):
            assert has_workload(name)
        assert not has_workload(name)

    def test_cleanup_survives_exceptions(self, good_sample):
        name = good_sample.scenario.name
        with pytest.raises(RuntimeError):
            with ephemeral_scenario(good_sample.scenario):
                raise RuntimeError("boom")
        assert not has_workload(name)
