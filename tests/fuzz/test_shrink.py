"""Shrinker behaviour against synthetic predicates (no simulation)."""

import dataclasses

from repro.fuzz.sampling import MIN_TRACE_LENGTH, sample
from repro.fuzz.shrink import shrink, shrink_trail


def find_multiphase_sample(seed=17):
    for index in range(40):
        candidate = sample(seed, index)
        if len(candidate.scenario.phases) >= 2 and \
                candidate.trace_length > 2 * MIN_TRACE_LENGTH:
            return candidate
    raise AssertionError("sampler produced no multi-phase sample in 40 draws")


class TestShrink:
    def test_trace_length_minimised(self):
        start = find_multiphase_sample()
        shrunk = shrink(start, lambda s: True, budget=200)
        assert shrunk.trace_length == MIN_TRACE_LENGTH

    def test_phases_minimised_when_failure_is_phase_independent(self):
        start = find_multiphase_sample()
        shrunk = shrink(start, lambda s: True, budget=200)
        assert len(shrunk.scenario.phases) == 1

    def test_result_always_satisfies_predicate(self):
        start = find_multiphase_sample()
        # Failure requires at least 2 phases: the shrinker must not drop
        # below that.
        predicate = lambda s: len(s.scenario.phases) >= 2  # noqa: E731
        shrunk = shrink(start, predicate, budget=200)
        assert predicate(shrunk)
        assert len(shrunk.scenario.phases) == 2

    def test_nothing_shrinkable_returns_original(self):
        start = find_multiphase_sample()
        shrunk = shrink(start, lambda s: s == start, budget=200)
        assert shrunk == start

    def test_budget_bounds_evaluations(self):
        start = find_multiphase_sample()
        calls = []

        def predicate(candidate):
            calls.append(candidate)
            return True

        shrink(start, predicate, budget=5)
        assert len(calls) <= 5

    def test_config_simplified(self):
        start = find_multiphase_sample()
        start = dataclasses.replace(
            start, config=dataclasses.replace(
                start.config, warmup=True, enable_wrong_path=True,
                exception_rate=0.01))
        # Failure depends only on the release policy, so every toggle
        # should simplify away.
        shrunk = shrink(start, lambda s: True, budget=300)
        assert shrunk.config.warmup is False
        assert shrunk.config.enable_wrong_path is False
        assert shrunk.config.exception_rate == 0.0

    def test_shrunk_candidates_stay_valid(self):
        from repro.trace.workloads import validate_scenario_profile
        start = find_multiphase_sample()
        seen = []

        def predicate(candidate):
            validate_scenario_profile(candidate.scenario)
            seen.append(candidate)
            return len(candidate.scenario.phases) >= 1

        shrink(start, predicate, budget=100)
        assert seen, "predicate never evaluated"


class TestShrinkTrail:
    def test_trail_names_reductions(self):
        start = find_multiphase_sample()
        shrunk = shrink(start, lambda s: True, budget=200)
        notes = " | ".join(shrink_trail(start, shrunk))
        assert "trace length" in notes
        assert "phases" in notes

    def test_trail_for_identical_samples(self):
        start = find_multiphase_sample()
        assert shrink_trail(start, start) == ["already minimal"]
