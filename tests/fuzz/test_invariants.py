"""The engine probe hook and the conservation invariant checks."""

import dataclasses

import pytest

from repro.engine.clock import CycleClock, EventClock
from repro.engine.engine import SimulationEngine
from repro.fuzz.invariants import (DEEP_CHECK_INTERVAL, InvariantProbe,
                                   InvariantViolation)
from repro.pipeline.config import ProcessorConfig
from repro.trace.workloads import get_workload


@pytest.fixture(scope="module")
def small_trace():
    return get_workload("compress", 600, seed=0)


def small_config(**overrides):
    overrides.setdefault("engine", "python")
    return ProcessorConfig(warmup=False, **overrides)


class TestProbeHook:
    def test_probe_sees_every_cycle_under_cycleclock(self, small_trace):
        probe = InvariantProbe()
        engine = SimulationEngine(small_trace, small_config(),
                                  clock=CycleClock(), probe=probe)
        stats = engine.run()
        assert probe.cycles_probed == stats.cycles
        assert probe.deep_checks == stats.cycles // DEEP_CHECK_INTERVAL

    def test_probe_skips_fast_forwarded_cycles_under_eventclock(
            self, small_trace):
        probe = InvariantProbe()
        engine = SimulationEngine(small_trace, small_config(),
                                  clock=EventClock(), probe=probe)
        stats = engine.run()
        # The event clock jumps quiescent gaps; the probe only sees the
        # executed cycles.
        assert 0 < probe.cycles_probed <= stats.cycles

    def test_probe_pins_the_python_engine(self, small_trace):
        # With a probe attached the compiled core must not be dispatched:
        # the probe reads per-cycle Python state the C core never builds.
        probe = InvariantProbe()
        engine = SimulationEngine(small_trace,
                                  small_config(engine="compiled"),
                                  probe=probe)
        engine.run()
        assert engine.backend_used == "python"
        assert probe.cycles_probed > 0

    def test_step_calls_probe(self, small_trace):
        calls = []
        engine = SimulationEngine(small_trace, small_config(),
                                  probe=lambda state: calls.append(
                                      state.cycle))
        engine.step()
        engine.step()
        assert calls == [1, 2]

    def test_no_probe_no_overhead_path(self, small_trace):
        # Without a probe the run still completes identically (guard for
        # the hoisted `probe is None` fast path).
        base = SimulationEngine(small_trace, small_config(),
                                clock=CycleClock()).run()
        probed_engine = SimulationEngine(small_trace, small_config(),
                                         clock=CycleClock(),
                                         probe=InvariantProbe())
        probed = probed_engine.run()
        assert dataclasses.asdict(base) == dataclasses.asdict(probed)


class TestInvariantChecks:
    def run_probed(self, trace, config):
        probe = InvariantProbe()
        engine = SimulationEngine(trace, config, clock=CycleClock(),
                                  probe=probe)
        stats = engine.run()
        return probe, engine, stats

    def test_clean_run_passes_final_check(self, small_trace):
        probe, engine, stats = self.run_probed(small_trace, small_config())
        probe.final_check(engine.state, stats)   # must not raise

    @pytest.mark.parametrize("policy", ["conv", "basic", "extended"])
    def test_all_policies_pass(self, small_trace, policy):
        probe, engine, stats = self.run_probed(
            small_trace, small_config(release_policy=policy,
                                      num_physical_int=40,
                                      num_physical_fp=40))
        probe.final_check(engine.state, stats)

    def test_final_check_catches_stat_identity_violation(self, small_trace):
        probe, engine, stats = self.run_probed(small_trace, small_config())
        skewed = dataclasses.replace(
            stats, fetched_instructions=stats.committed_instructions - 1)
        with pytest.raises(InvariantViolation, match="fetched"):
            probe.final_check(engine.state, skewed)

    def test_final_check_catches_commit_shortfall(self, small_trace):
        probe, engine, stats = self.run_probed(small_trace, small_config())
        skewed = dataclasses.replace(
            stats, committed_instructions=stats.committed_instructions - 1)
        with pytest.raises(InvariantViolation, match="committed"):
            probe.final_check(engine.state, skewed)

    def test_deep_check_catches_freelist_disagreement(self, small_trace):
        from repro.isa import RegClass
        probe, engine, stats = self.run_probed(small_trace, small_config())
        free_list = engine.state.register_files[RegClass.INT].free_list
        # Corrupt the bookkeeping: flag a free register as allocated
        # without touching the deque.
        victim = free_list._free[0]
        free_list._is_free[victim] = False
        try:
            with pytest.raises(InvariantViolation, match="disagrees"):
                probe.deep_check(engine.state)
        finally:
            free_list._is_free[victim] = True

    def test_release_queue_liveness_catches_scheduled_free_register(
            self, small_trace):
        from repro.isa import RegClass
        config = small_config(release_policy="extended",
                              num_physical_int=40, num_physical_fp=40)
        probe = InvariantProbe()
        engine = SimulationEngine(small_trace, config, clock=CycleClock(),
                                  probe=probe)
        engine.run()
        state = engine.state
        policy = state.policies[RegClass.INT]
        free_list = state.register_files[RegClass.INT].free_list
        free_physical = free_list._free[0]
        # Plant an RwNS scheduling for a register that is already free —
        # the double-release-in-flight shape the deep check exists for.
        policy.release_queue.push_level(10**9)
        policy.release_queue.schedule_committed_lu(free_physical, 1, 10**9)
        with pytest.raises(InvariantViolation, match="already.*free|free"):
            probe.deep_check(state)
