"""Mutation smoke test: the fuzzer must catch a reintroduced known bug.

The PR-4 extended-policy fix added a special case to
``ExtendedEarlyRelease.rename_destination`` for instructions that are the
last use of their *own* destination register (the ``p = p->next`` load of
a pointer chase): without it, the self-LU misses the seq index (its ROS
entry is published only after rename) and the defensive "treat an unknown
LU as committed" fallback schedules an RwNS release of a register whose
definer is still in flight — an exception flush then double-releases it
(``FreeListError``).

This test monkeypatches the pre-fix body back in and asserts the
conservation oracle finds the bug within a fixed seeded budget, that the
shrinker reduces the trigger, and that the shrunk trigger passes again on
the real (fixed) code.  If this test ever fails, the fuzzing harness has
lost its teeth — that is a bigger problem than any single oracle bug.
"""

import pytest

from repro.core.extended import ExtendedEarlyRelease, _slot_bit
from repro.core.release_policy import DestRenameOutcome
from repro.fuzz.runner import run_fuzz
from repro.fuzz.sampling import MIN_TRACE_LENGTH

#: Seed found to trigger the reintroduced bug within a handful of
#: samples (first failure at sample index 4; six failures in the first
#: thirty samples).  Sampling is a pure function of (seed, index), so
#: this stays stable unless the sampler itself changes.
TRIGGER_SEED = 1
SAMPLE_BUDGET = 5


def buggy_rename_destination(self, entry, logical, old_pd):
    """The pre-PR-4 body: no self-last-use special case."""
    if self.map_table.is_stale(logical):
        return DestRenameOutcome(release_previous_at_commit=False)
    lu = self.lus_table.lookup(logical)
    pending = self.view.count_pending_branches()
    lu_committed = lu is None or lu.seq <= self.view.committed_watermark
    if lu_committed:
        if pending == 0:
            if self.options.reuse_on_committed_lu:
                self.register_reuses += 1
                return DestRenameOutcome(reuse_previous=True,
                                         release_previous_at_commit=False)
            self._release_physical(old_pd, logical,
                                   self.view.current_cycle(), early=True)
            self.immediate_releases += 1
            return DestRenameOutcome(released_immediately=True,
                                     release_previous_at_commit=False)
        self.release_queue.schedule_committed_lu(old_pd, logical, entry.seq)
        self.conditional_schedulings += 1
        return DestRenameOutcome(scheduled_early=True,
                                 release_previous_at_commit=False)
    # BUG under test: a self-LU (lu.seq == entry.seq) is not yet in the
    # seq index, so it falls into the unknown-LU fallback below.
    lu_entry = self.view.ros_entry(lu.seq)
    if lu_entry is None:
        if pending == 0:
            self._release_physical(old_pd, logical,
                                   self.view.current_cycle(), early=True)
            self.immediate_releases += 1
            return DestRenameOutcome(released_immediately=True,
                                     release_previous_at_commit=False)
        self.release_queue.schedule_committed_lu(old_pd, logical, entry.seq)
        self.conditional_schedulings += 1
        return DestRenameOutcome(scheduled_early=True,
                                 release_previous_at_commit=False)
    bit = _slot_bit(lu.slot)
    _cls, physical, _logical = lu_entry.physical_of_slot(bit)
    assert physical == old_pd
    if pending == 0:
        lu_entry.early_release_mask |= bit
        self.early_releases_scheduled += 1
        return DestRenameOutcome(scheduled_early=True,
                                 release_previous_at_commit=False)
    self.release_queue.schedule_inflight_lu(lu.seq, bit, entry.seq)
    self.conditional_schedulings += 1
    return DestRenameOutcome(scheduled_early=True,
                             release_previous_at_commit=False)


@pytest.fixture
def reintroduced_bug(monkeypatch):
    monkeypatch.setattr(ExtendedEarlyRelease, "rename_destination",
                        buggy_rename_destination)


class TestMutationSmoke:
    def test_conservation_oracle_finds_the_bug(self, reintroduced_bug):
        report = run_fuzz(TRIGGER_SEED, samples=SAMPLE_BUDGET,
                          oracles=("conservation",), shrink_failures=False)
        assert report.failed, (
            "the conservation oracle missed the reintroduced self-LU "
            "double-release bug — the fuzzing harness has lost its teeth")
        failure = report.failures[0]
        assert "FreeListError" in failure.detail
        assert "double release" in failure.detail

    def test_failure_shrinks(self, reintroduced_bug):
        report = run_fuzz(TRIGGER_SEED, samples=SAMPLE_BUDGET,
                          oracles=("conservation",), shrink_failures=True,
                          shrink_budget=40)
        failure = report.failures[0]
        # The original trigger is a 3-phase, >1600-instruction sample;
        # the shrinker must make real progress on it.
        assert failure.shrunk.trace_length < failure.sample.trace_length
        assert failure.shrunk.trace_length == MIN_TRACE_LENGTH
        assert len(failure.shrunk.scenario.phases) < \
            len(failure.sample.scenario.phases)
        # The shrunk sample still fails, for the same reason family.
        assert "double release" in failure.shrunk_detail
        assert failure.shrink_notes != ["already minimal"]

    def test_failure_report_carries_repro_artifacts(self, reintroduced_bug):
        report = run_fuzz(TRIGGER_SEED, samples=SAMPLE_BUDGET,
                          oracles=("conservation",), shrink_failures=True,
                          shrink_budget=40)
        failure = report.failures[0]
        entry = failure.corpus_entry()
        assert entry["format"] == 1
        assert entry["oracles"] == ["conservation"]
        assert "fuzz seed=1" in entry["comment"]
        assert "--replay" in failure.repro_command("entry.json")
        assert "--oracles conservation" in failure.repro_command()

    def test_fixed_code_passes_the_same_samples(self):
        # Without the monkeypatch the identical seeded run is clean —
        # i.e. the detection above is the mutation, not sampler noise.
        report = run_fuzz(TRIGGER_SEED, samples=SAMPLE_BUDGET,
                          oracles=("conservation",), shrink_failures=False)
        assert not report.failed, report.failures[0].detail
        assert report.outcomes["conservation"]["pass"] == SAMPLE_BUDGET
