"""The committed corpus replays green, and the entry format is checked.

Every file under ``tests/fuzz/corpus/`` is a shrunk trigger of a bug that
was found by the fuzzer and then fixed; replaying them through their
pinned oracles on every test run keeps those regressions dead.  The
backend oracle may skip (no C toolchain); any other non-pass is a
failure.
"""

import json
from pathlib import Path

import pytest

from repro.fuzz.corpus import (CORPUS_FORMAT, entry_from_dict, load_corpus,
                               load_corpus_file, sample_to_entry_dict)
from repro.fuzz.runner import replay_corpus
from repro.fuzz.sampling import sample

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS_FILES = sorted(CORPUS_DIR.glob("*.json"))


def test_corpus_is_not_empty():
    assert CORPUS_FILES, f"no committed corpus entries under {CORPUS_DIR}"


@pytest.mark.parametrize("path", CORPUS_FILES,
                         ids=[path.stem for path in CORPUS_FILES])
def test_corpus_entry_replays_green(path):
    entry = load_corpus_file(path)
    assert entry.comment, f"{path}: corpus entries must say what they pin"
    result = replay_corpus([entry])[0]
    for oracle, status in result.statuses.items():
        if status == "skip":
            assert oracle == "backend", (
                f"{path}: {oracle} skipped ({result.details[oracle]}) — "
                f"only the backend oracle may skip on replay")
            continue
        assert status == "pass", (
            f"{path}: pinned regression is back — {oracle}: "
            f"{result.details[oracle]}")


def test_load_corpus_directory():
    entries = load_corpus(CORPUS_DIR)
    assert len(entries) == len(CORPUS_FILES)
    names = [entry.sample.scenario.name for entry in entries]
    assert len(set(names)) == len(names)


class TestEntryFormat:
    def entry(self):
        return sample_to_entry_dict(sample(1, 0), ("conservation",),
                                    comment="format test")

    def test_round_trip(self):
        original = sample(1, 0)
        data = json.loads(json.dumps(self.entry()))
        assert entry_from_dict(data).sample == original

    def test_wrong_format_version(self):
        data = self.entry()
        data["format"] = CORPUS_FORMAT + 1
        with pytest.raises(ValueError, match="unsupported corpus format"):
            entry_from_dict(data, source="x.json")

    def test_unknown_keys_named(self):
        data = self.entry()
        data["extra"] = 1
        with pytest.raises(ValueError, match="unknown corpus keys.*extra"):
            entry_from_dict(data)

    def test_missing_scenario_named(self):
        data = self.entry()
        del data["scenario"]
        with pytest.raises(ValueError, match="missing required key "
                                             "'scenario'"):
            entry_from_dict(data)

    def test_bad_trace_length(self):
        data = self.entry()
        data["trace_length"] = -5
        with pytest.raises(ValueError, match="trace_length"):
            entry_from_dict(data)

    def test_unknown_oracle_rejected(self):
        data = self.entry()
        data["oracles"] = ["conservation", "nope"]
        with pytest.raises(ValueError, match="unknown oracles: nope"):
            entry_from_dict(data)

    def test_unknown_config_field_rejected(self):
        data = self.entry()
        data["config"]["not_a_field"] = 3
        with pytest.raises(ValueError, match="unknown config fields"):
            entry_from_dict(data)

    def test_scenario_errors_name_the_field(self):
        # Malformed scenario blocks go through parse_scenario_config, so
        # its field-naming errors surface with the entry as the source.
        data = self.entry()
        data["scenario"]["phases"][0]["kernel"] = "warp_drive"
        with pytest.raises(ValueError, match="unknown kernel 'warp_drive'"):
            entry_from_dict(data, source="bad.json")

    def test_invalid_json_file_reports_path(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="broken.json.*not valid JSON"):
            load_corpus_file(path)

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="no \\*.json corpus entries"):
            load_corpus(tmp_path)
