"""Sampler properties: determinism, validity, and plain-Python values."""

import dataclasses

import pytest

from repro.fuzz.sampling import (CONFIG_FIELDS, MIN_TRACE_LENGTH, FuzzSample,
                                 config_from_overrides, config_overrides,
                                 sample, sample_config, sample_profile,
                                 sample_rng)
from repro.pipeline.config import ProcessorConfig
from repro.trace.workloads import (get_scenario, profile_digest,
                                   validate_scenario_profile)


class TestDeterminism:
    def test_same_seed_same_sample(self):
        assert sample(42, 7) == sample(42, 7)

    def test_sample_depends_only_on_seed_and_index(self):
        # Sample i must not depend on how many samples were drawn before
        # it (budget-stopped runs must be a prefix of longer ones).
        direct = sample(11, 5)
        after_others = [sample(11, i) for i in range(6)][5]
        assert direct == after_others

    def test_different_indices_differ(self):
        assert sample(42, 0) != sample(42, 1)

    def test_different_seeds_differ(self):
        assert sample(1, 0) != sample(2, 0)


class TestValidity:
    @pytest.mark.parametrize("index", range(8))
    def test_profiles_validate(self, index):
        fuzz_sample = sample(3, index)
        validate_scenario_profile(fuzz_sample.scenario)

    @pytest.mark.parametrize("index", range(8))
    def test_configs_are_tight_but_legal(self, index):
        config = sample(3, index).config
        assert config.num_physical_int > 32
        assert config.num_physical_fp > 32
        assert config.ros_size >= 16
        assert config.max_pending_branches >= 2
        assert config.release_policy in ("conv", "basic", "extended")
        assert config.engine == "auto"

    @pytest.mark.parametrize("index", range(8))
    def test_trace_length_floor(self, index):
        assert sample(3, index).trace_length >= MIN_TRACE_LENGTH

    def test_suite_tracks_fp_kernels(self):
        for index in range(20):
            scenario = sample(5, index).scenario
            has_fp = any(phase.kernel in ("streaming", "stencil")
                         for phase in scenario.phases)
            assert scenario.suite == ("fp" if has_fp else "int")


class TestPlainPythonValues:
    """numpy scalars in a frozen profile would change its repr — and the
    repr is the content digest that keys every cache layer."""

    def test_no_numpy_scalars_in_profile_repr(self):
        for index in range(10):
            fuzz_sample = sample(9, index)
            for text in (repr(fuzz_sample.scenario),
                         repr(fuzz_sample.config)):
                assert "np." not in text and "numpy" not in text

    def test_digest_stable_across_processes_shape(self):
        # Two independent draws of the same sample digest identically.
        a = sample(13, 2).scenario
        b = sample(13, 2).scenario
        assert profile_digest(a) == profile_digest(b)


class TestDirectedMode:
    def test_pool_profile_used_config_still_sampled(self):
        pool = [get_scenario("pointer_hop"), get_scenario("branch_storm")]
        s0 = sample(4, 0, scenario_pool=pool)
        s1 = sample(4, 1, scenario_pool=pool)
        assert s0.scenario.name == "pointer_hop"
        assert s1.scenario.name == "branch_storm"
        assert s0.config != s1.config

    def test_directed_mode_is_index_aligned_with_random_mode(self):
        # The profile draws are burnt, so config/length/seed match the
        # random-mode sample at the same index.
        pool = [get_scenario("pointer_hop")]
        directed = sample(4, 3, scenario_pool=pool)
        random_mode = sample(4, 3)
        assert directed.config == random_mode.config
        assert directed.trace_length == random_mode.trace_length
        assert directed.trace_seed == random_mode.trace_seed


class TestConfigOverrides:
    def test_round_trip(self):
        for index in range(6):
            config = sample(8, index).config
            rebuilt = config_from_overrides(config_overrides(config))
            assert rebuilt == config

    def test_only_non_default_fields_serialised(self):
        overrides = config_overrides(ProcessorConfig())
        assert overrides == {}

    def test_unknown_fields_rejected_by_name(self):
        with pytest.raises(ValueError, match="unknown config fields.*bogus"):
            config_from_overrides({"bogus": 1}, source="here")

    def test_non_fuzzable_field_rejected(self):
        # 'engine' is deliberately not fuzzable (each oracle pins its own
        # backend); the corpus loader must refuse it.
        assert "engine" not in CONFIG_FIELDS
        with pytest.raises(ValueError, match="unknown config fields"):
            config_from_overrides({"engine": "compiled"})


class TestDescribe:
    def test_describe_mentions_the_load_bearing_knobs(self):
        fuzz_sample = sample(2, 0)
        text = fuzz_sample.describe()
        assert fuzz_sample.scenario.name in text
        assert f"len={fuzz_sample.trace_length}" in text
        assert fuzz_sample.config.release_policy in text

    def test_sample_replace_supported(self):
        fuzz_sample = sample(2, 1)
        shorter = dataclasses.replace(fuzz_sample, trace_length=400)
        assert isinstance(shorter, FuzzSample)
        assert shorter.trace_length == 400


def test_sample_rng_streams_are_disjoint():
    a = sample_rng(1, 0).integers(0, 1 << 62, size=4).tolist()
    b = sample_rng(1, 1).integers(0, 1 << 62, size=4).tolist()
    c = sample_rng(2, 0).integers(0, 1 << 62, size=4).tolist()
    assert a != b and a != c and b != c


def test_sample_profile_and_config_draw_from_one_stream():
    rng = sample_rng(6, 0)
    profile = sample_profile(rng, "fuzz.x")
    config = sample_config(rng)
    validate_scenario_profile(profile)
    assert config.release_policy in ("conv", "basic", "extended")
