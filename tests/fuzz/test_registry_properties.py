"""Property tests of the scenario registry's staleness guarantees.

Random (hypothesis-generated) profile edits drive the content-keyed
identity chain end to end: re-registering a changed profile under the
same name must never serve a stale memoised trace, and must move the
on-disk sweep-cache key; registering identical content must keep hitting.
Plus: ``register_scenario_file`` rejects malformed TOML/JSON configs with
errors that name the offending field.
"""

import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cache import point_key
from repro.analysis.sweep import SweepConfig, SweepPoint
from repro.trace.workloads import (SCENARIOS, KernelParams, ScenarioPhase,
                                   ScenarioProfile, generate_scenario_trace,
                                   get_workload, profile_digest,
                                   register_scenario, register_scenario_file,
                                   unregister_scenario, workload_digest)

NAME = "fuzzprop.scn"

#: Editable knobs the property tests mutate, with their legal draw range.
#: All behaviour-bearing: any change must move the content digest.
knob_strategy = st.sampled_from([
    ("chain_len", st.integers(1, 4)),
    ("trip_count", st.integers(8, 64)),
    ("int_window", st.integers(4, 10)),
    ("branch_bias", st.floats(0.55, 0.95, allow_nan=False).map(
        lambda value: round(value, 3))),
])


def make_profile(phase_length=300, **param_overrides):
    param_overrides.setdefault("trip_count", 16)
    params = KernelParams(pc_base=0x500000, data_base=0x50_00000,
                          **param_overrides)
    return ScenarioProfile(
        name=NAME, suite="int", phase_length=phase_length,
        phases=(ScenarioPhase("int_compute", params),))


@pytest.fixture
def clean_registry():
    before = dict(SCENARIOS)
    yield
    SCENARIOS.clear()
    SCENARIOS.update(before)


class TestStaleTraceImpossible:
    @settings(max_examples=15, deadline=None)
    @given(knob=knob_strategy, data=st.data())
    def test_reregistration_never_serves_stale_trace(self, knob, data):
        field, strategy = knob
        value_a = data.draw(strategy, label="first value")
        value_b = data.draw(
            strategy.filter(lambda candidate: candidate != value_a),
            label="changed value")
        before = dict(SCENARIOS)
        try:
            register_scenario(make_profile(**{field: value_a}))
            trace_a = get_workload(NAME, 600, seed=0)
            unregister_scenario(NAME)
            register_scenario(make_profile(**{field: value_b}))
            trace_b = get_workload(NAME, 600, seed=0)
            # The memoised trace is keyed by profile *content*: the
            # second lookup regenerates instead of serving trace_a.
            expected = generate_scenario_trace(
                make_profile(**{field: value_b}), 600, seed=0)
            assert list(trace_b.instructions) == list(expected.instructions)
        finally:
            SCENARIOS.clear()
            SCENARIOS.update(before)

    @settings(max_examples=15, deadline=None)
    @given(knob=knob_strategy, data=st.data())
    def test_content_digest_round_trip(self, knob, data):
        field, strategy = knob
        value_a = data.draw(strategy, label="first value")
        value_b = data.draw(
            strategy.filter(lambda candidate: candidate != value_a),
            label="changed value")
        digest_a = profile_digest(make_profile(**{field: value_a}))
        digest_b = profile_digest(make_profile(**{field: value_b}))
        digest_a_again = profile_digest(make_profile(**{field: value_a}))
        assert digest_a != digest_b, field
        assert digest_a == digest_a_again

    def test_identical_reregistration_keeps_cache_hit(self, clean_registry):
        register_scenario(make_profile(chain_len=2))
        trace_a = get_workload(NAME, 600, seed=0)
        unregister_scenario(NAME)
        register_scenario(make_profile(chain_len=2))
        trace_b = get_workload(NAME, 600, seed=0)
        assert trace_a is trace_b  # same content -> same memoised object


class TestSweepCacheKey:
    def _key(self, profile):
        sweep = SweepConfig(benchmarks=(NAME,), policies=("conv",),
                            register_sizes=(48,), trace_length=600,
                            scenario_profiles=(profile,))
        return point_key(sweep, SweepPoint(NAME, "conv", 48))

    @settings(max_examples=10, deadline=None)
    @given(knob=knob_strategy, data=st.data())
    def test_point_key_tracks_profile_content(self, knob, data):
        field, strategy = knob
        value_a = data.draw(strategy, label="first value")
        value_b = data.draw(
            strategy.filter(lambda candidate: candidate != value_a),
            label="changed value")
        key_a = self._key(make_profile(**{field: value_a}))
        key_b = self._key(make_profile(**{field: value_b}))
        assert key_a != key_b, field
        assert key_a == self._key(make_profile(**{field: value_a}))

    def test_workload_digest_prefers_ephemeral_profile(self, clean_registry):
        register_scenario(make_profile(chain_len=1))
        registered = workload_digest(NAME)
        shipped = workload_digest(NAME, (make_profile(chain_len=3),))
        assert registered != shipped


class TestScenarioFileErrors:
    """register_scenario_file must reject malformed configs naming the
    offending field — a typo'd scenario file can never half-register."""

    GOOD = """
[[scenarios]]
name = "filecase"
suite = "int"
phase_length = 300

[[scenarios.phases]]
kernel = "int_compute"
params = {{ pc_base = 0x600000, data_base = 0x6000000, {extra} }}
"""

    @pytest.mark.skipif(sys.version_info < (3, 11),
                        reason="TOML configs need tomllib")
    @pytest.mark.parametrize("extra, message", [
        ("chain_lenn = 2", "unknown kernel parameters.*chain_lenn"),
        ("chain_len = 2.5", "'chain_len' must be an int"),
        ("branch_bias = \"high\"", "'branch_bias' must be a number"),
    ])
    def test_toml_param_errors_name_the_field(self, tmp_path, extra,
                                              message, clean_registry):
        path = tmp_path / "bad.toml"
        path.write_text(self.GOOD.format(extra=extra))
        with pytest.raises(ValueError, match=message):
            register_scenario_file(path)
        assert "filecase" not in SCENARIOS

    def test_json_unknown_scenario_key_named(self, tmp_path,
                                             clean_registry):
        path = tmp_path / "bad.json"
        path.write_text('{"scenarios": [{"name": "filecase", "suite": '
                        '"int", "phasez": []}]}')
        with pytest.raises(ValueError, match="unknown scenario keys.*"
                                             "phasez"):
            register_scenario_file(path)
        assert "filecase" not in SCENARIOS

    def test_json_syntax_error_names_file(self, tmp_path):
        path = tmp_path / "syntax.json"
        path.write_text('{"scenarios": [')
        with pytest.raises(ValueError, match="syntax.json.*not valid JSON"):
            register_scenario_file(path)
