"""Helpers for the repro-lint test suite.

Two project-building styles:

* :func:`make_project` writes hand-written fixture files into a scratch
  ``src/repro`` layout — used to trip each rule on minimal examples;
* the ``real_tree_copy`` fixture (see ``conftest.py``) copies the real
  files a cross-file checker reads into the scratch layout — used by the
  mutation tests, which delete one field/slot/ingredient with
  :func:`mutate` and assert the checker notices.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict

from repro.checks.base import Project

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Everything the stats-abi and cache-key checkers read.
CROSS_FILE_INPUTS = (
    "src/repro/pipeline/stats.py",
    "src/repro/pipeline/config.py",
    "src/repro/engine/accel/core.c",
    "src/repro/engine/accel/loader.py",
    "src/repro/engine/accel/compiled.py",
    "src/repro/engine/accel/__init__.py",
    "src/repro/analysis/cache.py",
)


def make_project(root: Path, files: Dict[str, str]) -> Project:
    """Materialise ``files`` (repo-relative path -> text) under ``root``."""
    (root / "src" / "repro").mkdir(parents=True, exist_ok=True)
    for rel, content in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content, encoding="utf-8")
    return Project(root)


def copy_real_inputs(root: Path) -> Path:
    """Seed ``root`` with the real cross-file checker inputs."""
    for rel in CROSS_FILE_INPUTS:
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text((REPO_ROOT / rel).read_text(encoding="utf-8"),
                          encoding="utf-8")
    return root


def mutate(root: Path, rel: str, old: str, new: str) -> None:
    """Replace ``old`` with ``new`` in one scratch-project file (must
    match exactly once, so a refactor of the real file fails loudly
    here instead of silently testing nothing)."""
    path = root / rel
    text = path.read_text(encoding="utf-8")
    assert text.count(old) == 1, f"{rel}: expected exactly one {old!r}"
    path.write_text(text.replace(old, new), encoding="utf-8")
