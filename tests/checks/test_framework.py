"""Framework behaviour: suppressions, baseline, JSON report, exit codes."""

from __future__ import annotations

import json

import pytest

from repro.checks.base import (BASELINE_NAME, CHECKERS, Baseline, Project,
                               run_checks)
from repro.checks.cli import main as lint_main

from lint_helpers import make_project

#: A determinism violation used as the standard "one finding" fixture.
DIRTY = "src/repro/engine/dirty.py"
DIRTY_TEXT = "import random\n\nvalue = random.random()\n"


def test_all_five_rules_registered():
    assert set(CHECKERS) == {"determinism", "stats-abi", "cache-key",
                             "async-blocking", "except-swallow"}
    for checker in CHECKERS.values():
        assert checker.description


def test_finding_fingerprint_ignores_line_numbers(tmp_path):
    project = make_project(tmp_path, {DIRTY: DIRTY_TEXT})
    first = run_checks(project, rules=["determinism"]).findings

    shifted = make_project(tmp_path / "other",
                           {DIRTY: "# a new comment line\n" + DIRTY_TEXT})
    second = run_checks(shifted, rules=["determinism"]).findings
    assert [f.fingerprint for f in first] == [f.fingerprint for f in second]
    assert first[0].line != second[0].line


def test_line_suppression_with_reason(tmp_path):
    text = ("import random\n\n"
            "value = random.random()  "
            "# repro-lint: disable=determinism -- fixture needs raw entropy\n")
    project = make_project(tmp_path, {DIRTY: text})
    result = run_checks(project, rules=["determinism"])
    assert result.clean
    assert [(f.rule, reason) for f, reason in result.suppressed] == \
        [("determinism", "fixture needs raw entropy")]


def test_file_suppression_covers_whole_file(tmp_path):
    text = ("# repro-lint: disable=determinism -- benchmark helper, "
            "not simulation\n"
            "import random\n\n"
            "a = random.random()\n"
            "b = random.random()\n")
    project = make_project(tmp_path, {DIRTY: text})
    result = run_checks(project, rules=["determinism"])
    assert result.clean
    assert len(result.suppressed) == 2


def test_suppression_without_reason_is_reported_and_ignored(tmp_path):
    text = ("import random\n\n"
            "value = random.random()  # repro-lint: disable=determinism\n")
    project = make_project(tmp_path, {DIRTY: text})
    result = run_checks(project, rules=["determinism"])
    rules = sorted(f.rule for f in result.findings)
    assert rules == ["bad-suppression", "determinism"]


def test_suppression_of_unknown_rule_is_reported(tmp_path):
    text = "# repro-lint: disable=made-up-rule -- because\n"
    project = make_project(tmp_path, {"src/repro/clean.py": text})
    result = run_checks(project, rules=["determinism"])
    assert [f.rule for f in result.findings] == ["bad-suppression"]
    assert "made-up-rule" in result.findings[0].message


def test_bad_suppression_found_in_files_without_findings(tmp_path):
    """A malformed suppression must surface even in an otherwise clean
    file — otherwise it hides until the rule it disables first fires."""
    project = make_project(tmp_path, {
        "src/repro/quiet.py": "# repro-lint: disable=determinism\nx = 1\n"})
    result = run_checks(project, rules=["stats-abi"])
    assert any(f.rule == "bad-suppression" for f in result.findings)


def test_baseline_matches_and_reports_stale(tmp_path):
    project = make_project(tmp_path, {DIRTY: DIRTY_TEXT})
    first = run_checks(project, rules=["determinism"])
    assert not first.clean

    baseline = Baseline.from_findings(first.findings,
                                      justifications={
                                          first.findings[0].fingerprint:
                                          "grandfathered fixture"})
    second = run_checks(project, rules=["determinism"], baseline=baseline)
    assert second.clean
    assert len(second.baselined) == 1
    assert second.stale_baseline == []

    # Fix the finding: its baseline entry must be flagged as stale.
    (tmp_path / DIRTY).write_text("value = 4\n", encoding="utf-8")
    third = run_checks(Project(tmp_path), rules=["determinism"],
                       baseline=baseline)
    assert third.clean
    assert len(third.stale_baseline) == 1


def test_baseline_round_trips_through_disk(tmp_path):
    project = make_project(tmp_path, {DIRTY: DIRTY_TEXT})
    findings = run_checks(project, rules=["determinism"]).findings
    path = tmp_path / BASELINE_NAME
    Baseline.from_findings(findings).dump(path)
    loaded = Baseline.load(path)
    assert set(loaded.entries) == {f.fingerprint for f in findings}
    assert json.loads(path.read_text())["version"] == 1


def test_baseline_load_rejects_garbage(tmp_path):
    path = tmp_path / BASELINE_NAME
    path.write_text("not json at all", encoding="utf-8")
    with pytest.raises(ValueError):
        Baseline.load(path)
    path.write_text(json.dumps({"version": 99, "entries": []}),
                    encoding="utf-8")
    with pytest.raises(ValueError):
        Baseline.load(path)


def test_missing_baseline_is_empty(tmp_path):
    assert Baseline.load(tmp_path / "nope.json").entries == {}


def test_unknown_rule_raises(tmp_path):
    project = make_project(tmp_path, {})
    with pytest.raises(ValueError, match="unknown rule"):
        run_checks(project, rules=["not-a-rule"])


def test_result_json_shape(tmp_path):
    project = make_project(tmp_path, {DIRTY: DIRTY_TEXT})
    payload = run_checks(project, rules=["determinism"]).to_dict()
    assert payload["version"] == 1
    assert payload["clean"] is False
    assert payload["rules"] == ["determinism"]
    finding = payload["findings"][0]
    assert set(finding) == {"rule", "path", "line", "message", "fingerprint"}
    assert finding["path"] == DIRTY


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_exit_codes(tmp_path, capsys):
    make_project(tmp_path, {DIRTY: DIRTY_TEXT})
    assert lint_main(["--root", str(tmp_path)]) == 1
    assert "determinism" in capsys.readouterr().out

    clean_root = tmp_path / "clean"
    make_project(clean_root, {"src/repro/ok.py": "x = 1\n"})
    assert lint_main(["--root", str(clean_root),
                      "--rules", "determinism,except-swallow"]) == 0

    assert lint_main(["--root", str(tmp_path), "--rules", "bogus"]) == 2
    assert lint_main(["--root", str(tmp_path / "no-such-dir")]) == 2


def test_cli_json_output_and_artifact(tmp_path, capsys):
    make_project(tmp_path, {DIRTY: DIRTY_TEXT})
    artifact = tmp_path / "out" / "report.json"
    code = lint_main(["--root", str(tmp_path), "--format", "json",
                      "--output", str(artifact), "--rules", "determinism"])
    assert code == 1
    on_stdout = json.loads(capsys.readouterr().out)
    on_disk = json.loads(artifact.read_text())
    assert on_stdout == on_disk
    assert on_disk["findings"][0]["rule"] == "determinism"


def test_cli_write_baseline_then_clean(tmp_path, capsys):
    make_project(tmp_path, {DIRTY: DIRTY_TEXT})
    assert lint_main(["--root", str(tmp_path), "--rules", "determinism",
                      "--write-baseline"]) == 0
    capsys.readouterr()
    assert lint_main(["--root", str(tmp_path),
                      "--rules", "determinism"]) == 0
    assert "baselined" in capsys.readouterr().out
    entries = json.loads((tmp_path / BASELINE_NAME).read_text())["entries"]
    assert len(entries) == 1
    assert entries[0]["justification"]  # never written empty


def test_cli_stale_baseline_fails_run(tmp_path, capsys):
    make_project(tmp_path, {DIRTY: DIRTY_TEXT})
    assert lint_main(["--root", str(tmp_path), "--rules", "determinism",
                      "--write-baseline"]) == 0
    (tmp_path / DIRTY).write_text("x = 1\n", encoding="utf-8")
    capsys.readouterr()
    assert lint_main(["--root", str(tmp_path),
                      "--rules", "determinism"]) == 1
    assert "stale" in capsys.readouterr().out


def test_cli_no_baseline_reports_everything(tmp_path):
    make_project(tmp_path, {DIRTY: DIRTY_TEXT})
    assert lint_main(["--root", str(tmp_path), "--rules", "determinism",
                      "--write-baseline"]) == 0
    assert lint_main(["--root", str(tmp_path), "--rules", "determinism",
                      "--no-baseline"]) == 1


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in CHECKERS:
        assert rule in out
