"""The determinism rule: trip each sub-pattern, keep clean idioms clean."""

from __future__ import annotations

from repro.checks.base import run_checks

from lint_helpers import make_project


def _findings(tmp_path, text, rel="src/repro/engine/fixture.py"):
    project = make_project(tmp_path, {rel: text})
    return run_checks(project, rules=["determinism"]).findings


def test_stdlib_global_rng_flagged(tmp_path):
    found = _findings(tmp_path,
                      "import random\n"
                      "a = random.random()\n"
                      "b = random.randint(0, 7)\n")
    assert len(found) == 2
    assert all("process-global stdlib RNG" in f.message for f in found)


def test_numpy_global_rng_flagged(tmp_path):
    found = _findings(tmp_path,
                      "import numpy as np\n"
                      "x = np.random.rand(4)\n"
                      "y = np.random.shuffle([1, 2])\n")
    assert len(found) == 2
    assert all("process-global RNG" in f.message for f in found)


def test_unseeded_default_rng_flagged_seeded_ok(tmp_path):
    found = _findings(tmp_path,
                      "import numpy as np\n"
                      "bad = np.random.default_rng()\n"
                      "good = np.random.default_rng(1234)\n")
    assert len(found) == 1
    assert "without a seed" in found[0].message
    assert found[0].line == 2


def test_seeded_generator_construction_is_clean(tmp_path):
    assert _findings(tmp_path,
                     "import numpy as np\n"
                     "rng = np.random.Generator(np.random.PCG64(7))\n"
                     "import random\n"
                     "local = random.Random(99)\n") == []


def test_clock_reads_flagged(tmp_path):
    found = _findings(tmp_path,
                      "import time\n"
                      "import datetime\n"
                      "a = time.time()\n"
                      "b = time.perf_counter()\n"
                      "c = datetime.datetime.now()\n")
    assert len(found) == 3
    assert all("wall-clock read" in f.message for f in found)


def test_from_import_clock_resolved_through_alias(tmp_path):
    found = _findings(tmp_path,
                      "from time import perf_counter\n"
                      "t = perf_counter()\n")
    assert len(found) == 1


def test_set_iteration_flagged(tmp_path):
    found = _findings(tmp_path,
                      "for x in {3, 1, 2}:\n"
                      "    print(x)\n"
                      "items = [y for y in set([2, 1])]\n"
                      "ordered = list({'b', 'a'})\n")
    assert len(found) == 3


def test_sorted_set_iteration_is_clean(tmp_path):
    assert _findings(tmp_path,
                     "for x in sorted({3, 1, 2}):\n"
                     "    print(x)\n"
                     "ordered = sorted(set([2, 1]))\n") == []


def test_files_outside_deterministic_subtree_ignored(tmp_path):
    assert _findings(tmp_path,
                     "import time\nt = time.time()\n",
                     rel="src/repro/analysis/bench_helper.py") == []


def test_live_tree_is_clean():
    """The real deterministic subtree upholds its own contract."""
    from repro.checks.base import Project, find_project_root

    result = run_checks(Project(find_project_root()), rules=["determinism"])
    assert result.findings == []
