"""The async-blocking rule: blocking primitives inside serve/ coroutines."""

from __future__ import annotations

from repro.checks.base import run_checks

from lint_helpers import make_project


def _findings(tmp_path, text, rel="src/repro/serve/fixture.py"):
    project = make_project(tmp_path, {rel: text})
    return run_checks(project, rules=["async-blocking"]).findings


def test_time_sleep_in_coroutine_flagged(tmp_path):
    found = _findings(tmp_path,
                      "import time\n"
                      "async def handler():\n"
                      "    time.sleep(1)\n")
    assert len(found) == 1
    assert "asyncio.sleep" in found[0].message


def test_subprocess_and_os_system_flagged(tmp_path):
    found = _findings(tmp_path,
                      "import os\n"
                      "import subprocess\n"
                      "async def handler():\n"
                      "    subprocess.run(['ls'])\n"
                      "    subprocess.check_output(['ls'])\n"
                      "    os.system('ls')\n")
    assert len(found) == 3


def test_sync_http_flagged(tmp_path):
    found = _findings(tmp_path,
                      "import urllib.request\n"
                      "async def handler(url):\n"
                      "    return urllib.request.urlopen(url)\n")
    assert len(found) == 1
    assert "to_thread" in found[0].message


def test_file_io_flagged(tmp_path):
    found = _findings(tmp_path,
                      "from pathlib import Path\n"
                      "async def handler(path: Path):\n"
                      "    with open(path) as fh:\n"
                      "        first = fh.read()\n"
                      "    return first + path.read_text()\n")
    assert len(found) == 2


def test_sync_function_and_nested_def_not_flagged(tmp_path):
    """Blocking work in plain functions — including workers defined
    inside a coroutine and handed to an executor — is the intended
    pattern, not a finding."""
    assert _findings(tmp_path,
                     "import time\n"
                     "def worker():\n"
                     "    time.sleep(1)\n"
                     "async def handler(loop):\n"
                     "    def blocking_part():\n"
                     "        time.sleep(1)\n"
                     "    return await loop.run_in_executor(None, "
                     "blocking_part)\n") == []


def test_asyncio_sleep_is_clean(tmp_path):
    assert _findings(tmp_path,
                     "import asyncio\n"
                     "async def handler():\n"
                     "    await asyncio.sleep(0.1)\n") == []


def test_blocking_outside_serve_ignored(tmp_path):
    assert _findings(tmp_path,
                     "import time\n"
                     "async def helper():\n"
                     "    time.sleep(1)\n",
                     rel="src/repro/analysis/fixture.py") == []


def test_live_serve_tree_is_clean():
    from repro.checks.base import Project, find_project_root

    result = run_checks(Project(find_project_root()),
                        rules=["async-blocking"])
    assert result.findings == []
