"""Fixtures for the repro-lint test suite (helpers in lint_helpers.py)."""

from __future__ import annotations

from pathlib import Path

import pytest

from lint_helpers import copy_real_inputs


@pytest.fixture
def real_tree_copy(tmp_path: Path) -> Path:
    """A scratch project seeded with the real cross-file checker inputs."""
    return copy_real_inputs(tmp_path)
