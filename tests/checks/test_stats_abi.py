"""The stats-abi rule: mutation tests against copies of the real files.

Each test copies the genuine five-file ABI surface into a scratch
project, deletes or perturbs exactly one element, and asserts the
checker reports it — proving the cross-check actually covers the drift
class it claims to (not just that the live tree happens to be clean).
"""

from __future__ import annotations

from repro.checks.base import Project, find_project_root, run_checks
from repro.checks.stats_abi import parse_c_enums

from lint_helpers import mutate

STATS = "src/repro/pipeline/stats.py"
CORE_C = "src/repro/engine/accel/core.c"
LOADER = "src/repro/engine/accel/loader.py"
COMPILED = "src/repro/engine/accel/compiled.py"
ACCEL_INIT = "src/repro/engine/accel/__init__.py"


def _run(root):
    return run_checks(Project(root), rules=["stats-abi"]).findings


def test_live_tree_abi_is_consistent(real_tree_copy):
    assert _run(real_tree_copy) == []


def test_deleting_a_simstats_field_is_reported(real_tree_copy):
    mutate(real_tree_copy, STATS,
           "    squashed_instructions: int = 0\n", "")
    found = _run(real_tree_copy)
    assert any("'squashed_instructions'" in f.message
               and "not a SimStats field" in f.message for f in found)


def test_dropping_an_assembly_assignment_is_reported(real_tree_copy):
    mutate(real_tree_copy, COMPILED,
           "    stats.squashed_instructions = int(st[ST.SQUASHED])\n", "")
    found = _run(real_tree_copy)
    assert any("'squashed_instructions'" in f.message
               and "never assigned" in f.message for f in found)


def test_renaming_a_simstats_field_reports_both_directions(real_tree_copy):
    mutate(real_tree_copy, STATS,
           "    squashed_instructions: int = 0\n",
           "    squashed_uops: int = 0\n")
    messages = [f.message for f in _run(real_tree_copy)]
    assert any("'squashed_uops'" in m and "never assigned" in m
               for m in messages)
    assert any("'squashed_instructions'" in m and "not a SimStats field" in m
               for m in messages)


def test_c_enum_value_drift_is_reported(real_tree_copy):
    mutate(real_tree_copy, CORE_C,
           "ST_RF_INT = 34", "ST_RF_INT = 35")
    found = _run(real_tree_copy)
    assert any("slot value drift" in f.message and "RF_INT" in f.message
               for f in found)


def test_loader_missing_mirror_is_reported(real_tree_copy):
    mutate(real_tree_copy, LOADER, "SQUASHED=15, ", "")
    found = _run(real_tree_copy)
    assert any("ST_SQUASHED" in f.message and "mirror" in f.message
               for f in found)


def test_st_n_drift_is_reported(real_tree_copy):
    mutate(real_tree_copy, LOADER, "ST_N = 56", "ST_N = 57")
    found = _run(real_tree_copy)
    assert any("ST_N" in f.message for f in found)


def test_rf_constructor_keyword_drop_is_reported(real_tree_copy):
    mutate(real_tree_copy, COMPILED,
           "        early_releases=int(rf[RF.EARLY]),\n", "")
    found = _run(real_tree_copy)
    assert any("'early_releases'" in f.message and "never passed" in f.message
               for f in found)


def test_gutted_self_check_is_reported(real_tree_copy):
    path = real_tree_copy / ACCEL_INIT
    text = path.read_text(encoding="utf-8")
    assert "asdict" in text
    path.write_text(text.replace("asdict", "as_dict_gone"), encoding="utf-8")
    found = _run(real_tree_copy)
    assert any("_self_check" in f.message for f in found)


def test_c_enum_parser_semantics():
    source = """
    enum { A = 3, B, C };
    enum { /* comment, with = and } text */ D, E = 0x10, F };
    """
    assert parse_c_enums(source) == {
        "A": 3, "B": 4, "C": 5, "D": 0, "E": 16, "F": 17}


def test_real_core_enum_matches_known_anchors():
    core = (find_project_root() / CORE_C).read_text(encoding="utf-8")
    enums = parse_c_enums(core)
    assert enums["ST_COMMITTED"] == 0
    assert enums["ST_RF_INT"] == 34
    assert enums["ST_RF_FP"] == 45
    assert enums["ST_N"] == 56
