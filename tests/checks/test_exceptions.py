"""The except-swallow rule: broad handlers must handle what they catch."""

from __future__ import annotations

from repro.checks.base import run_checks

from lint_helpers import make_project


def _findings(tmp_path, text):
    project = make_project(tmp_path, {"src/repro/serve/fixture.py": text})
    return run_checks(project, rules=["except-swallow"]).findings


def test_silent_pass_flagged(tmp_path):
    found = _findings(tmp_path,
                      "try:\n"
                      "    risky()\n"
                      "except Exception:\n"
                      "    pass\n")
    assert len(found) == 1
    assert "swallows" in found[0].message


def test_bare_except_and_base_exception_flagged(tmp_path):
    found = _findings(tmp_path,
                      "def a():\n"
                      "    try:\n"
                      "        risky()\n"
                      "    except:\n"
                      "        return None\n"
                      "def b():\n"
                      "    try:\n"
                      "        risky()\n"
                      "    except BaseException:\n"
                      "        return None\n")
    assert len(found) == 2


def test_broad_type_inside_tuple_flagged(tmp_path):
    found = _findings(tmp_path,
                      "try:\n"
                      "    risky()\n"
                      "except (ValueError, Exception):\n"
                      "    pass\n")
    assert len(found) == 1


def test_reraise_is_clean(tmp_path):
    assert _findings(tmp_path,
                     "try:\n"
                     "    risky()\n"
                     "except Exception as exc:\n"
                     "    raise RuntimeError('wrapped') from exc\n") == []


def test_logging_is_clean(tmp_path):
    assert _findings(tmp_path,
                     "import logging\n"
                     "log = logging.getLogger(__name__)\n"
                     "try:\n"
                     "    risky()\n"
                     "except Exception:\n"
                     "    log.warning('probe failed, falling back')\n") == []


def test_structured_context_reference_is_clean(tmp_path):
    """Attaching the exception to a structured response counts as
    handling it — the serve/ handlers' pattern."""
    assert _findings(tmp_path,
                     "def handler():\n"
                     "    try:\n"
                     "        return work()\n"
                     "    except Exception as exc:\n"
                     "        return {'error': type(exc).__name__, "
                     "'detail': str(exc)}\n") == []


def test_specific_exception_types_out_of_scope(tmp_path):
    assert _findings(tmp_path,
                     "try:\n"
                     "    risky()\n"
                     "except (KeyError, ValueError):\n"
                     "    pass\n") == []


def test_live_tree_has_only_the_justified_probe_suppression():
    """The one broad swallow in the tree (the numpy replay probe) is
    suppressed with a reason; nothing else may join it silently."""
    from repro.checks.base import Project, find_project_root

    result = run_checks(Project(find_project_root()),
                        rules=["except-swallow"])
    assert result.findings == []
    assert [(f.path, f.rule) for f, _reason in result.suppressed] == \
        [("src/repro/trace/draws.py", "except-swallow")]
