"""The cache-key rule: unknown config reads and gutted key derivations."""

from __future__ import annotations

from repro.checks.base import Project, run_checks

from lint_helpers import make_project, mutate


def _run(root):
    return run_checks(Project(root), rules=["cache-key"]).findings


def test_live_tree_config_reads_are_covered(real_tree_copy):
    assert _run(real_tree_copy) == []


def test_unknown_config_attribute_read_is_reported(real_tree_copy):
    engine_file = (real_tree_copy /
                   "src/repro/engine/experimental.py")
    engine_file.write_text(
        "def width_of(config):\n"
        "    return config.fetch_width + config.speculative_depth\n",
        encoding="utf-8")
    found = _run(real_tree_copy)
    assert len(found) == 1
    assert "config.speculative_depth" in found[0].message
    assert "stale-hit risk" in found[0].message


def test_state_config_receiver_is_checked(real_tree_copy):
    engine_file = real_tree_copy / "src/repro/engine/experimental.py"
    engine_file.write_text(
        "def probe(state):\n"
        "    return state.config.not_a_real_knob\n", encoding="utf-8")
    found = _run(real_tree_copy)
    assert len(found) == 1
    assert "not_a_real_knob" in found[0].message


def test_foreign_config_receivers_not_flagged(real_tree_copy):
    """``cache.config.associativity`` is a CacheConfig, not a
    ProcessorConfig — receivers other than config/cfg/self.config/
    state.config must stay out of scope."""
    engine_file = real_tree_copy / "src/repro/engine/experimental.py"
    engine_file.write_text(
        "def assoc(cache, backend):\n"
        "    return cache.config.associativity + backend.config.retries\n",
        encoding="utf-8")
    assert _run(real_tree_copy) == []


def test_properties_and_methods_are_covered(real_tree_copy):
    engine_file = real_tree_copy / "src/repro/engine/experimental.py"
    engine_file.write_text(
        "def variants(config):\n"
        "    loose = config.is_loose_int\n"
        "    return config.with_registers(64, 64) if loose else config\n",
        encoding="utf-8")
    assert _run(real_tree_copy) == []


def test_reads_outside_engine_core_ignored(real_tree_copy):
    helper = real_tree_copy / "src/repro/analysis/experimental.py"
    helper.write_text("def f(config):\n    return config.bogus_attr\n",
                      encoding="utf-8")
    assert _run(real_tree_copy) == []


def test_point_key_losing_an_ingredient_is_reported(real_tree_copy):
    mutate(real_tree_copy, "src/repro/analysis/cache.py",
           "        sweep_config.trace_length, sweep_config.seed,\n",
           "        sweep_config.trace_length, 0,\n")
    found = _run(real_tree_copy)
    assert any("'seed'" in f.message and "point_key" in f.message
               for f in found)


def test_config_digest_without_canonical_is_reported(tmp_path):
    project = make_project(tmp_path, {
        "src/repro/pipeline/config.py":
            "import dataclasses\n"
            "@dataclasses.dataclass(frozen=True)\n"
            "class ProcessorConfig:\n"
            "    fetch_width: int = 4\n",
        "src/repro/analysis/cache.py":
            "CACHE_SCHEMA_VERSION = 1\n"
            "def _canonical(config):\n"
            "    return repr(config)\n"  # no dataclasses.fields walk
            "def config_digest(config):\n"
            "    return hash(repr(config))\n"  # no _canonical
            "def point_key(benchmark, config, trace_length, seed,\n"
            "              requested_backend):\n"
            "    return (CACHE_SCHEMA_VERSION, config_digest(config),\n"
            "            workload_digest(benchmark), code_digest(),\n"
            "            trace_length, seed, requested_backend)\n",
    })
    messages = [f.message for f in _run(tmp_path)]
    assert any("_canonical" in m and "config_digest" in m for m in messages)
    assert any("dataclasses.fields" in m for m in messages)


def test_missing_derivation_functions_reported(tmp_path):
    project = make_project(tmp_path, {
        "src/repro/pipeline/config.py":
            "import dataclasses\n"
            "@dataclasses.dataclass(frozen=True)\n"
            "class ProcessorConfig:\n"
            "    fetch_width: int = 4\n",
        "src/repro/analysis/cache.py": "x = 1\n",
    })
    messages = [f.message for f in _run(tmp_path)]
    assert any("point_key" in m for m in messages)
    assert any("config_digest" in m for m in messages)
    assert any("_canonical" in m for m in messages)
