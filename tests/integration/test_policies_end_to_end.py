"""End-to-end comparisons of the three release policies on real workloads.

These are the integration-level statements of the paper's thesis:

* early release never *loses* performance;
* it frees registers earlier (more early releases, smaller Idle occupancy);
* the benefit appears when the register file is tight and vanishes when it
  is loose;
* all of this holds while the register-conservation invariants stay intact.
"""

import pytest

from repro.isa import RegClass
from repro.pipeline.config import ProcessorConfig
from repro.pipeline.processor import Processor, simulate
from repro.trace.workloads import get_workload

TRACE_LENGTH = 2_500


def run(benchmark, policy, registers, **kwargs):
    trace = get_workload(benchmark, TRACE_LENGTH)
    config = ProcessorConfig(release_policy=policy, num_physical_int=registers,
                             num_physical_fp=registers, **kwargs)
    return simulate(trace, config)


@pytest.fixture(scope="module")
def swim_results():
    return {(policy, registers): run("swim", policy, registers)
            for policy in ("conv", "basic", "extended")
            for registers in (48, 160)}


class TestPerformanceOrdering:
    def test_early_release_helps_tight_fp_file(self, swim_results):
        conv = swim_results[("conv", 48)].ipc
        basic = swim_results[("basic", 48)].ipc
        extended = swim_results[("extended", 48)].ipc
        assert basic >= conv * 0.99
        assert extended >= conv * 1.02        # a clear win on a tight file
        assert extended >= basic * 0.98

    def test_policies_converge_on_loose_file(self, swim_results):
        conv = swim_results[("conv", 160)].ipc
        extended = swim_results[("extended", 160)].ipc
        assert extended == pytest.approx(conv, rel=0.05)

    def test_gain_shrinks_with_file_size(self, swim_results):
        gain_tight = (swim_results[("extended", 48)].ipc
                      / swim_results[("conv", 48)].ipc)
        gain_loose = (swim_results[("extended", 160)].ipc
                      / swim_results[("conv", 160)].ipc)
        assert gain_tight > gain_loose

    def test_integer_benchmark_less_sensitive(self):
        conv = run("gcc", "conv", 48)
        extended = run("gcc", "extended", 48)
        fp_conv = run("swim", "conv", 48)
        fp_extended = run("swim", "extended", 48)
        int_gain = extended.ipc / conv.ipc
        fp_gain = fp_extended.ipc / fp_conv.ipc
        assert fp_gain > int_gain - 0.02


class TestReleaseBehaviour:
    def test_early_releases_only_under_early_policies(self, swim_results):
        assert swim_results[("conv", 48)].fp_registers.early_releases == 0
        assert swim_results[("basic", 48)].fp_registers.early_releases > 0
        assert swim_results[("extended", 48)].fp_registers.early_releases > 0

    def test_extended_schedules_conditional_releases(self, swim_results):
        assert swim_results[("extended", 48)].fp_registers.conditional_schedulings \
            >= 0
        assert swim_results[("basic", 48)].fp_registers.conditional_schedulings == 0

    def test_idle_occupancy_shrinks_with_early_release(self, swim_results):
        conv_idle = swim_results[("conv", 160)].fp_registers.occupancy.idle
        extended_idle = swim_results[("extended", 160)].fp_registers.occupancy.idle
        assert extended_idle < conv_idle

    def test_fewer_register_stalls_with_early_release(self, swim_results):
        conv_stalls = swim_results[("conv", 48)].dispatch_stalls[
            "no_free_fp_register"]
        extended_stalls = swim_results[("extended", 48)].dispatch_stalls[
            "no_free_fp_register"]
        assert extended_stalls <= conv_stalls

    def test_same_instruction_stream_committed(self, swim_results):
        counts = {key: stats.committed_instructions
                  for key, stats in swim_results.items()}
        assert len(set(counts.values())) == 1


class TestInvariants:
    @pytest.mark.parametrize("benchmark_name", ["swim", "gcc", "li"])
    @pytest.mark.parametrize("policy", ["conv", "basic", "extended"])
    def test_register_conservation_after_full_run(self, benchmark_name, policy):
        trace = get_workload(benchmark_name, 1500)
        config = ProcessorConfig(release_policy=policy, num_physical_int=48,
                                 num_physical_fp=48, warmup=False)
        processor = Processor(trace, config)
        processor.run()
        for register_file in processor.register_files.values():
            register_file.check_invariants()
            assert register_file.n_allocated == 32

    @pytest.mark.parametrize("policy", ["basic", "extended"])
    def test_exceptions_do_not_break_invariants(self, policy):
        trace = get_workload("tomcatv", 1500)
        config = ProcessorConfig(release_policy=policy, num_physical_int=48,
                                 num_physical_fp=48, warmup=False,
                                 exception_rate=0.02, seed=11)
        processor = Processor(trace, config)
        stats = processor.run()
        assert stats.exceptions_taken > 0
        for register_file in processor.register_files.values():
            register_file.check_invariants()

    def test_disabling_wrong_path_still_consistent(self):
        trace = get_workload("go", 1500)
        config = ProcessorConfig(release_policy="extended", num_physical_int=44,
                                 num_physical_fp=44, warmup=False,
                                 enable_wrong_path=False)
        processor = Processor(trace, config)
        processor.run()
        assert processor.register_files[RegClass.INT].n_allocated == 32
