"""Bit-identical equivalence and fallback contract of the compiled engine.

The compiled C core (:mod:`repro.engine.accel`) re-implements the whole
per-cycle pipeline; its one correctness contract is that a run produces
the *same* :class:`~repro.pipeline.stats.SimStats`, field for field, as
the Python engine — and that requesting it can never fail a run: a
missing toolchain or an unsupported configuration silently degrades to
the Python engine (with a logged warning for the toolchain case).

The equivalence tests self-skip when no C toolchain is available, so the
suite passes on toolchain-less machines; the fallback tests run
everywhere (they simulate the broken toolchain themselves).
"""

import dataclasses
import logging

import pytest

from repro.engine import CycleClock, SimulationEngine
from repro.engine import accel
from repro.pipeline.config import ProcessorConfig
from repro.trace.workloads import get_workload

POLICIES = ("conv", "basic", "extended")
WORKLOADS = ("gcc", "swim")
TRACE_LENGTH = 2_000


def _compiled_available() -> bool:
    return accel.resolve_engine_backend(
        ProcessorConfig(engine="compiled")) == "compiled"


needs_compiled = pytest.mark.skipif(
    not _compiled_available(),
    reason="no C toolchain for the compiled engine backend")


def run_both(workload: str, policy: str, *, num_registers: int = 48,
             trace_length: int = TRACE_LENGTH, warmup: bool = False,
             run_kwargs=None, **config_kwargs):
    """One point on the Python engine and on the compiled core."""
    run_kwargs = run_kwargs or {}
    stats = {}
    engines = {}
    for backend in ("python", "compiled"):
        config = ProcessorConfig(release_policy=policy,
                                 num_physical_int=num_registers,
                                 num_physical_fp=num_registers,
                                 warmup=warmup, engine=backend,
                                 **config_kwargs)
        trace = get_workload(workload, trace_length, seed=0)
        engine = SimulationEngine(trace, config)
        stats[backend] = engine.run(**run_kwargs)
        engines[backend] = engine
    # The compiled run must actually have run compiled — a silent
    # fallback would make every equivalence assertion vacuous.
    assert engines["compiled"].backend_used == "compiled"
    assert engines["python"].backend_used == "python"
    return stats["python"], stats["compiled"], engines["compiled"]


@needs_compiled
class TestBitIdenticalStats:
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_compiled_matches_python(self, workload, policy):
        reference, compiled, _ = run_both(workload, policy)
        assert dataclasses.asdict(compiled) == dataclasses.asdict(reference)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_warmup_pass_equivalence(self, policy):
        # Warm-up pre-populates the caches, BTB and predictor before the
        # measured run; the export of those warm structures must be exact.
        reference, compiled, _ = run_both("gcc", policy, warmup=True)
        assert dataclasses.asdict(compiled) == dataclasses.asdict(reference)

    def test_exception_recovery_equivalence(self):
        # Exception injection consumes the state's RNG stream; the C core
        # draws from a refillable buffer of the same stream and must take
        # the same exceptions on the same commits.
        reference, compiled, _ = run_both("gcc", "extended",
                                          exception_rate=0.002)
        assert reference.exceptions_taken > 0
        assert dataclasses.asdict(compiled) == dataclasses.asdict(reference)

    @pytest.mark.parametrize("tight_kwargs", [
        {"ros_size": 8},
        {"lsq_size": 4},
        {"max_pending_branches": 2},
    ], ids=["ros_full", "lsq_full", "checkpoints_full"])
    def test_structural_hazard_equivalence(self, tight_kwargs):
        stall_key = {"ros_size": "ros_full", "lsq_size": "lsq_full",
                     "max_pending_branches": "checkpoints_full"}
        reference, compiled, _ = run_both("gcc", "conv", num_registers=96,
                                          **tight_kwargs)
        (knob, _), = tight_kwargs.items()
        assert reference.dispatch_stalls[stall_key[knob]] > 0
        assert dataclasses.asdict(compiled) == dataclasses.asdict(reference)

    def test_max_cycles_cap_equivalence(self):
        for max_cycles in (50, 137, 400):
            reference, compiled, _ = run_both(
                "swim", "conv", trace_length=1_500,
                run_kwargs={"max_cycles": max_cycles})
            assert dataclasses.asdict(compiled) == dataclasses.asdict(reference)
            assert compiled.cycles <= max_cycles

    def test_max_instructions_equivalence(self):
        reference, compiled, _ = run_both(
            "gcc", "extended", trace_length=1_500,
            run_kwargs={"max_instructions": 600})
        assert dataclasses.asdict(compiled) == dataclasses.asdict(reference)

    def test_wrong_path_disabled_equivalence(self):
        reference, compiled, _ = run_both("gcc", "basic",
                                          enable_wrong_path=False)
        assert dataclasses.asdict(compiled) == dataclasses.asdict(reference)

    @pytest.mark.parametrize("depth", [4, 64])
    def test_config_derived_rq_depth_equivalence(self, depth):
        # The compiled Release Queue is sized from ``max_pending_branches``
        # at export time (not a hardwired 20): both a shallower and a
        # much deeper queue must stay bit-identical to the Python engine.
        reference, compiled, _ = run_both("gcc", "extended",
                                          max_pending_branches=depth)
        assert dataclasses.asdict(compiled) == dataclasses.asdict(reference)

    @pytest.mark.parametrize("warm_length", [0, 5, None],
                             ids=["empty", "shorter_than_trace", "full"])
    def test_warmup_length_edge_cases(self, warm_length, monkeypatch):
        # The in-C warm-up pass replays whatever _build_warmup_trace
        # returns; pin the edge lengths: an empty warm trace (warm_len=0
        # exports no columns), a warm trace much shorter than the measured
        # trace, and the default full-length segment (warm len == trace
        # len for traces under the 20k warm-up cap).
        from repro.engine.state import MachineState
        from repro.trace.records import Trace

        if warm_length is not None:
            original = MachineState._build_warmup_trace

            def truncated(self):
                base = original(self)
                return Trace(name=base.name, focus_class=base.focus_class,
                             instructions=list(base.instructions[:warm_length]),
                             seed=base.seed)

            monkeypatch.setattr(MachineState, "_build_warmup_trace", truncated)
        reference, compiled, engine = run_both("gcc", "extended", warmup=True,
                                               trace_length=1_000)
        if warm_length is None:
            assert len(engine.state._build_warmup_trace().instructions) >= 1_000
        assert dataclasses.asdict(compiled) == dataclasses.asdict(reference)

    def test_warmup_of_unregistered_trace_replays_itself(self):
        # A hand-built trace is not in the workload registry, so its
        # warm-up trace is the trace itself — on both backends.
        from repro.trace.records import Trace

        base = get_workload("gcc", 700, seed=0)
        loose = Trace(name="hand-rolled", focus_class=base.focus_class,
                      instructions=list(base.instructions), seed=0)
        stats = {}
        for backend in ("python", "compiled"):
            config = ProcessorConfig(release_policy="basic", warmup=True,
                                     num_physical_int=48, num_physical_fp=48,
                                     engine=backend)
            engine = SimulationEngine(loose, config)
            stats[backend] = engine.run()
            assert engine.backend_used == backend
        assert dataclasses.asdict(stats["compiled"]) == \
            dataclasses.asdict(stats["python"])

    def test_ready_peak_reported(self):
        # The compiled core reports the scheduler's ready-set peak through
        # the engine (the bench probe records it); it must match Python's.
        _, _, engine = run_both("compress", "basic", lsq_size=12)
        config = ProcessorConfig(release_policy="basic", warmup=False,
                                 num_physical_int=48, num_physical_fp=48,
                                 lsq_size=12, engine="python")
        trace = get_workload("compress", TRACE_LENGTH, seed=0)
        python_engine = SimulationEngine(trace, config, clock=CycleClock())
        python_engine.run()
        assert engine.compiled_ready_peak == python_engine.state.ready.peak_size


@needs_compiled
def test_stat_fingerprint_grid():
    """Figure 11-shaped grid: ~90 points, full-stats compiled-vs-Python.

    Three workloads x three policies x five register-file sizes x both
    warm-up modes — the configurations every paper figure is swept over.
    Short traces keep the grid fast; full ``asdict`` equality keeps it
    exhaustive (one diverging counter anywhere fails the point).
    """
    from repro.rename.free_list import FreeListError

    mismatches = []
    points = 0
    for workload in ("gcc", "swim", "compress"):
        for policy in POLICIES:
            for registers in (40, 48, 64, 96, 160):
                for warmup in (False, True):
                    trace = get_workload(workload, 800, seed=0)
                    stats = {}
                    for backend in ("python", "compiled"):
                        config = ProcessorConfig(
                            release_policy=policy,
                            num_physical_int=registers,
                            num_physical_fp=registers,
                            warmup=warmup, engine=backend)
                        try:
                            stats[backend] = dataclasses.asdict(
                                SimulationEngine(trace, config).run())
                        except FreeListError:
                            stats[backend] = "FreeListError"
                    points += 1
                    if stats["python"] != stats["compiled"]:
                        mismatches.append(
                            (workload, policy, registers, warmup))
    assert points >= 90
    assert mismatches == []


class TestFallbackContract:
    def test_broken_toolchain_degrades_with_warning(self, monkeypatch, caplog):
        # A compiler that does not exist: the run must still succeed, on
        # the Python engine, with exactly the same statistics, and the
        # degradation must be visible on the accel logger.
        monkeypatch.setenv("REPRO_ACCEL_CC", "/nonexistent/compiler-xyz")
        accel.reset_backend_cache()
        try:
            trace = get_workload("swim", 800, seed=0)
            config = ProcessorConfig(release_policy="basic", warmup=False,
                                     num_physical_int=48, num_physical_fp=48,
                                     engine="compiled")
            with caplog.at_level(logging.WARNING, logger="repro.engine.accel"):
                engine = SimulationEngine(trace, config)
                stats = engine.run()
            assert engine.backend_used == "python"
            assert any("using the Python engine" in record.message
                       for record in caplog.records)
            reference = SimulationEngine(
                trace, dataclasses.replace(config, engine="python")).run()
            assert dataclasses.asdict(stats) == dataclasses.asdict(reference)
        finally:
            accel.reset_backend_cache()   # monkeypatch restores the env

    def test_probe_warns_once_per_process(self, monkeypatch, caplog):
        monkeypatch.setenv("REPRO_ACCEL_CC", "/nonexistent/compiler-xyz")
        accel.reset_backend_cache()
        try:
            with caplog.at_level(logging.WARNING, logger="repro.engine.accel"):
                for _ in range(3):
                    assert accel.resolve_engine_backend(
                        ProcessorConfig(engine="compiled")) == "python"
            warnings = [record for record in caplog.records
                        if "using the Python engine" in record.message]
            assert len(warnings) == 1
        finally:
            accel.reset_backend_cache()

    def test_unsupported_config_falls_back_per_run(self):
        # The Release Queue depth is config-derived (sized from
        # ``max_pending_branches`` at export time), bounded only by the
        # compiled core's ``RQ_LEVELS_MAX`` ceiling.  A config beyond the
        # ceiling is outside the envelope — named clearly — and must run
        # on the Python engine, whose Release Queue is also config-sized.
        from repro.engine.accel.compiled import unsupported_reason
        from repro.engine.accel.loader import RQ_LEVELS_MAX

        trace = get_workload("gcc", 800, seed=0)
        inside = ProcessorConfig(release_policy="extended", warmup=False,
                                 max_pending_branches=64, engine="compiled")
        assert unsupported_reason(inside) is None
        config = ProcessorConfig(release_policy="extended", warmup=False,
                                 max_pending_branches=RQ_LEVELS_MAX + 44,
                                 engine="compiled")
        reason = unsupported_reason(config)
        assert reason is not None and str(RQ_LEVELS_MAX) in reason
        engine = SimulationEngine(trace, config)
        stats = engine.run()
        assert engine.backend_used == "python"
        reference = SimulationEngine(
            trace, dataclasses.replace(config, engine="python")).run()
        assert dataclasses.asdict(stats) == dataclasses.asdict(reference)

    def test_partially_stepped_machine_stays_python(self):
        # Backend dispatch only covers whole runs from reset: a machine
        # that has already been single-stepped cannot be exported, so
        # run() must continue it on the Python engine — identically to a
        # machine never offered to the compiled backend.
        trace = get_workload("swim", 800, seed=0)
        stats = {}
        for backend in ("python", "compiled"):
            config = ProcessorConfig(release_policy="conv", warmup=False,
                                     num_physical_int=48, num_physical_fp=48,
                                     engine=backend)
            engine = SimulationEngine(trace, config)
            engine.step()
            stats[backend] = engine.run()
            assert engine.backend_used == "python"
        assert dataclasses.asdict(stats["compiled"]) == \
            dataclasses.asdict(stats["python"])


class TestWarmupDeferral:
    """Warm-up is deferred into the compiled core — and still owed on
    fallback.  Config-driven, so these run without a toolchain."""

    def test_compiled_request_defers_warmup(self):
        trace = get_workload("swim", 500, seed=0)
        state = SimulationEngine(trace, ProcessorConfig(
            engine="compiled", warmup=True)).state
        assert state.warmup_pending
        # Deferred means genuinely cold: the predictor has trained on
        # nothing yet (the C core, or ensure_warm(), will do the pass).
        assert len(set(state.predictor.table)) == 1

    def test_python_engine_warms_at_construction(self):
        trace = get_workload("swim", 500, seed=0)
        state = SimulationEngine(trace, ProcessorConfig(
            engine="python", warmup=True)).state
        assert not state.warmup_pending
        assert state.predictor.predictions == 0     # stats reset after warm
        assert len(set(state.predictor.table)) > 1  # but the tables learned

    def test_out_of_envelope_config_does_not_defer(self):
        # A config the compiled core cannot run must warm up eagerly —
        # deferring would hand the Python engine a cold machine.
        from repro.engine.accel.loader import RQ_LEVELS_MAX

        trace = get_workload("swim", 500, seed=0)
        state = SimulationEngine(trace, ProcessorConfig(
            engine="compiled", warmup=True, release_policy="extended",
            max_pending_branches=RQ_LEVELS_MAX + 1)).state
        assert not state.warmup_pending

    def test_ensure_warm_runs_once(self):
        trace = get_workload("swim", 500, seed=0)
        state = SimulationEngine(trace, ProcessorConfig(
            engine="compiled", warmup=True)).state
        state.ensure_warm()
        assert not state.warmup_pending
        assert len(set(state.predictor.table)) > 1
        snapshot = list(state.predictor.table)
        state.ensure_warm()                         # idempotent
        assert list(state.predictor.table) == snapshot

    def test_broken_toolchain_still_warms_up(self, monkeypatch):
        # Warm-up deferred to a compiled backend that turns out to be
        # missing must still happen (ensure_warm before the Python clock
        # loop): stats equal the python-engine warmup=True reference.
        monkeypatch.setenv("REPRO_ACCEL_CC", "/nonexistent/compiler-xyz")
        accel.reset_backend_cache()
        try:
            trace = get_workload("gcc", 800, seed=0)
            config = ProcessorConfig(release_policy="extended", warmup=True,
                                     engine="compiled")
            engine = SimulationEngine(trace, config)
            assert engine.state.warmup_pending
            stats = engine.run()
            assert engine.backend_used == "python"
            reference = SimulationEngine(
                trace, dataclasses.replace(config, engine="python")).run()
            assert dataclasses.asdict(stats) == dataclasses.asdict(reference)
        finally:
            accel.reset_backend_cache()

    def test_single_stepping_warms_first(self):
        # step() never reaches the compiled backend, so the deferred pass
        # must run before the first stepped cycle.
        trace = get_workload("swim", 500, seed=0)
        engine = SimulationEngine(trace, ProcessorConfig(
            engine="compiled", warmup=True))
        assert engine.state.warmup_pending
        engine.step()
        assert not engine.state.warmup_pending


class TestBackendSelection:
    def test_config_field_beats_environment(self, monkeypatch):
        monkeypatch.setenv(accel.ENGINE_ENV, "compiled")
        assert accel.requested_backend(
            ProcessorConfig(engine="python")) == "python"

    def test_environment_drives_auto(self, monkeypatch):
        monkeypatch.setenv(accel.ENGINE_ENV, "compiled")
        assert accel.requested_backend(ProcessorConfig()) == "compiled"
        assert accel.requested_backend(None) == "compiled"
        monkeypatch.delenv(accel.ENGINE_ENV)
        assert accel.requested_backend(ProcessorConfig()) == "python"

    def test_config_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            ProcessorConfig(engine="fortran")

    def test_requested_backend_feeds_cache_keys(self, monkeypatch):
        # The sweep cache folds the *requested* backend into point keys:
        # flipping the request must move every key (separate validation
        # of each backend's results), without building any toolchain.
        from repro.analysis.cache import point_key
        from repro.analysis.sweep import SweepConfig, SweepPoint

        sweep = SweepConfig(benchmarks=("swim",), trace_length=500)
        point = SweepPoint(benchmark="swim", policy="conv", num_registers=48)
        monkeypatch.delenv(accel.ENGINE_ENV, raising=False)
        python_key = point_key(sweep, point)
        monkeypatch.setenv(accel.ENGINE_ENV, "compiled")
        compiled_key = point_key(sweep, point)
        assert python_key != compiled_key
