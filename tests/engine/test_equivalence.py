"""Cycle-accuracy equivalence of the event-driven engine.

The event-driven :class:`~repro.engine.clock.EventClock` fast-forwards
across provably idle *and partially idle* cycles (stall-only windows are
skipped with their stalls booked in bulk); these tests pin the core
guarantee: for every release policy and workload, the resulting
:class:`SimStats` — cycles, IPC, stall counts, occupancy averages,
everything — are *bit-identical* to the classic per-cycle loop
(:class:`~repro.engine.clock.CycleClock`).

Both clocks drive the same indexed scheduler (ready set + wakeup index +
completion queue), so the suite also cross-checks that the incremental
index maintenance agrees with per-cycle stepping under squashes,
exceptions and every hazard class.
"""

import dataclasses

import pytest

from repro.backend.functional_units import FUConfig
from repro.engine import CycleClock, EventClock, SimulationEngine
from repro.isa import FUKind
from repro.pipeline.config import ProcessorConfig
from repro.trace.workloads import get_workload

POLICIES = ("conv", "basic", "extended")

#: One integer (branch-dense, mispredictions, wrong-path fetch) and one FP
#: (memory-latency-bound, register-pressure-heavy) workload.
WORKLOADS = ("gcc", "swim")

TRACE_LENGTH = 2_500


def run_both(workload: str, policy: str, *, num_registers: int = 48,
             trace_length: int = TRACE_LENGTH, **config_kwargs):
    """Run one (workload, policy) point under both clocks."""
    config = ProcessorConfig(release_policy=policy,
                             num_physical_int=num_registers,
                             num_physical_fp=num_registers,
                             warmup=False, **config_kwargs)
    trace = get_workload(workload, trace_length, seed=0)
    per_cycle = SimulationEngine(trace, config, clock=CycleClock())
    event = SimulationEngine(trace, config, clock=EventClock())
    return per_cycle.run(), event.run(), event


class TestBitIdenticalStats:
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_event_clock_matches_per_cycle_loop(self, workload, policy):
        reference, fast, _engine = run_both(workload, policy)
        assert dataclasses.asdict(fast) == dataclasses.asdict(reference)

    @pytest.mark.parametrize("tight_kwargs", [
        {"ros_size": 8},                      # ros_full dispatch stalls
        {"lsq_size": 4},                      # lsq_full dispatch stalls
        {"max_pending_branches": 2},          # checkpoints_full dispatch stalls
    ], ids=["ros_full", "lsq_full", "checkpoints_full"])
    def test_structural_hazard_stall_booking(self, tight_kwargs):
        # The default matrix only produces register-shortage stalls; tiny
        # back-end structures force the other dispatch hazards, so the
        # clock's jump-aware booking of every stall reason stays pinned.
        stall_key = {"ros_size": "ros_full", "lsq_size": "lsq_full",
                     "max_pending_branches": "checkpoints_full"}
        reference, fast, _ = run_both("gcc", "conv", num_registers=96,
                                      **tight_kwargs)
        (knob, _), = tight_kwargs.items()
        assert reference.dispatch_stalls[stall_key[knob]] > 0
        assert dataclasses.asdict(fast) == dataclasses.asdict(reference)

    def test_structural_stall_window_booking(self):
        # A single unpipelined FP divider turns divide runs into windows
        # where ready instructions exist but nothing can issue.  The clock
        # fast-forwards through them, booking one structural stall per
        # blocked ready entry per skipped cycle — totals must stay pinned.
        starved = FUConfig(counts={
            FUKind.SIMPLE_INT: 8, FUKind.INT_MULT: 4, FUKind.SIMPLE_FP: 6,
            FUKind.FP_MULT: 4, FUKind.FP_DIV: 1, FUKind.LOAD_STORE: 4,
        })
        reference, fast, engine = run_both("swim", "conv",
                                           functional_units=starved)
        assert reference.structural_stalls > 0
        assert dataclasses.asdict(fast) == dataclasses.asdict(reference)
        assert engine.clock.cycles_skipped > 0

    def test_parked_load_wait_lists(self):
        # A tiny LSQ plus a store-heavy integer workload exercises the
        # per-LSQ wait lists: loads blocked on older unknown store
        # addresses must re-enter the ready set exactly when the blocking
        # store issues, including intra-cycle (same issue sweep) wakeups.
        reference, fast, engine = run_both("compress", "basic",
                                           lsq_size=12)
        assert dataclasses.asdict(fast) == dataclasses.asdict(reference)
        # The run must actually have drained through the scheduler.
        assert engine.state.ready.peak_size > 0

    def test_scheduler_indexes_drain_clean(self):
        # After a completed run nothing may linger: a leaked ready entry
        # or waiter would mean the incremental maintenance lost an event.
        for policy in POLICIES:
            _, _, engine = run_both("gcc", policy)
            state = engine.state
            assert engine.finished
            assert len(state.ready) == 0
            assert len(state.consumers) == 0

    def test_fast_forward_actually_happens(self):
        # The equivalence above would hold trivially if the event clock
        # never skipped; make sure the matrix exercises real jumps.
        skipped = 0
        for workload in WORKLOADS:
            for policy in POLICIES:
                _, _, engine = run_both(workload, policy)
                skipped += engine.clock.cycles_skipped
        assert skipped > 0

    @pytest.mark.parametrize("policy", POLICIES)
    def test_key_metrics_spot_check(self, policy):
        # Redundant with the asdict comparison, but pins the fields the
        # paper's figures are built from with readable failures.
        reference, fast, _ = run_both("swim", policy)
        assert fast.cycles == reference.cycles
        assert fast.ipc == reference.ipc
        assert fast.dispatch_stalls == reference.dispatch_stalls
        assert fast.structural_stalls == reference.structural_stalls
        assert fast.int_registers.occupancy == reference.int_registers.occupancy
        assert fast.fp_registers.occupancy == reference.fp_registers.occupancy


class TestLimitEquivalence:
    def test_max_cycles_cap_lands_on_same_cycle(self):
        # A max_cycles bound that lands inside a fast-forward gap must cap
        # the jump exactly where the per-cycle loop stops stepping.
        for max_cycles in (50, 137, 400):
            config = ProcessorConfig(release_policy="conv", warmup=False,
                                     num_physical_int=48, num_physical_fp=48)
            trace = get_workload("swim", 1_500, seed=0)
            ref = SimulationEngine(trace, config, clock=CycleClock()).run(
                max_cycles=max_cycles)
            fast = SimulationEngine(trace, config, clock=EventClock()).run(
                max_cycles=max_cycles)
            assert dataclasses.asdict(fast) == dataclasses.asdict(ref)
            assert fast.cycles <= max_cycles

    def test_max_instructions_equivalence(self):
        config = ProcessorConfig(release_policy="extended", warmup=False)
        trace = get_workload("gcc", 1_500, seed=0)
        ref = SimulationEngine(trace, config, clock=CycleClock()).run(
            max_instructions=600)
        fast = SimulationEngine(trace, config, clock=EventClock()).run(
            max_instructions=600)
        assert dataclasses.asdict(fast) == dataclasses.asdict(ref)

    def test_exception_recovery_equivalence(self):
        # Precise-exception flushes rebuild the map table mid-run; the
        # fast-forwarded run must recover identically.
        config = ProcessorConfig(release_policy="extended", warmup=False,
                                 exception_rate=0.002)
        trace = get_workload("gcc", 1_500, seed=0)
        ref = SimulationEngine(trace, config, clock=CycleClock()).run()
        fast = SimulationEngine(trace, config, clock=EventClock()).run()
        assert ref.exceptions_taken > 0
        assert dataclasses.asdict(fast) == dataclasses.asdict(ref)
