"""Unit tests of the indexed scheduler structures (ready set, wakeup
index, completion queue) and of the backend hooks that feed them."""

import pytest

from repro.backend.lsq import LoadStoreQueue
from repro.backend.ros import ROSEntry, ReorderStructure
from repro.backend.functional_units import FunctionalUnitPool
from repro.engine.events import CompletionQueue, ReadySet, WakeupIndex
from repro.isa import Instruction, OpClass


def entry(seq: int) -> ROSEntry:
    return ROSEntry(seq, Instruction(pc=0x1000 + 4 * seq, op=OpClass.INT_ALU))


class TestReadySet:
    def test_pops_in_age_order_regardless_of_insertion_order(self):
        ready = ReadySet()
        for seq in (5, 1, 9, 3):
            ready.add(entry(seq))
        assert [ready.pop().seq for _ in range(4)] == [1, 3, 5, 9]
        assert not ready

    def test_add_is_idempotent(self):
        ready = ReadySet()
        e = entry(7)
        ready.add(e)
        ready.add(e)
        assert len(ready) == 1
        assert ready.pop() is e
        with pytest.raises(IndexError):
            ready.pop()

    def test_discard_leaves_stale_heap_keys_harmless(self):
        ready = ReadySet()
        for seq in (1, 2, 3):
            ready.add(entry(seq))
        ready.discard(1)
        ready.discard(3)
        assert len(ready) == 1
        assert 2 in ready and 1 not in ready
        assert ready.pop().seq == 2

    def test_readd_after_pop_keeps_order(self):
        # The issue stage pops FU-blocked entries and re-arms them.
        ready = ReadySet()
        blocked = entry(4)
        ready.add(blocked)
        ready.add(entry(6))
        assert ready.pop() is blocked
        ready.add(blocked)               # re-armed: still oldest
        assert ready.pop().seq == 4
        assert ready.pop().seq == 6

    def test_peak_size_tracks_high_water_mark(self):
        ready = ReadySet()
        for seq in range(5):
            ready.add(entry(seq))
        for _ in range(5):
            ready.pop()
        assert ready.peak_size == 5


class TestWakeupIndex:
    def test_wake_returns_only_last_producer_consumers(self):
        index = WakeupIndex()
        consumer = entry(10)
        consumer.wait_producers = {1, 2}
        index.register(1, consumer)
        index.register(2, consumer)
        assert index.wake(1) == []       # one producer still outstanding
        assert index.wake(2) == [consumer]
        assert not consumer.wait_producers

    def test_wake_skips_squashed_consumers(self):
        index = WakeupIndex()
        consumer = entry(10)
        consumer.wait_producers = {1}
        consumer.squashed = True
        index.register(1, consumer)
        assert index.wake(1) == []

    def test_drop_forgets_waiters(self):
        index = WakeupIndex()
        consumer = entry(10)
        consumer.wait_producers = {1}
        index.register(1, consumer)
        index.drop(1)
        assert index.wake(1) == []
        assert len(index) == 0


class TestCompletionQueue:
    def test_next_cycle_is_minimum_over_buckets(self):
        queue = CompletionQueue()
        queue.schedule(30, entry(1))
        queue.schedule(10, entry(2))
        queue.schedule(10, entry(3))
        assert queue.next_cycle() == 10
        assert [e.seq for _seq, e in queue.pop_due(10)] == [2, 3]
        assert queue.next_cycle() == 30
        assert queue.pop_due(11) is None
        assert queue.pop_due(30)[0][1].seq == 1
        assert queue.next_cycle() is None
        assert not queue

    def test_pop_due_keeps_dead_events_for_in_loop_liveness_checks(self):
        # The writeback stage re-tests liveness per entry (a branch in the
        # same bucket may squash younger members mid-drain), so pop_due
        # must hand back the seq tags rather than filter eagerly.
        queue = CompletionQueue()
        live, squashed = entry(1), entry(2)
        queue.schedule(10, live)
        queue.schedule(10, squashed)
        squashed.squashed = True
        recycled = entry(3)
        queue.schedule(10, recycled)
        recycled.reset(9, recycled.inst)     # row reused by a new occupant
        drained = queue.pop_due(10)
        states = [(seq, e.seq == seq and not e.squashed) for seq, e in drained]
        assert states == [(1, True), (2, False), (3, False)]

    def test_pending_enumerates_everything(self):
        queue = CompletionQueue()
        queue.schedule(5, entry(1))
        queue.schedule(8, entry(2))
        assert sorted(e.seq for e in queue.pending()) == [1, 2]
        queue.clear()
        assert queue.next_cycle() is None


class TestBackendHooks:
    def test_ros_find_is_indexed_across_mutations(self):
        ros = ReorderStructure(capacity=8)
        entries = [entry(seq) for seq in range(5)]
        for e in entries:
            ros.append(e)
        assert ros.find(3) is entries[3]
        ros.pop_head()
        assert ros.find(0) is None
        ros.squash_younger_than(2)
        assert ros.find(3) is None and ros.find(4) is None
        assert ros.find(2) is entries[2]
        ros.squash_all()
        assert ros.find(1) is None

    def test_lsq_parks_on_first_unknown_store_and_drains(self):
        lsq = LoadStoreQueue(capacity=8)
        lsq.insert(0, True, 0x100)       # store, address unknown
        lsq.insert(1, True, 0x200)       # store, address unknown
        load = entry(2)
        lsq.insert(2, False, 0x300)
        assert lsq.park_blocked_load(2, load)
        # Store 0 resolves: the load is handed back but store 1 still blocks.
        woken = lsq.mark_address_known(0)
        assert woken == [load]
        assert lsq.park_blocked_load(2, load)
        assert lsq.mark_address_known(1) == [load]
        assert not lsq.park_blocked_load(2, load)
        assert lsq.load_may_issue(2)

    def test_lsq_squash_drops_wait_lists_of_squashed_stores(self):
        lsq = LoadStoreQueue(capacity=8)
        lsq.insert(0, True, 0x100)
        lsq.insert(5, True, 0x200)
        load = entry(6)
        lsq.insert(6, False, 0x300)
        assert lsq.park_blocked_load(6, load)   # parks on store 0
        lsq.squash_younger_than(4)              # drops store 5 and load 6
        assert lsq.mark_address_known(0) == [load]  # parked ref survives;
        # the issue stage skips it via the squashed flag.

    def test_fu_next_free_cycle(self):
        fus = FunctionalUnitPool()
        assert fus.next_free_cycle(OpClass.FP_DIV) == 0
        fus.issue(OpClass.FP_DIV, cycle=3)      # unpipelined, 16 cycles
        assert fus.next_free_cycle(OpClass.FP_DIV) == 0  # 3 more units free
        for _ in range(3):
            fus.issue(OpClass.FP_DIV, cycle=3)
        assert fus.next_free_cycle(OpClass.FP_DIV) == 19
        assert not fus.can_issue(OpClass.FP_DIV, 18)
        assert fus.can_issue(OpClass.FP_DIV, 19)

    def test_structural_stall_bulk_booking(self):
        fus = FunctionalUnitPool()
        fus.note_structural_stall()
        fus.note_structural_stall(41)
        assert fus.structural_stalls == 42
