"""Unit tests of the event-driven clock's quiescence detection.

Hand-built traces make the expected jumps predictable: a dependent load
chain leaves the machine with nothing to do for the full memory latency,
so the event clock must leap straight to the completion event — and a
resource-stalled rename must book exactly the dispatch stalls the skipped
cycles would have accumulated.
"""

import dataclasses

from repro.engine import (CycleClock, EventClock, MachineState,
                          SimulationEngine, default_stages)
from repro.isa import InstructionBuilder, RegClass
from repro.pipeline.config import ProcessorConfig
from repro.trace.records import Trace

FAST = dict(warmup=False, enable_wrong_path=False)


def make_trace(name, builder):
    return Trace(name=name, focus_class=RegClass.INT, instructions=builder.trace())


def load_chain_trace(n=6):
    """Dependent loads: each must wait the full memory latency of the last."""
    builder = InstructionBuilder(pc=0x1000)
    addr = 0x800000
    for i in range(n):
        # Pointer-chase pattern with widely spread addresses: every load
        # misses, and the next load's address depends on the loaded value.
        builder.load(dest=1, addr_reg=1, mem_addr=addr + i * 0x40_000)
        builder.alu(dest=2, srcs=(1,))
    return make_trace("chain", builder)


class TestFastForward:
    def test_load_chain_skips_memory_latency(self):
        trace = load_chain_trace()
        config = ProcessorConfig(**FAST)
        engine = SimulationEngine(trace, config, clock=EventClock())
        stats = engine.run()
        reference = SimulationEngine(trace, config, clock=CycleClock()).run()
        assert dataclasses.asdict(stats) == dataclasses.asdict(reference)
        # Each missing load costs tens of idle cycles; the clock must have
        # skipped a large share of the run rather than spinning it.
        assert engine.clock.fast_forwards >= 3
        assert engine.clock.cycles_skipped > stats.cycles / 3

    def test_jump_aware_dispatch_stall_accounting(self):
        # A tiny register file with long-lived values forces rename to
        # stall on the free list across memory-latency gaps: the skipped
        # cycles' stall counts must be booked, not lost.
        builder = InstructionBuilder(pc=0x1000)
        for i in range(120):
            builder.load(dest=i % 28, addr_reg=30,
                         mem_addr=0x800000 + i * 0x40_000)
        trace = make_trace("pressure", builder)
        config = ProcessorConfig(num_physical_int=40, num_physical_fp=40, **FAST)
        event_engine = SimulationEngine(trace, config, clock=EventClock())
        fast = event_engine.run()
        reference = SimulationEngine(trace, config, clock=CycleClock()).run()
        assert reference.dispatch_stalls["no_free_int_register"] > 0
        assert fast.dispatch_stalls == reference.dispatch_stalls
        assert event_engine.clock.cycles_skipped > 0

    def test_cycle_clock_never_jumps(self):
        engine = SimulationEngine(load_chain_trace(), ProcessorConfig(**FAST),
                                  clock=CycleClock())
        engine.run()
        assert engine.clock.fast_forwards == 0
        assert engine.clock.cycles_skipped == 0

    def test_step_is_always_single_cycle(self):
        # Single-stepping (debuggers, the figure2 experiment) must observe
        # every cycle even under the event clock.
        engine = SimulationEngine(load_chain_trace(), ProcessorConfig(**FAST),
                                  clock=EventClock())
        for expected_cycle in range(1, 40):
            engine.step()
            assert engine.state.cycle == expected_cycle
        assert engine.clock.fast_forwards == 0


class TestQuiescenceProbe:
    def test_busy_machine_is_not_quiescent(self):
        builder = InstructionBuilder(pc=0x1000)
        for i in range(32):
            builder.alu(dest=1 + i % 8, srcs=(10,))
        engine = SimulationEngine(make_trace("busy", builder),
                                  ProcessorConfig(**FAST), clock=EventClock())
        # Ready front end + issuable work: no jump may happen at cycle 0.
        engine.clock.advance(engine.state)
        assert engine.state.cycle == 0

    def test_drained_machine_is_not_fast_forwarded_forever(self):
        trace = load_chain_trace(2)
        engine = SimulationEngine(trace, ProcessorConfig(**FAST),
                                  clock=EventClock())
        engine.run()
        assert engine.finished

    def test_engine_uses_event_clock_by_default(self):
        engine = SimulationEngine(load_chain_trace(), ProcessorConfig(**FAST))
        assert isinstance(engine.clock, EventClock)

    def test_stage_wiring(self):
        names = [stage.name for stage in default_stages()]
        assert names == ["commit", "writeback", "issue", "rename", "fetch"]

    def test_machine_state_implements_pipeline_view(self):
        from repro.core.release_policy import PipelineView

        state = MachineState(load_chain_trace(), ProcessorConfig(**FAST))
        assert isinstance(state, PipelineView)
        assert state.current_cycle() == 0
        assert not state.is_committed(0)
