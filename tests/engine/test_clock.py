"""Unit tests of the event-driven clock's quiescence detection.

Hand-built traces make the expected jumps predictable: a dependent load
chain leaves the machine with nothing to do for the full memory latency,
so the event clock must leap straight to the completion event — and a
resource-stalled rename must book exactly the dispatch stalls the skipped
cycles would have accumulated.
"""

import dataclasses

from repro.backend.functional_units import FUConfig
from repro.engine import (CycleClock, EventClock, MachineState,
                          SimulationEngine, default_stages)
from repro.isa import FUKind, InstructionBuilder, OpClass, RegClass
from repro.pipeline.config import ProcessorConfig
from repro.trace.records import Trace

FAST = dict(warmup=False, enable_wrong_path=False)


def make_trace(name, builder):
    return Trace(name=name, focus_class=RegClass.INT, instructions=builder.trace())


def load_chain_trace(n=6):
    """Dependent loads: each must wait the full memory latency of the last."""
    builder = InstructionBuilder(pc=0x1000)
    addr = 0x800000
    for i in range(n):
        # Pointer-chase pattern with widely spread addresses: every load
        # misses, and the next load's address depends on the loaded value.
        builder.load(dest=1, addr_reg=1, mem_addr=addr + i * 0x40_000)
        builder.alu(dest=2, srcs=(1,))
    return make_trace("chain", builder)


class TestFastForward:
    def test_load_chain_skips_memory_latency(self):
        trace = load_chain_trace()
        config = ProcessorConfig(**FAST)
        engine = SimulationEngine(trace, config, clock=EventClock())
        stats = engine.run()
        reference = SimulationEngine(trace, config, clock=CycleClock()).run()
        assert dataclasses.asdict(stats) == dataclasses.asdict(reference)
        # Each missing load costs tens of idle cycles; the clock must have
        # skipped a large share of the run rather than spinning it.
        assert engine.clock.fast_forwards >= 3
        assert engine.clock.cycles_skipped > stats.cycles / 3

    def test_jump_aware_dispatch_stall_accounting(self):
        # A tiny register file with long-lived values forces rename to
        # stall on the free list across memory-latency gaps: the skipped
        # cycles' stall counts must be booked, not lost.
        builder = InstructionBuilder(pc=0x1000)
        for i in range(120):
            builder.load(dest=i % 28, addr_reg=30,
                         mem_addr=0x800000 + i * 0x40_000)
        trace = make_trace("pressure", builder)
        config = ProcessorConfig(num_physical_int=40, num_physical_fp=40, **FAST)
        event_engine = SimulationEngine(trace, config, clock=EventClock())
        fast = event_engine.run()
        reference = SimulationEngine(trace, config, clock=CycleClock()).run()
        assert reference.dispatch_stalls["no_free_int_register"] > 0
        assert fast.dispatch_stalls == reference.dispatch_stalls
        assert event_engine.clock.cycles_skipped > 0

    def test_structural_stall_window_is_fast_forwarded(self):
        # Six independent FP divides on a single unpipelined divider:
        # after each issue the remaining ready divides are structurally
        # blocked for the full 16-cycle occupancy.  The clock must jump
        # those windows (the old whole-machine quiescence test could not —
        # a ready instruction always forbade skipping) and book one
        # structural stall per blocked ready entry per skipped cycle.
        builder = InstructionBuilder(pc=0x1000)
        for i in range(6):
            builder.alu(dest=10 + i, srcs=(1, 2), fp=True, op=OpClass.FP_DIV)
        trace = make_trace("divs", builder)
        starved = FUConfig(counts={
            FUKind.SIMPLE_INT: 8, FUKind.INT_MULT: 4, FUKind.SIMPLE_FP: 6,
            FUKind.FP_MULT: 4, FUKind.FP_DIV: 1, FUKind.LOAD_STORE: 4,
        })
        config = ProcessorConfig(functional_units=starved, **FAST)
        engine = SimulationEngine(trace, config, clock=EventClock())
        stats = engine.run()
        reference = SimulationEngine(trace, config, clock=CycleClock()).run()
        assert dataclasses.asdict(stats) == dataclasses.asdict(reference)
        assert reference.structural_stalls > 0
        # ~5 serialized 16-cycle divides of idle-except-stall time.
        assert engine.clock.cycles_skipped > 20

    def test_parked_load_issues_with_unblocking_store(self):
        # seq 2 is a store whose address register is fed by a missing
        # load; seq 3 is a younger, register-independent load.  The load
        # parks on the store's LSQ wait list and must issue in the very
        # cycle the store's address becomes known (intra-sweep wakeup).
        builder = InstructionBuilder(pc=0x1000)
        builder.load(dest=1, addr_reg=30, mem_addr=0x800000)      # misses
        builder.alu(dest=2, srcs=(1,))                            # address
        builder.store(value_reg=3, addr_reg=2, mem_addr=0x1000)
        builder.load(dest=4, addr_reg=30, mem_addr=0x2000)        # parks
        trace = make_trace("park", builder)
        config = ProcessorConfig(**FAST)
        engine = SimulationEngine(trace, config, clock=CycleClock())
        issue_cycles = {}
        while not engine.finished and engine.state.cycle < 500:
            engine.step()
            for entry in engine.state.ros:
                if entry.issued and entry.seq not in issue_cycles:
                    issue_cycles[entry.seq] = entry.issue_cycle
        assert issue_cycles[3] == issue_cycles[2]
        assert issue_cycles[2] > issue_cycles[0]  # store waited for the miss
        fast = SimulationEngine(trace, config, clock=EventClock()).run()
        reference = SimulationEngine(trace, config, clock=CycleClock()).run()
        assert dataclasses.asdict(fast) == dataclasses.asdict(reference)

    def test_cycle_clock_never_jumps(self):
        engine = SimulationEngine(load_chain_trace(), ProcessorConfig(**FAST),
                                  clock=CycleClock())
        engine.run()
        assert engine.clock.fast_forwards == 0
        assert engine.clock.cycles_skipped == 0

    def test_step_is_always_single_cycle(self):
        # Single-stepping (debuggers, the figure2 experiment) must observe
        # every cycle even under the event clock.
        engine = SimulationEngine(load_chain_trace(), ProcessorConfig(**FAST),
                                  clock=EventClock())
        for expected_cycle in range(1, 40):
            engine.step()
            assert engine.state.cycle == expected_cycle
        assert engine.clock.fast_forwards == 0


class TestQuiescenceProbe:
    def test_busy_machine_is_not_quiescent(self):
        builder = InstructionBuilder(pc=0x1000)
        for i in range(32):
            builder.alu(dest=1 + i % 8, srcs=(10,))
        engine = SimulationEngine(make_trace("busy", builder),
                                  ProcessorConfig(**FAST), clock=EventClock())
        # Ready front end + issuable work: no jump may happen at cycle 0.
        engine.clock.advance(engine.state)
        assert engine.state.cycle == 0

    def test_drained_machine_is_not_fast_forwarded_forever(self):
        trace = load_chain_trace(2)
        engine = SimulationEngine(trace, ProcessorConfig(**FAST),
                                  clock=EventClock())
        engine.run()
        assert engine.finished

    def test_engine_uses_event_clock_by_default(self):
        engine = SimulationEngine(load_chain_trace(), ProcessorConfig(**FAST))
        assert isinstance(engine.clock, EventClock)

    def test_stage_wiring(self):
        names = [stage.name for stage in default_stages()]
        assert names == ["commit", "writeback", "issue", "rename", "fetch"]

    def test_machine_state_implements_pipeline_view(self):
        from repro.core.release_policy import PipelineView

        state = MachineState(load_chain_trace(), ProcessorConfig(**FAST))
        assert isinstance(state, PipelineView)
        assert state.current_cycle() == 0
        assert not state.is_committed(0)
