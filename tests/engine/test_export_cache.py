"""The export-artefact cache: identity, invalidation, no-aliasing.

The compiled backend builds immutable trace columns (the ``_export_trace``
inputs) once per trace and shares them read-only across every
configuration of a sweep (:mod:`repro.engine.accel.artefacts`).  These
tests pin the cache's three contracts:

* **identity** — the key is (workload profile digest, trace length, seed);
  changing any component is a miss, and a trace the registry cannot
  digest bypasses the cache entirely;
* **safety** — cached arrays are frozen; a hand-built trace that merely
  *names* a registry workload is spot-checked, not trusted;
* **no aliasing** — configs sharing cached columns keep private mutable
  state, so a run cannot contaminate a later run's results.

Everything except the hot-vs-cold simulation test runs without a C
toolchain (the cache itself is pure Python + numpy).
"""

import dataclasses

import pytest

from repro.engine import SimulationEngine
from repro.engine import accel
from repro.engine.accel.artefacts import (EXPORT_CACHE, ExportArtefactCache,
                                          TRACE_COLUMN_NAMES, _trace_key)
from repro.pipeline.config import ProcessorConfig
from repro.trace.records import Trace
from repro.trace.workloads import get_workload


def _compiled_available() -> bool:
    return accel.resolve_engine_backend(
        ProcessorConfig(engine="compiled")) == "compiled"


needs_compiled = pytest.mark.skipif(
    not _compiled_available(),
    reason="no C toolchain for the compiled engine backend")


@pytest.fixture
def cache():
    """A private cache instance (the module singleton stays untouched)."""
    return ExportArtefactCache()


class TestIdentityKey:
    def test_key_components(self):
        trace = get_workload("swim", 600, seed=3)
        key = _trace_key(trace)
        assert key is not None
        digest, length, seed = key
        # The generator overshoots the requested length; the key holds the
        # trace's *actual* length (what the export sees), plus its seed.
        assert (length, seed) == (len(trace.instructions), 3)
        assert key == _trace_key(get_workload("swim", 600, seed=3))

    def test_unregistered_trace_has_no_key(self):
        base = get_workload("swim", 50, seed=0)
        loose = Trace(name="hand-rolled", focus_class=base.focus_class,
                      instructions=list(base.instructions), seed=0)
        assert _trace_key(loose) is None

    def test_hit_on_same_trace_miss_on_any_key_change(self, cache):
        trace = get_workload("swim", 400, seed=0)
        variants = [get_workload("swim", 900, seed=0),   # length
                    get_workload("swim", 400, seed=1),   # seed
                    get_workload("gcc", 400, seed=0)]    # profile
        assert len({_trace_key(t) for t in (trace, *variants)}) == 4
        first = cache.trace_columns(trace)
        again = cache.trace_columns(get_workload("swim", 400, seed=0))
        assert again is first                      # same (digest, len, seed)
        for variant in variants:
            cache.trace_columns(variant)
        assert cache.counters() == (1, 4)

    def test_unregistered_trace_always_misses(self, cache):
        base = get_workload("swim", 60, seed=0)
        loose = Trace(name="hand-rolled", focus_class=base.focus_class,
                      instructions=list(base.instructions), seed=0)
        cache.trace_columns(loose)
        cache.trace_columns(loose)
        assert cache.counters() == (0, 2)


class TestSafety:
    def test_cached_columns_are_frozen(self, cache):
        columns = cache.trace_columns(get_workload("swim", 200, seed=0))
        for name in TRACE_COLUMN_NAMES:
            with pytest.raises(ValueError):
                columns[name][0] = 123456

    def test_impostor_trace_is_not_served_stale_columns(self, cache):
        # A hand-built trace with a registry workload's name, length and
        # seed — but different instructions — must not be handed the real
        # workload's cached columns: the spot-check catches the mismatch
        # and rebuilds from the impostor's own instructions.
        real = get_workload("swim", 300, seed=0)
        cached = cache.trace_columns(real)
        impostor = Trace(name="swim", focus_class=real.focus_class,
                         instructions=list(reversed(real.instructions)),
                         seed=0)
        rebuilt = cache.trace_columns(impostor)
        assert rebuilt is not cached
        assert rebuilt["pc"][0] == impostor.instructions[0].pc

    def test_warm_columns_cached_separately(self, cache):
        trace = get_workload("swim", 200, seed=0)
        full = cache.trace_columns(trace)
        warm = cache.warmup_columns(trace)
        assert set(warm) == {"op", "pc", "addr", "taken", "target"}
        assert warm is not full
        assert cache.warmup_columns(trace) is warm

    def test_lru_eviction_bounds_the_cache(self, cache):
        for seed in range(cache.max_entries + 3):
            cache.trace_columns(get_workload("swim", 50, seed=seed))
        assert len(cache._full) == cache.max_entries
        # The oldest entry was evicted: asking for it again is a miss.
        hits, misses = cache.counters()
        cache.trace_columns(get_workload("swim", 50, seed=0))
        assert cache.counters() == (hits, misses + 1)


@needs_compiled
class TestSharedColumnsCannotAlias:
    def test_hot_cache_is_bit_identical_to_cold(self):
        # Same point twice: the first run builds the columns (cold), the
        # second is served from the cache (hot).  Identical SimStats —
        # field for field — proves the cache changes cost, not results.
        trace = get_workload("gcc", 1_200, seed=0)
        config = ProcessorConfig(release_policy="extended", warmup=True,
                                 exception_rate=0.002, engine="compiled")
        hits0, _ = EXPORT_CACHE.counters()
        cold = SimulationEngine(trace, config).run()
        hot_engine = SimulationEngine(trace, config)
        hot = hot_engine.run()
        hits1, _ = EXPORT_CACHE.counters()
        assert hot_engine.backend_used == "compiled"
        assert hits1 > hits0
        assert dataclasses.asdict(hot) == dataclasses.asdict(cold)

    def test_interleaved_configs_keep_private_state(self):
        # Two configs share one trace's cached columns.  Run A, then B,
        # then A again: if B's run could reach A's mutable state (RQ
        # arrays, predictor tables) through the shared columns, the second
        # A run would diverge from the first.
        trace = get_workload("swim", 1_000, seed=0)
        config_a = ProcessorConfig(release_policy="extended", warmup=True,
                                   num_physical_int=40, num_physical_fp=40,
                                   engine="compiled")
        config_b = ProcessorConfig(release_policy="conv", warmup=True,
                                   num_physical_int=96, num_physical_fp=96,
                                   engine="compiled")
        first_a = SimulationEngine(trace, config_a).run()
        stats_b = SimulationEngine(trace, config_b).run()
        second_a = SimulationEngine(trace, config_a).run()
        assert dataclasses.asdict(first_a) != dataclasses.asdict(stats_b)
        assert dataclasses.asdict(second_a) == dataclasses.asdict(first_a)
