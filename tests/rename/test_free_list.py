"""Tests for the checked free list."""

import pytest

from repro.rename.free_list import FreeList, FreeListError


class TestConstruction:
    def test_initially_free_range(self):
        free_list = FreeList(64, initially_free=range(32, 64))
        assert free_list.n_free == 32
        assert free_list.n_allocated == 32

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            FreeList(8, initially_free=[9])

    def test_rejects_duplicates(self):
        with pytest.raises(FreeListError):
            FreeList(8, initially_free=[3, 3])


class TestAllocateRelease:
    def test_fifo_order(self):
        free_list = FreeList(8, initially_free=[4, 5, 6])
        assert free_list.allocate() == 4
        assert free_list.allocate() == 5
        free_list.release(4)
        assert free_list.allocate() == 6
        assert free_list.allocate() == 4

    def test_allocate_empties(self):
        free_list = FreeList(4, initially_free=[3])
        free_list.allocate()
        assert not free_list.can_allocate()
        with pytest.raises(FreeListError):
            free_list.allocate()

    def test_double_release_rejected(self):
        free_list = FreeList(4, initially_free=[2])
        reg = free_list.allocate()
        free_list.release(reg)
        with pytest.raises(FreeListError):
            free_list.release(reg)

    def test_release_out_of_range_rejected(self):
        free_list = FreeList(4, initially_free=[])
        with pytest.raises(FreeListError):
            free_list.release(7)

    def test_release_never_free_register(self):
        # Register 0 starts allocated (architectural); releasing it is legal.
        free_list = FreeList(4, initially_free=[2, 3])
        free_list.release(0)
        assert free_list.is_free(0)

    def test_conservation(self):
        free_list = FreeList(16, initially_free=range(8, 16))
        regs = [free_list.allocate() for _ in range(5)]
        for reg in regs[:3]:
            free_list.release(reg)
        assert free_list.n_free + free_list.n_allocated == 16

    def test_is_free_tracking(self):
        free_list = FreeList(8, initially_free=[5])
        assert free_list.is_free(5)
        reg = free_list.allocate()
        assert not free_list.is_free(reg)

    def test_snapshot_free_set(self):
        free_list = FreeList(8, initially_free=[5, 6])
        assert free_list.snapshot_free_set() == frozenset({5, 6})
        free_list.allocate()
        assert free_list.snapshot_free_set() == frozenset({6})
