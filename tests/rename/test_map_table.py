"""Tests for the speculative map table (with stale-mapping flags)."""

import pytest

from repro.rename.map_table import MapTable


class TestMapping:
    def test_initial_mapping(self):
        table = MapTable(4, [0, 1, 2, 3])
        assert [table.lookup(i) for i in range(4)] == [0, 1, 2, 3]

    def test_rejects_wrong_size(self):
        with pytest.raises(ValueError):
            MapTable(4, [0, 1])

    def test_set_mapping(self):
        table = MapTable(4, range(4))
        table.set_mapping(2, 17)
        assert table.lookup(2) == 17

    def test_mapped_registers(self):
        table = MapTable(3, [5, 6, 7])
        assert table.mapped_registers() == (5, 6, 7)

    def test_len(self):
        assert len(MapTable(32, range(32))) == 32


class TestSnapshotRestore:
    def test_round_trip(self):
        table = MapTable(4, range(4))
        table.set_mapping(1, 9)
        snapshot = table.snapshot()
        table.set_mapping(1, 20)
        table.set_mapping(3, 21)
        table.restore(snapshot)
        assert table.lookup(1) == 9
        assert table.lookup(3) == 3

    def test_snapshot_is_immutable_copy(self):
        table = MapTable(4, range(4))
        snapshot = table.snapshot()
        table.set_mapping(0, 99)
        mappings, _stale = snapshot
        assert mappings[0] == 0

    def test_restore_rejects_bad_size(self):
        table = MapTable(4, range(4))
        with pytest.raises(ValueError):
            table.restore(((0, 1), (False, False)))


class TestStaleFlags:
    def test_not_stale_by_default(self):
        table = MapTable(4, range(4))
        assert not any(table.is_stale(i) for i in range(4))

    def test_mark_and_clear_on_remap(self):
        table = MapTable(4, range(4))
        table.mark_stale(2)
        assert table.is_stale(2)
        table.set_mapping(2, 30)
        assert not table.is_stale(2)

    def test_stale_survives_snapshot_restore(self):
        table = MapTable(4, range(4))
        table.mark_stale(1)
        snapshot = table.snapshot()
        table.set_mapping(1, 9)          # clears staleness
        table.restore(snapshot)
        assert table.is_stale(1)

    def test_restore_architectural_clears_stale(self):
        table = MapTable(4, range(4))
        table.mark_stale(1)
        table.restore_architectural([4, 5, 6, 7])
        assert not table.is_stale(1)
        assert table.lookup(2) == 6

    def test_restore_architectural_rejects_bad_size(self):
        table = MapTable(4, range(4))
        with pytest.raises(ValueError):
            table.restore_architectural([1, 2])
