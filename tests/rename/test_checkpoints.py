"""Tests for the branch checkpoint stack."""

import pytest

from repro.isa import RegClass
from repro.rename.checkpoints import Checkpoint, CheckpointStack


def make_checkpoint(seq, value=0):
    return Checkpoint(branch_seq=seq,
                      map_snapshots={RegClass.INT: ((value,), (False,))},
                      policy_snapshots={RegClass.INT: None})


class TestPush:
    def test_program_order_enforced(self):
        stack = CheckpointStack(capacity=4)
        stack.push(make_checkpoint(5))
        with pytest.raises(ValueError):
            stack.push(make_checkpoint(3))

    def test_capacity_limit(self):
        stack = CheckpointStack(capacity=2)
        stack.push(make_checkpoint(1))
        stack.push(make_checkpoint(2))
        assert stack.is_full
        with pytest.raises(RuntimeError):
            stack.push(make_checkpoint(3))

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            CheckpointStack(capacity=0)

    def test_paper_default_capacity(self):
        # Table 2: up to 20 pending branches.
        assert CheckpointStack().capacity == 20


class TestPendingQueries:
    def test_pending_seqs(self):
        stack = CheckpointStack()
        stack.push(make_checkpoint(3))
        stack.push(make_checkpoint(8))
        assert stack.pending_branch_seqs() == [3, 8]
        assert stack.newest_pending_seq() == 8
        assert stack.count_pending() == 2

    def test_has_pending_younger_than(self):
        stack = CheckpointStack()
        stack.push(make_checkpoint(10))
        assert stack.has_pending_younger_than(5)
        assert not stack.has_pending_younger_than(10)
        assert not stack.has_pending_younger_than(15)

    def test_empty_stack_queries(self):
        stack = CheckpointStack()
        assert stack.newest_pending_seq() is None
        assert not stack.has_pending_younger_than(0)
        assert len(stack) == 0


class TestResolution:
    def test_confirm_removes_middle_entry(self):
        stack = CheckpointStack()
        for seq in (1, 2, 3):
            stack.push(make_checkpoint(seq))
        recovered = stack.confirm(2)
        assert recovered.branch_seq == 2
        assert stack.pending_branch_seqs() == [1, 3]

    def test_confirm_unknown_returns_none(self):
        stack = CheckpointStack()
        stack.push(make_checkpoint(1))
        assert stack.confirm(9) is None

    def test_mispredict_pops_younger(self):
        stack = CheckpointStack()
        for seq in (1, 5, 9):
            stack.push(make_checkpoint(seq))
        recovered = stack.mispredict(5)
        assert recovered.branch_seq == 5
        assert stack.pending_branch_seqs() == [1]

    def test_mispredict_unknown_returns_none(self):
        stack = CheckpointStack()
        stack.push(make_checkpoint(1))
        assert stack.mispredict(7) is None
        assert stack.pending_branch_seqs() == [1]

    def test_squash_younger_than(self):
        stack = CheckpointStack()
        for seq in (1, 5, 9):
            stack.push(make_checkpoint(seq))
        dropped = stack.squash_younger_than(5)
        assert [cp.branch_seq for cp in dropped] == [9]
        assert stack.pending_branch_seqs() == [1, 5]

    def test_clear(self):
        stack = CheckpointStack()
        stack.push(make_checkpoint(1))
        dropped = stack.clear()
        assert len(dropped) == 1
        assert len(stack) == 0
