"""Tests for the in-order (retirement) map table."""

import pytest

from repro.rename.iomt import InOrderMapTable


class TestIOMT:
    def test_initial_state(self):
        iomt = InOrderMapTable(4, [0, 1, 2, 3])
        assert iomt.lookup(2) == 2

    def test_commit_mapping_returns_previous(self):
        iomt = InOrderMapTable(4, range(4))
        previous = iomt.commit_mapping(1, 40)
        assert previous == 1
        assert iomt.lookup(1) == 40

    def test_successive_commits(self):
        iomt = InOrderMapTable(4, range(4))
        iomt.commit_mapping(0, 10)
        previous = iomt.commit_mapping(0, 11)
        assert previous == 10
        assert iomt.lookup(0) == 11

    def test_snapshot(self):
        iomt = InOrderMapTable(3, [7, 8, 9])
        iomt.commit_mapping(1, 20)
        assert iomt.snapshot() == (7, 20, 9)

    def test_mapped_registers(self):
        iomt = InOrderMapTable(3, [7, 8, 9])
        assert iomt.mapped_registers() == (7, 8, 9)

    def test_rejects_wrong_size(self):
        with pytest.raises(ValueError):
            InOrderMapTable(4, [1, 2, 3])

    def test_len(self):
        assert len(InOrderMapTable(32, range(32))) == 32
