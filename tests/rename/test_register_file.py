"""Tests for the merged physical register file."""

import pytest

from repro.core.register_state import RegState
from repro.isa import RegClass
from repro.rename.free_list import FreeListError
from repro.rename.register_file import PhysicalRegisterFile


class TestConstruction:
    def test_initial_architectural_allocation(self):
        rf = PhysicalRegisterFile(RegClass.INT, 48)
        assert rf.n_allocated == 32          # logical registers pre-mapped
        assert rf.n_free == 16

    def test_rejects_too_few_registers(self):
        with pytest.raises(ValueError):
            PhysicalRegisterFile(RegClass.INT, 16)

    def test_custom_logical_count(self):
        rf = PhysicalRegisterFile(RegClass.FP, 12, num_logical=8)
        assert rf.n_free == 4


class TestAllocateRelease:
    def test_allocate_sets_producer(self):
        rf = PhysicalRegisterFile(RegClass.INT, 40)
        reg = rf.allocate(cycle=5, producer_seq=77)
        assert rf.producer_of(reg) == 77
        assert rf.state_of(reg) is RegState.EMPTY

    def test_mark_written_clears_producer(self):
        rf = PhysicalRegisterFile(RegClass.INT, 40)
        reg = rf.allocate(cycle=5, producer_seq=77)
        rf.mark_written(reg, cycle=9)
        assert rf.producer_of(reg) is None
        assert rf.state_of(reg) is RegState.READY

    def test_release_returns_to_free(self):
        rf = PhysicalRegisterFile(RegClass.INT, 40)
        reg = rf.allocate(cycle=0, producer_seq=1)
        rf.release(reg, cycle=10)
        assert rf.is_free(reg)
        assert rf.state_of(reg) is RegState.FREE

    def test_early_release_counted(self):
        rf = PhysicalRegisterFile(RegClass.INT, 40)
        reg = rf.allocate(cycle=0, producer_seq=1)
        rf.release(reg, cycle=3, early=True)
        assert rf.early_releases == 1
        assert rf.releases == 1

    def test_double_release_rejected(self):
        rf = PhysicalRegisterFile(RegClass.INT, 40)
        reg = rf.allocate(cycle=0, producer_seq=1)
        rf.release(reg, cycle=1)
        with pytest.raises(FreeListError):
            rf.release(reg, cycle=2)

    def test_set_producer_for_reuse(self):
        rf = PhysicalRegisterFile(RegClass.INT, 40)
        # Architectural register 3 is reused as a destination.
        rf.set_producer(3, 55)
        assert rf.producer_of(3) == 55

    def test_exhaustion(self):
        rf = PhysicalRegisterFile(RegClass.INT, 34)
        rf.allocate(0, 1)
        rf.allocate(0, 2)
        assert not rf.can_allocate()

    def test_allocated_registers_listing(self):
        rf = PhysicalRegisterFile(RegClass.INT, 34)
        reg = rf.allocate(0, 1)
        allocated = rf.allocated_registers()
        assert reg in allocated
        assert len(allocated) == 33


class TestOccupancyAccounting:
    def test_lifecycle_attribution(self):
        rf = PhysicalRegisterFile(RegClass.INT, 40)
        reg = rf.allocate(cycle=10, producer_seq=1)
        rf.mark_written(reg, cycle=14)
        rf.note_use_commit(reg, cycle=20)
        rf.release(reg, cycle=30)
        totals = rf.finalize_occupancy(end_cycle=30)
        assert totals.empty == pytest.approx(4)     # 10 → 14
        # Ready 14 → 20 (6 cycles) for this register; the 32 architectural
        # registers contribute ready time as well (written at cycle 0, never
        # used), so only check the contribution is at least this much.
        assert totals.ready >= 6
        assert totals.idle >= 10                    # 20 → 30

    def test_never_written_register_counts_as_empty(self):
        rf = PhysicalRegisterFile(RegClass.INT, 40)
        reg = rf.allocate(cycle=0, producer_seq=1)
        rf.release(reg, cycle=25)
        totals = rf.finalize_occupancy(end_cycle=25)
        assert totals.empty >= 25

    def test_check_invariants(self):
        rf = PhysicalRegisterFile(RegClass.INT, 40)
        rf.allocate(0, 1)
        rf.check_invariants()
