"""Tests for the bench-probe regression gate (`scripts/bench_baseline.py`)."""

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def load_bench_module():
    spec = importlib.util.spec_from_file_location(
        "bench_baseline", REPO_ROOT / "scripts" / "bench_baseline.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_baseline", module)
    spec.loader.exec_module(module)
    return module


bench = load_bench_module()


def snapshot(cycles_per_s=100_000.0, generation_inst_per_s=500_000,
             compiled_cycles_per_s=None, compiled_backend="compiled"):
    """A minimal snapshot with one scheduler point and a generation probe.

    ``compiled_cycles_per_s`` adds a ``scheduler_compiled`` section whose
    single point reports ``compiled_backend`` as the engine that ran it.
    """
    payload = {
        "scheduler": {
            "trace_length": 4000,
            "points": [{"wall_clock_s": 1.0, "cycles": cycles_per_s}],
        },
        "generation": {
            "trace_length": 20_000,
            "points": [],
            "scenario_vector_inst_per_s": generation_inst_per_s,
            "scenario_speedup": 2.0,
        },
    }
    if compiled_cycles_per_s is not None:
        payload["scheduler_compiled"] = {
            "trace_length": 4000,
            "engine_requested": "compiled",
            "points": [{"wall_clock_s": 1.0,
                        "cycles": compiled_cycles_per_s,
                        "engine_backend": compiled_backend}],
        }
    return payload


class TestCompareAgainstBaseline:
    def test_equal_snapshots_pass(self):
        assert bench.compare_against_baseline(snapshot(), snapshot(), 1.4) == []

    def test_within_tolerance_passes(self):
        current = snapshot(cycles_per_s=80_000, generation_inst_per_s=400_000)
        assert bench.compare_against_baseline(current, snapshot(), 1.4) == []

    def test_scheduler_regression_fails(self):
        current = snapshot(cycles_per_s=50_000)   # 2x slower than 100k
        messages = bench.compare_against_baseline(current, snapshot(), 1.4)
        assert len(messages) == 1
        assert "scheduler probe" in messages[0]

    def test_generation_regression_fails(self):
        current = snapshot(generation_inst_per_s=100_000)   # 5x slower
        messages = bench.compare_against_baseline(current, snapshot(), 1.4)
        assert len(messages) == 1
        assert "generation" in messages[0]

    def test_speedup_ratio_regression_is_machine_independent(self):
        """Absolute inst/s may legitimately differ across machines, but a
        collapsed scalar-vs-vector ratio is a vectorisation regression."""
        current = snapshot()
        current["generation"]["scenario_speedup"] = 1.0   # was 2.0
        messages = bench.compare_against_baseline(current, snapshot(), 1.4)
        assert len(messages) == 1
        assert "ratio" in messages[0]

    def test_faster_is_never_a_regression(self):
        current = snapshot(cycles_per_s=1e9, generation_inst_per_s=10**9)
        assert bench.compare_against_baseline(current, snapshot(), 1.4) == []

    def test_missing_baseline_metric_is_skipped(self):
        baseline = snapshot()
        del baseline["generation"]                  # pre-PR-4 snapshot
        current = snapshot(generation_inst_per_s=1)
        assert bench.compare_against_baseline(current, baseline, 1.4) == []

    def test_tolerance_widens_the_gate(self):
        current = snapshot(cycles_per_s=50_000)
        assert bench.compare_against_baseline(current, snapshot(), 1.4)
        assert bench.compare_against_baseline(current, snapshot(), 2.5) == []

    def test_rejects_sub_unity_tolerance(self):
        with pytest.raises(ValueError):
            bench.compare_against_baseline(snapshot(), snapshot(), 0.9)

    def test_compiled_probe_gates_like_for_like(self):
        baseline = snapshot(compiled_cycles_per_s=500_000)
        current = snapshot(compiled_cycles_per_s=200_000)   # 2.5x slower
        messages = bench.compare_against_baseline(current, baseline, 1.4)
        assert len(messages) == 1
        assert "compiled-engine" in messages[0]

    def test_fallen_back_compiled_probe_is_not_gated(self):
        """A compiled probe whose points ran on the Python engine (no
        toolchain on the runner) must be excluded from the compiled
        comparison, not flagged as a 6x C-core regression."""
        baseline = snapshot(compiled_cycles_per_s=500_000)
        current = snapshot(compiled_cycles_per_s=80_000,
                           compiled_backend="python")
        assert bench.compare_against_baseline(current, baseline, 1.4) == []

    def test_python_and_compiled_probes_never_cross_compare(self):
        """A slow compiled section must not drag down the Python gate and
        vice versa: each section only meets its own baseline section."""
        baseline = snapshot(cycles_per_s=100_000,
                            compiled_cycles_per_s=500_000)
        current = snapshot(cycles_per_s=100_000,
                           compiled_cycles_per_s=500_000)
        assert bench.compare_against_baseline(current, baseline, 1.4) == []
        only_python = snapshot(cycles_per_s=100_000)
        assert bench.compare_against_baseline(only_python, baseline, 1.4) == []


def sweep_point_section(cycles_per_s, backend, hits=10, misses=2):
    return {
        "trace_length": 4000,
        "engine_requested": backend,
        "points": [{"wall_clock_s": 1.0, "cycles": cycles_per_s,
                    "engine_backend": backend}],
        "export_cache_hits": hits,
        "export_cache_misses": misses,
    }


class TestSweepPointGate:
    def test_sweep_point_regression_fails(self):
        baseline = snapshot()
        baseline["sweep_point_compiled"] = sweep_point_section(
            500_000, "compiled")
        current = snapshot()
        current["sweep_point_compiled"] = sweep_point_section(
            200_000, "compiled")    # 2.5x slower end-to-end
        messages = bench.compare_against_baseline(current, baseline, 1.4)
        assert len(messages) == 1
        assert "sweep-point" in messages[0]
        assert "compiled-engine" in messages[0]

    def test_sweep_point_gates_like_for_like(self):
        # A compiled sweep-point probe that fell back to Python must be
        # excluded, exactly like the run-only scheduler sections.
        baseline = snapshot()
        baseline["sweep_point_compiled"] = sweep_point_section(
            500_000, "compiled")
        current = snapshot()
        current["sweep_point_compiled"] = sweep_point_section(
            80_000, "compiled")
        current["sweep_point_compiled"]["points"][0]["engine_backend"] = \
            "python"
        assert bench.compare_against_baseline(current, baseline, 1.4) == []

    def test_missing_sweep_point_baseline_is_skipped(self):
        # Pre-PR-7 snapshots have no sweep_point sections: the gate only
        # arms once a snapshot recording them is committed.
        current = snapshot()
        current["sweep_point"] = sweep_point_section(1, "python")
        current["sweep_point_compiled"] = sweep_point_section(1, "compiled")
        assert bench.compare_against_baseline(current, snapshot(), 1.4) == []

    def test_python_sweep_point_section_gated_separately(self):
        baseline = snapshot()
        baseline["sweep_point"] = sweep_point_section(100_000, "python")
        current = snapshot()
        current["sweep_point"] = sweep_point_section(40_000, "python")
        messages = bench.compare_against_baseline(current, baseline, 1.4)
        assert len(messages) == 1
        assert "python-engine sweep-point" in messages[0]


def serve_section(requests_per_s=100.0, hit_rate=0.85, errors=0,
                  degradation=None):
    """A serve probe section with the CI probe's shape parameters."""
    return {
        "clients": 6, "requests": 90, "answered": 90, "pool_size": 12,
        "zipf_skew": 1.1, "trace_length": 1000, "seed": 9,
        "requests_per_s": requests_per_s,
        "p50_ms": 20.0, "p99_ms": 200.0,
        "hit_rate": hit_rate,
        "errors": errors,
        "cache_degradation_reason": degradation,
    }


class TestServeGate:
    def test_equal_serve_sections_pass(self):
        baseline, current = snapshot(), snapshot()
        baseline["serve"] = serve_section()
        current["serve"] = serve_section()
        assert bench.compare_against_baseline(current, baseline, 1.4) == []

    def test_throughput_regression_fails(self):
        baseline, current = snapshot(), snapshot()
        baseline["serve"] = serve_section(requests_per_s=100.0)
        current["serve"] = serve_section(requests_per_s=40.0)  # 2.5x slower
        messages = bench.compare_against_baseline(current, baseline, 1.4)
        assert len(messages) == 1
        assert "serve probe requests/s" in messages[0]

    def test_hit_rate_regression_fails(self):
        """A collapsed hit rate means the cache or single-flight layer
        stopped absorbing load — a functional regression even if raw
        throughput survived on a fast machine."""
        baseline, current = snapshot(), snapshot()
        baseline["serve"] = serve_section(hit_rate=0.85)
        current["serve"] = serve_section(hit_rate=0.30)
        messages = bench.compare_against_baseline(current, baseline, 1.4)
        assert len(messages) == 1
        assert "hit rate" in messages[0]

    def test_degraded_run_is_excluded(self):
        """A probe whose store ran degraded measured an outage, not the
        service: it must be excluded from the gate, like a fallen-back
        compiled probe."""
        baseline, current = snapshot(), snapshot()
        baseline["serve"] = serve_section()
        current["serve"] = serve_section(
            requests_per_s=1.0,
            degradation="remote cache http://x unreachable; local-only")
        assert bench.compare_against_baseline(current, baseline, 1.4) == []

    def test_degraded_baseline_is_excluded_too(self):
        baseline, current = snapshot(), snapshot()
        baseline["serve"] = serve_section(
            requests_per_s=1000.0,
            degradation="remote cache http://x unreachable; local-only")
        current["serve"] = serve_section(requests_per_s=10.0)
        assert bench.compare_against_baseline(current, baseline, 1.4) == []

    def test_error_laden_run_is_excluded(self):
        baseline, current = snapshot(), snapshot()
        baseline["serve"] = serve_section()
        current["serve"] = serve_section(requests_per_s=1.0, errors=3)
        assert bench.compare_against_baseline(current, baseline, 1.4) == []

    def test_shape_mismatch_is_excluded(self):
        """A probe whose offered load changed (more clients, different
        pool) measures a different workload — not comparable."""
        baseline, current = snapshot(), snapshot()
        baseline["serve"] = serve_section()
        current["serve"] = serve_section(requests_per_s=1.0)
        current["serve"]["clients"] = 32
        assert bench.compare_against_baseline(current, baseline, 1.4) == []

    def test_missing_serve_baseline_is_skipped(self):
        # Pre-PR-9 snapshots have no serve section: the gate only arms
        # once a snapshot recording it is committed.
        current = snapshot()
        current["serve"] = serve_section(requests_per_s=1.0, hit_rate=0.0)
        assert bench.compare_against_baseline(current, snapshot(), 1.4) == []

    def test_faster_and_hotter_is_never_a_regression(self):
        baseline, current = snapshot(), snapshot()
        baseline["serve"] = serve_section()
        current["serve"] = serve_section(requests_per_s=10_000.0,
                                         hit_rate=0.99)
        assert bench.compare_against_baseline(current, baseline, 1.4) == []

    def test_gateable_predicate(self):
        assert bench.serve_probe_gateable(serve_section())
        assert not bench.serve_probe_gateable(serve_section(errors=1))
        assert not bench.serve_probe_gateable(
            serve_section(degradation="outage"))
        assert not bench.serve_probe_gateable({})


class TestSnapshotDiscovery:
    def test_picks_newest_by_date(self, tmp_path):
        (tmp_path / "BENCH_20260101_pr1.json").write_text("{}")
        (tmp_path / "BENCH_20260728_pr3.json").write_text("{}")
        (tmp_path / "BENCH_20260301_pr2.json").write_text("{}")
        assert bench.find_latest_snapshot(tmp_path).name == \
            "BENCH_20260728_pr3.json"

    def test_same_day_timestamped_snapshot_beats_pr_tag(self, tmp_path):
        """'_' > 'T' lexicographically, but numeric ordering must win:
        a timestamped snapshot from later the same day is the baseline."""
        (tmp_path / "BENCH_20260728_pr4.json").write_text("{}")
        (tmp_path / "BENCH_20260728T150000Z.json").write_text("{}")
        assert bench.find_latest_snapshot(tmp_path).name == \
            "BENCH_20260728T150000Z.json"

    def test_no_snapshot_returns_none(self, tmp_path):
        assert bench.find_latest_snapshot(tmp_path) is None

    def test_repo_has_a_baseline_with_both_probes(self):
        """The committed snapshots must keep the gate armed."""
        import json
        newest = bench.find_latest_snapshot(REPO_ROOT)
        assert newest is not None
        payload = json.loads(newest.read_text())
        assert payload.get("scheduler", {}).get("points")
        assert payload.get("generation", {}).get("scenario_vector_inst_per_s")

    def test_repo_baseline_arms_the_compiled_gate(self):
        """The newest committed snapshot records a genuinely compiled
        scheduler probe, so the compiled-engine gate is armed too."""
        import json
        newest = bench.find_latest_snapshot(REPO_ROOT)
        payload = json.loads(newest.read_text())
        compiled = payload.get("scheduler_compiled", {})
        assert compiled.get("points")
        assert bench.probe_backend_label(compiled) == "compiled"

    def test_repo_baseline_arms_the_sweep_point_gate(self):
        """The newest committed snapshot records both end-to-end
        sweep-point probes, the compiled one genuinely compiled and with
        export-artefact cache hits proving the export was amortised."""
        import json
        newest = bench.find_latest_snapshot(REPO_ROOT)
        payload = json.loads(newest.read_text())
        assert payload.get("sweep_point", {}).get("points")
        compiled = payload.get("sweep_point_compiled", {})
        assert compiled.get("points")
        assert bench.probe_backend_label(compiled) == "compiled"
        assert compiled.get("export_cache_hits", 0) > 0

    def test_repo_baseline_arms_the_serve_gate(self):
        """The newest committed snapshot records a clean serve probe
        (no errors, no degradation, same shape as the CI probe), so the
        serve throughput + hit-rate gate is armed."""
        import json
        newest = bench.find_latest_snapshot(REPO_ROOT)
        payload = json.loads(newest.read_text())
        serve = payload.get("serve", {})
        assert bench.serve_probe_gateable(serve)
        assert serve.get("requests_per_s", 0) > 0
        assert serve.get("hit_rate", 0) > 0
        for field, value in bench.SERVE_PROBE_SETTINGS.items():
            assert serve.get(field) == value


class TestProbeBackendLabel:
    def test_uniform_backends(self):
        assert bench.probe_backend_label(
            {"points": [{"engine_backend": "compiled"}] * 3}) == "compiled"

    def test_legacy_points_count_as_python(self):
        assert bench.probe_backend_label({"points": [{}, {}]}) == "python"

    def test_mixed_backends_are_flagged(self):
        assert bench.probe_backend_label(
            {"points": [{"engine_backend": "compiled"},
                        {"engine_backend": "python"}]}) == "mixed"


class TestSchedulerThroughput:
    def test_aggregates_cycles_over_wall_clock(self):
        sched = {"points": [{"wall_clock_s": 1.0, "cycles": 100},
                            {"wall_clock_s": 1.0, "cycles": 300}]}
        assert bench.scheduler_throughput(sched) == 200.0

    def test_empty_probe_is_zero(self):
        assert bench.scheduler_throughput({"points": []}) == 0.0
