"""End-to-end tests over the real HTTP transport.

A :class:`BackgroundServer` on a loopback socket, driven by the stdlib
:class:`ServeClient` — the same path CI's smoke job and the load
harness use.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.analysis.backends import resolve_backend, wrap_envelope
from repro.analysis.cache import SweepCache
from repro.analysis.sweep import SweepConfig, run_sweep
from repro.serve import BackgroundServer, ServeClient

TINY = {"benchmark": "gcc", "policy": "conv", "num_registers": 48,
        "trace_length": 300, "seed": 1}


@pytest.fixture(scope="module")
def server():
    import tempfile

    with BackgroundServer(cache=SweepCache(tempfile.mkdtemp())) as server:
        yield server


@pytest.fixture
def client(server):
    return ServeClient(server.url)


class TestRoutes:
    def test_healthz(self, client):
        response = client.healthz()
        assert response.ok
        assert response.json()["status"] == "ok"
        assert response.json()["cache_backend"] == "local"

    def test_unknown_route_is_404_json(self, client):
        response = client._request("GET", "/nope")
        assert response.status == 404
        assert "no such route" in response.json()["error"]

    def test_wrong_method_is_405(self, client):
        response = client._request("GET", "/v1/sweep-point")
        assert response.status == 405

    def test_invalid_json_body_is_400(self, client):
        response = client._request("POST", "/v1/sweep-point", b"not json{")
        assert response.status == 400
        assert "invalid JSON" in response.json()["error"]

    def test_empty_body_is_400(self, client):
        response = client._request("POST", "/v1/sweep-point", b"")
        assert response.status == 400


class TestSweepPointOverHTTP:
    def test_concurrent_duplicates_share_bytes(self, client):
        results = [None] * 6

        def hit(index):
            results[index] = client.sweep_point_raw(dict(TINY))

        threads = [threading.Thread(target=hit, args=(index,))
                   for index in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(response.ok for response in results)
        assert len({response.body for response in results}) == 1
        origins = [response.served_from for response in results]
        assert origins.count("computed") <= 1
        assert set(origins) <= {"computed", "joined", "cache"}

    def test_metrics_reflect_the_traffic(self, client):
        client.sweep_point_raw(dict(TINY))
        metrics = client.metrics()
        assert metrics["counters"]["sweep_computations"] == 1
        assert metrics["in_flight"] == 0
        assert "POST /v1/sweep-point" in metrics["latency"]
        summary = metrics["latency"]["POST /v1/sweep-point"]
        assert summary["p50_ms"] <= summary["p99_ms"] <= summary["max_ms"]

    def test_stats_are_stable_across_requests(self, client):
        first = client.sweep_point_raw(dict(TINY)).json()
        second = client.sweep_point_raw(dict(TINY)).json()
        assert first["stats"] == second["stats"]

    def test_error_is_json_not_dropped_connection(self, client):
        response = client.sweep_point_raw(dict(TINY, num_registers=8))
        assert response.status == 400
        assert "error" in response.json()

    def test_distinct_points_are_distinct_results(self, client):
        conv = client.sweep_point_raw(dict(TINY)).json()
        extended = client.sweep_point_raw(
            dict(TINY, policy="extended")).json()
        assert conv["key"] != extended["key"]


class TestCacheProtocolOverHTTP:
    def test_round_trip_with_envelope(self, client):
        key = "cd" * 32
        envelope = wrap_envelope(key, b"remote entry")
        assert client.cache_put(key, envelope).status == 204
        fetched = client.cache_get(key)
        assert fetched.status == 200
        assert fetched.body == envelope

    def test_corrupt_upload_rejected(self, client):
        key = "ef" * 32
        assert client.cache_put(key, b"garbage").status == 400
        assert client.cache_get(key).status == 404


class TestSweepAgainstLiveServer:
    """The distributed story end-to-end: a sweep with a tiered backend
    shares results through a live server."""

    def test_tiered_sweep_shares_results(self, server, tmp_path):
        config = SweepConfig(benchmarks=("gcc",), policies=("basic",),
                             register_sizes=(48,), trace_length=300, seed=7)
        first = SweepCache(backend=resolve_backend(
            server.url, cache_dir=tmp_path / "node1"))
        result = run_sweep(config, parallel=False, cache=first)
        assert result.cache_degradation_reason is None
        assert first.stores == 1

        second = SweepCache(backend=resolve_backend(
            server.url, cache_dir=tmp_path / "node2"))
        rerun = run_sweep(config, parallel=False, cache=second)
        assert second.hits == 1                    # served via the remote
        assert second.backend.remote.remote_hits == 1
        point = config.points()[0]
        assert result.stats(point.benchmark, point.policy,
                            point.num_registers) == \
            rerun.stats(point.benchmark, point.policy, point.num_registers)

    def test_server_outage_degrades_to_local(self, tmp_path):
        config = SweepConfig(benchmarks=("gcc",), policies=("conv",),
                             register_sizes=(48,), trace_length=300, seed=9)
        backend = resolve_backend("http://127.0.0.1:9",
                                  cache_dir=tmp_path, retries=0)
        cache = SweepCache(backend=backend)
        result = run_sweep(config, parallel=False, cache=cache)
        assert result.cache_degradation_reason is not None
        assert "local-only" in result.cache_degradation_reason
        point = config.points()[0]
        assert result.stats(point.benchmark, point.policy,
                            point.num_registers).committed_instructions > 0


class TestBackgroundServerLifecycle:
    def test_start_stop_leaves_no_threads(self, tmp_path):
        before = {thread.name for thread in threading.enumerate()}
        server = BackgroundServer(cache=SweepCache(tmp_path))
        server.start()
        assert ServeClient(server.url).healthz().ok
        server.stop()
        after = {thread.name for thread in threading.enumerate()}
        assert "repro-serve" not in after - before

    def test_double_start_is_an_error(self, tmp_path):
        with BackgroundServer(cache=SweepCache(tmp_path)) as server:
            with pytest.raises(RuntimeError):
                server.start()
