"""Unit tests for the transport-independent service core.

Request validation, the single-flight dedup contract (concurrent
identical misses cost exactly one computation and share one byte
sequence), error surfacing (structured JSON, never an exception) and
the cache-blob envelope handling.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.analysis.backends import unwrap_envelope, wrap_envelope
from repro.analysis.cache import SweepCache, point_key
from repro.serve.service import (
    RequestError,
    SweepService,
    parse_sweep_request,
    valid_cache_key,
)

TINY = {"benchmark": "gcc", "policy": "conv", "num_registers": 48,
        "trace_length": 300, "seed": 1}


@pytest.fixture
def service(tmp_path):
    service = SweepService(cache=SweepCache(tmp_path))
    yield service
    service.close()


def run(coro):
    return asyncio.run(coro)


class TestParseSweepRequest:
    def test_full_request_parses(self):
        config, point = parse_sweep_request(dict(TINY))
        assert point.benchmark == "gcc"
        assert point.policy == "conv"
        assert point.num_registers == 48
        assert config.trace_length == 300
        assert config.seed == 1

    def test_defaults_applied(self):
        config, point = parse_sweep_request({"benchmark": "gcc"})
        assert point.policy == "conv"
        assert point.num_registers == 48
        assert config.trace_length == 20_000

    def test_unknown_benchmark_lists_known(self):
        with pytest.raises(RequestError, match="known workloads.*gcc"):
            parse_sweep_request({"benchmark": "quake3"})

    def test_unknown_policy_rejected(self):
        with pytest.raises(RequestError, match="known policies"):
            parse_sweep_request({"benchmark": "gcc", "policy": "lazy"})

    def test_unknown_field_rejected(self):
        with pytest.raises(RequestError, match="unknown request fields"):
            parse_sweep_request({"benchmark": "gcc", "registers": 48})

    def test_non_object_rejected(self):
        with pytest.raises(RequestError):
            parse_sweep_request(["gcc"])

    @pytest.mark.parametrize("field,value", [
        ("num_registers", 0), ("num_registers", -4),
        ("num_registers", "48"), ("num_registers", True),
        ("trace_length", 0), ("trace_length", 10_000_001),
        ("seed", "zero"), ("seed", False),
    ])
    def test_scalar_validation(self, field, value):
        payload = {"benchmark": "gcc", field: value}
        with pytest.raises(RequestError):
            parse_sweep_request(payload)

    def test_engine_folded_into_config(self):
        config, _ = parse_sweep_request(
            {"benchmark": "gcc", "engine": "python"})
        assert config.base_config.engine == "python"

    def test_unknown_engine_rejected(self):
        with pytest.raises(RequestError, match="known engines"):
            parse_sweep_request({"benchmark": "gcc", "engine": "fpga"})

    def test_config_overrides_applied(self):
        config, _ = parse_sweep_request(
            {"benchmark": "gcc", "config": {"warmup": False,
                                            "ros_size": 64}})
        assert config.base_config.warmup is False
        assert config.base_config.ros_size == 64

    def test_unknown_config_field_rejected(self):
        with pytest.raises(RequestError, match="unknown config field"):
            parse_sweep_request({"benchmark": "gcc",
                                 "config": {"turbo": True}})

    def test_non_scalar_config_value_rejected(self):
        with pytest.raises(RequestError, match="scalar"):
            parse_sweep_request({"benchmark": "gcc",
                                 "config": {"ros_size": [128]}})


class TestValidCacheKey:
    def test_accepts_hex_digest(self):
        assert valid_cache_key("0f" * 32)

    @pytest.mark.parametrize("key", ["", "zz" * 32, "0f" * 31, "0F" * 32,
                                     "../" + "a" * 61])
    def test_rejects_malformed(self, key):
        assert not valid_cache_key(key)


class TestSweepPointSingleFlight:
    def test_concurrent_identical_requests_compute_once(self, service):
        async def drive():
            return await asyncio.gather(*[
                service.sweep_point(dict(TINY)) for _ in range(5)])

        responses = run(drive())
        assert [status for status, _, _ in responses] == [200] * 5
        bodies = {body for _, _, body in responses}
        assert len(bodies) == 1                    # byte-identical
        assert service.metrics.count("sweep_computations") == 1
        origins = sorted(headers["X-Repro-Served-From"]
                         for _, headers, _ in responses)
        assert origins.count("joined") == 4
        assert origins.count("computed") == 1

    def test_sequential_repeat_hits_cache(self, service):
        first = run(service.sweep_point(dict(TINY)))
        second = run(service.sweep_point(dict(TINY)))
        assert second[1]["X-Repro-Served-From"] == "cache"
        assert first[2] == second[2]               # same bytes either way
        assert service.metrics.count("sweep_computations") == 1

    def test_result_lands_in_the_shared_store(self, service):
        status, headers, body = run(service.sweep_point(dict(TINY)))
        assert status == 200
        payload = json.loads(body)
        from repro.serve.service import parse_sweep_request

        config, point = parse_sweep_request(dict(TINY))
        assert payload["key"] == point_key(config, point)
        assert service.cache.get(config, point) is not None

    def test_response_shape(self, service):
        status, headers, body = run(service.sweep_point(dict(TINY)))
        payload = json.loads(body)
        assert payload["point"] == {"benchmark": "gcc", "policy": "conv",
                                    "num_registers": 48}
        assert payload["trace_length"] == 300
        assert payload["stats"]["committed_instructions"] > 0
        assert payload["cache_degradation_reason"] is None
        assert headers["X-Repro-Key"] == payload["key"]

    def test_bad_request_is_structured_400(self, service):
        status, _, body = run(service.sweep_point({"benchmark": "nope"}))
        assert status == 400
        assert "unknown benchmark" in json.loads(body)["error"]
        assert service.metrics.count("sweep_bad_requests") == 1

    def test_invalid_configuration_is_structured_400(self, service):
        # 8 physical registers cannot cover the logical file:
        # ProcessorConfig itself rejects the point.  The client must see
        # a JSON error, not a raw traceback.
        status, _, body = run(service.sweep_point(dict(TINY,
                                                       num_registers=8)))
        assert status == 400
        assert "invalid configuration" in json.loads(body)["error"]

    def test_computation_failure_is_structured_500(self, service):
        # 32 physical registers exactly cover the logical file, leaving
        # rename no headroom: the simulation deadlocks at runtime.  The
        # client must see a JSON error, not a dropped connection.
        request = dict(TINY, num_registers=32)
        status, headers, body = run(service.sweep_point(request))
        assert status == 500
        assert "error" in json.loads(body)
        assert headers["X-Repro-Served-From"] == "error"
        assert service.metrics.count("sweep_errors") == 1
        assert not service._inflight                # table drained

    def test_failed_flight_is_not_cached(self, service):
        request = dict(TINY, num_registers=32)
        run(service.sweep_point(request))
        run(service.sweep_point(request))
        assert service.metrics.count("sweep_errors") == 2   # recomputed


class TestCacheBlobEndpoints:
    def test_get_wraps_stored_entry_in_envelope(self, service):
        run(service.sweep_point(dict(TINY)))
        key = json.loads(run(service.sweep_point(dict(TINY)))[2])["key"]
        status, _, blob = service.cache_get(key)
        assert status == 200
        assert unwrap_envelope(key, blob) is not None

    def test_get_miss_is_404(self, service):
        status, _, _ = service.cache_get("0" * 64)
        assert status == 404

    def test_get_malformed_key_is_400(self, service):
        status, _, _ = service.cache_get("../../etc/passwd")
        assert status == 400

    def test_put_verifies_envelope(self, service):
        key = "ab" * 32
        status, _, _ = service.cache_put(key, wrap_envelope(key, b"body"))
        assert status == 204
        assert service.cache.backend.get_blob(key) == b"body"

    def test_put_rejects_tampered_envelope(self, service):
        key = "ab" * 32
        envelope = bytearray(wrap_envelope(key, b"body"))
        envelope[-1] ^= 0x01
        status, _, body = service.cache_put(key, bytes(envelope))
        assert status == 400
        assert "integrity" in json.loads(body)["error"]
        assert service.cache.backend.get_blob(key) is None

    def test_put_rejects_raw_bytes(self, service):
        status, _, _ = service.cache_put("ab" * 32, b"not an envelope")
        assert status == 400


class TestArtefactEndpoint:
    def test_describes_columns(self, service):
        status, _, body = run(service.artefact(
            {"workload": "gcc", "trace_length": 300}))
        assert status == 200
        payload = json.loads(body)
        assert payload["workload"] == "gcc"
        assert payload["columns"]
        for column in payload["columns"].values():
            assert column["nbytes"] > 0

    def test_unknown_workload_is_400(self, service):
        status, _, _ = run(service.artefact({"workload": "quake3"}))
        assert status == 400


class TestMetricsSnapshot:
    def test_snapshot_carries_backend_and_inflight(self, service):
        snapshot = service.metrics_snapshot()
        assert snapshot["cache_backend"] == "local"
        assert snapshot["in_flight"] == 0
        assert snapshot["cache_degradation_reason"] is None

    def test_counters_accumulate(self, service):
        run(service.sweep_point(dict(TINY)))
        run(service.sweep_point(dict(TINY)))
        counters = service.metrics_snapshot()["counters"]
        assert counters["sweep_requests"] == 2
        assert counters["sweep_computations"] == 1
        assert counters["sweep_cache_hits"] == 1
