"""Property-based tests of the release policies' core invariants.

Random but well-formed instruction sequences (definitions, uses, branches,
mispredictions, commits) are pushed through each policy via the
:class:`PolicyHarness`; regardless of the interleaving, the mechanisms must
never double-free or leak a physical register: once everything in flight
has drained, exactly the 32 architectural versions remain allocated.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.core.helpers import PolicyHarness

POLICIES = ("conv", "basic", "extended")

#: One program step: (kind, operand) where kind selects definition/use/branch.
step_strategy = st.one_of(
    st.tuples(st.just("define"), st.integers(min_value=0, max_value=7)),
    st.tuples(st.just("define_with_use"), st.integers(min_value=0, max_value=7)),
    st.tuples(st.just("use"), st.integers(min_value=0, max_value=7)),
    st.tuples(st.just("branch"), st.booleans()),       # payload: mispredicts?
)


def run_program(policy_name, steps, reuse=True):
    """Execute a random straight-line program with immediate in-order commits
    interleaved with (possibly mispredicted) branches."""
    harness = PolicyHarness(policy_name, num_physical=48,
                            reuse_on_committed_lu=reuse)
    in_flight = []
    pending_branches = []

    def drain(up_to_all=False):
        # Commit everything renamed so far that is not behind a pending branch.
        while in_flight:
            entry = in_flight[0]
            if not up_to_all and pending_branches and \
                    entry.seq >= pending_branches[0][0].seq:
                break
            in_flight.pop(0)
            if not entry.squashed:
                harness.commit(entry)

    for kind, payload in steps:
        if kind == "define":
            in_flight.append(harness.rename(dest=payload))
        elif kind == "define_with_use":
            in_flight.append(harness.rename(dest=payload,
                                            srcs=((payload + 1) % 8,)))
        elif kind == "use":
            in_flight.append(harness.rename(dest=None, srcs=(payload,)))
        else:  # branch
            branch = harness.rename(is_branch=True)
            in_flight.append(branch)
            pending_branches.append((branch, payload))
        # Resolve the oldest pending branch with 30% probability per step to
        # mix speculative and non-speculative regions.
        if pending_branches and len(in_flight) > 6:
            branch, mispredicts = pending_branches.pop(0)
            if not branch.squashed:
                harness.resolve_branch(branch, mispredicted=mispredicts)
            if mispredicts:
                in_flight[:] = [e for e in in_flight if not e.squashed]
        drain()

    # Final cleanup: resolve remaining branches correctly and commit the rest.
    for branch, _ in pending_branches:
        if not branch.squashed:
            harness.resolve_branch(branch, mispredicted=False)
    drain(up_to_all=True)
    return harness


@settings(max_examples=40, deadline=None)
@given(steps=st.lists(step_strategy, min_size=1, max_size=60),
       policy=st.sampled_from(POLICIES))
def test_no_leak_no_double_free(steps, policy):
    harness = run_program(policy, steps)
    assert harness.allocated_consistency()
    assert harness.quiescent_allocated() == 32


@settings(max_examples=25, deadline=None)
@given(steps=st.lists(step_strategy, min_size=1, max_size=50),
       policy=st.sampled_from(("basic", "extended")))
def test_no_leak_without_register_reuse(steps, policy):
    harness = run_program(policy, steps, reuse=False)
    assert harness.allocated_consistency()
    assert harness.quiescent_allocated() == 32


@settings(max_examples=25, deadline=None)
@given(steps=st.lists(step_strategy, min_size=1, max_size=50))
def test_extended_release_queue_drains(steps):
    harness = run_program("extended", steps)
    # Once no branches are pending, no conditional release may remain queued.
    assert harness.policy.release_queue.depth == 0
    assert harness.policy.release_queue.total_scheduled() == 0


@settings(max_examples=25, deadline=None)
@given(steps=st.lists(step_strategy, min_size=1, max_size=40),
       policy=st.sampled_from(POLICIES))
def test_map_table_always_names_allocated_registers(steps, policy):
    harness = run_program(policy, steps)
    for logical in range(harness.map_table.num_logical):
        physical = harness.map_table.lookup(logical)
        assert not harness.register_file.is_free(physical) or \
            harness.map_table.is_stale(logical)
