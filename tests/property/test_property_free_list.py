"""Property-based tests for the free list (register conservation)."""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.rename.free_list import FreeList, FreeListError


@given(total=st.integers(min_value=1, max_value=128),
       operations=st.lists(st.booleans(), max_size=200))
def test_conservation_under_random_allocate_release(total, operations):
    """free + allocated == total after any sequence of allocs/releases."""
    free_list = FreeList(total, initially_free=range(total))
    allocated = []
    for do_allocate in operations:
        if do_allocate and free_list.can_allocate():
            allocated.append(free_list.allocate())
        elif allocated:
            free_list.release(allocated.pop())
        assert free_list.n_free + free_list.n_allocated == total
        assert free_list.n_allocated >= len(allocated)


@given(total=st.integers(min_value=2, max_value=64))
def test_allocate_never_returns_duplicates(total):
    free_list = FreeList(total, initially_free=range(total))
    seen = set()
    while free_list.can_allocate():
        reg = free_list.allocate()
        assert reg not in seen
        seen.add(reg)
    assert seen == set(range(total))


class FreeListMachine(RuleBasedStateMachine):
    """Stateful test: the free list mirrors a model set of free registers."""

    def __init__(self):
        super().__init__()
        self.total = 32
        self.free_list = FreeList(self.total, initially_free=range(self.total))
        self.model_free = set(range(self.total))
        self.model_allocated = set()

    @rule()
    @precondition(lambda self: self.model_free)
    def allocate(self):
        reg = self.free_list.allocate()
        assert reg in self.model_free
        self.model_free.remove(reg)
        self.model_allocated.add(reg)

    @rule(data=st.data())
    @precondition(lambda self: self.model_allocated)
    def release(self, data):
        reg = data.draw(st.sampled_from(sorted(self.model_allocated)))
        self.free_list.release(reg)
        self.model_allocated.remove(reg)
        self.model_free.add(reg)

    @rule(data=st.data())
    @precondition(lambda self: self.model_free)
    def double_release_rejected(self, data):
        reg = data.draw(st.sampled_from(sorted(self.model_free)))
        try:
            self.free_list.release(reg)
        except FreeListError:
            pass
        else:  # pragma: no cover - failure path
            raise AssertionError("double release must raise")

    @invariant()
    def counts_match_model(self):
        assert self.free_list.n_free == len(self.model_free)
        assert self.free_list.n_allocated == self.total - len(self.model_free)
        for reg in self.model_free:
            assert self.free_list.is_free(reg)


TestFreeListStateMachine = FreeListMachine.TestCase
TestFreeListStateMachine.settings = settings(max_examples=25,
                                             stateful_step_count=40,
                                             deadline=None)
