"""Property-based tests for caches, predictors and analysis metrics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import harmonic_mean, iso_ipc_register_requirement
from repro.frontend.gshare import GsharePredictor
from repro.memory.cache import Cache, CacheConfig


# ----------------------------------------------------------------------
# Cache properties
# ----------------------------------------------------------------------
@given(addresses=st.lists(st.integers(min_value=0, max_value=1 << 20),
                          min_size=1, max_size=300))
@settings(max_examples=50, deadline=None)
def test_cache_stats_always_consistent(addresses):
    cache = Cache(CacheConfig("prop", 4096, 2, 64, 1))
    for address in addresses:
        cache.access(address)
    assert cache.hits + cache.misses == len(addresses)
    assert 0.0 <= cache.miss_rate <= 1.0


@given(addresses=st.lists(st.integers(min_value=0, max_value=1 << 16),
                          min_size=1, max_size=100))
@settings(max_examples=50, deadline=None)
def test_immediate_reaccess_always_hits(addresses):
    cache = Cache(CacheConfig("prop", 8192, 4, 64, 1))
    for address in addresses:
        cache.access(address)
        assert cache.access(address).hit


@given(addresses=st.lists(st.integers(min_value=0, max_value=1 << 14),
                          min_size=1, max_size=200))
@settings(max_examples=30, deadline=None)
def test_miss_count_bounded_by_cold_and_total(addresses):
    cache = Cache(CacheConfig("prop", 1024, 2, 64, 1))
    for address in addresses:
        cache.access(address)
    distinct_lines = len({address >> 6 for address in addresses})
    # Every distinct line misses at least once (cold), and misses can never
    # exceed the number of accesses.
    assert distinct_lines <= cache.misses <= len(addresses)


# ----------------------------------------------------------------------
# Predictor properties
# ----------------------------------------------------------------------
@given(outcomes=st.lists(st.booleans(), min_size=1, max_size=300),
       pc=st.integers(min_value=0, max_value=1 << 20))
@settings(max_examples=50, deadline=None)
def test_gshare_counts_are_consistent(outcomes, pc):
    predictor = GsharePredictor(history_bits=10)
    mispredicts = 0
    for taken in outcomes:
        record = predictor.predict(pc)
        if predictor.resolve(record, taken):
            mispredicts += 1
    assert predictor.predictions == len(outcomes)
    assert predictor.mispredictions == mispredicts
    assert 0.0 <= predictor.accuracy <= 1.0


@given(outcomes=st.lists(st.booleans(), min_size=20, max_size=200))
@settings(max_examples=30, deadline=None)
def test_gshare_history_stays_in_range(outcomes):
    predictor = GsharePredictor(history_bits=8)
    for index, taken in enumerate(outcomes):
        record = predictor.predict(0x100 + 4 * index)
        predictor.resolve(record, taken)
        assert 0 <= predictor.history < predictor.table_size
        assert all(0 <= counter <= 3 for counter in predictor.table)


# ----------------------------------------------------------------------
# Metric properties
# ----------------------------------------------------------------------
@given(values=st.lists(st.floats(min_value=0.01, max_value=10.0),
                       min_size=1, max_size=20))
@settings(max_examples=100, deadline=None)
def test_harmonic_mean_bounded_by_min_and_max(values):
    hm = harmonic_mean(values)
    assert min(values) - 1e-9 <= hm <= max(values) + 1e-9


@given(st.data())
@settings(max_examples=100, deadline=None)
def test_iso_ipc_requirement_is_consistent(data):
    sizes = sorted(data.draw(st.lists(st.integers(40, 160), min_size=2, max_size=8,
                                      unique=True)))
    base = data.draw(st.floats(0.5, 2.0))
    increments = data.draw(st.lists(st.floats(0.0, 0.5), min_size=len(sizes),
                                    max_size=len(sizes)))
    ipcs = []
    value = base
    for increment in increments:
        value += increment
        ipcs.append(value)
    target = data.draw(st.floats(0.1, ipcs[-1]))
    needed = iso_ipc_register_requirement(sizes, ipcs, target)
    assert needed is not None
    assert sizes[0] <= needed <= sizes[-1]
    # Monotonicity: asking for more performance never needs fewer registers.
    easier = iso_ipc_register_requirement(sizes, ipcs, max(0.05, target / 2))
    assert easier is not None and easier <= needed + 1e-9
