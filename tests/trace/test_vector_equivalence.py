"""Property suite: the vectorised generators reproduce the scalar oracle.

The draw-order contract (``docs/workloads.md``) promises that the chunked
bulk-draw emitters and the wrong-path generator's bulk refill produce
**field-for-field identical** instruction streams to the scalar oracle
path, for every kernel family, seed and chunk size.  Hypothesis drives
those axes; a deterministic end-to-end check pins the resulting
``SimStats`` equality.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.workloads import (SCENARIOS, WORKLOADS,
                                   generate_scenario_trace, generate_trace,
                                   get_profile)
from repro.trace.wrongpath import WrongPathGenerator, WrongPathMix

ALL_BENCHMARKS = sorted(WORKLOADS)
ALL_SCENARIOS = sorted(SCENARIOS)


def assert_streams_equal(reference, candidate, label):
    __tracebackhide__ = True
    assert len(reference) == len(candidate), (
        f"{label}: stream lengths differ "
        f"({len(reference)} scalar vs {len(candidate)} vectorised)")
    for position, (want, got) in enumerate(
            zip(reference.instructions, candidate.instructions,
                strict=True)):
        assert want == got, (
            f"{label}: first divergence at instruction {position}:\n"
            f"  scalar:     {want}\n  vectorised: {got}")


@settings(max_examples=30, deadline=None)
@given(
    name=st.sampled_from(ALL_BENCHMARKS),
    seed=st.integers(min_value=0, max_value=2**16),
    length=st.integers(min_value=200, max_value=2_500),
    chunk=st.one_of(st.none(), st.integers(min_value=1, max_value=64)),
)
def test_benchmark_generators_match_scalar_oracle(name, seed, length, chunk):
    profile = get_profile(name)
    scalar = generate_trace(profile, length, seed=seed, vectorized=False)
    vectorised = generate_trace(profile, length, seed=seed, vectorized=True,
                                chunk_iterations=chunk)
    assert_streams_equal(scalar, vectorised,
                         f"{name} seed={seed} n={length} chunk={chunk}")


@settings(max_examples=15, deadline=None)
@given(
    name=st.sampled_from(ALL_SCENARIOS),
    seed=st.integers(min_value=0, max_value=2**16),
    length=st.integers(min_value=500, max_value=4_000),
    chunk=st.one_of(st.none(), st.integers(min_value=1, max_value=32)),
)
def test_scenario_generators_match_scalar_oracle(name, seed, length, chunk):
    profile = SCENARIOS[name]
    scalar = generate_scenario_trace(profile, length, seed=seed,
                                     vectorized=False)
    vectorised = generate_scenario_trace(profile, length, seed=seed,
                                         vectorized=True,
                                         chunk_iterations=chunk)
    assert_streams_equal(scalar, vectorised,
                         f"scenario {name} seed={seed} n={length} chunk={chunk}")


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    load=st.floats(min_value=0.0, max_value=0.4),
    store=st.floats(min_value=0.0, max_value=0.3),
    branch=st.floats(min_value=0.0, max_value=0.3),
    fp=st.floats(min_value=0.0, max_value=0.4),
    episodes=st.lists(
        st.tuples(st.integers(min_value=0, max_value=1 << 20),   # episode pc
                  st.integers(min_value=1, max_value=150)),      # episode length
        min_size=1, max_size=12),
)
def test_wrongpath_generator_matches_scalar_oracle(seed, load, store, branch,
                                                   fp, episodes):
    """Bulk refills reproduce the scalar stream across misprediction
    episodes of arbitrary lengths and fetch pcs — including episodes
    that straddle refill block boundaries."""
    mix = WrongPathMix(load=load, store=store, branch=branch, fp=fp)
    scalar = WrongPathGenerator(mix, seed=seed, vectorized=False)
    vectorised = WrongPathGenerator(mix, seed=seed, vectorized=True)
    for episode_pc, episode_len in episodes:
        for i in range(episode_len):
            pc = episode_pc + 4 * i
            want = scalar.next_instruction(pc)
            got = vectorised.next_instruction(pc)
            assert want == got, (
                f"wrong-path divergence at pc={pc:#x} "
                f"(episode at {episode_pc:#x}, instruction {i}):\n"
                f"  scalar:     {want}\n  vectorised: {got}")


def test_wrongpath_next_instructions_bulk_helper():
    mix = WrongPathMix()
    scalar = WrongPathGenerator(mix, seed=3, vectorized=False)
    vectorised = WrongPathGenerator(mix, seed=3, vectorized=True)
    assert (vectorised.next_instructions(0x4000, 100)
            == scalar.next_instructions(0x4000, 100))


@pytest.mark.parametrize("name,policy", [
    ("gcc", "extended"),     # branch-dense: wrong-path generator hot
    ("li", "basic"),         # pointer chase: cursor-replayed kernel
    ("swim", "conv"),        # FP streaming: draw-free chunk path
    ("branch_storm", "extended"),   # scenario: noisy branches
])
def test_simulation_stats_identical_across_generation_modes(name, policy,
                                                            monkeypatch):
    """End to end: every SimStats field the sweeps record is identical
    whether the trace and wrong-path fillers come from the scalar or the
    vectorised generators."""
    from repro.pipeline.config import ProcessorConfig
    from repro.pipeline.processor import simulate
    from repro.trace.workloads import SCENARIOS, generate_scenario_trace

    def build(vectorized):
        if name in SCENARIOS:
            return generate_scenario_trace(SCENARIOS[name], 3_000, seed=0,
                                           vectorized=vectorized)
        return generate_trace(get_profile(name), 3_000, seed=0,
                              vectorized=vectorized)

    def run(trace, vectorized):
        config = ProcessorConfig(release_policy=policy,
                                 num_physical_int=56, num_physical_fp=56)
        if not vectorized:
            monkeypatch.setenv("REPRO_TRACE_SCALAR", "1")
        else:
            monkeypatch.delenv("REPRO_TRACE_SCALAR", raising=False)
        return simulate(trace, config)

    scalar_stats = run(build(False), vectorized=False)
    vector_stats = run(build(True), vectorized=True)
    assert scalar_stats.cycles == vector_stats.cycles
    assert (scalar_stats.committed_instructions
            == vector_stats.committed_instructions)
    assert (scalar_stats.squashed_instructions
            == vector_stats.squashed_instructions)
    assert scalar_stats.ipc == vector_stats.ipc
    for label in ("int_registers", "fp_registers"):
        want, got = getattr(scalar_stats, label), getattr(vector_stats, label)
        assert want.releases == got.releases
        assert want.early_releases == got.early_releases
        assert want.allocations == got.allocations
