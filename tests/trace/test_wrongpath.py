"""Tests for the wrong-path instruction generator."""

import pytest

from repro.isa import OpClass, RegClass
from repro.trace.workloads import get_workload
from repro.trace.wrongpath import WrongPathGenerator, WrongPathMix


class TestMix:
    def test_from_trace_matches_summary(self):
        trace = get_workload("gcc", 3000)
        summary = trace.summary()
        mix = WrongPathMix.from_trace(trace)
        assert mix.load == pytest.approx(summary.load_fraction)
        assert mix.branch == pytest.approx(summary.branch_fraction)

    def test_fp_share_from_fp_trace(self):
        mix = WrongPathMix.from_trace(get_workload("swim", 3000))
        assert mix.fp > 0.1


class TestGeneration:
    def test_instructions_are_wrong_path_and_valid(self):
        generator = WrongPathGenerator(WrongPathMix(), seed=1)
        for inst in generator.next_instructions(0x9000, 50):
            assert inst.wrong_path
            inst.validate()

    def test_pc_sequence(self):
        generator = WrongPathGenerator(WrongPathMix(branch=0.0), seed=1)
        insts = generator.next_instructions(0x9000, 5)
        assert [inst.pc for inst in insts] == [0x9000 + 4 * i for i in range(5)]

    def test_mix_is_respected_roughly(self):
        generator = WrongPathGenerator(WrongPathMix(load=0.5, store=0.0,
                                                    branch=0.0, fp=0.0), seed=2)
        insts = generator.next_instructions(0x9000, 400)
        loads = sum(1 for inst in insts if inst.is_load)
        assert 0.35 < loads / len(insts) < 0.65

    def test_pure_alu_mix(self):
        generator = WrongPathGenerator(WrongPathMix(load=0.0, store=0.0,
                                                    branch=0.0, fp=0.0), seed=3)
        insts = generator.next_instructions(0x9000, 50)
        assert all(inst.op is OpClass.INT_ALU for inst in insts)

    def test_fp_trace_generator_produces_fp_ops(self):
        generator = WrongPathGenerator.for_trace(get_workload("swim", 3000), seed=4)
        insts = generator.next_instructions(0x9000, 300)
        assert any(inst.dest is not None and inst.dest[0] is RegClass.FP
                   for inst in insts)

    def test_deterministic_given_seed(self):
        a = WrongPathGenerator(WrongPathMix(), seed=9).next_instructions(0, 30)
        b = WrongPathGenerator(WrongPathMix(), seed=9).next_instructions(0, 30)
        assert a == b
