"""Tests for the instruction-stream kernels."""

import numpy as np
import pytest

from repro.isa import OpClass, RegClass
from repro.trace.kernels import (KernelParams, branchy_kernel,
                                 int_compute_kernel, pointer_chase_kernel,
                                 stencil_fp_kernel, streaming_fp_kernel)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


ALL_FACTORIES = [streaming_fp_kernel, stencil_fp_kernel, int_compute_kernel,
                 branchy_kernel, pointer_chase_kernel]


class TestCommonProperties:
    @pytest.mark.parametrize("factory", ALL_FACTORIES)
    def test_iterations_produce_valid_instructions(self, factory, rng):
        kernel = factory(KernelParams())
        for _ in range(5):
            for inst in kernel.emit_iteration(rng):
                inst.validate()

    @pytest.mark.parametrize("factory", ALL_FACTORIES)
    def test_every_iteration_ends_with_loop_branch(self, factory, rng):
        kernel = factory(KernelParams())
        iteration = kernel.emit_iteration(rng)
        assert iteration[-1].is_branch

    @pytest.mark.parametrize("factory", ALL_FACTORIES)
    def test_static_code_footprint_is_bounded(self, factory, rng):
        # The same static loop body is re-executed every iteration (hammock
        # paths may add a few pcs depending on branch outcomes), so the set of
        # distinct pcs is small compared with the dynamic instruction count.
        kernel = factory(KernelParams())
        pcs = set()
        emitted = 0
        for _ in range(10):
            iteration = kernel.emit_iteration(rng)
            emitted += len(iteration)
            pcs.update(inst.pc for inst in iteration)
        assert len(pcs) < emitted / 3

    @pytest.mark.parametrize("factory", ALL_FACTORIES)
    def test_prologue_is_valid(self, factory, rng):
        kernel = factory(KernelParams())
        for inst in kernel.prologue(rng):
            inst.validate()


class TestFPKernels:
    def test_streaming_mixes_fp_and_int(self, rng):
        kernel = streaming_fp_kernel(KernelParams(n_streams=3, chain_len=2))
        iteration = kernel.emit_iteration(rng)
        ops = {inst.op for inst in iteration}
        assert OpClass.FP_LOAD in ops and OpClass.FP_STORE in ops
        assert OpClass.INT_ALU in ops
        fp_dests = sum(1 for inst in iteration
                       if inst.dest is not None and inst.dest[0] is RegClass.FP)
        assert 0 < fp_dests < len(iteration)

    def test_streaming_fp_dest_density_moderate(self, rng):
        kernel = streaming_fp_kernel(KernelParams(n_streams=4, chain_len=2))
        iteration = kernel.emit_iteration(rng)
        fp_dests = sum(1 for inst in iteration
                       if inst.dest is not None and inst.dest[0] is RegClass.FP)
        assert fp_dests / len(iteration) < 0.65

    def test_stencil_has_divides_when_configured(self, rng):
        kernel = stencil_fp_kernel(KernelParams(div_interval=1))
        iteration = kernel.emit_iteration(rng)
        assert any(inst.op is OpClass.FP_DIV for inst in iteration)

    def test_stencil_without_divides(self, rng):
        kernel = stencil_fp_kernel(KernelParams(div_interval=0))
        iteration = kernel.emit_iteration(rng)
        assert not any(inst.op is OpClass.FP_DIV for inst in iteration)

    def test_loop_branch_mostly_taken(self, rng):
        kernel = streaming_fp_kernel(KernelParams(trip_count=64))
        outcomes = []
        for _ in range(64):
            outcomes.append(kernel.emit_iteration(rng)[-1].taken)
        assert sum(outcomes) == 63

    def test_stream_stride_respected(self, rng):
        kernel = streaming_fp_kernel(KernelParams(n_streams=1, stream_stride=64))
        first = [inst for inst in kernel.emit_iteration(rng) if inst.is_load][0]
        second = [inst for inst in kernel.emit_iteration(rng) if inst.is_load][0]
        assert second.mem_addr - first.mem_addr == 64


class TestIntKernels:
    def test_int_compute_parallel_chains(self, rng):
        kernel = int_compute_kernel(KernelParams(n_parallel_chains=3, chain_len=2))
        iteration = kernel.emit_iteration(rng)
        loads = [inst for inst in iteration if inst.is_load]
        assert len(loads) == 3

    def test_int_compute_multiply_interval(self, rng):
        kernel = int_compute_kernel(KernelParams(mult_interval=2))
        ops_by_iteration = [
            {inst.op for inst in kernel.emit_iteration(rng)} for _ in range(4)]
        has_mult = [OpClass.INT_MULT in ops for ops in ops_by_iteration]
        assert has_mult == [True, False, True, False]

    def test_branchy_branch_density(self, rng):
        params = KernelParams(n_branch_sites=10, block_len=4)
        kernel = branchy_kernel(params)
        iteration = kernel.emit_iteration(rng)
        branches = sum(1 for inst in iteration if inst.is_branch)
        assert branches == 11                       # 10 sites + loop branch

    def test_branchy_no_fp(self, rng):
        kernel = branchy_kernel(KernelParams())
        iteration = kernel.emit_iteration(rng)
        assert not any(inst.dest is not None and inst.dest[0] is RegClass.FP
                       for inst in iteration)

    def test_pointer_chase_dependent_loads(self, rng):
        kernel = pointer_chase_kernel(KernelParams(load_chain_len=2))
        iteration = kernel.prologue(rng) + kernel.emit_iteration(rng)
        loads = [inst for inst in iteration if inst.is_load]
        # Each chase load reads and redefines its own pointer register.
        for load in loads:
            assert load.dest in load.srcs or load.dest[1] == load.srcs[0][1]

    def test_pointer_chase_two_interleaved_chases(self, rng):
        kernel = pointer_chase_kernel(KernelParams(load_chain_len=2))
        kernel.prologue(rng)
        iteration = kernel.emit_iteration(rng)
        pointer_regs = {inst.dest[1] for inst in iteration if inst.is_load}
        assert len(pointer_regs) == 2

    def test_hammock_skipped_when_taken(self, rng):
        params = KernelParams(branch_bias=1.0, branch_noise=0.0, hammock_len=3)
        kernel = int_compute_kernel(params)
        # With bias 1.0 and no noise the hammock branch is (almost) always
        # taken, so iterations where it is taken are shorter.
        lengths = {len(kernel.emit_iteration(rng)) for _ in range(10)}
        assert min(lengths) < max(lengths) or len(lengths) == 1
