"""Tests for user-defined scenarios: registration, config loading,
trace-identity digests and cache invalidation.

Covers the PR 5 surface: ``register_scenario`` / ``unregister_scenario``,
the TOML/JSON config loader, the content-digest trace identity (in-memory
and on-disk sweep caches can never serve a stale trace after
re-registration) and the stable name-hash seed mixing that replaced the
collision-prone ad-hoc digest.
"""

import hashlib
import json
import sys

import pytest

from repro.trace.workloads import (
    SCENARIOS,
    KernelParams,
    ScenarioPhase,
    ScenarioProfile,
    generate_scenario_trace,
    get_workload,
    load_scenario_file,
    parse_scenario_config,
    profile_digest,
    register_scenario,
    register_scenario_file,
    scenario_workloads,
    unregister_scenario,
    workload_digest,
)


def simple_profile(name, chain_len=2, suite="int"):
    return ScenarioProfile(
        name=name, suite=suite, phase_length=500,
        phases=(ScenarioPhase("int_compute",
                              KernelParams(pc_base=0x300000,
                                           data_base=0x30_00000,
                                           chain_len=chain_len,
                                           trip_count=32)),))


@pytest.fixture
def clean_registry():
    """Snapshot the scenario registry and restore it afterwards."""
    before = dict(SCENARIOS)
    yield
    SCENARIOS.clear()
    SCENARIOS.update(before)


class TestRegistration:
    def test_register_and_resolve(self, clean_registry):
        register_scenario(simple_profile("reg_test"))
        assert "reg_test" in scenario_workloads()
        trace = get_workload("reg_test", 800)
        assert trace.name == "reg_test"
        assert len(trace) >= 800

    def test_register_same_content_is_noop(self, clean_registry):
        register_scenario(simple_profile("reg_twice"))
        register_scenario(simple_profile("reg_twice"))  # no error
        assert scenario_workloads().count("reg_twice") == 1

    def test_register_different_content_needs_replace(self, clean_registry):
        register_scenario(simple_profile("reg_conflict", chain_len=2))
        with pytest.raises(ValueError, match="replace=True"):
            register_scenario(simple_profile("reg_conflict", chain_len=5))
        register_scenario(simple_profile("reg_conflict", chain_len=5),
                          replace=True)
        assert SCENARIOS["reg_conflict"].phases[0].params.chain_len == 5

    def test_cannot_shadow_builtin_scenario(self, clean_registry):
        with pytest.raises(ValueError, match="built-in scenario"):
            register_scenario(simple_profile("branch_storm"))

    def test_cannot_shadow_benchmark(self, clean_registry):
        with pytest.raises(ValueError, match="benchmark"):
            register_scenario(simple_profile("swim"))

    def test_unregister(self, clean_registry):
        register_scenario(simple_profile("reg_gone"))
        unregister_scenario("reg_gone")
        assert "reg_gone" not in SCENARIOS
        with pytest.raises(KeyError):
            unregister_scenario("reg_gone")

    def test_cannot_unregister_builtin(self, clean_registry):
        with pytest.raises(ValueError, match="built-in"):
            unregister_scenario("phased")

    @pytest.mark.parametrize("bad_name", ["", "1leading", "with space", "a/b"])
    def test_invalid_names_rejected(self, clean_registry, bad_name):
        with pytest.raises(ValueError, match="invalid scenario name"):
            register_scenario(simple_profile(bad_name))


class TestConfigLoading:
    CONFIG = {
        "scenarios": [{
            "name": "cfg_roundtrip",
            "suite": "fp",
            "description": "round-trip test",
            "phase_length": 700,
            "phases": [
                {"kernel": "stencil",
                 "params": {"fp_window": 12, "n_streams": 3}},
                {"kernel": "streaming", "params": {"n_streams": 2}},
            ],
        }],
    }

    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "scenarios.json"
        path.write_text(json.dumps(self.CONFIG))
        (profile,) = load_scenario_file(path)
        assert profile.name == "cfg_roundtrip"
        assert profile.suite == "fp"
        assert profile.phase_length == 700
        assert [phase.kernel for phase in profile.phases] == ["stencil",
                                                              "streaming"]
        assert profile.phases[0].params.fp_window == 12
        # Unspecified parameters keep their defaults.
        assert profile.phases[1].params.chain_len == KernelParams().chain_len

    @pytest.mark.skipif(sys.version_info < (3, 11),
                        reason="tomllib needs Python 3.11+")
    def test_toml_round_trip(self, tmp_path):
        toml = """
[[scenarios]]
name = "cfg_toml"
suite = "int"
phase_length = 600
[[scenarios.phases]]
kernel = "branchy"
[scenarios.phases.params]
n_branch_sites = 16
"""
        path = tmp_path / "scenarios.toml"
        path.write_text(toml)
        (profile,) = load_scenario_file(path)
        assert profile.name == "cfg_toml"
        assert profile.phases[0].params.n_branch_sites == 16

    def test_single_scenario_shape(self):
        (profile,) = parse_scenario_config(self.CONFIG["scenarios"][0])
        assert profile.name == "cfg_roundtrip"

    def test_register_scenario_file(self, tmp_path, clean_registry):
        path = tmp_path / "scenarios.json"
        path.write_text(json.dumps(self.CONFIG))
        assert register_scenario_file(path) == ["cfg_roundtrip"]
        assert "cfg_roundtrip" in scenario_workloads()

    @pytest.mark.parametrize("mutate, message", [
        (lambda c: c["scenarios"][0].update(phases=[{"kernel": "nope"}]),
         "unknown kernel"),
        (lambda c: c["scenarios"][0]["phases"][0]["params"].update(typo=1),
         "unknown kernel parameters"),
        (lambda c: c["scenarios"][0]["phases"][0]["params"].update(
            n_streams="3"),
         "must be an int"),
        (lambda c: c["scenarios"][0]["phases"][0]["params"].update(
            branch_bias="0.8"),
         "must be a number"),
        (lambda c: c["scenarios"][0].update(suite="both"),
         "suite must be"),
        (lambda c: c["scenarios"][0].update(phases=[]),
         "at least one phase"),
        (lambda c: c["scenarios"][0].update(phase_length=0),
         "phase_length"),
        (lambda c: c["scenarios"][0].update(phasez=[]),
         "unknown scenario keys"),
        (lambda c: c["scenarios"][0].pop("name"),
         "'name' is required"),
        (lambda c: c.update(scenarios=c["scenarios"] * 2),
         "duplicate scenario names"),
    ])
    def test_validation_errors(self, mutate, message):
        config = json.loads(json.dumps(self.CONFIG))
        mutate(config)
        with pytest.raises(ValueError, match=message):
            parse_scenario_config(config)

    def test_invalid_json_reports_path(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_scenario_file(path)


class TestTraceIdentity:
    #: First 16 hex digits of the sha256 over the instruction reprs of a
    #: 1 200-instruction seed-0 trace per built-in scenario.  Pinned at
    #: the PR 5 one-time re-baseline (stable name-hash seed mixing); any
    #: change here means scenario trace identity moved and every
    #: downstream consumer re-simulates.
    PINNED = {
        "phased": "7bb6fed58e0bf1c5",
        "pointer_hop": "36690e8be2d46743",
        "branch_storm": "f9f4d118a3866090",
        "store_wave": "0663e69a8ae7d0fd",
        "regpressure_ramp": "fc671a2b29594bcc",
    }

    @staticmethod
    def trace_digest(profile):
        trace = generate_scenario_trace(profile, 1_200, seed=0)
        payload = "\n".join(repr(inst) for inst in trace.instructions)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    @pytest.mark.parametrize("name", sorted(PINNED))
    def test_builtin_scenario_identity_pinned(self, name):
        assert self.trace_digest(SCENARIOS[name]) == self.PINNED[name]

    def test_old_digest_collision_now_diverges(self):
        """Names colliding under the pre-PR-5 ad-hoc digest get distinct
        streams from the stable hash."""
        def old_digest(name):
            return sum((i + 1) * ord(c) for i, c in enumerate(name)) % (1 << 16)

        # Same structure, same params — only the names differ, and those
        # names collided under the old scheme.
        assert old_digest("bc") == old_digest("db")
        trace_a = generate_scenario_trace(simple_profile("bc"), 600, seed=0)
        trace_b = generate_scenario_trace(simple_profile("db"), 600, seed=0)
        assert any(a.mem_addr != b.mem_addr or a.taken != b.taken
                   for a, b in zip(trace_a, trace_b, strict=True))

    def test_profile_digest_tracks_content(self):
        assert (profile_digest(simple_profile("dig"))
                == profile_digest(simple_profile("dig")))
        assert (profile_digest(simple_profile("dig", chain_len=2))
                != profile_digest(simple_profile("dig", chain_len=3)))
        assert (profile_digest(simple_profile("dig_a"))
                != profile_digest(simple_profile("dig_b")))

    def test_workload_digest_resolves_benchmarks_and_extras(self):
        assert workload_digest("swim")
        extra = simple_profile("ephemeral")
        assert workload_digest("ephemeral", (extra,)) == profile_digest(extra)
        with pytest.raises(KeyError, match="unknown workload"):
            workload_digest("ephemeral")


class TestCacheInvalidation:
    def test_reregistration_misses_trace_cache(self, clean_registry):
        register_scenario(simple_profile("cache_inv", chain_len=2))
        first = get_workload("cache_inv", 700)
        register_scenario(simple_profile("cache_inv", chain_len=4),
                          replace=True)
        second = get_workload("cache_inv", 700)
        assert first.instructions != second.instructions
        # Same content again: the memoised object is reused.
        register_scenario(simple_profile("cache_inv", chain_len=4),
                          replace=True)
        assert get_workload("cache_inv", 700) is second

    def test_reregistration_changes_disk_cache_key(self, clean_registry):
        from repro.analysis.cache import point_key
        from repro.analysis.sweep import SweepConfig, SweepPoint

        point = SweepPoint("cache_key", "conv", 48)

        def key_for(profile):
            config = SweepConfig(benchmarks=("cache_key",),
                                 trace_length=1_000,
                                 scenario_profiles=(profile,))
            return point_key(config, point)

        key_a = key_for(simple_profile("cache_key", chain_len=2))
        key_b = key_for(simple_profile("cache_key", chain_len=4))
        assert key_a != key_b
        assert key_a == key_for(simple_profile("cache_key", chain_len=2))

    def test_pool_worker_stats_match_serial(self, clean_registry):
        """A pool worker's registry lacks user-registered scenarios; the
        profiles shipped in SweepConfig must make the whole simulation —
        including the warm-up trace, which re-resolves the workload name
        with a different seed — identical to a serial in-process run.
        Regression for the warm-up divergence found in PR 5 review."""
        from repro.analysis.sweep import (SweepConfig, SweepPoint,
                                          _attach_scenario_profiles,
                                          run_simulation_point)
        from repro.trace import workloads as workloads_module

        register_scenario(simple_profile("worker_parity"))
        config = _attach_scenario_profiles(SweepConfig(
            benchmarks=("worker_parity",), policies=("conv",),
            register_sizes=(48,), trace_length=900))
        point = SweepPoint("worker_parity", "conv", 48)
        serial_stats = run_simulation_point(config, point)

        # Emulate a fresh worker process: no registry entry, no
        # previously installed ephemeral profiles — only the pickled
        # SweepConfig arrives.
        unregister_scenario("worker_parity")
        workloads_module._EPHEMERAL_PROFILES.clear()
        try:
            worker_stats = run_simulation_point(config, point)
        finally:
            workloads_module._EPHEMERAL_PROFILES.clear()
        assert worker_stats.ipc == serial_stats.ipc
        assert worker_stats.cycles == serial_stats.cycles

    def test_registered_scenario_round_trips_disk_cache(self, clean_registry,
                                                        tmp_path):
        from repro.analysis.sweep import SweepConfig, run_sweep

        register_scenario(simple_profile("cache_e2e"))
        config = SweepConfig(benchmarks=("cache_e2e",), policies=("conv",),
                             register_sizes=(48,), trace_length=900)
        first = run_sweep(config, parallel=False, cache=tmp_path)
        assert (first.simulated, first.cached) == (1, 0)
        second = run_sweep(config, parallel=False, cache=tmp_path)
        assert (second.simulated, second.cached) == (0, 1)
        assert (first.ipc("cache_e2e", "conv", 48)
                == second.ipc("cache_e2e", "conv", 48))
        # Different content under the same name: full re-simulation.
        register_scenario(simple_profile("cache_e2e", chain_len=4),
                          replace=True)
        third = run_sweep(config, parallel=False, cache=tmp_path)
        assert (third.simulated, third.cached) == (1, 0)
