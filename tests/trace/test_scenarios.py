"""Tests for the workload scenario library (`repro.trace.workloads.SCENARIOS`)."""

import pytest

from repro.isa import OpClass
from repro.trace.workloads import (SCENARIOS, generate_scenario_trace,
                                   get_scenario, get_workload, has_workload,
                                   scenario_workloads)


def summary_of(name, n=8_000, seed=0):
    return generate_scenario_trace(SCENARIOS[name], n, seed=seed).summary()


class TestRegistry:
    def test_scenarios_resolve_through_get_workload(self):
        trace = get_workload("pointer_hop", 2_000)
        assert trace.name == "pointer_hop"
        assert len(trace) >= 2_000

    def test_has_workload_covers_both_registries(self):
        assert has_workload("swim")
        assert has_workload("store_wave")
        assert not has_workload("no_such_thing")

    def test_get_scenario_unknown_name(self):
        with pytest.raises(KeyError, match="known scenarios"):
            get_scenario("nope")

    def test_scenario_names_unique_from_benchmarks(self):
        from repro.trace.workloads import WORKLOADS
        assert not set(SCENARIOS) & set(WORKLOADS)

    def test_deterministic(self):
        a = generate_scenario_trace(SCENARIOS["phased"], 3_000, seed=5)
        b = generate_scenario_trace(SCENARIOS["phased"], 3_000, seed=5)
        assert a.instructions == b.instructions


class TestFamilies:
    def test_pointer_hop_is_load_dominated(self):
        summary = summary_of("pointer_hop")
        assert summary.load_fraction > 0.35
        assert summary.avg_def_use_distance < 5.0

    def test_branch_storm_is_branch_dense(self):
        summary = summary_of("branch_storm")
        assert summary.branch_fraction > 0.15

    def test_store_wave_is_store_heavy(self):
        summary = summary_of("store_wave")
        assert summary.store_fraction > 0.25
        # Far beyond any SPEC-like profile of the suite.
        assert summary.store_fraction > 2 * summary_of("pointer_hop").store_fraction

    def test_phased_mixes_integer_and_fp_phases(self):
        trace = generate_scenario_trace(SCENARIOS["phased"], 8_000, seed=0)
        profile = SCENARIOS["phased"]
        first = trace.instructions[:profile.phase_length]
        ops_first = {inst.op for inst in first}
        ops_all = {inst.op for inst in trace.instructions}
        # Phase one is the integer compute kernel; FP streaming appears
        # only after the first phase switch.
        assert OpClass.LOAD in ops_first
        assert OpClass.FP_LOAD not in ops_first
        assert OpClass.FP_LOAD in ops_all and OpClass.FP_STORE in ops_all

    def test_regpressure_ramp_widens_the_fp_working_set(self):
        profile = SCENARIOS["regpressure_ramp"]
        trace = generate_scenario_trace(profile, 11_000, seed=0)
        phase = profile.phase_length

        def fp_regs(segment):
            return len({inst.dest[1] for inst in segment
                        if inst.dest is not None and inst.dest[0].name == "FP"})

        narrow = fp_regs(trace.instructions[:phase])
        wide = fp_regs(trace.instructions[3 * phase:4 * phase])
        assert wide > narrow

    def test_phases_resume_rather_than_restart(self):
        """A phase's streams continue where they left off: the second
        compute segment of ``phased`` must not repeat the first one."""
        profile = SCENARIOS["phased"]
        trace = generate_scenario_trace(profile, 12_000, seed=0)
        phase = profile.phase_length
        first_compute = [inst for inst in trace.instructions[:phase]
                         if inst.op is OpClass.LOAD][:20]
        third_segment = trace.instructions[2 * phase:3 * phase]
        second_compute = [inst for inst in third_segment
                          if inst.op is OpClass.LOAD][:20]
        assert second_compute  # the compute phase did come around again
        assert ([inst.mem_addr for inst in first_compute]
                != [inst.mem_addr for inst in second_compute])


class TestScenarioExperiment:
    def test_scenario_grid_runs_and_formats(self):
        from repro.experiments import scenarios as scenarios_experiment

        result = scenarios_experiment.run(trace_length=1_500, parallel=False,
                                          sizes=(64,), cache=None,
                                          scenarios=["store_wave",
                                                     "branch_storm"])
        text = result.format()
        assert "store_wave" in text and "branch_storm" in text
        assert result.ipc("store_wave", "conv", 64) > 0
        assert 0.0 <= result.early_release_fraction("store_wave", "extended",
                                                    64) <= 1.0

    def test_unknown_scenario_names_raise(self):
        """A typo in the scenario filter must fail loudly, not produce a
        sweep quietly missing points (pre-PR-5 behaviour)."""
        from repro.experiments import scenarios as scenarios_experiment

        with pytest.raises(ValueError, match="unknown scenarios: branch_strom"):
            scenarios_experiment.run(trace_length=1_000, parallel=False,
                                     scenarios=["branch_storm",
                                                "branch_strom"])
        with pytest.raises(ValueError, match="known scenarios"):
            scenarios_experiment.resolve_scenario_names(["nope"])
        # An effectively empty selection ("--scenarios ," on the CLI)
        # must not silently produce an empty grid either.
        with pytest.raises(ValueError, match="empty scenario selection"):
            scenarios_experiment.resolve_scenario_names([])

    def test_grid_reports_user_registered_scenario(self):
        """early_release_fraction resolves through the registry (and the
        suites captured on the result), so registered scenarios work —
        the pre-PR-5 code indexed the hard-coded SCENARIOS dict and
        KeyErrored."""
        from repro.experiments import scenarios as scenarios_experiment
        from repro.trace.workloads import (KernelParams, ScenarioPhase,
                                           ScenarioProfile, register_scenario,
                                           unregister_scenario)

        profile = ScenarioProfile(
            name="grid_user_scn", suite="int", phase_length=500,
            phases=(ScenarioPhase("int_compute",
                                  KernelParams(pc_base=0x310000,
                                               data_base=0x31_00000,
                                               chain_len=2, trip_count=32)),))
        register_scenario(profile)
        try:
            result = scenarios_experiment.run(trace_length=1_200,
                                              parallel=False, sizes=(64,),
                                              cache=None,
                                              scenarios=["grid_user_scn"])
            fraction = result.early_release_fraction("grid_user_scn",
                                                     "extended", 64)
            assert 0.0 <= fraction <= 1.0
            assert result.suites["grid_user_scn"] == "int"
            assert "grid_user_scn" in result.format()
        finally:
            unregister_scenario("grid_user_scn")
        # The captured suite keeps reporting working even after the
        # scenario is gone from the registry.
        assert 0.0 <= result.early_release_fraction("grid_user_scn",
                                                    "extended", 64) <= 1.0

    def test_runner_exposes_scenarios(self):
        from repro.experiments.runner import EXPERIMENTS, _SIMULATION_EXPERIMENTS
        assert "scenarios" in EXPERIMENTS
        assert "scenarios" in _SIMULATION_EXPERIMENTS
        assert "scenario_occupancy" in EXPERIMENTS
        assert "scenario_occupancy" in _SIMULATION_EXPERIMENTS

    def test_scenario_order_is_stable(self):
        assert scenario_workloads() == list(SCENARIOS)


class TestScenarioOccupancy:
    def test_per_phase_rows_and_figure(self):
        from repro.experiments import scenario_occupancy

        result = scenario_occupancy.run(trace_length=1_500, parallel=False,
                                        num_registers=96, cache=None,
                                        scenarios=["phased", "store_wave"])
        # One row per phase: phased has two phases, store_wave one.
        assert [row.benchmark for row in result.phase_rows("phased")] == \
            ["phase 0 (int_compute)", "phase 1 (streaming)"]
        assert len(result.phase_rows("store_wave")) == 1
        for scenario in ("phased", "store_wave"):
            for row in result.phase_rows(scenario):
                assert 0 < row.allocated <= 96
            assert result.idle_overhead(scenario) > 0
        text = result.format()
        assert "Scenario occupancy: phased" in text
        assert "phase 1 (streaming)" in text and "idle/used" in text

    def test_unknown_scenario_raises(self):
        from repro.experiments import scenario_occupancy

        with pytest.raises(ValueError, match="unknown scenarios"):
            scenario_occupancy.run(trace_length=1_000, parallel=False,
                                   scenarios=["not_a_scenario"])

    def test_derived_phase_profiles_stay_out_of_registry(self):
        from repro.experiments import scenario_occupancy

        scenario_occupancy.run(trace_length=1_000, parallel=False,
                               cache=None, scenarios=["phased"])
        assert all("@phase" not in name for name in scenario_workloads())
