"""Tests for the SPEC95-like benchmark profiles and trace generation."""

import pytest

from repro.isa import RegClass
from repro.trace.workloads import (WORKLOADS, all_workloads, fp_workloads,
                                   generate_trace, get_profile, get_workload,
                                   integer_workloads)


class TestRegistry:
    def test_ten_benchmarks(self):
        assert len(WORKLOADS) == 10
        assert len(integer_workloads()) == 5
        assert len(fp_workloads()) == 5
        assert set(all_workloads()) == set(WORKLOADS)

    def test_paper_table3_names(self):
        assert integer_workloads() == ["compress", "gcc", "go", "li", "perl"]
        assert fp_workloads() == ["mgrid", "tomcatv", "applu", "swim", "hydro2d"]

    def test_focus_class(self):
        assert get_profile("gcc").focus_class is RegClass.INT
        assert get_profile("swim").focus_class is RegClass.FP

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            get_profile("doom")

    def test_profiles_have_documentation(self):
        for profile in WORKLOADS.values():
            assert profile.description
            assert profile.paper_input
            assert profile.paper_instructions_m > 0


class TestGeneration:
    def test_length_close_to_request(self):
        trace = generate_trace(get_profile("compress"), 2000, seed=1)
        assert 2000 <= len(trace) <= 2400

    def test_deterministic_for_same_seed(self):
        a = generate_trace(get_profile("li"), 1000, seed=5)
        b = generate_trace(get_profile("li"), 1000, seed=5)
        assert len(a) == len(b)
        assert all(x == y for x, y in zip(a, b, strict=True))

    def test_different_seeds_differ(self):
        a = generate_trace(get_profile("go"), 1500, seed=1)
        b = generate_trace(get_profile("go"), 1500, seed=2)
        assert any(x.mem_addr != y.mem_addr or x.taken != y.taken
                   for x, y in zip(a, b, strict=True))

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ValueError):
            generate_trace(get_profile("gcc"), 0)

    def test_get_workload_caches(self):
        a = get_workload("perl", 1000, seed=0)
        b = get_workload("perl", 1000, seed=0)
        assert a is b

    def test_all_instructions_valid(self):
        for name in ("gcc", "swim"):
            for inst in get_workload(name, 1200):
                inst.validate()


class TestCharacterisation:
    """The generated traces must land in the dynamic regime the paper relies on."""

    @pytest.mark.parametrize("name", integer_workloads())
    def test_integer_codes_are_branch_dense(self, name):
        summary = get_workload(name, 4000).summary()
        assert summary.branch_fraction > 0.08
        assert summary.fp_regs_written == 0

    @pytest.mark.parametrize("name", fp_workloads())
    def test_fp_codes_have_few_branches_and_many_fp_regs(self, name):
        summary = get_workload(name, 4000).summary()
        assert summary.branch_fraction < 0.08
        assert summary.fp_regs_written >= 16

    @pytest.mark.parametrize("name", fp_workloads())
    def test_fp_codes_have_longer_register_lifetimes(self, name):
        fp_summary = get_workload(name, 4000).summary()
        int_summary = get_workload("gcc", 4000).summary()
        assert (fp_summary.avg_def_redefine_distance
                > int_summary.avg_def_redefine_distance)

    def test_memory_operations_present_everywhere(self):
        for name in all_workloads():
            summary = get_workload(name, 3000).summary()
            assert summary.load_fraction > 0.02
            assert summary.store_fraction > 0.005
