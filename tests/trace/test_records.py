"""Tests for trace containers and summary statistics."""

import pytest

from repro.isa import InstructionBuilder, OpClass, RegClass
from repro.trace.records import Trace


def build_trace():
    builder = InstructionBuilder()
    builder.alu(dest=1, srcs=(2,))
    builder.load(dest=2, addr_reg=1, mem_addr=0x100)
    builder.alu(dest=3, srcs=(1, 2))
    builder.store(value_reg=3, addr_reg=1, mem_addr=0x108)
    builder.branch(taken=True, target=0x1000, srcs=(3,))
    builder.alu(dest=1, srcs=(3,))
    builder.alu(dest=0, srcs=(), fp=True)
    return Trace(name="unit", focus_class=RegClass.INT,
                 instructions=builder.trace())


class TestTraceContainer:
    def test_len_iter_getitem(self):
        trace = build_trace()
        assert len(trace) == 7
        assert trace[0].op is OpClass.INT_ALU
        assert sum(1 for _ in trace) == 7

    def test_truncated(self):
        trace = build_trace()
        short = trace.truncated(3)
        assert len(short) == 3
        assert short.name == trace.name
        # Truncating beyond the length returns the same object.
        assert trace.truncated(100) is trace

    def test_concatenate(self):
        trace = build_trace()
        combined = Trace.concatenate("combo", RegClass.FP,
                                     [trace.instructions, trace.instructions])
        assert len(combined) == 14
        assert combined.focus_class is RegClass.FP


class TestSummary:
    def test_basic_fractions(self):
        summary = build_trace().summary()
        assert summary.length == 7
        assert summary.branch_fraction == pytest.approx(1 / 7)
        assert summary.load_fraction == pytest.approx(1 / 7)
        assert summary.store_fraction == pytest.approx(1 / 7)

    def test_register_working_sets(self):
        summary = build_trace().summary()
        assert summary.int_regs_written == 3      # r1, r2, r3
        assert summary.fp_regs_written == 1       # f0

    def test_mix_sums_to_one(self):
        summary = build_trace().summary()
        assert sum(summary.mix.values()) == pytest.approx(1.0)

    def test_def_use_and_redefine_distances(self):
        builder = InstructionBuilder()
        builder.alu(dest=1, srcs=())          # def r1 at 0
        builder.alu(dest=2, srcs=(1,))        # last use of r1 at 1
        builder.alu(dest=3, srcs=())          # filler
        builder.alu(dest=1, srcs=())          # redefine r1 at 3
        trace = Trace("d", RegClass.INT, builder.trace())
        summary = trace.summary()
        assert summary.avg_def_use_distance == pytest.approx(1.0)
        assert summary.avg_def_redefine_distance == pytest.approx(3.0)

    def test_empty_trace_summary(self):
        trace = Trace("empty", RegClass.INT, [])
        summary = trace.summary()
        assert summary.length == 0
        assert summary.branch_fraction == 0.0
