"""Tests for the stream-preserving bulk draw replay (`repro.trace.draws`).

Every test compares the replay against a *real* scalar ``Generator`` on
the same seed: the contract is bit-identical values **and** bit-identical
final bit-generator state (including the buffered 32-bit half), so a
consumer can switch between the scalar and replayed paths mid-stream.
"""

import numpy as np
import pytest

from repro.trace.draws import (
    DOUBLE,
    RawCursor,
    ReplayUnsupported,
    bounded_threshold,
    replay_supported,
    replay_template,
)


def scalar_columns(seed, template, k):
    rng = np.random.Generator(np.random.PCG64(seed))
    columns = [[] for _ in template]
    for _ in range(k):
        for j, slot in enumerate(template):
            if slot == DOUBLE:
                columns[j].append(rng.random())
            else:
                columns[j].append(int(rng.integers(0, slot)))
    return columns, rng


def test_replay_supported_on_this_numpy():
    assert replay_supported()


@pytest.mark.parametrize("template", [
    [DOUBLE],                                   # doubles only
    [1024],                                     # single int: parity flips
    [1024, 1024],                               # even ints: parity stable
    [DOUBLE, DOUBLE],                           # int_compute noise+store
    [4096, 4096, 4096, DOUBLE, DOUBLE],         # int_compute full schedule
    [2048, DOUBLE, 2048, DOUBLE, DOUBLE, 64],   # branchy-style mix, odd ints
])
@pytest.mark.parametrize("k", [1, 2, 3, 7, 64])
def test_template_matches_scalar_stream(template, k):
    expected, oracle = scalar_columns(123, template, k)
    rng = np.random.Generator(np.random.PCG64(123))
    columns = replay_template(rng, template, k)
    for got, want in zip(columns, expected, strict=True):
        assert list(got) == want
    assert rng.bit_generator.state == oracle.bit_generator.state


def test_template_resumes_mid_stream():
    """Chunks compose: scalar draws, a replay, then scalar draws again."""
    template = [4096, DOUBLE, 64]
    oracle = np.random.Generator(np.random.PCG64(7))
    rng = np.random.Generator(np.random.PCG64(7))
    # A leading scalar int leaves a buffered half pending on both.
    assert int(rng.integers(0, 1024)) == int(oracle.integers(0, 1024))
    expected = [[] for _ in template]
    for _ in range(5):
        for j, slot in enumerate(template):
            if slot == DOUBLE:
                expected[j].append(oracle.random())
            else:
                expected[j].append(int(oracle.integers(0, slot)))
    columns = replay_template(rng, template, 5)
    for got, want in zip(columns, expected, strict=True):
        assert list(got) == want
    # The streams stay aligned afterwards.
    assert rng.random() == oracle.random()
    assert int(rng.integers(0, 2048)) == int(oracle.integers(0, 2048))
    assert rng.bit_generator.state == oracle.bit_generator.state


def test_template_zero_fresh_raws_served_from_entry_buffer():
    """k=1 with a single bounded slot and a pending entry buffer consumes
    zero fresh raws: the value comes entirely from the buffered half
    (regression: this used to IndexError into an empty raw block)."""
    oracle = np.random.Generator(np.random.PCG64(77))
    rng = np.random.Generator(np.random.PCG64(77))
    int(oracle.integers(0, 8)), int(rng.integers(0, 8))   # buffer a half
    columns = replay_template(rng, [16], 1)
    assert [int(columns[0][0])] == [int(oracle.integers(0, 16))]
    assert rng.bit_generator.state == oracle.bit_generator.state


def test_template_rejects_non_power_of_two_span():
    rng = np.random.default_rng(0)
    with pytest.raises(ReplayUnsupported):
        replay_template(rng, [100], 4)


def test_template_empty_chunk_is_noop():
    rng = np.random.Generator(np.random.PCG64(3))
    before = rng.bit_generator.state
    assert all(len(c) == 0 for c in replay_template(rng, [DOUBLE, 64], 0))
    assert rng.bit_generator.state == before


def test_template_double_only_preserves_entry_buffer():
    oracle = np.random.Generator(np.random.PCG64(11))
    rng = np.random.Generator(np.random.PCG64(11))
    int(oracle.integers(0, 256)), int(rng.integers(0, 256))
    for _ in range(4):
        oracle.random()
    replay_template(rng, [DOUBLE, DOUBLE], 2)
    # Both still hold the buffered half from the leading integers call.
    assert int(rng.integers(0, 256)) == int(oracle.integers(0, 256))
    assert rng.bit_generator.state == oracle.bit_generator.state


class TestRawCursor:
    def test_mixed_draws_match_scalar(self):
        oracle = np.random.Generator(np.random.PCG64(42))
        expected = []
        for _ in range(10):
            expected.append(oracle.random())
            expected.append(int(oracle.integers(0, 2048)))
            expected.append(int(oracle.integers(8, 256)))
        rng = np.random.Generator(np.random.PCG64(42))
        cursor = RawCursor(rng, 40)
        got = []
        t248 = bounded_threshold(248)
        for _ in range(10):
            got.append(cursor.next_double())
            got.append(cursor.next_bounded(2048, 0))
            got.append(8 + cursor.next_bounded(248, t248))
        cursor.finalize()
        assert got == expected
        assert rng.bit_generator.state == oracle.bit_generator.state

    def test_finalize_rewinds_overdraw(self):
        oracle = np.random.Generator(np.random.PCG64(9))
        rng = np.random.Generator(np.random.PCG64(9))
        cursor = RawCursor(rng, 100)
        assert cursor.next_double() == oracle.random()
        assert cursor.next_bounded(1024, 0) == int(oracle.integers(0, 1024))
        cursor.finalize()
        # 97 overdrawn raws rewound; the buffered half restored.
        assert rng.bit_generator.state == oracle.bit_generator.state
        assert int(rng.integers(0, 1024)) == int(oracle.integers(0, 1024))

    def test_entry_buffer_consumed_first(self):
        oracle = np.random.Generator(np.random.PCG64(21))
        rng = np.random.Generator(np.random.PCG64(21))
        int(oracle.integers(0, 64)), int(rng.integers(0, 64))
        cursor = RawCursor(rng, 8)
        assert cursor.next_bounded(64, 0) == int(oracle.integers(0, 64))
        cursor.finalize()
        assert rng.bit_generator.state == oracle.bit_generator.state

    def test_rejection_threshold_values(self):
        assert bounded_threshold(248) == (1 << 32) % 248
        assert bounded_threshold(1024) == 0

    def test_double_finalize_is_idempotent(self):
        rng = np.random.Generator(np.random.PCG64(5))
        oracle = np.random.Generator(np.random.PCG64(5))
        cursor = RawCursor(rng, 10)
        cursor.next_double(), oracle.random()
        cursor.finalize()
        cursor.finalize()
        assert rng.bit_generator.state == oracle.bit_generator.state
