"""Tests for the low-level trace generation building blocks."""

import numpy as np
import pytest

from repro.trace.synthetic import (BranchSite, PointerChaseStream, RandomStream,
                                   RegisterRotation, StridedStream)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestStridedStream:
    def test_advances_by_stride(self, rng):
        stream = StridedStream(base=0x1000, stride=8, footprint=64)
        addresses = [stream.next_address(rng) for _ in range(4)]
        assert addresses == [0x1000, 0x1008, 0x1010, 0x1018]

    def test_wraps_at_footprint(self, rng):
        stream = StridedStream(base=0x1000, stride=8, footprint=16)
        addresses = [stream.next_address(rng) for _ in range(4)]
        assert addresses == [0x1000, 0x1008, 0x1000, 0x1008]

    def test_reset(self, rng):
        stream = StridedStream(base=0, stride=8, footprint=1024)
        stream.next_address(rng)
        stream.reset()
        assert stream.next_address(rng) == 0


class TestRandomStream:
    def test_within_working_set(self, rng):
        stream = RandomStream(base=0x4000, footprint=256, align=8)
        for _ in range(100):
            address = stream.next_address(rng)
            assert 0x4000 <= address < 0x4000 + 256
            assert address % 8 == 0

    def test_covers_working_set(self, rng):
        stream = RandomStream(base=0, footprint=64, align=8)
        seen = {stream.next_address(rng) for _ in range(200)}
        assert len(seen) == 8


class TestPointerChaseStream:
    def test_deterministic_order(self, rng):
        a = PointerChaseStream(base=0, n_nodes=16, seed=7)
        b = PointerChaseStream(base=0, n_nodes=16, seed=7)
        assert [a.next_address(rng) for _ in range(8)] == \
               [b.next_address(rng) for _ in range(8)]

    def test_visits_every_node_once_per_lap(self, rng):
        stream = PointerChaseStream(base=0, n_nodes=8, node_size=32, seed=1)
        addresses = [stream.next_address(rng) for _ in range(8)]
        assert len(set(addresses)) == 8
        assert all(address % 32 == 0 for address in addresses)


class TestRegisterRotation:
    def test_round_robin(self):
        rotation = RegisterRotation([4, 5, 6])
        assert [rotation.next_dest() for _ in range(5)] == [4, 5, 6, 4, 5]

    def test_recent(self):
        rotation = RegisterRotation([1, 2, 3, 4])
        rotation.next_dest()  # 1
        rotation.next_dest()  # 2
        assert rotation.recent(1) == 2
        assert rotation.recent(2) == 1

    def test_recent_before_any_dest(self):
        rotation = RegisterRotation([7, 8])
        assert rotation.recent() == 7

    def test_live_count(self):
        rotation = RegisterRotation([1, 2, 3])
        assert rotation.live_count == 0
        rotation.next_dest()
        rotation.next_dest()
        assert rotation.live_count == 2
        for _ in range(10):
            rotation.next_dest()
        assert rotation.live_count == 3


class TestBranchSite:
    def test_loop_branch_pattern(self, rng):
        site = BranchSite(pc=0, target=0, kind="loop", trip=4)
        outcomes = [site.next_outcome(rng) for _ in range(8)]
        assert outcomes == [True, True, True, False] * 2

    def test_bernoulli_bias(self, rng):
        site = BranchSite(pc=0, target=0, kind="bernoulli", bias=0.9)
        outcomes = [site.next_outcome(rng) for _ in range(2000)]
        assert 0.85 < np.mean(outcomes) < 0.95

    def test_pattern(self, rng):
        site = BranchSite(pc=0, target=0, kind="pattern",
                          pattern=(True, False, False))
        outcomes = [site.next_outcome(rng) for _ in range(6)]
        assert outcomes == [True, False, False, True, False, False]

    def test_empty_pattern_defaults_not_taken(self, rng):
        site = BranchSite(pc=0, target=0, kind="pattern", pattern=())
        assert site.next_outcome(rng) is False

    def test_correlated_is_deterministic_given_history(self, rng):
        site = BranchSite(pc=0x100, target=0, kind="correlated", noise=0.0,
                          bias=0.7, context_bits=4)
        history = 0b1010
        outcomes = {site.next_outcome(rng, history) for _ in range(10)}
        assert len(outcomes) == 1          # same context → same outcome

    def test_correlated_same_function_across_instances(self, rng):
        a = BranchSite(pc=0x200, target=0, kind="correlated", noise=0.0)
        b = BranchSite(pc=0x200, target=0, kind="correlated", noise=0.0)
        for history in range(16):
            assert a.next_outcome(rng, history) == b.next_outcome(rng, history)

    def test_correlated_noise_flips_sometimes(self):
        rng = np.random.default_rng(3)
        site = BranchSite(pc=0x300, target=0, kind="correlated", noise=0.5)
        outcomes = [site.next_outcome(rng, 0b1) for _ in range(500)]
        assert 0.2 < np.mean(outcomes) < 0.8   # noise produces both outcomes

    def test_unknown_kind_raises(self, rng):
        site = BranchSite(pc=0, target=0, kind="nonsense")
        with pytest.raises(ValueError):
            site.next_outcome(rng)

    def test_reset(self, rng):
        site = BranchSite(pc=0, target=0, kind="loop", trip=3)
        site.next_outcome(rng)
        site.reset()
        outcomes = [site.next_outcome(rng) for _ in range(3)]
        assert outcomes == [True, True, False]
