"""Tests for the declarative kernel-state descriptor layer.

The five chunk emitters used to hand-copy their kernel-state
bind/write-back scaffolding; `_KernelBase` now provides it from each
kernel's declarative ``STATE`` tuple.  These tests pin the mechanism
itself — the stream-level bit-identity is pinned separately by
``test_vector_equivalence.py``.
"""

import numpy as np
import pytest

from repro.trace.kernels import (
    BranchyKernel,
    IntComputeKernel,
    KernelParams,
    PointerChaseKernel,
    StencilFPKernel,
    StreamingFPKernel,
)

ALL_KERNELS = [StreamingFPKernel, StencilFPKernel, IntComputeKernel,
               BranchyKernel, PointerChaseKernel]


def make(kernel_cls):
    return kernel_cls(KernelParams())


class TestDeclarations:
    @pytest.mark.parametrize("kernel_cls", ALL_KERNELS)
    def test_every_chunk_kernel_declares_state(self, kernel_cls):
        # A kernel overriding emit_chunk without declaring its walked
        # state would silently stop writing it back.
        assert kernel_cls.emit_chunk is not None
        assert kernel_cls.STATE, f"{kernel_cls.__name__} declares no STATE"

    @pytest.mark.parametrize("kernel_cls", ALL_KERNELS)
    def test_declared_attributes_exist(self, kernel_cls):
        kernel = make(kernel_cls)
        for descriptor in kernel.STATE:
            assert hasattr(kernel, descriptor.attr), (
                f"{kernel_cls.__name__}.STATE names missing attribute "
                f"{descriptor.attr!r}")


class TestBindWriteBack:
    @pytest.mark.parametrize("kernel_cls", ALL_KERNELS)
    def test_bind_does_not_alias_kernel_state(self, kernel_cls):
        """Mutating a bound view must not touch the kernel until write-back."""
        kernel = make(kernel_cls)
        rng = np.random.default_rng(3)
        for _ in range(5):
            kernel.emit_iteration(rng)
        before = kernel.state_snapshot()
        view = kernel.bind_chunk_state()
        view.ghist = 0x1234
        view.iteration += 100
        for _name, value in vars(view).items():
            if isinstance(value, list):
                value.append(-1)
        assert kernel.state_snapshot() == before
        kernel.write_back_chunk_state(view)
        assert kernel.ghist == 0x1234
        assert kernel.iteration == before["iteration"] + 100

    @pytest.mark.parametrize("kernel_cls", ALL_KERNELS)
    def test_snapshot_round_trips(self, kernel_cls):
        """bind → write_back with no edits is a no-op on the snapshot."""
        kernel = make(kernel_cls)
        rng = np.random.default_rng(7)
        for _ in range(3):
            kernel.emit_iteration(rng)
        before = kernel.state_snapshot()
        kernel.write_back_chunk_state(kernel.bind_chunk_state())
        assert kernel.state_snapshot() == before


class TestScalarChunkStateEquivalence:
    """After emitting the same iterations, the scalar loop and the chunk
    emitter must leave the kernel in the same declared state (the
    stream-level equality is covered by test_vector_equivalence)."""

    @pytest.mark.parametrize("kernel_cls", ALL_KERNELS)
    @pytest.mark.parametrize("k", [1, 7, 30])
    def test_state_snapshots_match(self, kernel_cls, k):
        pytest.importorskip("numpy")
        from repro.trace.draws import replay_supported

        if not replay_supported():
            pytest.skip("vectorised replay unsupported on this numpy")
        scalar = make(kernel_cls)
        chunked = make(kernel_cls)
        rng_scalar = np.random.default_rng(11)
        rng_chunk = np.random.default_rng(11)
        stream_scalar = []
        for _ in range(k):
            stream_scalar.extend(scalar.emit_iteration(rng_scalar))
        stream_chunk, _bounds = chunked.emit_chunk(rng_chunk, k)
        assert stream_scalar == stream_chunk
        assert scalar.state_snapshot() == chunked.state_snapshot()
        # And the generators ended in the same state, so the two kernels
        # stay interchangeable for subsequent segments.
        assert (rng_scalar.bit_generator.state
                == rng_chunk.bit_generator.state)
