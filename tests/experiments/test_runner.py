"""Tests for the repro-experiments command-line runner."""

import pytest

from repro.experiments.runner import EXPERIMENTS, main, run_experiment


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        expected = {"table1", "figure2", "figure3", "figure9", "figure10",
                    "figure11", "table4", "section33", "section44",
                    "scenarios", "scenario_occupancy"}
        assert set(EXPERIMENTS) == expected

    def test_run_experiment_unknown_name(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("figure99")

    def test_run_analytical_experiment(self):
        result = run_experiment("table1")
        assert "MIPS R10K" in result.format()

    def test_run_simulation_experiment_quick(self):
        result = run_experiment("figure10", trace_length=1200, parallel=True)
        assert result.ipc("swim", "conv") > 0


class TestCLI:
    def test_analytical_experiments_via_cli(self, capsys):
        assert main(["table1", "figure9", "section44"]) == 0
        output = capsys.readouterr().out
        assert "Table 1" in output and "Figure 9a" in output

    def test_unknown_experiment_exits_with_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_simulation_experiment_via_cli(self, capsys):
        assert main(["figure10", "--trace-length", "1200", "--no-cache"]) == 0
        output = capsys.readouterr().out
        assert "Figure 10" in output

    def test_cached_rerun_matches_and_reuses_results(self, capsys, tmp_path):
        args = ["figure10", "--trace-length", "1200",
                "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert any(tmp_path.rglob("*.pkl"))       # results were persisted
        assert main(args) == 0
        second = capsys.readouterr().out
        # identical artefact from the cache (timing line differs)
        strip = lambda out: [line for line in out.splitlines()
                             if not line.startswith("figure10")]
        assert strip(first) == strip(second)

    def test_all_expands(self, capsys):
        # Only check argument handling (run with an unknown flag combination
        # would be slow); 'all' with a tiny trace length is exercised by the
        # benchmark suite instead.
        with pytest.raises(SystemExit):
            main([])


class TestScenarioCLI:
    CONFIG = """{
      "scenarios": [{
        "name": "cli_user_scn",
        "suite": "int",
        "phase_length": 600,
        "phases": [{"kernel": "int_compute",
                    "params": {"pc_base": 3276800, "data_base": 52428800,
                               "chain_len": 2, "trip_count": 32}}]
      }]
    }"""

    @pytest.fixture
    def config_path(self, tmp_path):
        path = tmp_path / "user_scenarios.json"
        path.write_text(self.CONFIG)
        return path

    @pytest.fixture(autouse=True)
    def _clean_registry(self):
        yield
        from repro.trace.workloads import SCENARIOS, unregister_scenario
        if "cli_user_scn" in SCENARIOS:
            unregister_scenario("cli_user_scn")

    def test_scenario_file_flows_into_grid_and_occupancy(self, capsys,
                                                         config_path):
        # The quick-PR CI job runs this same pipeline end to end.
        assert main(["scenarios", "scenario_occupancy",
                     "--scenario-file", str(config_path),
                     "--scenarios", "cli_user_scn",
                     "--trace-length", "1200", "--serial", "--no-cache"]) == 0
        output = capsys.readouterr().out
        assert "registered scenarios from" in output
        assert "cli_user_scn" in output
        assert "Scenario occupancy: cli_user_scn" in output

    def test_unknown_scenario_filter_raises(self, config_path):
        with pytest.raises(ValueError, match="unknown scenarios"):
            main(["scenarios", "--scenarios", "cli_user_scm",
                  "--scenario-file", str(config_path),
                  "--trace-length", "1000", "--serial", "--no-cache"])

    def test_broken_scenario_file_is_a_usage_error(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text('{"scenarios": [{"name": "x"}]}')
        with pytest.raises(SystemExit):
            main(["scenarios", "--scenario-file", str(path)])
        assert "--scenario-file" in capsys.readouterr().err
