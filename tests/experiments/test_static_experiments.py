"""Tests for the experiments that need no cycle-level simulation."""

import pytest

from repro.experiments import figure2, figure9, section44, table1
from repro.core.register_state import RegState


class TestTable1:
    def test_four_processors(self):
        result = table1.run()
        assert len(result.entries) == 4
        names = {entry.name for entry in result.entries}
        assert names == {"MIPS R10K", "MIPS R12K", "Alpha 21264", "Intel P4"}

    def test_r10k_is_loose_r12k_is_tight(self):
        # Paper Section 2: R10K never stalls for registers (P = L + N);
        # R12K and the 21264 can.
        result = table1.run()
        assert result.entry("MIPS R10K").is_loose
        assert not result.entry("MIPS R12K").is_loose
        assert not result.entry("Alpha 21264").is_loose

    def test_paper_classifications(self):
        result = table1.run()
        assert result.entry("Intel P4").paper_classification == "loose"
        assert result.entry("MIPS R10K").paper_classification == "loose"
        assert result.entry("Alpha 21264").paper_classification == "tight"

    def test_unknown_entry(self):
        assert table1.run().entry("PowerPC") is None

    def test_format_contains_reorder_names(self):
        text = table1.run().format()
        assert "Active List" in text and "Reorder Buffer" in text


class TestFigure2:
    def test_conventional_has_idle_phase(self):
        result = figure2.run("conv")
        states = result.states_observed()
        assert states == [RegState.EMPTY, RegState.READY, RegState.IDLE,
                          RegState.FREE]
        assert result.state_durations()[RegState.IDLE] >= 1

    @pytest.mark.parametrize("policy", ["basic", "extended"])
    def test_early_release_removes_idle_phase(self, policy):
        conv = figure2.run("conv")
        early = figure2.run(policy)
        conv_idle = conv.state_durations().get(RegState.IDLE, 0)
        early_idle = early.state_durations().get(RegState.IDLE, 0)
        assert early_idle < conv_idle

    def test_early_release_frees_register_sooner(self):
        conv = figure2.run("conv")
        extended = figure2.run("extended")
        conv_release = max(cycle for cycle, state in conv.timeline
                           if state is not RegState.FREE)
        ext_release = max(cycle for cycle, state in extended.timeline
                          if state is not RegState.FREE)
        assert ext_release < conv_release

    def test_format_mentions_register_and_policy(self):
        result = figure2.run("conv")
        text = result.format()
        assert "conv" in text and f"p{result.tracked_register}" in text


class TestFigure9:
    def test_three_series(self):
        result = figure9.run()
        assert set(result.access_time_ns) == {"INT", "FP", "LUsT"}
        assert len(result.sizes) == len(result.access_time_ns["INT"])

    def test_anchor_values(self):
        result = figure9.run()
        assert result.access_time_ns["LUsT"][0] == pytest.approx(0.98, abs=1e-6)
        assert result.energy_pj["LUsT"][0] == pytest.approx(193.2, abs=1e-6)

    def test_paper_margins(self):
        result = figure9.run()
        assert result.lus_delay_margin_vs_smallest_int() == pytest.approx(0.26,
                                                                          abs=0.01)
        assert result.lus_energy_fraction_of_smallest_int() == pytest.approx(0.2,
                                                                             abs=0.03)

    def test_register_file_curves_increase(self):
        result = figure9.run()
        for series in ("INT", "FP"):
            values = result.access_time_ns[series]
            assert values[-1] > values[0]

    def test_format_output(self):
        text = figure9.run().format()
        assert "Figure 9a" in text and "Figure 9b" in text and "paper: 26%" in text


class TestSection44:
    def test_energy_neutrality(self):
        result = section44.run()
        assert result.energy_ratio == pytest.approx(1.0, abs=0.05)

    def test_energy_magnitudes_close_to_paper(self):
        result = section44.run()
        assert result.energy_conv_pj == pytest.approx(3850, rel=0.05)
        assert result.energy_early_pj == pytest.approx(3851, rel=0.05)

    def test_storage_close_to_paper(self):
        result = section44.run()
        assert result.extended_storage_bytes == pytest.approx(1.22 * 1024, rel=0.01)
        assert result.lus_tables_bytes == pytest.approx(128, abs=1)

    def test_format_output(self):
        text = section44.run().format()
        assert "energy neutrality" in text and "storage cost" in text
