"""Tests for the simulation-backed experiments, run at reduced scale.

These use short traces and a subset of benchmarks/sizes so the whole module
stays in the tens of seconds, while still checking the structure of each
regenerated artefact and the headline orderings the paper reports.
"""

import pytest

from repro.experiments import figure3, figure10, figure11, section33, table4

TRACE_LENGTH = 2_500
SUBSET = ["compress", "gcc", "swim", "tomcatv"]


@pytest.fixture(scope="module")
def figure3_result():
    return figure3.run(trace_length=TRACE_LENGTH, parallel=True)


@pytest.fixture(scope="module")
def figure10_result():
    return figure10.run(trace_length=TRACE_LENGTH, parallel=True)


@pytest.fixture(scope="module")
def figure11_result():
    return figure11.run(trace_length=TRACE_LENGTH, sizes=(40, 64, 96, 160),
                        parallel=True, benchmarks=SUBSET)


class TestFigure3:
    def test_all_benchmarks_present(self, figure3_result):
        assert len(figure3_result.rows["int"]) == 5
        assert len(figure3_result.rows["fp"]) == 5

    def test_occupancy_bounded_by_register_file(self, figure3_result):
        for suite in ("int", "fp"):
            for row in figure3_result.rows[suite]:
                assert 0 < row.allocated <= figure3_result.num_registers

    def test_at_least_architectural_registers_allocated(self, figure3_result):
        # The 32 architectural versions are always allocated.
        for suite in ("int", "fp"):
            assert figure3_result.suite_mean(suite).allocated >= 30

    def test_idle_overhead_positive_and_int_higher(self, figure3_result):
        # The paper's qualitative point: conventional release wastes
        # proportionally more registers on the integer codes (45.8% vs 16.8%).
        int_overhead = figure3_result.idle_overhead("int")
        fp_overhead = figure3_result.idle_overhead("fp")
        assert int_overhead > 0 and fp_overhead > 0
        assert int_overhead > fp_overhead

    def test_format(self, figure3_result):
        text = figure3_result.format()
        assert "Figure 3" in text and "idle overhead" in text


class TestFigure10:
    def test_all_policies_and_benchmarks(self, figure10_result):
        for benchmark in figure10_result.int_benchmarks + figure10_result.fp_benchmarks:
            for policy in ("conv", "basic", "extended"):
                assert figure10_result.ipc(benchmark, policy) > 0

    def test_fp_suite_gains_from_early_release(self, figure10_result):
        # With a very tight 48+48 file the FP codes must benefit (paper: +6/+8%).
        assert figure10_result.suite_speedup_percent("fp", "basic") > 0
        assert figure10_result.suite_speedup_percent("fp", "extended") > 0

    def test_fp_gains_exceed_int_gains(self, figure10_result):
        assert (figure10_result.suite_speedup_percent("fp", "extended")
                > figure10_result.suite_speedup_percent("int", "extended"))

    def test_extended_at_least_basic_on_fp(self, figure10_result):
        assert (figure10_result.suite_speedup_percent("fp", "extended")
                >= figure10_result.suite_speedup_percent("fp", "basic") - 1.0)

    def test_format(self, figure10_result):
        text = figure10_result.format()
        assert "Figure 10" in text and "Hm" in text and "paper" in text


class TestFigure11:
    def test_curves_cover_requested_sizes(self, figure11_result):
        for suite in ("int", "fp"):
            for policy in ("conv", "basic", "extended"):
                curve = figure11_result.curve(suite, policy)
                assert [size for size, _ in curve] == [40, 64, 96, 160]

    def test_ipc_grows_with_register_file(self, figure11_result):
        for policy in ("conv", "extended"):
            curve = dict(figure11_result.curve("fp", policy))
            assert curve[160] >= curve[40]

    def test_fp_speedup_shrinks_with_size(self, figure11_result):
        speedups = dict(figure11_result.speedup_curve("fp", "extended"))
        assert speedups[40] > speedups[160] - 1.0
        assert speedups[40] > 0

    def test_policies_converge_at_loose_sizes(self, figure11_result):
        # With P = 160 ≥ L + N the file is loose: early release cannot help.
        assert abs(figure11_result.speedup_percent("fp", "extended", 160)) < 5.0

    def test_format(self, figure11_result):
        text = figure11_result.format()
        assert "Figure 11" in text and "speedup over conventional" in text


class TestTable4:
    def test_derived_from_existing_sweep(self, figure11_result):
        result = table4.derive(figure11_result,
                               conv_reference_sizes={"fp": (64, 96), "int": (96,)})
        assert len(result.rows) == 3
        for row in result.rows:
            assert row.target_ipc > 0
        # On the FP suite (where register pressure dominates even at this
        # reduced scale) extended release never needs *more* registers than
        # conventional release for the same IPC.
        for row in result.rows_for("fp"):
            if row.extended_size is not None:
                assert row.extended_size <= row.conv_size + 4
                assert row.saved_percent >= -7.0

    def test_fp_savings_positive(self, figure11_result):
        result = table4.derive(figure11_result,
                               conv_reference_sizes={"fp": (64, 96)})
        savings = [row.saved_percent for row in result.rows_for("fp")
                   if row.saved_percent is not None]
        assert savings and max(savings) > 0

    def test_format(self, figure11_result):
        result = table4.derive(figure11_result)
        text = result.format()
        assert "Table 4" in text and "paper" in text


class TestSection33:
    def test_reduced_run(self):
        result = section33.run(trace_length=TRACE_LENGTH, sizes=(48,),
                               parallel=True, benchmarks=SUBSET)
        assert result.speedup_percent("fp", 48) > -2.0
        text = result.format()
        assert "Section 3.3" in text and "48int+48FP" in text
