"""Shared fixtures for the test suite.

The fixtures provide small, fast building blocks: hand-written traces, a
tiny benchmark trace from the workload registry, and processor
configurations that keep cycle-level tests quick (no warm-up, no wrong
path unless a test asks for it).
"""

from __future__ import annotations

import pytest

from repro.isa import Instruction, InstructionBuilder, OpClass, RegClass
from repro.pipeline.config import ProcessorConfig
from repro.trace.records import Trace
from repro.trace.workloads import get_workload


@pytest.fixture
def builder() -> InstructionBuilder:
    """A fresh instruction builder starting at pc 0x1000."""
    return InstructionBuilder(pc=0x1000)


@pytest.fixture
def straightline_trace(builder) -> Trace:
    """A short dependence chain with no branches or memory operations."""
    builder.alu(dest=1, srcs=(2, 3))
    builder.alu(dest=4, srcs=(1,))
    builder.alu(dest=5, srcs=(4, 1))
    builder.alu(dest=1, srcs=(5,))
    builder.alu(dest=6, srcs=(1,))
    return Trace(name="straightline", focus_class=RegClass.INT,
                 instructions=builder.trace())


@pytest.fixture
def mixed_trace(builder) -> Trace:
    """A trace exercising loads, stores, FP operations and a branch."""
    builder.alu(dest=1, srcs=(2,))
    builder.load(dest=3, addr_reg=1, mem_addr=0x2000)
    builder.alu(dest=4, srcs=(3, 1))
    builder.alu(dest=0, srcs=(4,), fp=True)
    builder.alu(dest=1, srcs=(0,), fp=True, op=OpClass.FP_MULT)
    builder.store(value_reg=4, addr_reg=1, mem_addr=0x2040)
    builder.branch(taken=False, target=0x1100, srcs=(4,))
    builder.alu(dest=5, srcs=(4,))
    builder.alu(dest=3, srcs=(5,))
    return Trace(name="mixed", focus_class=RegClass.INT,
                 instructions=builder.trace())


@pytest.fixture
def quick_config() -> ProcessorConfig:
    """Processor configuration for fast unit-level pipeline tests."""
    return ProcessorConfig(warmup=False, enable_wrong_path=False)


@pytest.fixture
def tight_config() -> ProcessorConfig:
    """A configuration with very tight register files (40int + 40FP)."""
    return ProcessorConfig(num_physical_int=40, num_physical_fp=40,
                           warmup=False, enable_wrong_path=False)


@pytest.fixture(scope="session")
def small_swim_trace() -> Trace:
    """A small FP benchmark trace shared by integration tests."""
    return get_workload("swim", 2000)


@pytest.fixture(scope="session")
def small_gcc_trace() -> Trace:
    """A small integer benchmark trace shared by integration tests."""
    return get_workload("gcc", 2000)
