"""repro — reproduction of "Hardware Schemes for Early Register Release".

This package reimplements, in Python, the system evaluated in

    T. Monreal, V. Viñals, A. González, M. Valero,
    "Hardware Schemes for Early Register Release",
    Proceedings of the International Conference on Parallel Processing
    (ICPP 2002).

It contains a cycle-level out-of-order superscalar processor simulator
(the substrate the paper built on top of SimpleScalar v3.0), three
physical-register release policies (the paper's contribution):

* :class:`repro.core.ConventionalRelease` — the baseline: the previous
  version of a logical register is released when the redefining (NV)
  instruction commits.
* :class:`repro.core.BasicEarlyRelease`    — Section 3: releases tied to
  the commit of the last-use (LU) instruction when no branches are
  pending between LU and NV.
* :class:`repro.core.ExtendedEarlyRelease` — Section 4: conditional
  releases tracked in a Release Queue so speculative NV instructions can
  also schedule early releases.

plus synthetic SPEC95-like workload generators, a Rixner-style register
file delay/energy model, and an experiment harness that regenerates every
table and figure of the paper's evaluation section.

Quickstart
----------

>>> from repro import simulate, ProcessorConfig
>>> from repro.trace import get_workload
>>> cfg = ProcessorConfig(num_physical_int=48 + 32, num_physical_fp=48 + 32,
...                       release_policy="extended")
>>> result = simulate(get_workload("swim"), cfg, max_instructions=5000)
>>> result.ipc > 0
True
"""

from __future__ import annotations

from repro.pipeline.config import ProcessorConfig
from repro.pipeline.processor import Processor, simulate
from repro.pipeline.stats import SimStats
from repro.core import (
    ConventionalRelease,
    BasicEarlyRelease,
    ExtendedEarlyRelease,
    make_release_policy,
)

__version__ = "1.0.0"

__all__ = [
    "ProcessorConfig",
    "Processor",
    "simulate",
    "SimStats",
    "ConventionalRelease",
    "BasicEarlyRelease",
    "ExtendedEarlyRelease",
    "make_release_policy",
    "__version__",
]
