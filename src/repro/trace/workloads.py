"""SPEC95-like benchmark profiles (the paper's Table 3 workload).

The paper simulates five SPECint95 programs (compress, gcc, go, li, perl)
and five SPECfp95 programs (mgrid, tomcatv, applu, swim, hydro2d).  Each
profile below pairs one of the :mod:`repro.trace.kernels` generators with
parameters chosen so the synthetic trace lands in the dynamic regime
published for that program:

* branch density and predictability (integer codes are branch-dense and
  comparatively hard to predict; FP codes have few, highly regular
  branches),
* register lifetime structure (FP codes carry many long-lived values →
  high register pressure; integer codes recycle a handful of registers
  quickly → low pressure but proportionally large *Idle* time),
* memory locality relative to the Table 2 cache sizes.

Absolute dynamic instruction counts are scaled down from the paper's
47M–472M to the tens of thousands so that a pure-Python cycle-level
simulation completes in seconds; see DESIGN.md for the substitution
rationale.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import re
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.isa import Instruction, RegClass
from repro.trace.draws import (ReplayUnsupported, replay_supported,
                               vectorized_enabled)
from repro.trace.kernels import (
    BranchyKernel,
    IntComputeKernel,
    KernelParams,
    PointerChaseKernel,
    StencilFPKernel,
    StreamingFPKernel,
    _KernelBase,
)
from repro.trace.records import Trace

#: Default trace length (dynamic instructions) used by the experiment
#: harness when the caller does not override it.
DEFAULT_TRACE_LENGTH = 30_000


@dataclass(frozen=True)
class BenchmarkProfile:
    """Description of one synthetic benchmark.

    Attributes
    ----------
    name:
        SPEC95 program name this profile stands in for.
    suite:
        ``"int"`` or ``"fp"`` — which half of Table 3 the program belongs
        to, and therefore which physical register file the paper's figures
        measure for it.
    kernel:
        Name of the kernel generator class used ("streaming", "stencil",
        "int_compute", "branchy", "pointer_chase").
    params:
        Kernel parameters (see :class:`repro.trace.kernels.KernelParams`).
    paper_instructions_m:
        Dynamic instruction count (millions) the paper reports in Table 3,
        kept for documentation purposes.
    paper_input:
        The input set listed in Table 3.
    description:
        One-line characterisation of the dynamic behaviour being modelled.
    """

    name: str
    suite: str
    kernel: str
    params: KernelParams
    paper_instructions_m: int = 0
    paper_input: str = ""
    description: str = ""

    @property
    def focus_class(self) -> RegClass:
        """Register class whose file the paper measures for this program."""
        return RegClass.INT if self.suite == "int" else RegClass.FP


_KERNEL_FACTORIES: Dict[str, Callable[[KernelParams], _KernelBase]] = {
    "streaming": StreamingFPKernel,
    "stencil": StencilFPKernel,
    "int_compute": IntComputeKernel,
    "branchy": BranchyKernel,
    "pointer_chase": PointerChaseKernel,
}


def _profile(name: str, suite: str, kernel: str, paper_m: int, paper_input: str,
             description: str, **param_overrides) -> BenchmarkProfile:
    params = KernelParams(**param_overrides)
    return BenchmarkProfile(
        name=name, suite=suite, kernel=kernel, params=params,
        paper_instructions_m=paper_m, paper_input=paper_input,
        description=description,
    )


#: The ten benchmark profiles, keyed by program name (paper Table 3).
WORKLOADS: Dict[str, BenchmarkProfile] = {
    # ------------------------------------------------------------- integer
    "compress": _profile(
        "compress", "int", "int_compute", 170, "40000 e 2231",
        "dictionary compression: integer hash/shift chains, one "
        "data-dependent branch per element, moderate locality",
        pc_base=0x10000, data_base=0x1_00000,
        chain_len=3, int_window=8, branch_bias=0.88, hammock_len=3,
        n_parallel_chains=4, branch_noise=0.06, trip_count=64,
        mem_footprint=1 << 14, mult_interval=6,
    ),
    "gcc": _profile(
        "gcc", "int", "branchy", 145, "genrecog.i",
        "compiler passes: short basic blocks, dense mixed-bias branches, "
        "pointer-rich data structures",
        pc_base=0x20000, data_base=0x2_00000,
        n_branch_sites=24, block_len=4, hammock_len=2, int_window=10,
        branch_bias=0.88, pattern_fraction=0.45, branch_noise=0.04,
        trip_count=48, mem_footprint=1 << 13,
    ),
    "go": _profile(
        "go", "int", "branchy", 146, "9 9",
        "game tree search: very branch dense and hard to predict",
        pc_base=0x30000, data_base=0x3_00000,
        n_branch_sites=32, block_len=3, hammock_len=2, int_window=10,
        branch_bias=0.80, pattern_fraction=0.30, branch_noise=0.06,
        trip_count=40, mem_footprint=1 << 13,
    ),
    "li": _profile(
        "li", "int", "pointer_chase", 243, "7 queens",
        "lisp interpreter: dependent load chains through cons cells, "
        "regular dispatch branches",
        pc_base=0x40000, data_base=0x4_00000,
        load_chain_len=3, int_window=9, branch_bias=0.92, hammock_len=2,
        branch_noise=0.04, trip_count=32, chase_nodes=224,
        mem_footprint=1 << 13,
        store_fraction=0.6,
    ),
    "perl": _profile(
        "perl", "int", "pointer_chase", 47, "scrabbl.in",
        "interpreter dispatch: pointer chasing plus hash probing, "
        "moderately predictable branches",
        pc_base=0x50000, data_base=0x5_00000,
        load_chain_len=2, int_window=9, branch_bias=0.91, hammock_len=3,
        branch_noise=0.04, trip_count=48, chase_nodes=256,
        mem_footprint=1 << 13,
        store_fraction=0.8,
    ),
    # ------------------------------------------------------------- floating point
    "mgrid": _profile(
        "mgrid", "fp", "streaming", 169, "test (5/18 grid)",
        "multigrid relaxation: unit-stride sweeps, long FP chains, "
        "almost no data-dependent branches",
        pc_base=0x60000, data_base=0x6_00000,
        n_streams=3, chain_len=3, fp_window=18, int_window=8,
        trip_count=256, mem_footprint=1 << 15, stream_stride=8,
        div_interval=0,
    ),
    "tomcatv": _profile(
        "tomcatv", "fp", "stencil", 191, "test",
        "mesh generation: wide stencils, divides, the highest FP register "
        "pressure of the suite",
        pc_base=0x70000, data_base=0x7_00000,
        n_streams=5, chain_len=4, fp_window=24, int_window=8,
        trip_count=200, mem_footprint=1 << 15, stream_stride=8,
        div_interval=4,
    ),
    "applu": _profile(
        "applu", "fp", "stencil", 398, "train (dt=1.5e-03, 13^3)",
        "implicit CFD solver: blocked stencils with periodic divides",
        pc_base=0x80000, data_base=0x8_00000,
        n_streams=4, chain_len=3, fp_window=20, int_window=8,
        trip_count=100, mem_footprint=1 << 15, stream_stride=8,
        div_interval=6,
    ),
    "swim": _profile(
        "swim", "fp", "streaming", 431, "train",
        "shallow-water model: pure streaming sweeps over large arrays",
        pc_base=0x90000, data_base=0x9_00000,
        n_streams=4, chain_len=2, fp_window=20, int_window=8,
        trip_count=512, mem_footprint=1 << 15, stream_stride=8,
        div_interval=0,
    ),
    "hydro2d": _profile(
        "hydro2d", "fp", "stencil", 472, "test (ISTEP=1)",
        "hydrodynamics: stencil sweeps with long chains and divides",
        pc_base=0xA0000, data_base=0xA_00000,
        n_streams=4, chain_len=4, fp_window=22, int_window=8,
        trip_count=150, mem_footprint=1 << 15, stream_stride=8,
        div_interval=8,
    ),
}


def integer_workloads() -> List[str]:
    """Names of the five SPECint95-like benchmarks, in the paper's order."""
    return ["compress", "gcc", "go", "li", "perl"]


def fp_workloads() -> List[str]:
    """Names of the five SPECfp95-like benchmarks, in the paper's order."""
    return ["mgrid", "tomcatv", "applu", "swim", "hydro2d"]


def all_workloads() -> List[str]:
    """All ten benchmark names, integer suite first (paper Table 3 order)."""
    return integer_workloads() + fp_workloads()


def get_profile(name: str) -> BenchmarkProfile:
    """Return the profile for benchmark ``name`` (raises ``KeyError`` if unknown)."""
    try:
        return WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise KeyError(f"unknown benchmark {name!r}; known benchmarks: {known}") from None


def make_kernel(profile: BenchmarkProfile) -> _KernelBase:
    """Instantiate the kernel generator described by ``profile``."""
    factory = _KERNEL_FACTORIES[profile.kernel]
    return factory(profile.params)


def _emit_until(kernel, rng, out: List[Instruction], target: int,
                vectorized: bool,
                chunk_iterations: Optional[int] = None) -> None:
    """Append iterations of ``kernel`` to ``out`` until the first
    iteration boundary at or after ``target`` instructions.

    The vectorised path sizes its chunks by the kernel's *maximum*
    iteration length so it can never overshoot the boundary the scalar
    loop would stop at, and finishes the tail with scalar iterations —
    the emitted stream, the kernel state and the ``Generator`` state all
    end up identical to the scalar path's, so callers may chain further
    segments (the phased scenario families do).  ``chunk_iterations``
    caps the chunk size (testing hook).
    """
    if vectorized and replay_supported():
        try:
            max_length = kernel.max_iteration_length()
        except NotImplementedError:
            max_length = None
        while max_length is not None:
            remaining = target - len(out)
            k = min(4096, remaining // max_length)
            if chunk_iterations is not None:
                k = min(k, chunk_iterations)
            if k < 1:
                break
            try:
                chunk, _bounds = kernel.emit_chunk(rng, k)
            except ReplayUnsupported:
                # Unsupported schedule (exotic span / bit generator); the
                # emitters raise before consuming any state, so the
                # scalar oracle continues seamlessly.
                break
            out.extend(chunk)
    while len(out) < target:
        out.extend(kernel.emit_iteration(rng))


def generate_trace(profile: BenchmarkProfile,
                   n_instructions: int = DEFAULT_TRACE_LENGTH,
                   seed: int = 0,
                   vectorized: Optional[bool] = None,
                   chunk_iterations: Optional[int] = None,
                   rng: Optional[np.random.Generator] = None) -> Trace:
    """Generate a dynamic trace of roughly ``n_instructions`` for ``profile``.

    Generation is iteration-granular: the trace ends at the first loop
    iteration boundary at or after ``n_instructions``, so traces are a few
    instructions longer than requested rather than cut mid-iteration.

    ``vectorized`` selects between the chunked bulk-draw emitters (the
    default) and the scalar oracle path; both produce bit-identical
    traces (enforced by ``tests/trace/test_vector_equivalence.py``).
    ``chunk_iterations`` pins the chunk size (testing hook).  ``rng``
    overrides the seed-derived generator — callers that need to inspect
    the bit-generator state after generation (the differential fuzzer's
    generation oracle) pass their own and must construct it exactly as
    the default below does.
    """
    if n_instructions <= 0:
        raise ValueError("n_instructions must be positive")
    if rng is None:
        # Derive a per-benchmark stream from a *stable* digest of the name
        # (the built-in str hash is salted per interpreter run, which would
        # make traces irreproducible across sessions).  The ten benchmark
        # names are a fixed, collision-free set, so this legacy digest is
        # kept to preserve the identity of every paper-artefact trace;
        # scenarios (arbitrary user names) mix in a cryptographic digest
        # instead — see :func:`_scenario_stream_seed`.
        name_digest = sum((index + 1) * ord(char)
                          for index, char in enumerate(profile.name))
        rng = np.random.default_rng(seed + name_digest % (1 << 16))
    kernel = make_kernel(profile)
    instructions: List[Instruction] = list(kernel.prologue(rng))
    _emit_until(kernel, rng, instructions, n_instructions,
                vectorized_enabled(vectorized), chunk_iterations)
    return Trace(name=profile.name, focus_class=profile.focus_class,
                 instructions=instructions, seed=seed)


# ======================================================================
# Workload scenario library (beyond the paper's SPEC-like mixes).
# ======================================================================
@dataclass(frozen=True)
class ScenarioPhase:
    """One phase of a scenario: a kernel family plus its parameters."""

    kernel: str
    params: KernelParams


@dataclass(frozen=True)
class ScenarioProfile:
    """A workload scenario: one or more phases cycled over the trace.

    Single-phase scenarios are plain kernels pushed into regimes the
    SPEC-like profiles do not reach; multi-phase scenarios alternate
    kernels every ``phase_length`` instructions, each phase's kernel
    *resuming* where it left off (its streams, rotations and branch
    sites persist across returns, like a real program's phases).
    """

    name: str
    suite: str
    phases: Tuple[ScenarioPhase, ...]
    phase_length: int = 2_500
    description: str = ""

    @property
    def focus_class(self) -> RegClass:
        """Register class reported for this scenario (suite convention)."""
        return RegClass.INT if self.suite == "int" else RegClass.FP


def _phase(kernel: str, **param_overrides) -> ScenarioPhase:
    return ScenarioPhase(kernel=kernel, params=KernelParams(**param_overrides))


#: The scenario families, keyed by scenario name.  Each opens a dynamic
#: regime the Table 3 profiles do not cover; all are sweep-able through
#: the same ``get_workload`` / ``run_sweep`` stack as the SPEC-like
#: benchmarks (see ``docs/workloads.md``).
SCENARIOS: Dict[str, ScenarioProfile] = {
    "phased": ScenarioProfile(
        name="phased", suite="fp",
        description="alternating compute/memory phases: an integer "
                    "hash/shift phase and a cache-line-stride FP "
                    "streaming phase, switching every phase_length "
                    "instructions",
        phase_length=2_500,
        phases=(
            _phase("int_compute",
                   pc_base=0x100000, data_base=0x10_00000,
                   chain_len=3, int_window=8, n_parallel_chains=3,
                   branch_bias=0.85, branch_noise=0.05, hammock_len=3,
                   trip_count=64, mem_footprint=1 << 13, store_fraction=0.5),
            _phase("streaming",
                   pc_base=0x110000, data_base=0x11_00000,
                   n_streams=4, chain_len=2, fp_window=20, int_window=8,
                   trip_count=256, mem_footprint=1 << 17, stream_stride=64),
        )),
    "pointer_hop": ScenarioProfile(
        name="pointer_hop", suite="int",
        description="deep dependent-load pointer chasing: six-hop "
                    "chases over a large node pool with sparse stores "
                    "(worst-case load-to-use serialisation)",
        phases=(
            _phase("pointer_chase",
                   pc_base=0x120000, data_base=0x12_00000,
                   load_chain_len=6, int_window=10, branch_bias=0.90,
                   branch_noise=0.05, hammock_len=2, trip_count=48,
                   chase_nodes=4096, mem_footprint=1 << 14,
                   store_fraction=0.3),
        )),
    "branch_storm": ScenarioProfile(
        name="branch_storm", suite="int",
        description="high-branch-entropy control flow: 48 short blocks "
                    "with near-coin-flip noisy branches and no "
                    "learnable patterns (misprediction-recovery "
                    "stress; wrong-path generator hot)",
        phases=(
            _phase("branchy",
                   pc_base=0x130000, data_base=0x13_00000,
                   n_branch_sites=48, block_len=3, hammock_len=2,
                   int_window=10, branch_bias=0.62, pattern_fraction=0.0,
                   branch_noise=0.30, trip_count=32,
                   mem_footprint=1 << 13),
        )),
    "store_wave": ScenarioProfile(
        name="store_wave", suite="int",
        description="store-heavy streaming writes: short work chains "
                    "with one lottery store plus three unconditional "
                    "stores per iteration (LSQ/commit-bandwidth "
                    "pressure)",
        phases=(
            _phase("int_compute",
                   pc_base=0x140000, data_base=0x14_00000,
                   chain_len=1, int_window=8, n_parallel_chains=2,
                   branch_bias=0.90, branch_noise=0.04, hammock_len=1,
                   trip_count=96, mem_footprint=1 << 14,
                   store_fraction=1.0, extra_stores=3),
        )),
    "regpressure_ramp": ScenarioProfile(
        name="regpressure_ramp", suite="fp",
        description="register-pressure ramp: stencil phases whose FP "
                    "rotation window widens 8 -> 14 -> 20 -> 26, "
                    "sweeping the register lifetime structure within "
                    "one trace",
        phase_length=2_500,
        phases=tuple(
            _phase("stencil",
                   pc_base=0x150000 + i * 0x4000,
                   data_base=0x15_00000 + i * 0x8_0000,
                   n_streams=4, chain_len=3, fp_window=window,
                   int_window=8, trip_count=128, mem_footprint=1 << 15,
                   stream_stride=8, div_interval=6)
            for i, window in enumerate((8, 14, 20, 26))),
        ),
}


#: Scenario names shipped with the library (never replaceable by user
#: registrations — a config that shadowed ``branch_storm`` would silently
#: change what every other consumer of the grid means by it).
_BUILTIN_SCENARIO_NAMES = frozenset(SCENARIOS)

#: Accepted scenario names: identifier-like, plus ``.`` and ``-``.
_SCENARIO_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.\-]*$")


def scenario_workloads() -> List[str]:
    """Names of the scenario-library workloads (sweep-able grid order).

    Built-in scenarios first, then user-registered ones in registration
    order.
    """
    return list(SCENARIOS)


def get_scenario(name: str) -> ScenarioProfile:
    """Return the scenario profile for ``name`` (``KeyError`` if unknown)."""
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r}; known scenarios: {known}") from None


#: Process-local profiles shipped by the sweep layer.  Pool worker
#: processes re-import this module with only the built-in registries, so
#: ``run_simulation_point`` installs the sweep's shipped profiles here
#: before simulating — then *every* name lookup inside the point (the
#: trace itself, but also the simulator's warm-up trace, which re-resolves
#: ``trace.name`` with a different seed) sees exactly the same profiles in
#: a worker as in the parent process.  Never listed by
#: :func:`scenario_workloads`; entries are refreshed per sweep point.
_EPHEMERAL_PROFILES: Dict[str, ScenarioProfile] = {}


def install_ephemeral_profiles(profiles: Sequence[ScenarioProfile]) -> None:
    """Make shipped scenario profiles resolvable by name in this process.

    Called by the sweep layer (parent and workers alike) with the
    ``SweepConfig.scenario_profiles`` of the sweep being executed;
    same-name entries are overwritten so lookups always reflect the
    current sweep's content.
    """
    for profile in profiles:
        _EPHEMERAL_PROFILES[profile.name] = profile


def uninstall_ephemeral_profiles(names: Sequence[str]) -> None:
    """Drop installed ephemeral profiles again (unknown names are ignored).

    The sweep layer never bothers — its entries are simply refreshed per
    point — but the scenario fuzzer, which installs thousands of
    one-shot sampled profiles per run, removes each one after its sample
    so the process-local table cannot grow without bound.
    """
    for name in names:
        _EPHEMERAL_PROFILES.pop(name, None)


def has_workload(name: str) -> bool:
    """True when ``name`` is a known benchmark or scenario (including
    profiles shipped by the currently executing sweep)."""
    return (name in WORKLOADS or name in SCENARIOS
            or name in _EPHEMERAL_PROFILES)


# ----------------------------------------------------------------------
# User-defined scenarios: validation, registration, config loading.
# ----------------------------------------------------------------------
def validate_scenario_profile(profile: ScenarioProfile) -> None:
    """Validate a scenario profile, raising :class:`ValueError` on problems.

    Checks the name shape, the suite, the phase list (non-empty, known
    kernel families) and the phase length — everything the generator and
    the sweep stack assume without re-checking.
    """
    if not isinstance(profile, ScenarioProfile):
        raise ValueError(f"expected a ScenarioProfile, got {type(profile).__name__}")
    if not isinstance(profile.name, str) or not _SCENARIO_NAME_RE.match(profile.name):
        raise ValueError(
            f"invalid scenario name {profile.name!r}: must start with a letter "
            f"or underscore and contain only letters, digits, '_', '.', '-'")
    if profile.suite not in ("int", "fp"):
        raise ValueError(f"scenario {profile.name!r}: suite must be 'int' or "
                         f"'fp', got {profile.suite!r}")
    if not profile.phases:
        raise ValueError(f"scenario {profile.name!r}: needs at least one phase")
    for index, phase in enumerate(profile.phases):
        if phase.kernel not in _KERNEL_FACTORIES:
            known = ", ".join(sorted(_KERNEL_FACTORIES))
            raise ValueError(
                f"scenario {profile.name!r} phase {index}: unknown kernel "
                f"{phase.kernel!r}; known kernels: {known}")
        if not isinstance(phase.params, KernelParams):
            raise ValueError(
                f"scenario {profile.name!r} phase {index}: params must be a "
                f"KernelParams, got {type(phase.params).__name__}")
    if not isinstance(profile.phase_length, int) or profile.phase_length <= 0:
        raise ValueError(f"scenario {profile.name!r}: phase_length must be a "
                         f"positive integer, got {profile.phase_length!r}")


def register_scenario(profile: ScenarioProfile,
                      replace: bool = False) -> ScenarioProfile:
    """Register a user-defined scenario in :data:`SCENARIOS`.

    After registration the scenario resolves through every layer that
    accepts a workload name — :func:`get_workload`, ``run_sweep``, the
    on-disk sweep cache, the experiment CLI.  Trace identity is keyed by
    the profile's *content* (see :func:`profile_digest`), so re-registering
    a changed profile under the same name can never serve a stale trace
    or a stale cached sweep point.

    Registering the same content twice is a no-op.  Re-registering a
    *different* profile under an existing user-registered name requires
    ``replace=True``; built-in scenario and benchmark names can never be
    taken over.
    """
    validate_scenario_profile(profile)
    name = profile.name
    if name in WORKLOADS:
        raise ValueError(f"scenario name {name!r} collides with a built-in "
                         f"benchmark profile")
    if name in _BUILTIN_SCENARIO_NAMES:
        raise ValueError(f"scenario name {name!r} collides with a built-in "
                         f"scenario")
    existing = SCENARIOS.get(name)
    if existing is not None and existing != profile and not replace:
        raise ValueError(
            f"scenario {name!r} is already registered with different "
            f"content; pass replace=True to re-register")
    SCENARIOS[name] = profile
    return profile


def unregister_scenario(name: str) -> None:
    """Remove a user-registered scenario (built-ins cannot be removed)."""
    if name in _BUILTIN_SCENARIO_NAMES:
        raise ValueError(f"cannot unregister built-in scenario {name!r}")
    if name not in SCENARIOS:
        raise KeyError(f"no registered scenario {name!r}")
    del SCENARIOS[name]


def _phase_from_config(entry: Mapping, scenario: str, index: int) -> ScenarioPhase:
    if not isinstance(entry, Mapping):
        raise ValueError(f"scenario {scenario!r} phase {index}: expected a "
                         f"mapping, got {type(entry).__name__}")
    unknown = set(entry) - {"kernel", "params"}
    if unknown:
        raise ValueError(f"scenario {scenario!r} phase {index}: unknown keys "
                         f"{sorted(unknown)} (expected 'kernel' and 'params')")
    kernel = entry.get("kernel")
    if not isinstance(kernel, str):
        raise ValueError(f"scenario {scenario!r} phase {index}: 'kernel' is "
                         f"required and must be a string")
    params = entry.get("params", {})
    if not isinstance(params, Mapping):
        raise ValueError(f"scenario {scenario!r} phase {index}: 'params' must "
                         f"be a mapping of KernelParams fields")
    valid = {field.name: field.type for field in dataclasses.fields(KernelParams)}
    bad = set(params) - set(valid)
    if bad:
        raise ValueError(
            f"scenario {scenario!r} phase {index}: unknown kernel parameters "
            f"{sorted(bad)}; valid parameters: {', '.join(sorted(valid))}")
    for key, value in params.items():
        # Annotations are strings ("int"/"float") under
        # `from __future__ import annotations`; reject wrong-typed values
        # here, at load time, instead of as an opaque TypeError deep
        # inside trace generation (possibly in a pool worker).
        expected = valid[key]
        if expected == "int":
            type_ok = isinstance(value, int) and not isinstance(value, bool)
        elif expected == "float":
            type_ok = (isinstance(value, (int, float))
                       and not isinstance(value, bool))
        else:  # future non-numeric knob: defer to KernelParams itself
            type_ok = True
        if not type_ok:
            raise ValueError(
                f"scenario {scenario!r} phase {index}: parameter {key!r} "
                f"must be {'an int' if expected == 'int' else 'a number'}, "
                f"got {value!r}")
    return ScenarioPhase(kernel=kernel, params=KernelParams(**params))


_SCENARIO_CONFIG_KEYS = {"name", "suite", "description", "phase_length", "phases"}


def _scenario_from_config(entry: Mapping, source: str) -> ScenarioProfile:
    if not isinstance(entry, Mapping):
        raise ValueError(f"{source}: each scenario must be a mapping, got "
                         f"{type(entry).__name__}")
    unknown = set(entry) - _SCENARIO_CONFIG_KEYS
    if unknown:
        raise ValueError(f"{source}: unknown scenario keys {sorted(unknown)}; "
                         f"expected {sorted(_SCENARIO_CONFIG_KEYS)}")
    name = entry.get("name")
    if not isinstance(name, str):
        raise ValueError(f"{source}: scenario 'name' is required and must be "
                         f"a string")
    phases_cfg = entry.get("phases")
    if not isinstance(phases_cfg, Sequence) or isinstance(phases_cfg, (str, bytes)):
        raise ValueError(f"{source}: scenario {name!r} needs a 'phases' list")
    phase_length = entry.get("phase_length", 2_500)
    profile = ScenarioProfile(
        name=name,
        suite=entry.get("suite", ""),
        description=entry.get("description", ""),
        phase_length=phase_length,
        phases=tuple(_phase_from_config(phase, name, index)
                     for index, phase in enumerate(phases_cfg)),
    )
    validate_scenario_profile(profile)
    return profile


def parse_scenario_config(data: Mapping,
                          source: str = "<scenario config>") -> List[ScenarioProfile]:
    """Build (validated) scenario profiles from a parsed config mapping.

    Two shapes are accepted: a mapping with a ``scenarios`` list, or a
    single scenario mapping (one with a ``name`` key).  See
    ``docs/workloads.md`` ("User-defined scenarios") for the format.
    """
    if not isinstance(data, Mapping):
        raise ValueError(f"{source}: top level must be a mapping")
    if "scenarios" in data:
        entries = data["scenarios"]
        extra = set(data) - {"scenarios"}
        if extra:
            raise ValueError(f"{source}: unknown top-level keys {sorted(extra)}")
        if not isinstance(entries, Sequence) or isinstance(entries, (str, bytes)):
            raise ValueError(f"{source}: 'scenarios' must be a list")
    elif "name" in data:
        entries = [data]
    else:
        raise ValueError(f"{source}: expected a 'scenarios' list or a single "
                         f"scenario mapping with a 'name'")
    profiles = [_scenario_from_config(entry, source) for entry in entries]
    if not profiles:
        raise ValueError(f"{source}: no scenarios defined")
    names = [profile.name for profile in profiles]
    if len(set(names)) != len(names):
        raise ValueError(f"{source}: duplicate scenario names in one config")
    return profiles


def load_scenario_file(path: Union[str, Path]) -> List[ScenarioProfile]:
    """Load scenario profiles from a TOML (``.toml``) or JSON config file.

    TOML needs Python 3.11+ (:mod:`tomllib`); JSON works everywhere.
    """
    path = Path(path)
    if path.suffix.lower() == ".toml":
        try:
            import tomllib
        except ImportError:
            raise ValueError(
                f"{path}: TOML scenario configs need Python 3.11+ "
                f"(tomllib); use the JSON form on older interpreters") from None
        with path.open("rb") as handle:
            data = tomllib.load(handle)
    else:
        with path.open("r", encoding="utf-8") as handle:
            try:
                data = json.load(handle)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}: not valid JSON ({exc})") from None
    return parse_scenario_config(data, source=str(path))


def register_scenario_file(path: Union[str, Path],
                           replace: bool = False) -> List[str]:
    """Load a scenario config file and register every profile in it.

    Returns the registered names (config order).
    """
    profiles = load_scenario_file(path)
    return [register_scenario(profile, replace=replace).name
            for profile in profiles]


# ----------------------------------------------------------------------
# Trace identity: content digests and the in-memory trace cache.
# ----------------------------------------------------------------------
def profile_digest(profile: Union[BenchmarkProfile, ScenarioProfile]) -> str:
    """Stable content digest of a benchmark or scenario profile.

    Profiles are frozen dataclasses of primitives, so their ``repr`` is a
    deterministic, content-bearing serialisation; hashing it gives the
    identity that keys both the in-memory trace cache and the on-disk
    sweep cache.  Re-registering a changed scenario under the same name
    therefore changes every cache key it participates in.
    """
    payload = f"{type(profile).__name__}:{profile!r}".encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def resolve_workload_profile(
        name: str,
        scenario_profiles: Sequence[ScenarioProfile] = (),
) -> Union[BenchmarkProfile, ScenarioProfile]:
    """Resolve a workload name to its profile.

    ``scenario_profiles`` are ephemeral overrides searched first — the
    sweep layer uses them to ship registered (or derived) scenarios to
    pool worker processes, whose freshly imported registry only contains
    the built-ins.  The registries come next (an explicit
    ``register_scenario`` must always win for names they hold), and
    profiles installed by the executing sweep
    (:func:`install_ephemeral_profiles`) resolve last — they exist for
    names the process's registry does not know.
    """
    for profile in scenario_profiles:
        if profile.name == name:
            return profile
    if name in SCENARIOS:
        return SCENARIOS[name]
    if name in WORKLOADS:
        return WORKLOADS[name]
    if name in _EPHEMERAL_PROFILES:
        return _EPHEMERAL_PROFILES[name]
    known = ", ".join(sorted(WORKLOADS) + sorted(SCENARIOS))
    raise KeyError(f"unknown workload {name!r}; known workloads: {known}")


def workload_digest(name: str,
                    scenario_profiles: Sequence[ScenarioProfile] = ()) -> str:
    """Content digest of the named workload (see :func:`profile_digest`)."""
    return profile_digest(resolve_workload_profile(name, scenario_profiles))


def _scenario_stream_seed(name: str) -> int:
    """Stable 64-bit name digest mixed into a scenario's RNG seed.

    The pre-PR-5 ad-hoc digest (``sum((i + 1) * ord(c))``, folded mod
    2**16) collides easily across names ("bc" vs "db"), which handed two
    distinct scenarios identical RNG streams; a cryptographic digest
    makes that practically impossible.  Switching was a one-time
    re-baseline of the built-in scenario traces (documented in
    ``docs/workloads.md``); their new identity is pinned by
    ``tests/trace/test_scenario_config.py``.
    """
    return int.from_bytes(hashlib.sha256(name.encode("utf-8")).digest()[:8],
                          "big")


def generate_scenario_trace(profile: ScenarioProfile,
                            n_instructions: int = DEFAULT_TRACE_LENGTH,
                            seed: int = 0,
                            vectorized: Optional[bool] = None,
                            chunk_iterations: Optional[int] = None,
                            rng: Optional[np.random.Generator] = None) -> Trace:
    """Generate the (possibly phased) trace of a scenario.

    All phases share one ``Generator``; each phase's kernel is
    instantiated once and resumes where it left off when its phase comes
    around again.  A phase segment ends at the first kernel iteration
    boundary at or after ``phase_length`` appended instructions (the
    final segment at ``n_instructions``), so segment boundaries — like
    trace ends — never cut an iteration.  The scalar/vectorised contract
    of :func:`generate_trace` holds here too, and ``rng`` overrides the
    seed-derived generator exactly as there (the fuzzer's generation
    oracle compares final bit-generator states through it).
    """
    if n_instructions <= 0:
        raise ValueError("n_instructions must be positive")
    if rng is None:
        rng = np.random.default_rng(
            np.random.SeedSequence((seed, _scenario_stream_seed(profile.name))))
    vectorized = vectorized_enabled(vectorized)
    kernels = [_KERNEL_FACTORIES[phase.kernel](phase.params)
               for phase in profile.phases]
    started = [False] * len(kernels)
    instructions: List[Instruction] = []
    index = 0
    while len(instructions) < n_instructions:
        kernel = kernels[index % len(kernels)]
        if not started[index % len(kernels)]:
            instructions.extend(kernel.prologue(rng))
            started[index % len(kernels)] = True
        target = min(len(instructions) + profile.phase_length, n_instructions)
        _emit_until(kernel, rng, instructions, target,
                    vectorized, chunk_iterations)
        index += 1
    return Trace(name=profile.name, focus_class=profile.focus_class,
                 instructions=instructions, seed=seed)


@lru_cache(maxsize=64)
def _cached_trace(profile: Union[BenchmarkProfile, ScenarioProfile],
                  n_instructions: int, seed: int) -> Trace:
    """Memoised trace generation, keyed by profile *content*.

    Profiles are frozen (hashable) dataclasses, so the key is the full
    content: re-registering a changed scenario under the same name misses
    this cache instead of serving the stale trace, while re-registering
    identical content still hits.
    """
    if isinstance(profile, ScenarioProfile):
        return generate_scenario_trace(profile, n_instructions, seed)
    return generate_trace(profile, n_instructions, seed)


def get_workload(name: str, n_instructions: int = DEFAULT_TRACE_LENGTH,
                 seed: int = 0,
                 scenario_profiles: Sequence[ScenarioProfile] = ()) -> Trace:
    """Return (and cache) the synthetic trace for benchmark or scenario
    ``name``.

    Traces are deterministic functions of ``(profile content,
    n_instructions, seed)``, so repeated calls — e.g. the same benchmark
    simulated under the three release policies — reuse the cached object.
    Scenario names (built-in, user-:func:`register_scenario`-ed, or
    supplied ephemerally through ``scenario_profiles``) resolve exactly
    like the paper's benchmarks, so the whole sweep/cache stack works on
    them unchanged.
    """
    profile = resolve_workload_profile(name, scenario_profiles)
    return _cached_trace(profile, n_instructions, seed)
