"""SPEC95-like benchmark profiles (the paper's Table 3 workload).

The paper simulates five SPECint95 programs (compress, gcc, go, li, perl)
and five SPECfp95 programs (mgrid, tomcatv, applu, swim, hydro2d).  Each
profile below pairs one of the :mod:`repro.trace.kernels` generators with
parameters chosen so the synthetic trace lands in the dynamic regime
published for that program:

* branch density and predictability (integer codes are branch-dense and
  comparatively hard to predict; FP codes have few, highly regular
  branches),
* register lifetime structure (FP codes carry many long-lived values →
  high register pressure; integer codes recycle a handful of registers
  quickly → low pressure but proportionally large *Idle* time),
* memory locality relative to the Table 2 cache sizes.

Absolute dynamic instruction counts are scaled down from the paper's
47M–472M to the tens of thousands so that a pure-Python cycle-level
simulation completes in seconds; see DESIGN.md for the substitution
rationale.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.isa import Instruction, RegClass
from repro.trace.kernels import (
    BranchyKernel,
    IntComputeKernel,
    KernelParams,
    PointerChaseKernel,
    StencilFPKernel,
    StreamingFPKernel,
    _KernelBase,
)
from repro.trace.records import Trace

#: Default trace length (dynamic instructions) used by the experiment
#: harness when the caller does not override it.
DEFAULT_TRACE_LENGTH = 30_000


@dataclass(frozen=True)
class BenchmarkProfile:
    """Description of one synthetic benchmark.

    Attributes
    ----------
    name:
        SPEC95 program name this profile stands in for.
    suite:
        ``"int"`` or ``"fp"`` — which half of Table 3 the program belongs
        to, and therefore which physical register file the paper's figures
        measure for it.
    kernel:
        Name of the kernel generator class used ("streaming", "stencil",
        "int_compute", "branchy", "pointer_chase").
    params:
        Kernel parameters (see :class:`repro.trace.kernels.KernelParams`).
    paper_instructions_m:
        Dynamic instruction count (millions) the paper reports in Table 3,
        kept for documentation purposes.
    paper_input:
        The input set listed in Table 3.
    description:
        One-line characterisation of the dynamic behaviour being modelled.
    """

    name: str
    suite: str
    kernel: str
    params: KernelParams
    paper_instructions_m: int = 0
    paper_input: str = ""
    description: str = ""

    @property
    def focus_class(self) -> RegClass:
        """Register class whose file the paper measures for this program."""
        return RegClass.INT if self.suite == "int" else RegClass.FP


_KERNEL_FACTORIES: Dict[str, Callable[[KernelParams], _KernelBase]] = {
    "streaming": StreamingFPKernel,
    "stencil": StencilFPKernel,
    "int_compute": IntComputeKernel,
    "branchy": BranchyKernel,
    "pointer_chase": PointerChaseKernel,
}


def _profile(name: str, suite: str, kernel: str, paper_m: int, paper_input: str,
             description: str, **param_overrides) -> BenchmarkProfile:
    params = KernelParams(**param_overrides)
    return BenchmarkProfile(
        name=name, suite=suite, kernel=kernel, params=params,
        paper_instructions_m=paper_m, paper_input=paper_input,
        description=description,
    )


#: The ten benchmark profiles, keyed by program name (paper Table 3).
WORKLOADS: Dict[str, BenchmarkProfile] = {
    # ------------------------------------------------------------- integer
    "compress": _profile(
        "compress", "int", "int_compute", 170, "40000 e 2231",
        "dictionary compression: integer hash/shift chains, one "
        "data-dependent branch per element, moderate locality",
        pc_base=0x10000, data_base=0x1_00000,
        chain_len=3, int_window=8, branch_bias=0.88, hammock_len=3,
        n_parallel_chains=4, branch_noise=0.06, trip_count=64,
        mem_footprint=1 << 14, mult_interval=6,
    ),
    "gcc": _profile(
        "gcc", "int", "branchy", 145, "genrecog.i",
        "compiler passes: short basic blocks, dense mixed-bias branches, "
        "pointer-rich data structures",
        pc_base=0x20000, data_base=0x2_00000,
        n_branch_sites=24, block_len=4, hammock_len=2, int_window=10,
        branch_bias=0.88, pattern_fraction=0.45, branch_noise=0.04,
        trip_count=48, mem_footprint=1 << 13,
    ),
    "go": _profile(
        "go", "int", "branchy", 146, "9 9",
        "game tree search: very branch dense and hard to predict",
        pc_base=0x30000, data_base=0x3_00000,
        n_branch_sites=32, block_len=3, hammock_len=2, int_window=10,
        branch_bias=0.80, pattern_fraction=0.30, branch_noise=0.06,
        trip_count=40, mem_footprint=1 << 13,
    ),
    "li": _profile(
        "li", "int", "pointer_chase", 243, "7 queens",
        "lisp interpreter: dependent load chains through cons cells, "
        "regular dispatch branches",
        pc_base=0x40000, data_base=0x4_00000,
        load_chain_len=3, int_window=9, branch_bias=0.92, hammock_len=2,
        branch_noise=0.04, trip_count=32, chase_nodes=224,
        mem_footprint=1 << 13,
        store_fraction=0.6,
    ),
    "perl": _profile(
        "perl", "int", "pointer_chase", 47, "scrabbl.in",
        "interpreter dispatch: pointer chasing plus hash probing, "
        "moderately predictable branches",
        pc_base=0x50000, data_base=0x5_00000,
        load_chain_len=2, int_window=9, branch_bias=0.91, hammock_len=3,
        branch_noise=0.04, trip_count=48, chase_nodes=256,
        mem_footprint=1 << 13,
        store_fraction=0.8,
    ),
    # ------------------------------------------------------------- floating point
    "mgrid": _profile(
        "mgrid", "fp", "streaming", 169, "test (5/18 grid)",
        "multigrid relaxation: unit-stride sweeps, long FP chains, "
        "almost no data-dependent branches",
        pc_base=0x60000, data_base=0x6_00000,
        n_streams=3, chain_len=3, fp_window=18, int_window=8,
        trip_count=256, mem_footprint=1 << 15, stream_stride=8,
        div_interval=0,
    ),
    "tomcatv": _profile(
        "tomcatv", "fp", "stencil", 191, "test",
        "mesh generation: wide stencils, divides, the highest FP register "
        "pressure of the suite",
        pc_base=0x70000, data_base=0x7_00000,
        n_streams=5, chain_len=4, fp_window=24, int_window=8,
        trip_count=200, mem_footprint=1 << 15, stream_stride=8,
        div_interval=4,
    ),
    "applu": _profile(
        "applu", "fp", "stencil", 398, "train (dt=1.5e-03, 13^3)",
        "implicit CFD solver: blocked stencils with periodic divides",
        pc_base=0x80000, data_base=0x8_00000,
        n_streams=4, chain_len=3, fp_window=20, int_window=8,
        trip_count=100, mem_footprint=1 << 15, stream_stride=8,
        div_interval=6,
    ),
    "swim": _profile(
        "swim", "fp", "streaming", 431, "train",
        "shallow-water model: pure streaming sweeps over large arrays",
        pc_base=0x90000, data_base=0x9_00000,
        n_streams=4, chain_len=2, fp_window=20, int_window=8,
        trip_count=512, mem_footprint=1 << 15, stream_stride=8,
        div_interval=0,
    ),
    "hydro2d": _profile(
        "hydro2d", "fp", "stencil", 472, "test (ISTEP=1)",
        "hydrodynamics: stencil sweeps with long chains and divides",
        pc_base=0xA0000, data_base=0xA_00000,
        n_streams=4, chain_len=4, fp_window=22, int_window=8,
        trip_count=150, mem_footprint=1 << 15, stream_stride=8,
        div_interval=8,
    ),
}


def integer_workloads() -> List[str]:
    """Names of the five SPECint95-like benchmarks, in the paper's order."""
    return ["compress", "gcc", "go", "li", "perl"]


def fp_workloads() -> List[str]:
    """Names of the five SPECfp95-like benchmarks, in the paper's order."""
    return ["mgrid", "tomcatv", "applu", "swim", "hydro2d"]


def all_workloads() -> List[str]:
    """All ten benchmark names, integer suite first (paper Table 3 order)."""
    return integer_workloads() + fp_workloads()


def get_profile(name: str) -> BenchmarkProfile:
    """Return the profile for benchmark ``name`` (raises ``KeyError`` if unknown)."""
    try:
        return WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise KeyError(f"unknown benchmark {name!r}; known benchmarks: {known}") from None


def make_kernel(profile: BenchmarkProfile) -> _KernelBase:
    """Instantiate the kernel generator described by ``profile``."""
    factory = _KERNEL_FACTORIES[profile.kernel]
    return factory(profile.params)


def generate_trace(profile: BenchmarkProfile,
                   n_instructions: int = DEFAULT_TRACE_LENGTH,
                   seed: int = 0) -> Trace:
    """Generate a dynamic trace of roughly ``n_instructions`` for ``profile``.

    Generation is iteration-granular: the trace ends at the first loop
    iteration boundary at or after ``n_instructions``, so traces are a few
    instructions longer than requested rather than cut mid-iteration.
    """
    if n_instructions <= 0:
        raise ValueError("n_instructions must be positive")
    # Derive a per-benchmark stream from a *stable* digest of the name (the
    # built-in str hash is salted per interpreter run, which would make
    # traces irreproducible across sessions).
    name_digest = sum((index + 1) * ord(char)
                      for index, char in enumerate(profile.name))
    rng = np.random.default_rng(seed + name_digest % (1 << 16))
    kernel = make_kernel(profile)
    instructions: List[Instruction] = list(kernel.prologue(rng))
    while len(instructions) < n_instructions:
        instructions.extend(kernel.emit_iteration(rng))
    return Trace(name=profile.name, focus_class=profile.focus_class,
                 instructions=instructions, seed=seed)


@lru_cache(maxsize=64)
def _cached_workload(name: str, n_instructions: int, seed: int) -> Trace:
    return generate_trace(get_profile(name), n_instructions, seed)


def get_workload(name: str, n_instructions: int = DEFAULT_TRACE_LENGTH,
                 seed: int = 0) -> Trace:
    """Return (and cache) the synthetic trace for benchmark ``name``.

    Traces are deterministic functions of ``(name, n_instructions, seed)``,
    so repeated calls — e.g. the same benchmark simulated under the three
    release policies — reuse the cached object.
    """
    return _cached_workload(name, n_instructions, seed)
