"""SPEC95-like benchmark profiles (the paper's Table 3 workload).

The paper simulates five SPECint95 programs (compress, gcc, go, li, perl)
and five SPECfp95 programs (mgrid, tomcatv, applu, swim, hydro2d).  Each
profile below pairs one of the :mod:`repro.trace.kernels` generators with
parameters chosen so the synthetic trace lands in the dynamic regime
published for that program:

* branch density and predictability (integer codes are branch-dense and
  comparatively hard to predict; FP codes have few, highly regular
  branches),
* register lifetime structure (FP codes carry many long-lived values →
  high register pressure; integer codes recycle a handful of registers
  quickly → low pressure but proportionally large *Idle* time),
* memory locality relative to the Table 2 cache sizes.

Absolute dynamic instruction counts are scaled down from the paper's
47M–472M to the tens of thousands so that a pure-Python cycle-level
simulation completes in seconds; see DESIGN.md for the substitution
rationale.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.isa import Instruction, RegClass
from repro.trace.draws import (ReplayUnsupported, replay_supported,
                               vectorized_enabled)
from repro.trace.kernels import (
    BranchyKernel,
    IntComputeKernel,
    KernelParams,
    PointerChaseKernel,
    StencilFPKernel,
    StreamingFPKernel,
    _KernelBase,
)
from repro.trace.records import Trace

#: Default trace length (dynamic instructions) used by the experiment
#: harness when the caller does not override it.
DEFAULT_TRACE_LENGTH = 30_000


@dataclass(frozen=True)
class BenchmarkProfile:
    """Description of one synthetic benchmark.

    Attributes
    ----------
    name:
        SPEC95 program name this profile stands in for.
    suite:
        ``"int"`` or ``"fp"`` — which half of Table 3 the program belongs
        to, and therefore which physical register file the paper's figures
        measure for it.
    kernel:
        Name of the kernel generator class used ("streaming", "stencil",
        "int_compute", "branchy", "pointer_chase").
    params:
        Kernel parameters (see :class:`repro.trace.kernels.KernelParams`).
    paper_instructions_m:
        Dynamic instruction count (millions) the paper reports in Table 3,
        kept for documentation purposes.
    paper_input:
        The input set listed in Table 3.
    description:
        One-line characterisation of the dynamic behaviour being modelled.
    """

    name: str
    suite: str
    kernel: str
    params: KernelParams
    paper_instructions_m: int = 0
    paper_input: str = ""
    description: str = ""

    @property
    def focus_class(self) -> RegClass:
        """Register class whose file the paper measures for this program."""
        return RegClass.INT if self.suite == "int" else RegClass.FP


_KERNEL_FACTORIES: Dict[str, Callable[[KernelParams], _KernelBase]] = {
    "streaming": StreamingFPKernel,
    "stencil": StencilFPKernel,
    "int_compute": IntComputeKernel,
    "branchy": BranchyKernel,
    "pointer_chase": PointerChaseKernel,
}


def _profile(name: str, suite: str, kernel: str, paper_m: int, paper_input: str,
             description: str, **param_overrides) -> BenchmarkProfile:
    params = KernelParams(**param_overrides)
    return BenchmarkProfile(
        name=name, suite=suite, kernel=kernel, params=params,
        paper_instructions_m=paper_m, paper_input=paper_input,
        description=description,
    )


#: The ten benchmark profiles, keyed by program name (paper Table 3).
WORKLOADS: Dict[str, BenchmarkProfile] = {
    # ------------------------------------------------------------- integer
    "compress": _profile(
        "compress", "int", "int_compute", 170, "40000 e 2231",
        "dictionary compression: integer hash/shift chains, one "
        "data-dependent branch per element, moderate locality",
        pc_base=0x10000, data_base=0x1_00000,
        chain_len=3, int_window=8, branch_bias=0.88, hammock_len=3,
        n_parallel_chains=4, branch_noise=0.06, trip_count=64,
        mem_footprint=1 << 14, mult_interval=6,
    ),
    "gcc": _profile(
        "gcc", "int", "branchy", 145, "genrecog.i",
        "compiler passes: short basic blocks, dense mixed-bias branches, "
        "pointer-rich data structures",
        pc_base=0x20000, data_base=0x2_00000,
        n_branch_sites=24, block_len=4, hammock_len=2, int_window=10,
        branch_bias=0.88, pattern_fraction=0.45, branch_noise=0.04,
        trip_count=48, mem_footprint=1 << 13,
    ),
    "go": _profile(
        "go", "int", "branchy", 146, "9 9",
        "game tree search: very branch dense and hard to predict",
        pc_base=0x30000, data_base=0x3_00000,
        n_branch_sites=32, block_len=3, hammock_len=2, int_window=10,
        branch_bias=0.80, pattern_fraction=0.30, branch_noise=0.06,
        trip_count=40, mem_footprint=1 << 13,
    ),
    "li": _profile(
        "li", "int", "pointer_chase", 243, "7 queens",
        "lisp interpreter: dependent load chains through cons cells, "
        "regular dispatch branches",
        pc_base=0x40000, data_base=0x4_00000,
        load_chain_len=3, int_window=9, branch_bias=0.92, hammock_len=2,
        branch_noise=0.04, trip_count=32, chase_nodes=224,
        mem_footprint=1 << 13,
        store_fraction=0.6,
    ),
    "perl": _profile(
        "perl", "int", "pointer_chase", 47, "scrabbl.in",
        "interpreter dispatch: pointer chasing plus hash probing, "
        "moderately predictable branches",
        pc_base=0x50000, data_base=0x5_00000,
        load_chain_len=2, int_window=9, branch_bias=0.91, hammock_len=3,
        branch_noise=0.04, trip_count=48, chase_nodes=256,
        mem_footprint=1 << 13,
        store_fraction=0.8,
    ),
    # ------------------------------------------------------------- floating point
    "mgrid": _profile(
        "mgrid", "fp", "streaming", 169, "test (5/18 grid)",
        "multigrid relaxation: unit-stride sweeps, long FP chains, "
        "almost no data-dependent branches",
        pc_base=0x60000, data_base=0x6_00000,
        n_streams=3, chain_len=3, fp_window=18, int_window=8,
        trip_count=256, mem_footprint=1 << 15, stream_stride=8,
        div_interval=0,
    ),
    "tomcatv": _profile(
        "tomcatv", "fp", "stencil", 191, "test",
        "mesh generation: wide stencils, divides, the highest FP register "
        "pressure of the suite",
        pc_base=0x70000, data_base=0x7_00000,
        n_streams=5, chain_len=4, fp_window=24, int_window=8,
        trip_count=200, mem_footprint=1 << 15, stream_stride=8,
        div_interval=4,
    ),
    "applu": _profile(
        "applu", "fp", "stencil", 398, "train (dt=1.5e-03, 13^3)",
        "implicit CFD solver: blocked stencils with periodic divides",
        pc_base=0x80000, data_base=0x8_00000,
        n_streams=4, chain_len=3, fp_window=20, int_window=8,
        trip_count=100, mem_footprint=1 << 15, stream_stride=8,
        div_interval=6,
    ),
    "swim": _profile(
        "swim", "fp", "streaming", 431, "train",
        "shallow-water model: pure streaming sweeps over large arrays",
        pc_base=0x90000, data_base=0x9_00000,
        n_streams=4, chain_len=2, fp_window=20, int_window=8,
        trip_count=512, mem_footprint=1 << 15, stream_stride=8,
        div_interval=0,
    ),
    "hydro2d": _profile(
        "hydro2d", "fp", "stencil", 472, "test (ISTEP=1)",
        "hydrodynamics: stencil sweeps with long chains and divides",
        pc_base=0xA0000, data_base=0xA_00000,
        n_streams=4, chain_len=4, fp_window=22, int_window=8,
        trip_count=150, mem_footprint=1 << 15, stream_stride=8,
        div_interval=8,
    ),
}


def integer_workloads() -> List[str]:
    """Names of the five SPECint95-like benchmarks, in the paper's order."""
    return ["compress", "gcc", "go", "li", "perl"]


def fp_workloads() -> List[str]:
    """Names of the five SPECfp95-like benchmarks, in the paper's order."""
    return ["mgrid", "tomcatv", "applu", "swim", "hydro2d"]


def all_workloads() -> List[str]:
    """All ten benchmark names, integer suite first (paper Table 3 order)."""
    return integer_workloads() + fp_workloads()


def get_profile(name: str) -> BenchmarkProfile:
    """Return the profile for benchmark ``name`` (raises ``KeyError`` if unknown)."""
    try:
        return WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise KeyError(f"unknown benchmark {name!r}; known benchmarks: {known}") from None


def make_kernel(profile: BenchmarkProfile) -> _KernelBase:
    """Instantiate the kernel generator described by ``profile``."""
    factory = _KERNEL_FACTORIES[profile.kernel]
    return factory(profile.params)


def _emit_until(kernel, rng, out: List[Instruction], target: int,
                vectorized: bool,
                chunk_iterations: Optional[int] = None) -> None:
    """Append iterations of ``kernel`` to ``out`` until the first
    iteration boundary at or after ``target`` instructions.

    The vectorised path sizes its chunks by the kernel's *maximum*
    iteration length so it can never overshoot the boundary the scalar
    loop would stop at, and finishes the tail with scalar iterations —
    the emitted stream, the kernel state and the ``Generator`` state all
    end up identical to the scalar path's, so callers may chain further
    segments (the phased scenario families do).  ``chunk_iterations``
    caps the chunk size (testing hook).
    """
    if vectorized and replay_supported():
        try:
            max_length = kernel.max_iteration_length()
        except NotImplementedError:
            max_length = None
        while max_length is not None:
            remaining = target - len(out)
            k = min(4096, remaining // max_length)
            if chunk_iterations is not None:
                k = min(k, chunk_iterations)
            if k < 1:
                break
            try:
                chunk, _bounds = kernel.emit_chunk(rng, k)
            except ReplayUnsupported:
                # Unsupported schedule (exotic span / bit generator); the
                # emitters raise before consuming any state, so the
                # scalar oracle continues seamlessly.
                break
            out.extend(chunk)
    while len(out) < target:
        out.extend(kernel.emit_iteration(rng))


def generate_trace(profile: BenchmarkProfile,
                   n_instructions: int = DEFAULT_TRACE_LENGTH,
                   seed: int = 0,
                   vectorized: Optional[bool] = None,
                   chunk_iterations: Optional[int] = None) -> Trace:
    """Generate a dynamic trace of roughly ``n_instructions`` for ``profile``.

    Generation is iteration-granular: the trace ends at the first loop
    iteration boundary at or after ``n_instructions``, so traces are a few
    instructions longer than requested rather than cut mid-iteration.

    ``vectorized`` selects between the chunked bulk-draw emitters (the
    default) and the scalar oracle path; both produce bit-identical
    traces (enforced by ``tests/trace/test_vector_equivalence.py``).
    ``chunk_iterations`` pins the chunk size (testing hook).
    """
    if n_instructions <= 0:
        raise ValueError("n_instructions must be positive")
    # Derive a per-benchmark stream from a *stable* digest of the name (the
    # built-in str hash is salted per interpreter run, which would make
    # traces irreproducible across sessions).
    name_digest = sum((index + 1) * ord(char)
                      for index, char in enumerate(profile.name))
    rng = np.random.default_rng(seed + name_digest % (1 << 16))
    kernel = make_kernel(profile)
    instructions: List[Instruction] = list(kernel.prologue(rng))
    _emit_until(kernel, rng, instructions, n_instructions,
                vectorized_enabled(vectorized), chunk_iterations)
    return Trace(name=profile.name, focus_class=profile.focus_class,
                 instructions=instructions, seed=seed)


# ======================================================================
# Workload scenario library (beyond the paper's SPEC-like mixes).
# ======================================================================
@dataclass(frozen=True)
class ScenarioPhase:
    """One phase of a scenario: a kernel family plus its parameters."""

    kernel: str
    params: KernelParams


@dataclass(frozen=True)
class ScenarioProfile:
    """A workload scenario: one or more phases cycled over the trace.

    Single-phase scenarios are plain kernels pushed into regimes the
    SPEC-like profiles do not reach; multi-phase scenarios alternate
    kernels every ``phase_length`` instructions, each phase's kernel
    *resuming* where it left off (its streams, rotations and branch
    sites persist across returns, like a real program's phases).
    """

    name: str
    suite: str
    phases: Tuple[ScenarioPhase, ...]
    phase_length: int = 2_500
    description: str = ""

    @property
    def focus_class(self) -> RegClass:
        """Register class reported for this scenario (suite convention)."""
        return RegClass.INT if self.suite == "int" else RegClass.FP


def _phase(kernel: str, **param_overrides) -> ScenarioPhase:
    return ScenarioPhase(kernel=kernel, params=KernelParams(**param_overrides))


#: The scenario families, keyed by scenario name.  Each opens a dynamic
#: regime the Table 3 profiles do not cover; all are sweep-able through
#: the same ``get_workload`` / ``run_sweep`` stack as the SPEC-like
#: benchmarks (see ``docs/workloads.md``).
SCENARIOS: Dict[str, ScenarioProfile] = {
    "phased": ScenarioProfile(
        name="phased", suite="fp",
        description="alternating compute/memory phases: an integer "
                    "hash/shift phase and a cache-line-stride FP "
                    "streaming phase, switching every phase_length "
                    "instructions",
        phase_length=2_500,
        phases=(
            _phase("int_compute",
                   pc_base=0x100000, data_base=0x10_00000,
                   chain_len=3, int_window=8, n_parallel_chains=3,
                   branch_bias=0.85, branch_noise=0.05, hammock_len=3,
                   trip_count=64, mem_footprint=1 << 13, store_fraction=0.5),
            _phase("streaming",
                   pc_base=0x110000, data_base=0x11_00000,
                   n_streams=4, chain_len=2, fp_window=20, int_window=8,
                   trip_count=256, mem_footprint=1 << 17, stream_stride=64),
        )),
    "pointer_hop": ScenarioProfile(
        name="pointer_hop", suite="int",
        description="deep dependent-load pointer chasing: six-hop "
                    "chases over a large node pool with sparse stores "
                    "(worst-case load-to-use serialisation)",
        phases=(
            _phase("pointer_chase",
                   pc_base=0x120000, data_base=0x12_00000,
                   load_chain_len=6, int_window=10, branch_bias=0.90,
                   branch_noise=0.05, hammock_len=2, trip_count=48,
                   chase_nodes=4096, mem_footprint=1 << 14,
                   store_fraction=0.3),
        )),
    "branch_storm": ScenarioProfile(
        name="branch_storm", suite="int",
        description="high-branch-entropy control flow: 48 short blocks "
                    "with near-coin-flip noisy branches and no "
                    "learnable patterns (misprediction-recovery "
                    "stress; wrong-path generator hot)",
        phases=(
            _phase("branchy",
                   pc_base=0x130000, data_base=0x13_00000,
                   n_branch_sites=48, block_len=3, hammock_len=2,
                   int_window=10, branch_bias=0.62, pattern_fraction=0.0,
                   branch_noise=0.30, trip_count=32,
                   mem_footprint=1 << 13),
        )),
    "store_wave": ScenarioProfile(
        name="store_wave", suite="int",
        description="store-heavy streaming writes: short work chains "
                    "with one lottery store plus three unconditional "
                    "stores per iteration (LSQ/commit-bandwidth "
                    "pressure)",
        phases=(
            _phase("int_compute",
                   pc_base=0x140000, data_base=0x14_00000,
                   chain_len=1, int_window=8, n_parallel_chains=2,
                   branch_bias=0.90, branch_noise=0.04, hammock_len=1,
                   trip_count=96, mem_footprint=1 << 14,
                   store_fraction=1.0, extra_stores=3),
        )),
    "regpressure_ramp": ScenarioProfile(
        name="regpressure_ramp", suite="fp",
        description="register-pressure ramp: stencil phases whose FP "
                    "rotation window widens 8 -> 14 -> 20 -> 26, "
                    "sweeping the register lifetime structure within "
                    "one trace",
        phase_length=2_500,
        phases=tuple(
            _phase("stencil",
                   pc_base=0x150000 + i * 0x4000,
                   data_base=0x15_00000 + i * 0x8_0000,
                   n_streams=4, chain_len=3, fp_window=window,
                   int_window=8, trip_count=128, mem_footprint=1 << 15,
                   stream_stride=8, div_interval=6)
            for i, window in enumerate((8, 14, 20, 26))),
        ),
}


def scenario_workloads() -> List[str]:
    """Names of the scenario-library workloads (sweep-able grid order)."""
    return list(SCENARIOS)


def get_scenario(name: str) -> ScenarioProfile:
    """Return the scenario profile for ``name`` (``KeyError`` if unknown)."""
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r}; known scenarios: {known}") from None


def has_workload(name: str) -> bool:
    """True when ``name`` is a known benchmark or scenario."""
    return name in WORKLOADS or name in SCENARIOS


def generate_scenario_trace(profile: ScenarioProfile,
                            n_instructions: int = DEFAULT_TRACE_LENGTH,
                            seed: int = 0,
                            vectorized: Optional[bool] = None,
                            chunk_iterations: Optional[int] = None) -> Trace:
    """Generate the (possibly phased) trace of a scenario.

    All phases share one ``Generator``; each phase's kernel is
    instantiated once and resumes where it left off when its phase comes
    around again.  A phase segment ends at the first kernel iteration
    boundary at or after ``phase_length`` appended instructions (the
    final segment at ``n_instructions``), so segment boundaries — like
    trace ends — never cut an iteration.  The scalar/vectorised contract
    of :func:`generate_trace` holds here too.
    """
    if n_instructions <= 0:
        raise ValueError("n_instructions must be positive")
    name_digest = sum((index + 1) * ord(char)
                      for index, char in enumerate(profile.name))
    rng = np.random.default_rng(seed + name_digest % (1 << 16))
    vectorized = vectorized_enabled(vectorized)
    kernels = [_KERNEL_FACTORIES[phase.kernel](phase.params)
               for phase in profile.phases]
    started = [False] * len(kernels)
    instructions: List[Instruction] = []
    index = 0
    while len(instructions) < n_instructions:
        kernel = kernels[index % len(kernels)]
        if not started[index % len(kernels)]:
            instructions.extend(kernel.prologue(rng))
            started[index % len(kernels)] = True
        target = min(len(instructions) + profile.phase_length, n_instructions)
        _emit_until(kernel, rng, instructions, target,
                    vectorized, chunk_iterations)
        index += 1
    return Trace(name=profile.name, focus_class=profile.focus_class,
                 instructions=instructions, seed=seed)


@lru_cache(maxsize=64)
def _cached_workload(name: str, n_instructions: int, seed: int) -> Trace:
    if name in SCENARIOS:
        return generate_scenario_trace(SCENARIOS[name], n_instructions, seed)
    return generate_trace(get_profile(name), n_instructions, seed)


def get_workload(name: str, n_instructions: int = DEFAULT_TRACE_LENGTH,
                 seed: int = 0) -> Trace:
    """Return (and cache) the synthetic trace for benchmark or scenario
    ``name``.

    Traces are deterministic functions of ``(name, n_instructions, seed)``,
    so repeated calls — e.g. the same benchmark simulated under the three
    release policies — reuse the cached object.  Scenario names (see
    :data:`SCENARIOS`) resolve exactly like the paper's benchmarks, so
    the whole sweep/cache stack works on them unchanged.
    """
    return _cached_workload(name, n_instructions, seed)
