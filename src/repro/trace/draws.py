"""Stream-preserving bulk replay of ``np.random.Generator`` draws.

The scalar trace generators consume their ``Generator`` one draw at a
time — ``rng.random()`` per branch-noise flip and store lottery,
``rng.integers(0, span)`` per random memory address — which makes the
generator front-end a visible fraction of every sweep point.  This module
removes the per-draw overhead *without changing a single produced value*:
it pulls raw 64-bit outputs from the underlying bit generator in one bulk
call and reconstructs, with vectorised numpy arithmetic, exactly the
values the equivalent sequence of scalar ``Generator`` calls would have
returned, leaving the bit generator in exactly the state those scalar
calls would have left it.

Draw-order contract (documented for consumers in ``docs/workloads.md``)
-----------------------------------------------------------------------
The replay relies on the observable consumption semantics of numpy's
``Generator`` over PCG64, pinned by :func:`replay_supported`'s runtime
probe and by the equivalence test suites:

* ``rng.random()`` consumes one fresh 64-bit output ``x`` and returns
  ``(x >> 11) * 2**-53``.  It neither consumes nor clears the bit
  generator's buffered 32-bit half.
* ``rng.integers(low, high)`` with ``high - low <= 2**32`` consumes one
  *32-bit half*: the buffered half if one is pending, else the **low**
  half of a fresh 64-bit output (whose high half becomes the new buffered
  half).  The half ``y`` maps to a value via 32-bit Lemire multiply:
  ``low + ((y * span) >> 32)`` with ``span = high - low``, redrawing
  another half while ``(y * span) & 0xFFFFFFFF < (2**32 % span)`` (never,
  when ``span`` is a power of two).
* Vectorised calls (``rng.random(n)``, ``rng.integers(low, high, n)``)
  produce element-for-element the same stream as ``n`` scalar calls.

Two replay styles are provided:

:func:`replay_template`
    For generators whose per-iteration draw schedule is a *fixed*
    sequence of slots (doubles and power-of-two-span bounded integers):
    compiles the schedule's raw-consumption pattern once, bulk-draws the
    raws for ``k`` iterations, and gathers one numpy column per slot.
:class:`RawCursor`
    For data-dependent schedules (the store lottery of the pointer-chase
    kernel, the category cascade of the wrong-path generator): overdraws
    a bounded block of raws, lets the caller consume them draw-by-draw
    through cheap Python arithmetic, then rewinds the bit generator by
    the unconsumed raws and restores the buffered-half state exactly.

If the probe ever detects different semantics (a future numpy release, an
exotic bit generator), every entry point raises
:class:`ReplayUnsupported` and the trace generators transparently fall
back to the scalar oracle path — correctness never depends on the replay.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Slot marker for one ``rng.random()`` draw.
DOUBLE = 0

_TWO53_INV = 2.0 ** -53
_LOW32 = np.uint64(0xFFFFFFFF)
_SHIFT11 = np.uint64(11)
_SHIFT32 = np.uint64(32)


class ReplayUnsupported(Exception):
    """The draw schedule or bit generator cannot be replayed bit-exactly."""


def _is_pow2(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


def _check_bit_generator(rng: np.random.Generator) -> np.random.PCG64:
    bit_generator = rng.bit_generator
    if not isinstance(bit_generator, np.random.PCG64):
        raise ReplayUnsupported(
            f"raw replay is only pinned for PCG64, got "
            f"{type(bit_generator).__name__}")
    if not replay_supported():
        raise ReplayUnsupported("runtime probe failed: this numpy build does "
                                "not match the pinned draw semantics")
    return bit_generator


def _buffer_state(bit_generator: np.random.PCG64) -> Tuple[Optional[int], int]:
    """The pending 32-bit half (or ``None``) and the raw ``uinteger`` field.

    numpy leaves the consumed half in ``uinteger`` with ``has_uint32``
    cleared; the replay replicates that stale value too, so the *entire*
    bit-generator state stays equal to the scalar path's — a property the
    equivalence suites assert directly.
    """
    state = bit_generator.state
    stale = int(state["uinteger"])
    return (stale if state["has_uint32"] else None), stale


def _set_buffer_state(bit_generator: np.random.PCG64,
                      pending: Optional[int], stale: int) -> None:
    state = bit_generator.state
    state["has_uint32"] = 1 if pending is not None else 0
    state["uinteger"] = int(pending) if pending is not None else int(stale)
    bit_generator.state = state


# ======================================================================
# Template replay: fixed per-iteration slot schedules.
# ======================================================================
class _CompiledIteration:
    """Raw-consumption pattern of one template iteration.

    ``sources[j]`` describes where slot ``j``'s value comes from:
    ``("d", r)`` — the double of raw ``r``; ``("lo", r)`` / ``("hi", r)``
    — the Lemire product of raw ``r``'s low/high half; ``("ebuf", None)``
    — the half buffered *before* the iteration (the previous iteration's
    surplus, or the bit generator's entry buffer for iteration 0).  Raw
    indices are relative to the iteration's first raw.
    """

    __slots__ = ("sources", "n_raws", "exit_rel", "has_ebuf", "last_lo_rel")

    def __init__(self, template: Sequence[int], entry_buffered: bool) -> None:
        sources: List[Tuple[str, Optional[int]]] = []
        raw = 0
        # None: no pending half; "entry": the pre-iteration buffer is
        # still pending; int r: the high half of raw r is pending.
        pending: object = "entry" if entry_buffered else None
        for slot in template:
            if slot == DOUBLE:
                sources.append(("d", raw))
                raw += 1
            else:
                if not _is_pow2(slot) or slot > (1 << 31):
                    raise ReplayUnsupported(
                        f"bounded-integer span {slot} is not a power of two "
                        f"<= 2**31: the Lemire rejection path would make raw "
                        f"consumption data-dependent")
                if pending is None:
                    sources.append(("lo", raw))
                    pending = raw
                    raw += 1
                elif pending == "entry":
                    sources.append(("ebuf", None))
                    pending = None
                else:
                    sources.append(("hi", pending))
                    pending = None
        self.sources = sources
        self.n_raws = raw
        self.has_ebuf = any(kind == "ebuf" for kind, _rel in sources)
        #: high half of this relative raw is pending at exit; "entry"
        #: means the pre-iteration buffer passed through untouched.
        self.exit_rel: object = pending
        #: relative raw of the last fresh low-half consumption — its high
        #: half is the last value written to the ``uinteger`` field.
        self.last_lo_rel: Optional[int] = None
        for kind, rel in reversed(sources):
            if kind == "lo":
                self.last_lo_rel = rel
                break


def replay_template(rng: np.random.Generator, template: Sequence[int],
                    k: int) -> List[np.ndarray]:
    """Replay ``k`` iterations of ``template`` as one bulk raw draw.

    ``template`` is the per-iteration draw schedule: a sequence of slots,
    each either :data:`DOUBLE` (one ``rng.random()``) or a positive
    power-of-two span (one ``rng.integers(0, span)``).  Returns one numpy
    column per slot, each of length ``k`` — ``float64`` for doubles,
    ``uint64`` for bounded integers — containing exactly the values the
    scalar call sequence would have produced, and leaves ``rng`` in
    exactly the state those scalar calls would have left it.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    if k == 0 or not template:
        return [np.empty(0) for _ in template]
    bit_generator = _check_bit_generator(rng)
    entry_pending, entry_stale = _buffer_state(bit_generator)

    compiled: Dict[bool, _CompiledIteration] = {}

    def form(buffered: bool) -> _CompiledIteration:
        if buffered not in compiled:
            compiled[buffered] = _CompiledIteration(template, buffered)
        return compiled[buffered]

    # Walk the chunk iteration-by-iteration (cheap: a handful of integer
    # operations each) recording which compiled form applies, its raw
    # base, and — where the form consumes a pre-iteration buffered half —
    # the absolute raw that half came from (-1: the rng's entry buffer).
    iter_form = np.empty(k, dtype=np.int8)
    iter_base = np.empty(k, dtype=np.int64)
    ebuf_abs = np.full(k, -1, dtype=np.int64)
    base = 0
    pending_abs: object = "entry" if entry_pending is not None else None
    last_lo_abs: Optional[int] = None
    for i in range(k):
        buffered = pending_abs is not None
        this = form(buffered)
        iter_form[i] = buffered
        iter_base[i] = base
        if buffered and this.has_ebuf:
            ebuf_abs[i] = -1 if pending_abs == "entry" else pending_abs
        exit_rel = this.exit_rel
        if exit_rel is None:
            pending_abs = None
        elif exit_rel != "entry":
            pending_abs = base + exit_rel
        if this.last_lo_rel is not None:
            last_lo_abs = base + this.last_lo_rel
        base += this.n_raws

    total = base
    raws = (bit_generator.random_raw(total) if total
            else np.empty(0, dtype=np.uint64))
    raws = np.asarray(raws, dtype=np.uint64)

    # Value tables, computed lazily per kind/span.
    doubles: Optional[np.ndarray] = None
    lo_halves: Optional[np.ndarray] = None
    hi_halves: Optional[np.ndarray] = None

    def halves() -> Tuple[np.ndarray, np.ndarray]:
        nonlocal lo_halves, hi_halves
        if lo_halves is None:
            lo_halves = raws & _LOW32
            hi_halves = raws >> _SHIFT32
        return lo_halves, hi_halves

    columns: List[np.ndarray] = []
    for j, slot in enumerate(template):
        if slot == DOUBLE:
            if doubles is None:
                doubles = (raws >> _SHIFT11).astype(np.float64) * _TWO53_INV
            out = np.empty(k, dtype=np.float64)
            span = None
        else:
            out = np.empty(k, dtype=np.uint64)
            span = np.uint64(slot)
        for buffered, this in compiled.items():
            sel = iter_form == int(buffered)
            if not sel.any():
                continue
            kind, rel = this.sources[j]
            if kind == "d":
                out[sel] = doubles[iter_base[sel] + rel]
            elif kind == "lo":
                lo, _hi = halves()
                out[sel] = (lo[iter_base[sel] + rel] * span) >> _SHIFT32
            elif kind == "hi":
                _lo, hi = halves()
                out[sel] = (hi[iter_base[sel] + rel] * span) >> _SHIFT32
            else:  # "ebuf": the half pending before the iteration
                # idx == -1 (the rng's entry buffer) can only occur at
                # iteration 0; gather the in-block halves, then patch it.
                # A chunk can consume zero fresh raws (k=1, single
                # bounded slot, entry buffer pending) — then the only
                # source is the entry buffer and there is nothing to
                # gather.
                if raws.size:
                    _lo, hi = halves()
                    idx = ebuf_abs[sel]
                    out[sel] = (hi[np.maximum(idx, 0)] * span) >> _SHIFT32
                if ebuf_abs[0] < 0 and bool(iter_form[0]) == buffered:
                    out[0] = (entry_pending * int(slot)) >> 32
        columns.append(out)

    # Leave the bit generator exactly where the scalar calls would have:
    # the 128-bit state advanced by ``total`` raws (random_raw did that),
    # plus the pending buffered half and the stale ``uinteger`` value.
    stale = (int(raws[last_lo_abs] >> _SHIFT32) if last_lo_abs is not None
             else entry_stale)
    if pending_abs is None:
        _set_buffer_state(bit_generator, None, stale)
    elif pending_abs == "entry":
        _set_buffer_state(bit_generator, entry_pending, stale)
    else:
        _set_buffer_state(bit_generator, int(raws[pending_abs] >> _SHIFT32),
                          stale)
    return columns


# ======================================================================
# Cursor replay: data-dependent draw schedules.
# ======================================================================
class RawCursor:
    """Draw-by-draw consumer over a bulk-drawn block of raws.

    Overdraws ``n_raws`` 64-bit outputs up front; the caller consumes
    them through :meth:`next_double` / :meth:`next_bounded` (each a few
    Python integer operations — no ``Generator`` calls), then
    :meth:`finalize` rewinds the bit generator by the unconsumed raws and
    restores the buffered-half state, so the generator ends up exactly
    where the equivalent scalar calls would have left it.
    """

    __slots__ = ("_bit_generator", "_raws", "_raw_ints", "_pos", "_pending",
                 "_stale", "_n_raws", "_finalized")

    def __init__(self, rng: np.random.Generator, n_raws: int) -> None:
        bit_generator = _check_bit_generator(rng)
        self._bit_generator = bit_generator
        self._pending, self._stale = _buffer_state(bit_generator)
        raws = (bit_generator.random_raw(n_raws) if n_raws
                else np.empty(0, dtype=np.uint64))
        self._raws = np.asarray(raws, dtype=np.uint64)
        #: plain Python ints: attribute/index access in the hot loop is
        #: several times cheaper than numpy scalar extraction.
        self._raw_ints = self._raws.tolist()
        self._n_raws = n_raws
        self._pos = 0
        self._finalized = False

    # ------------------------------------------------------------------
    @property
    def exhausted(self) -> bool:
        """True when every pre-drawn raw has been consumed."""
        return self._pos >= self._n_raws

    def remaining(self) -> int:
        """Number of unconsumed pre-drawn raws."""
        return self._n_raws - self._pos

    # ------------------------------------------------------------------
    def next_double(self) -> float:
        """Exactly ``rng.random()``: one fresh 64-bit output."""
        raw = self._raw_ints[self._pos]
        self._pos += 1
        return (raw >> 11) * _TWO53_INV

    def next_bounded(self, span: int, threshold: int) -> int:
        """Exactly ``rng.integers(0, span)`` for ``span <= 2**32``.

        ``threshold`` must be ``(1 << 32) % span`` (0 for a power of two,
        in which case the Lemire multiply never rejects).
        """
        while True:
            half = self._pending
            if half is not None:
                self._pending = None
            else:
                raw = self._raw_ints[self._pos]
                self._pos += 1
                half = raw & 0xFFFFFFFF
                self._pending = self._stale = raw >> 32
            product = half * span
            if (product & 0xFFFFFFFF) >= threshold:
                return product >> 32

    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Rewind the overdraw and restore the buffered-half state."""
        if self._finalized:
            return
        self._finalized = True
        unused = self._n_raws - self._pos
        if unused:
            self._bit_generator.advance(-unused)
        _set_buffer_state(self._bit_generator, self._pending, self._stale)


def bounded_threshold(span: int) -> int:
    """The Lemire rejection threshold for :meth:`RawCursor.next_bounded`."""
    return (1 << 32) % span


def vectorized_enabled(flag: Optional[bool]) -> bool:
    """Resolve a generation-mode flag: explicit > env override > default.

    ``REPRO_TRACE_SCALAR=1`` forces the scalar oracle path everywhere
    (trace kernels and the wrong-path generator alike).
    """
    import os

    if flag is not None:
        return flag
    if os.environ.get("REPRO_TRACE_SCALAR", "").strip() not in ("", "0"):
        return False
    return True


# ======================================================================
# Runtime probe.
# ======================================================================
_SUPPORTED: Optional[bool] = None


def _probe() -> bool:
    """Compare the replay against real scalar draws on a tricky schedule."""
    global _SUPPORTED
    _SUPPORTED = True  # allow the probe itself to use the entry points
    try:
        seed = 0x5EED
        # Odd bounded-int count per iteration → the buffered-half parity
        # alternates; mixed spans; doubles interleaved.
        template = [DOUBLE, 1024, DOUBLE, 4096, 64]
        k = 9
        oracle = np.random.Generator(np.random.PCG64(seed))
        expected: List[List[float]] = [[] for _ in template]
        for _ in range(k):
            for j, slot in enumerate(template):
                if slot == DOUBLE:
                    expected[j].append(oracle.random())
                else:
                    expected[j].append(int(oracle.integers(0, slot)))
        replayed_rng = np.random.Generator(np.random.PCG64(seed))
        columns = replay_template(replayed_rng, template, k)
        for j, column in enumerate(columns):
            if list(column) != expected[j]:
                return False
        if replayed_rng.bit_generator.state != oracle.bit_generator.state:
            return False

        # Cursor path, including a rejection-capable span and the rewind.
        oracle = np.random.Generator(np.random.PCG64(seed + 1))
        expected_mixed = []
        for _ in range(6):
            expected_mixed.append(oracle.random())
            expected_mixed.append(int(oracle.integers(8, 256)))
            expected_mixed.append(int(oracle.integers(0, 2048)))
        tail = oracle.random()
        cursor_rng = np.random.Generator(np.random.PCG64(seed + 1))
        cursor = RawCursor(cursor_rng, 24)
        got = []
        threshold_248 = bounded_threshold(248)
        for _ in range(6):
            got.append(cursor.next_double())
            got.append(8 + cursor.next_bounded(248, threshold_248))
            got.append(cursor.next_bounded(2048, 0))
        cursor.finalize()
        if got != expected_mixed:
            return False
        if cursor_rng.random() != tail:
            return False
        return True
    except Exception:  # repro-lint: disable=except-swallow -- any divergence in this probe, whatever the cause, must read as "numpy build unsupported" so callers fall back to the scalar path
        return False


def replay_supported() -> bool:
    """True when this numpy build matches the pinned draw semantics.

    Probed once per process; a failed probe makes every replay entry
    point raise :class:`ReplayUnsupported`, which the trace generators
    catch to fall back to the scalar oracle path.
    """
    global _SUPPORTED
    if _SUPPORTED is None:
        _SUPPORTED = _probe()
    return _SUPPORTED
