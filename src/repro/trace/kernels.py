"""Parameterised instruction-stream kernels.

Each kernel models one characteristic inner-loop shape of the SPEC95
programs the paper evaluates and emits concrete
:class:`~repro.isa.instructions.Instruction` records one *iteration* at a
time.  The workload profiles in :mod:`repro.trace.workloads` compose and
calibrate these kernels per benchmark.

All kernels share the same conventions:

* every static instruction of the loop body has a fixed pc, so the gshare
  predictor, BTB and instruction cache observe a realistic, repetitive
  static code footprint;
* destination registers are drawn from :class:`RegisterRotation` windows,
  so the def-to-redefine distance (register lifetime under conventional
  release) is controlled by the window size;
* data-dependent branches are modelled as *hammocks*: when the branch is
  taken the next few body instructions are skipped, exactly as the
  dynamic stream of a real if-then region would look.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import SimpleNamespace
from typing import List, Optional, Tuple

import numpy as np

from repro.isa import Instruction, OpClass, RegClass
from repro.trace.draws import DOUBLE, RawCursor, replay_template
from repro.trace.synthetic import (
    BranchSite,
    PointerChaseStream,
    RandomStream,
    RegisterRotation,
    StridedStream,
)

INT = RegClass.INT
FP = RegClass.FP

#: One chunk's worth of instructions and its iteration boundaries
#: (cumulative instruction counts, one per emitted iteration).
Chunk = Tuple[List[Instruction], List[int]]


def _random_stream_span(stream: RandomStream) -> int:
    """The ``rng.integers`` span drawn per :meth:`RandomStream.next_address`."""
    return max(stream.footprint // stream.align, 1)


def _random_stream_addresses(stream: RandomStream, column) -> List[int]:
    """Map a replayed bounded-integer column to effective addresses."""
    return (stream.base
            + column.astype(np.int64) * stream.align).tolist()


@dataclass(frozen=True)
class KernelParams:
    """Tunable knobs shared by the kernel generators.

    Only a subset is meaningful to any given kernel; unspecified knobs keep
    their defaults.  See the individual kernel classes for which knobs they
    honour.  Frozen (and therefore hashable) so profiles built from it can
    key the workload trace cache by *content*, not by name.
    """

    #: base address of the kernel's code (each kernel gets a disjoint range).
    pc_base: int = 0x10000
    #: base address of the kernel's data.
    data_base: int = 0x100000
    #: number of independent array streams (FP kernels).
    n_streams: int = 4
    #: length of the dependent arithmetic chain per loaded value.
    chain_len: int = 3
    #: FP destination-register rotation window size.
    fp_window: int = 20
    #: integer destination-register rotation window size.
    int_window: int = 8
    #: loop branch trip count.
    trip_count: int = 128
    #: probability that a data-dependent branch is taken.
    branch_bias: float = 0.75
    #: number of static data-dependent branch sites (branchy kernels).
    n_branch_sites: int = 12
    #: instructions per basic block in branchy kernels.
    block_len: int = 4
    #: instructions skipped when a hammock branch is taken.
    hammock_len: int = 3
    #: memory footprint per stream, in bytes.
    mem_footprint: int = 1 << 17
    #: address stride of the FP array streams, in bytes.  64 (one element per
    #: cache line, e.g. a column walk or a padded multi-field array) makes the
    #: streams L1-resident-never / L2-resident, the regime of the SPECfp95
    #: streaming codes; 8 models a dense unit-stride walk.
    stream_stride: int = 64
    #: emit one FP divide every this many iterations (0 = never).
    div_interval: int = 0
    #: emit one integer multiply every this many iterations (0 = never).
    mult_interval: int = 0
    #: length of the dependent load chain (pointer-chase kernel).
    load_chain_len: int = 3
    #: number of nodes in the pointer-chase working set.
    chase_nodes: int = 2048
    #: fraction of iterations that perform a store.
    store_fraction: float = 1.0
    #: additional unconditional stores per iteration (integer compute
    #: kernel only; the store-heavy scenario family's knob).
    extra_stores: int = 0
    #: number of independent work chains per iteration (integer kernels);
    #: controls the instruction-level parallelism of the synthetic code.
    n_parallel_chains: int = 3
    #: fraction of data-dependent branch sites whose outcome follows a
    #: repeating (history-predictable) pattern rather than a history-correlated
    #: function.
    pattern_fraction: float = 0.5
    #: flip probability of history-correlated branch outcomes; sets the floor
    #: of the achievable branch misprediction rate for the integer codes.
    branch_noise: float = 0.05


# ----------------------------------------------------------------------
# Declarative kernel-state descriptors.
#
# Every vectorised ``emit_chunk`` walks the same categories of mutable
# kernel state in local variables — register-rotation cursors and
# histories, stream offsets, pointer-chase positions, branch-site
# counters, the global branch history and the iteration counter — and
# writes the walked values back when the chunk is done.  The descriptors
# make that scaffolding declarative: a kernel lists *which* state its
# emitter touches (class attribute ``STATE``) and :class:`_KernelBase`
# provides uniform bind / snapshot / write-back over the list, so the
# bookkeeping exists in exactly one audited place instead of five
# hand-kept copies.
# ----------------------------------------------------------------------
class StateDescriptor:
    """One piece of mutable kernel state a chunk emitter binds.

    ``bind`` copies the current value(s) onto the view (plain attributes;
    lists are fresh copies, so binding never aliases state the scalar
    path would mutate), ``write_back`` stores the view's values back into
    the kernel.  The attribute naming is uniform: a descriptor for kernel
    attribute ``x`` exposes ``x_<suffix>`` on the view.
    """

    __slots__ = ("attr",)

    def __init__(self, attr: str) -> None:
        self.attr = attr

    def bind(self, kernel, view: SimpleNamespace) -> None:
        raise NotImplementedError

    def write_back(self, kernel, view: SimpleNamespace) -> None:
        raise NotImplementedError


class RotationState(StateDescriptor):
    """A :class:`RegisterRotation`: cursor plus a private history copy.

    Both bind and write-back truncate the history to the last
    ``2 * window`` entries — more than every ``recent(k)`` / tail read
    the kernels perform (k ≤ 5, window ≥ 8), and what the chunk emitters
    have always written back — so snapshots are canonical regardless of
    whether the scalar path's laxer pruning (up to ``4 * window``) ran
    last.
    """

    def bind(self, kernel, view) -> None:
        rotation = getattr(kernel, self.attr)
        setattr(view, self.attr + "_cursor", rotation._cursor)
        setattr(view, self.attr + "_history",
                list(rotation._history[-2 * len(rotation.window):]))

    def write_back(self, kernel, view) -> None:
        rotation = getattr(kernel, self.attr)
        rotation._cursor = getattr(view, self.attr + "_cursor")
        history = getattr(view, self.attr + "_history")
        rotation._history = history[-2 * len(rotation.window):]


class StreamOffsetState(StateDescriptor):
    """The ``offset`` of one :class:`StridedStream` attribute."""

    def bind(self, kernel, view) -> None:
        setattr(view, self.attr + "_offset", getattr(kernel, self.attr).offset)

    def write_back(self, kernel, view) -> None:
        getattr(kernel, self.attr).offset = getattr(view, self.attr + "_offset")


class StreamOffsetsState(StateDescriptor):
    """The ``offset`` of every stream in a list-of-streams attribute."""

    def bind(self, kernel, view) -> None:
        setattr(view, self.attr + "_offsets",
                [stream.offset for stream in getattr(kernel, self.attr)])

    def write_back(self, kernel, view) -> None:
        offsets = getattr(view, self.attr + "_offsets")
        for stream, offset in zip(getattr(kernel, self.attr), offsets, strict=False):
            stream.offset = offset


class ChasePositionsState(StateDescriptor):
    """The walk position of every :class:`PointerChaseStream` in a list."""

    def bind(self, kernel, view) -> None:
        setattr(view, self.attr + "_positions",
                [chase._pos for chase in getattr(kernel, self.attr)])

    def write_back(self, kernel, view) -> None:
        positions = getattr(view, self.attr + "_positions")
        for chase, position in zip(getattr(kernel, self.attr), positions, strict=False):
            chase._pos = position


class SiteCountState(StateDescriptor):
    """The dynamic-instance counter of one :class:`BranchSite` attribute."""

    def bind(self, kernel, view) -> None:
        setattr(view, self.attr + "_count", getattr(kernel, self.attr)._count)

    def write_back(self, kernel, view) -> None:
        getattr(kernel, self.attr)._count = getattr(view, self.attr + "_count")


class SiteCountsState(StateDescriptor):
    """The counters of every :class:`BranchSite` in a list attribute."""

    def bind(self, kernel, view) -> None:
        setattr(view, self.attr + "_counts",
                [site._count for site in getattr(kernel, self.attr)])

    def write_back(self, kernel, view) -> None:
        counts = getattr(view, self.attr + "_counts")
        for site, count in zip(getattr(kernel, self.attr), counts, strict=False):
            site._count = count


class GhistState(StateDescriptor):
    """The kernel's global branch-outcome history register."""

    def __init__(self) -> None:
        super().__init__("ghist")

    def bind(self, kernel, view) -> None:
        view.ghist = kernel.ghist

    def write_back(self, kernel, view) -> None:
        kernel.ghist = view.ghist


class IterationState(StateDescriptor):
    """The kernel's loop-iteration counter."""

    def __init__(self) -> None:
        super().__init__("iteration")

    def bind(self, kernel, view) -> None:
        view.iteration = kernel.iteration

    def write_back(self, kernel, view) -> None:
        kernel.iteration = view.iteration


class _KernelBase:
    """Shared plumbing: pc bookkeeping, iteration counting, branch history."""

    #: State the vectorised ``emit_chunk`` binds and writes back, beyond
    #: the ghist/iteration pair every kernel shares (contributed by the
    #: base).  Subclasses overriding :meth:`emit_chunk` declare theirs.
    STATE: Tuple[StateDescriptor, ...] = ()

    #: Descriptors common to every kernel (bound first, written back first).
    _BASE_STATE: Tuple[StateDescriptor, ...] = (GhistState(), IterationState())

    def __init__(self, params: KernelParams) -> None:
        self.params = params
        self.iteration = 0
        #: recent branch outcomes of the whole kernel (LSB = most recent);
        #: consumed by history-correlated branch sites.
        self.ghist = 0
        #: memoised :class:`Instruction` records, keyed by the fields that
        #: vary (pc plus registers/outcome).  A kernel's static code is
        #: small and its register rotations cycle, so non-memory
        #: instructions recur exactly and the chunked emitters reuse the
        #: immutable records instead of re-constructing them.  Branch keys
        #: carry a "br" tag: branch-site pcs come from closed-form layout
        #: formulas and may coincide with a body pc, and ``taken`` is a
        #: bool (``True == 1``), so an untagged branch key could compare
        #: equal to an ALU key and serve the wrong instruction.
        self._memo: dict = {}

    def _branch_outcome(self, site: BranchSite, rng: np.random.Generator) -> bool:
        """Draw the site's next outcome and append it to the global history."""
        taken = site.next_outcome(rng, self.ghist)
        self.ghist = ((self.ghist << 1) | int(taken)) & 0xFFFF
        return taken

    # -- declarative chunk-state plumbing (see the descriptor classes) --
    def bind_chunk_state(self) -> SimpleNamespace:
        """Copy the declared mutable state into a fresh view.

        The view holds plain values and private list copies, so a chunk
        emitter that raises (:exc:`~repro.trace.draws.ReplayUnsupported`,
        before consuming RNG state) leaves the kernel untouched; only
        :meth:`write_back_chunk_state` publishes the walked values.
        """
        view = SimpleNamespace()
        for descriptor in self._BASE_STATE + self.STATE:
            descriptor.bind(self, view)
        return view

    def write_back_chunk_state(self, view: SimpleNamespace) -> None:
        """Store a view's (walked) values back into the kernel."""
        for descriptor in self._BASE_STATE + self.STATE:
            descriptor.write_back(self, view)

    def state_snapshot(self) -> dict:
        """Plain-dict snapshot of the declared state (tests, diagnostics).

        Two kernels that emitted the same stream — one through
        :meth:`emit_iteration`, one through :meth:`emit_chunk` — must
        produce equal snapshots; the equivalence suite relies on this.
        """
        snapshot = vars(self.bind_chunk_state())
        return {key: (list(value) if isinstance(value, list) else value)
                for key, value in snapshot.items()}

    # Subclasses implement this.
    def emit_iteration(self, rng: np.random.Generator) -> List[Instruction]:
        """Return the dynamic instructions of one loop iteration."""
        raise NotImplementedError

    def max_iteration_length(self) -> int:
        """A (generous) upper bound on one iteration's instruction count.

        The chunked generation loop sizes its chunks by this bound so a
        chunk can never overshoot the iteration boundary the scalar loop
        would stop at — a requirement for chaining phase segments over
        one shared ``Generator``.  Kernels overriding :meth:`emit_chunk`
        must override this too.
        """
        raise NotImplementedError

    def emit_chunk(self, rng: np.random.Generator, k: int) -> Chunk:
        """Emit ``k`` iterations at once.

        The base implementation is the scalar oracle — a plain loop over
        :meth:`emit_iteration`.  Kernels override it with a vectorised
        emitter that pre-draws its RNG columns through
        :mod:`repro.trace.draws` and produces a bit-identical stream; an
        override raises :exc:`~repro.trace.draws.ReplayUnsupported`
        *before consuming any state* when its draw schedule cannot be
        replayed (exotic spans, unsupported bit generator), and callers
        then fall back to this oracle.
        """
        out: List[Instruction] = []
        bounds: List[int] = []
        for _ in range(k):
            out.extend(self.emit_iteration(rng))
            bounds.append(len(out))
        return out, bounds

    def prologue(self, rng: np.random.Generator) -> List[Instruction]:
        """Return set-up instructions executed once before the loop."""
        return []


class StreamingFPKernel(_KernelBase):
    """Unit-stride streaming FP loop (swim / mgrid style).

    Per iteration and per stream: one FP load, a short dependent FP chain
    against persistent coefficient registers, and one FP store.  Induction
    variables are updated with integer ALU operations and a single
    highly-predictable loop branch closes the iteration.
    """

    #: FP registers reserved for loop-invariant coefficients.
    N_COEF = 4

    STATE = (RotationState("int_rot"), RotationState("fp_rot"),
             StreamOffsetsState("streams"), StreamOffsetState("out_stream"),
             SiteCountState("loop_branch"))

    def __init__(self, params: KernelParams) -> None:
        super().__init__(params)
        p = params
        value_regs = list(range(self.N_COEF, self.N_COEF + p.fp_window))
        self.fp_rot = RegisterRotation(value_regs)
        self.int_rot = RegisterRotation(list(range(1, 1 + p.int_window)))
        self.streams = [
            StridedStream(base=p.data_base + s * (p.mem_footprint + 4096),
                          stride=p.stream_stride, footprint=p.mem_footprint)
            for s in range(p.n_streams)
        ]
        self.out_stream = StridedStream(
            base=p.data_base + p.n_streams * (p.mem_footprint + 4096),
            stride=p.stream_stride, footprint=p.mem_footprint)
        body = p.n_streams * (4 + p.chain_len) + 3
        self.loop_branch = BranchSite(
            pc=p.pc_base + 4 * body, target=p.pc_base,
            kind="loop", trip=p.trip_count)

    def prologue(self, rng: np.random.Generator) -> List[Instruction]:
        """Define the coefficient registers once, before the loop."""
        out = []
        pc = self.params.pc_base - 4 * self.N_COEF
        for c in range(self.N_COEF):
            out.append(Instruction(pc=pc, op=OpClass.FP_ADD, dest=(FP, c), srcs=()))
            pc += 4
        return out

    def emit_iteration(self, rng: np.random.Generator) -> List[Instruction]:
        p = self.params
        out: List[Instruction] = []
        pc = p.pc_base
        addr_reg = self.int_rot.next_dest()
        out.append(Instruction(pc=pc, op=OpClass.INT_ALU, dest=(INT, addr_reg),
                               srcs=((INT, self.int_rot.recent(2)),)))
        pc += 4
        last_values = []
        for s, stream in enumerate(self.streams):
            # Per-stream address arithmetic (integer overhead of compiled code).
            stream_addr = self.int_rot.next_dest()
            out.append(Instruction(pc=pc, op=OpClass.INT_ALU, dest=(INT, stream_addr),
                                   srcs=((INT, addr_reg),)))
            pc += 4
            load_dest = self.fp_rot.next_dest()
            out.append(Instruction(pc=pc, op=OpClass.FP_LOAD, dest=(FP, load_dest),
                                   srcs=((INT, stream_addr),),
                                   mem_addr=stream.next_address(rng)))
            pc += 4
            prev = load_dest
            for c in range(p.chain_len):
                dest = self.fp_rot.next_dest()
                coef = (s + c) % self.N_COEF
                op = OpClass.FP_MULT if (c % 2 == 1) else OpClass.FP_ADD
                out.append(Instruction(pc=pc, op=op, dest=(FP, dest),
                                       srcs=((FP, prev), (FP, coef))))
                pc += 4
                prev = dest
            last_values.append(prev)
            index_reg = self.int_rot.next_dest()
            out.append(Instruction(pc=pc, op=OpClass.INT_ALU, dest=(INT, index_reg),
                                   srcs=((INT, stream_addr),)))
            pc += 4
            out.append(Instruction(pc=pc, op=OpClass.FP_STORE,
                                   srcs=((FP, prev), (INT, index_reg)),
                                   mem_addr=self.out_stream.next_address(rng)))
            pc += 4
        if p.div_interval and self.iteration % p.div_interval == 0 and last_values:
            dest = self.fp_rot.next_dest()
            out.append(Instruction(pc=pc, op=OpClass.FP_DIV, dest=(FP, dest),
                                   srcs=((FP, last_values[0]), (FP, 0))))
        pc += 4
        idx_reg = self.int_rot.next_dest()
        out.append(Instruction(pc=pc, op=OpClass.INT_ALU, dest=(INT, idx_reg),
                               srcs=((INT, addr_reg),)))
        pc += 4
        out.append(Instruction(pc=self.loop_branch.pc, op=OpClass.BRANCH,
                               srcs=((INT, idx_reg),),
                               taken=self._branch_outcome(self.loop_branch, rng),
                               target=self.loop_branch.target))
        self.iteration += 1
        return out

    def max_iteration_length(self) -> int:
        p = self.params
        return 3 + len(self.streams) * (4 + p.chain_len) + 1 + 8

    def emit_chunk(self, rng: np.random.Generator, k: int) -> Chunk:
        """Vectorised emitter: this kernel draws nothing from ``rng``
        (strided streams, loop-only branches), so the chunk path is pure
        bulk materialisation — memoised records, inlined rotations and
        stream walks."""
        p = self.params
        out: List[Instruction] = []
        bounds: List[int] = []
        append = out.append
        memo = self._memo
        Inst = Instruction
        st = self.bind_chunk_state()
        int_rot, fp_rot = self.int_rot, self.fp_rot
        iwin, fwin = int_rot.window, fp_rot.window
        iwn, fwn = len(iwin), len(fwin)
        icur, fcur = st.int_rot_cursor, st.fp_rot_cursor
        ihist = st.int_rot_history
        fhist = st.fp_rot_history
        streams = self.streams
        n_streams = len(streams)
        offsets = st.streams_offsets
        out_stream = self.out_stream
        out_offset = st.out_stream_offset
        loop = self.loop_branch
        trip, loop_pc, loop_target = loop.trip, loop.pc, loop.target
        loop_count = st.loop_branch_count
        ghist = st.ghist
        chain_len, div_interval, ncoef = p.chain_len, p.div_interval, self.N_COEF
        pc0 = p.pc_base
        iteration = st.iteration
        ALU, LOADF, STOREF = OpClass.INT_ALU, OpClass.FP_LOAD, OpClass.FP_STORE
        ADD, MULT, DIV, BR = (OpClass.FP_ADD, OpClass.FP_MULT, OpClass.FP_DIV,
                              OpClass.BRANCH)
        for _ in range(k):
            pc = pc0
            addr_reg = iwin[icur % iwn]; icur += 1; ihist.append(addr_reg)
            src = ihist[-2] if len(ihist) >= 2 else ihist[-1]
            key = (pc, addr_reg, src)
            inst = memo.get(key)
            if inst is None:
                inst = Inst(pc=pc, op=ALU, dest=(INT, addr_reg),
                            srcs=((INT, src),))
                memo[key] = inst
            append(inst); pc += 4
            last0 = -1
            for s in range(n_streams):
                stream = streams[s]
                stream_addr = iwin[icur % iwn]; icur += 1; ihist.append(stream_addr)
                key = (pc, stream_addr, addr_reg)
                inst = memo.get(key)
                if inst is None:
                    inst = Inst(pc=pc, op=ALU, dest=(INT, stream_addr),
                                srcs=((INT, addr_reg),))
                    memo[key] = inst
                append(inst); pc += 4
                load_dest = fwin[fcur % fwn]; fcur += 1; fhist.append(load_dest)
                mem_addr = stream.base + (offsets[s] % stream.footprint)
                offsets[s] += stream.stride
                append(Inst(pc=pc, op=LOADF, dest=(FP, load_dest),
                            srcs=((INT, stream_addr),), mem_addr=mem_addr))
                pc += 4
                prev = load_dest
                for c in range(chain_len):
                    dest = fwin[fcur % fwn]; fcur += 1; fhist.append(dest)
                    key = (pc, dest, prev)
                    inst = memo.get(key)
                    if inst is None:
                        coef = (s + c) % ncoef
                        op = MULT if (c % 2 == 1) else ADD
                        inst = Inst(pc=pc, op=op, dest=(FP, dest),
                                    srcs=((FP, prev), (FP, coef)))
                        memo[key] = inst
                    append(inst); pc += 4
                    prev = dest
                if s == 0:
                    last0 = prev
                index_reg = iwin[icur % iwn]; icur += 1; ihist.append(index_reg)
                key = (pc, index_reg, stream_addr)
                inst = memo.get(key)
                if inst is None:
                    inst = Inst(pc=pc, op=ALU, dest=(INT, index_reg),
                                srcs=((INT, stream_addr),))
                    memo[key] = inst
                append(inst); pc += 4
                mem_addr = out_stream.base + (out_offset % out_stream.footprint)
                out_offset += out_stream.stride
                append(Inst(pc=pc, op=STOREF,
                            srcs=((FP, prev), (INT, index_reg)),
                            mem_addr=mem_addr))
                pc += 4
            if div_interval and iteration % div_interval == 0 and n_streams:
                dest = fwin[fcur % fwn]; fcur += 1; fhist.append(dest)
                key = (pc, dest, last0)
                inst = memo.get(key)
                if inst is None:
                    inst = Inst(pc=pc, op=DIV, dest=(FP, dest),
                                srcs=((FP, last0), (FP, 0)))
                    memo[key] = inst
                append(inst)
            pc += 4
            idx_reg = iwin[icur % iwn]; icur += 1; ihist.append(idx_reg)
            key = (pc, idx_reg, addr_reg)
            inst = memo.get(key)
            if inst is None:
                inst = Inst(pc=pc, op=ALU, dest=(INT, idx_reg),
                            srcs=((INT, addr_reg),))
                memo[key] = inst
            append(inst)
            loop_count += 1
            taken = (loop_count % trip) != 0
            ghist = ((ghist << 1) | taken) & 0xFFFF
            key = ("br", loop_pc, idx_reg, taken)
            inst = memo.get(key)
            if inst is None:
                inst = Inst(pc=loop_pc, op=BR, srcs=((INT, idx_reg),),
                            taken=taken, target=loop_target)
                memo[key] = inst
            append(inst)
            iteration += 1
            bounds.append(len(out))
        # Publish the walked state (histories/offsets mutate in place).
        st.int_rot_cursor, st.fp_rot_cursor = icur, fcur
        st.out_stream_offset = out_offset
        st.loop_branch_count = loop_count
        st.ghist = ghist
        st.iteration = iteration
        self.write_back_chunk_state(st)
        return out, bounds


class StencilFPKernel(_KernelBase):
    """Neighbour-gather stencil loop (tomcatv / applu / hydro2d style).

    Each iteration loads several neighbouring points, combines them in a
    long cross-dependent FP chain, performs an occasional FP divide, and
    stores one or two results.  The long chains plus the divides keep many
    FP values live at once — this is the highest-register-pressure kernel.
    """

    N_COEF = 6

    STATE = (RotationState("int_rot"), RotationState("fp_rot"),
             StreamOffsetsState("streams"), StreamOffsetState("out_stream"),
             SiteCountState("loop_branch"))

    def __init__(self, params: KernelParams) -> None:
        super().__init__(params)
        p = params
        value_regs = list(range(self.N_COEF, self.N_COEF + p.fp_window))
        self.fp_rot = RegisterRotation(value_regs)
        self.int_rot = RegisterRotation(list(range(1, 1 + p.int_window)))
        self.streams = [
            StridedStream(base=p.data_base + s * (p.mem_footprint + 8192),
                          stride=p.stream_stride, footprint=p.mem_footprint)
            for s in range(p.n_streams)
        ]
        self.out_stream = StridedStream(
            base=p.data_base + (p.n_streams + 1) * (p.mem_footprint + 8192),
            stride=p.stream_stride, footprint=p.mem_footprint)
        body = 2 + 2 * p.n_streams + 2 * p.chain_len + 4
        self.loop_branch = BranchSite(pc=p.pc_base + 4 * body, target=p.pc_base,
                                      kind="loop", trip=p.trip_count)

    def prologue(self, rng: np.random.Generator) -> List[Instruction]:
        """Define the stencil coefficient registers once."""
        out = []
        pc = self.params.pc_base - 4 * self.N_COEF
        for c in range(self.N_COEF):
            out.append(Instruction(pc=pc, op=OpClass.FP_MULT, dest=(FP, c), srcs=()))
            pc += 4
        return out

    def emit_iteration(self, rng: np.random.Generator) -> List[Instruction]:
        p = self.params
        out: List[Instruction] = []
        pc = p.pc_base
        addr_reg = self.int_rot.next_dest()
        out.append(Instruction(pc=pc, op=OpClass.INT_ALU, dest=(INT, addr_reg),
                               srcs=((INT, self.int_rot.recent(2)),)))
        pc += 4
        addr2_reg = self.int_rot.next_dest()
        out.append(Instruction(pc=pc, op=OpClass.INT_ALU, dest=(INT, addr2_reg),
                               srcs=((INT, addr_reg),)))
        pc += 4
        loaded: List[int] = []
        for s, stream in enumerate(self.streams):
            stream_addr = self.int_rot.next_dest()
            out.append(Instruction(pc=pc, op=OpClass.INT_ALU, dest=(INT, stream_addr),
                                   srcs=((INT, addr_reg if s % 2 == 0 else addr2_reg),)))
            pc += 4
            dest = self.fp_rot.next_dest()
            out.append(Instruction(pc=pc, op=OpClass.FP_LOAD, dest=(FP, dest),
                                   srcs=((INT, stream_addr),),
                                   mem_addr=stream.next_address(rng)))
            pc += 4
            loaded.append(dest)
        # Cross-combine neighbours: a reduction tree followed by a chain.
        prev = loaded[0]
        for i, other in enumerate(loaded[1:]):
            dest = self.fp_rot.next_dest()
            op = OpClass.FP_ADD if i % 2 == 0 else OpClass.FP_MULT
            out.append(Instruction(pc=pc, op=op, dest=(FP, dest),
                                   srcs=((FP, prev), (FP, other))))
            pc += 4
            prev = dest
        for c in range(p.chain_len):
            dest = self.fp_rot.next_dest()
            coef = c % self.N_COEF
            op = OpClass.FP_MULT if c % 2 == 0 else OpClass.FP_ADD
            out.append(Instruction(pc=pc, op=op, dest=(FP, dest),
                                   srcs=((FP, prev), (FP, coef))))
            pc += 4
            prev = dest
        if p.div_interval and self.iteration % p.div_interval == 0:
            dest = self.fp_rot.next_dest()
            out.append(Instruction(pc=pc, op=OpClass.FP_DIV, dest=(FP, dest),
                                   srcs=((FP, prev), (FP, 1))))
            prev = dest
        pc += 4
        out.append(Instruction(pc=pc, op=OpClass.FP_STORE,
                               srcs=((FP, prev), (INT, addr_reg)),
                               mem_addr=self.out_stream.next_address(rng)))
        pc += 4
        idx_reg = self.int_rot.next_dest()
        out.append(Instruction(pc=pc, op=OpClass.INT_ALU, dest=(INT, idx_reg),
                               srcs=((INT, addr_reg),)))
        pc += 4
        out.append(Instruction(pc=self.loop_branch.pc, op=OpClass.BRANCH,
                               srcs=((INT, idx_reg),),
                               taken=self._branch_outcome(self.loop_branch, rng),
                               target=self.loop_branch.target))
        self.iteration += 1
        return out

    def max_iteration_length(self) -> int:
        p = self.params
        n = len(self.streams)
        return 2 + 2 * n + max(0, n - 1) + p.chain_len + 1 + 1 + 1 + 1 + 8

    def emit_chunk(self, rng: np.random.Generator, k: int) -> Chunk:
        """Vectorised emitter (no RNG draws; see
        :meth:`StreamingFPKernel.emit_chunk`)."""
        p = self.params
        out: List[Instruction] = []
        bounds: List[int] = []
        append = out.append
        memo = self._memo
        Inst = Instruction
        st = self.bind_chunk_state()
        int_rot, fp_rot = self.int_rot, self.fp_rot
        iwin, fwin = int_rot.window, fp_rot.window
        iwn, fwn = len(iwin), len(fwin)
        icur, fcur = st.int_rot_cursor, st.fp_rot_cursor
        ihist = st.int_rot_history
        fhist = st.fp_rot_history
        streams = self.streams
        n_streams = len(streams)
        offsets = st.streams_offsets
        out_stream = self.out_stream
        out_offset = st.out_stream_offset
        loop = self.loop_branch
        trip, loop_pc, loop_target = loop.trip, loop.pc, loop.target
        loop_count = st.loop_branch_count
        ghist = st.ghist
        chain_len, div_interval, ncoef = p.chain_len, p.div_interval, self.N_COEF
        pc0 = p.pc_base
        iteration = st.iteration
        ALU, LOADF, STOREF = OpClass.INT_ALU, OpClass.FP_LOAD, OpClass.FP_STORE
        ADD, MULT, DIV, BR = (OpClass.FP_ADD, OpClass.FP_MULT, OpClass.FP_DIV,
                              OpClass.BRANCH)
        loaded: List[int] = []
        for _ in range(k):
            pc = pc0
            addr_reg = iwin[icur % iwn]; icur += 1; ihist.append(addr_reg)
            src = ihist[-2] if len(ihist) >= 2 else ihist[-1]
            key = (pc, addr_reg, src)
            inst = memo.get(key)
            if inst is None:
                inst = Inst(pc=pc, op=ALU, dest=(INT, addr_reg),
                            srcs=((INT, src),))
                memo[key] = inst
            append(inst); pc += 4
            addr2_reg = iwin[icur % iwn]; icur += 1; ihist.append(addr2_reg)
            key = (pc, addr2_reg, addr_reg)
            inst = memo.get(key)
            if inst is None:
                inst = Inst(pc=pc, op=ALU, dest=(INT, addr2_reg),
                            srcs=((INT, addr_reg),))
                memo[key] = inst
            append(inst); pc += 4
            loaded.clear()
            for s in range(n_streams):
                stream = streams[s]
                stream_addr = iwin[icur % iwn]; icur += 1; ihist.append(stream_addr)
                base_reg = addr_reg if s % 2 == 0 else addr2_reg
                key = (pc, stream_addr, base_reg)
                inst = memo.get(key)
                if inst is None:
                    inst = Inst(pc=pc, op=ALU, dest=(INT, stream_addr),
                                srcs=((INT, base_reg),))
                    memo[key] = inst
                append(inst); pc += 4
                dest = fwin[fcur % fwn]; fcur += 1; fhist.append(dest)
                mem_addr = stream.base + (offsets[s] % stream.footprint)
                offsets[s] += stream.stride
                append(Inst(pc=pc, op=LOADF, dest=(FP, dest),
                            srcs=((INT, stream_addr),), mem_addr=mem_addr))
                pc += 4
                loaded.append(dest)
            prev = loaded[0]
            for i in range(1, n_streams):
                other = loaded[i]
                dest = fwin[fcur % fwn]; fcur += 1; fhist.append(dest)
                key = (pc, dest, prev, other)
                inst = memo.get(key)
                if inst is None:
                    op = ADD if (i - 1) % 2 == 0 else MULT
                    inst = Inst(pc=pc, op=op, dest=(FP, dest),
                                srcs=((FP, prev), (FP, other)))
                    memo[key] = inst
                append(inst); pc += 4
                prev = dest
            for c in range(chain_len):
                dest = fwin[fcur % fwn]; fcur += 1; fhist.append(dest)
                key = (pc, dest, prev)
                inst = memo.get(key)
                if inst is None:
                    op = MULT if c % 2 == 0 else ADD
                    inst = Inst(pc=pc, op=op, dest=(FP, dest),
                                srcs=((FP, prev), (FP, c % ncoef)))
                    memo[key] = inst
                append(inst); pc += 4
                prev = dest
            if div_interval and iteration % div_interval == 0:
                dest = fwin[fcur % fwn]; fcur += 1; fhist.append(dest)
                key = (pc, dest, prev)
                inst = memo.get(key)
                if inst is None:
                    inst = Inst(pc=pc, op=DIV, dest=(FP, dest),
                                srcs=((FP, prev), (FP, 1)))
                    memo[key] = inst
                append(inst)
                prev = dest
            pc += 4
            mem_addr = out_stream.base + (out_offset % out_stream.footprint)
            out_offset += out_stream.stride
            append(Inst(pc=pc, op=STOREF, srcs=((FP, prev), (INT, addr_reg)),
                        mem_addr=mem_addr))
            pc += 4
            idx_reg = iwin[icur % iwn]; icur += 1; ihist.append(idx_reg)
            key = (pc, idx_reg, addr_reg)
            inst = memo.get(key)
            if inst is None:
                inst = Inst(pc=pc, op=ALU, dest=(INT, idx_reg),
                            srcs=((INT, addr_reg),))
                memo[key] = inst
            append(inst)
            loop_count += 1
            taken = (loop_count % trip) != 0
            ghist = ((ghist << 1) | taken) & 0xFFFF
            key = ("br", loop_pc, idx_reg, taken)
            inst = memo.get(key)
            if inst is None:
                inst = Inst(pc=loop_pc, op=BR, srcs=((INT, idx_reg),),
                            taken=taken, target=loop_target)
                memo[key] = inst
            append(inst)
            iteration += 1
            bounds.append(len(out))
        st.int_rot_cursor, st.fp_rot_cursor = icur, fcur
        st.out_stream_offset = out_offset
        st.loop_branch_count = loop_count
        st.ghist = ghist
        st.iteration = iteration
        self.write_back_chunk_state(st)
        return out, bounds


class IntComputeKernel(_KernelBase):
    """Integer compute loop with a data-dependent hammock (compress style).

    Each iteration runs ``n_parallel_chains`` *independent* short work
    chains (load + a few dependent ALU operations each), combines one value
    into a running result, takes one data-dependent hammock branch, stores
    a result and closes with the loop branch.  The independent chains give
    the out-of-order core realistic integer ILP; the serial part of the
    iteration is only the induction variable and the combine step.
    """

    STATE = (RotationState("int_rot"), StreamOffsetState("out"),
             SiteCountState("loop_branch"), SiteCountState("hammock_branch"))

    def __init__(self, params: KernelParams) -> None:
        super().__init__(params)
        p = params
        self.int_rot = RegisterRotation(list(range(1, 1 + p.int_window)))
        self.data = RandomStream(base=p.data_base, footprint=p.mem_footprint)
        self.out = StridedStream(base=p.data_base + 2 * p.mem_footprint,
                                 stride=8, footprint=p.mem_footprint)
        chain_block = 1 + p.chain_len
        body = 1 + p.n_parallel_chains * chain_block + p.hammock_len + 4
        self.hammock_branch = BranchSite(
            pc=p.pc_base + 4 * (1 + p.n_parallel_chains * chain_block),
            target=p.pc_base + 4 * (1 + p.n_parallel_chains * chain_block
                                    + p.hammock_len + 1),
            kind="correlated", bias=p.branch_bias, noise=p.branch_noise)
        self.loop_branch = BranchSite(pc=p.pc_base + 4 * body, target=p.pc_base,
                                      kind="loop", trip=p.trip_count)

    def emit_iteration(self, rng: np.random.Generator) -> List[Instruction]:
        p = self.params
        out: List[Instruction] = []
        pc = p.pc_base
        addr_reg = self.int_rot.next_dest()
        out.append(Instruction(pc=pc, op=OpClass.INT_ALU, dest=(INT, addr_reg),
                               srcs=((INT, self.int_rot.recent(2)),)))
        pc += 4
        chain_heads: List[int] = []
        for _chain in range(p.n_parallel_chains):
            load_dest = self.int_rot.next_dest()
            out.append(Instruction(pc=pc, op=OpClass.LOAD, dest=(INT, load_dest),
                                   srcs=((INT, addr_reg),),
                                   mem_addr=self.data.next_address(rng)))
            pc += 4
            prev = load_dest
            for _ in range(p.chain_len):
                dest = self.int_rot.next_dest()
                out.append(Instruction(pc=pc, op=OpClass.INT_ALU, dest=(INT, dest),
                                       srcs=((INT, prev),)))
                pc += 4
                prev = dest
            chain_heads.append(prev)
        combine = self.int_rot.next_dest()
        out.append(Instruction(pc=pc, op=OpClass.INT_ALU, dest=(INT, combine),
                               srcs=((INT, chain_heads[0]),
                                     (INT, chain_heads[-1]))))
        pc += 4
        taken = self._branch_outcome(self.hammock_branch, rng)
        out.append(Instruction(pc=self.hammock_branch.pc, op=OpClass.BRANCH,
                               srcs=((INT, chain_heads[0]),), taken=taken,
                               target=self.hammock_branch.target))
        pc = self.hammock_branch.pc + 4
        if not taken:
            prev = combine
            for _ in range(p.hammock_len):
                dest = self.int_rot.next_dest()
                out.append(Instruction(pc=pc, op=OpClass.INT_ALU, dest=(INT, dest),
                                       srcs=((INT, prev),)))
                pc += 4
                prev = dest
        else:
            pc = self.hammock_branch.target
        if p.mult_interval and self.iteration % p.mult_interval == 0:
            dest = self.int_rot.next_dest()
            out.append(Instruction(pc=pc, op=OpClass.INT_MULT, dest=(INT, dest),
                                   srcs=((INT, chain_heads[-1]),)))
        pc += 4
        if rng.random() < p.store_fraction:
            out.append(Instruction(pc=pc, op=OpClass.STORE,
                                   srcs=((INT, combine), (INT, addr_reg)),
                                   mem_addr=self.out.next_address(rng)))
        pc += 4
        for extra in range(p.extra_stores):
            out.append(Instruction(
                pc=pc, op=OpClass.STORE,
                srcs=((INT, chain_heads[extra % len(chain_heads)]),
                      (INT, addr_reg)),
                mem_addr=self.out.next_address(rng)))
            pc += 4
        out.append(Instruction(pc=self.loop_branch.pc, op=OpClass.BRANCH,
                               srcs=((INT, addr_reg),),
                               taken=self._branch_outcome(self.loop_branch, rng),
                               target=self.loop_branch.target))
        self.iteration += 1
        return out

    def max_iteration_length(self) -> int:
        p = self.params
        return (1 + p.n_parallel_chains * (1 + p.chain_len) + 1 + 1
                + p.hammock_len + 1 + 1 + p.extra_stores + 1 + 8)

    def emit_chunk(self, rng: np.random.Generator, k: int) -> Chunk:
        """Vectorised emitter: pre-draws the load-address, branch-noise
        and store-lottery columns for ``k`` iterations in one bulk call
        (draw order per iteration: one address per work chain, the
        hammock's noise flip, the store lottery)."""
        p = self.params
        span = _random_stream_span(self.data)
        n_chains = p.n_parallel_chains
        hammock = self.hammock_branch
        noise = hammock.noise > 0.0
        template = [span] * n_chains + ([DOUBLE] if noise else []) + [DOUBLE]
        columns = replay_template(rng, template, k)
        addr_columns = [_random_stream_addresses(self.data, columns[c])
                        for c in range(n_chains)]
        noise_column = columns[n_chains].tolist() if noise else None
        store_column = columns[-1].tolist()

        out: List[Instruction] = []
        bounds: List[int] = []
        append = out.append
        memo = self._memo
        Inst = Instruction
        st = self.bind_chunk_state()
        int_rot = self.int_rot
        iwin = int_rot.window
        iwn = len(iwin)
        icur = st.int_rot_cursor
        ihist = st.int_rot_history
        out_stream = self.out
        out_offset = st.out_offset
        loop = self.loop_branch
        trip, loop_pc, loop_target = loop.trip, loop.pc, loop.target
        loop_count = st.loop_branch_count
        hammock_pc, hammock_target = hammock.pc, hammock.target
        hammock_noise = hammock.noise
        ghist = st.ghist
        chain_len, hammock_len = p.chain_len, p.hammock_len
        mult_interval, store_fraction = p.mult_interval, p.store_fraction
        extra_stores = p.extra_stores
        pc0 = p.pc_base
        iteration = st.iteration
        ALU, LOAD, STORE = OpClass.INT_ALU, OpClass.LOAD, OpClass.STORE
        MULT, BR = OpClass.INT_MULT, OpClass.BRANCH
        chain_heads: List[int] = []
        for j in range(k):
            pc = pc0
            addr_reg = iwin[icur % iwn]; icur += 1; ihist.append(addr_reg)
            src = ihist[-2] if len(ihist) >= 2 else ihist[-1]
            key = (pc, addr_reg, src)
            inst = memo.get(key)
            if inst is None:
                inst = Inst(pc=pc, op=ALU, dest=(INT, addr_reg),
                            srcs=((INT, src),))
                memo[key] = inst
            append(inst); pc += 4
            chain_heads.clear()
            for chain in range(n_chains):
                load_dest = iwin[icur % iwn]; icur += 1; ihist.append(load_dest)
                append(Inst(pc=pc, op=LOAD, dest=(INT, load_dest),
                            srcs=((INT, addr_reg),),
                            mem_addr=addr_columns[chain][j]))
                pc += 4
                prev = load_dest
                for _ in range(chain_len):
                    dest = iwin[icur % iwn]; icur += 1; ihist.append(dest)
                    key = (pc, dest, prev)
                    inst = memo.get(key)
                    if inst is None:
                        inst = Inst(pc=pc, op=ALU, dest=(INT, dest),
                                    srcs=((INT, prev),))
                        memo[key] = inst
                    append(inst); pc += 4
                    prev = dest
                chain_heads.append(prev)
            head0, head_last = chain_heads[0], chain_heads[-1]
            combine = iwin[icur % iwn]; icur += 1; ihist.append(combine)
            key = (pc, combine, head0, head_last)
            inst = memo.get(key)
            if inst is None:
                inst = Inst(pc=pc, op=ALU, dest=(INT, combine),
                            srcs=((INT, head0), (INT, head_last)))
                memo[key] = inst
            append(inst); pc += 4
            taken = hammock.correlated_outcome(ghist)
            if noise and noise_column[j] < hammock_noise:
                taken = not taken
            ghist = ((ghist << 1) | taken) & 0xFFFF
            key = ("br", hammock_pc, head0, taken)
            inst = memo.get(key)
            if inst is None:
                inst = Inst(pc=hammock_pc, op=BR, srcs=((INT, head0),),
                            taken=taken, target=hammock_target)
                memo[key] = inst
            append(inst)
            pc = hammock_pc + 4
            if not taken:
                prev = combine
                for _ in range(hammock_len):
                    dest = iwin[icur % iwn]; icur += 1; ihist.append(dest)
                    key = (pc, dest, prev)
                    inst = memo.get(key)
                    if inst is None:
                        inst = Inst(pc=pc, op=ALU, dest=(INT, dest),
                                    srcs=((INT, prev),))
                        memo[key] = inst
                    append(inst); pc += 4
                    prev = dest
            else:
                pc = hammock_target
            if mult_interval and iteration % mult_interval == 0:
                dest = iwin[icur % iwn]; icur += 1; ihist.append(dest)
                key = (pc, dest, head_last)
                inst = memo.get(key)
                if inst is None:
                    inst = Inst(pc=pc, op=MULT, dest=(INT, dest),
                                srcs=((INT, head_last),))
                    memo[key] = inst
                append(inst)
            pc += 4
            if store_column[j] < store_fraction:
                mem_addr = out_stream.base + (out_offset % out_stream.footprint)
                out_offset += out_stream.stride
                append(Inst(pc=pc, op=STORE,
                            srcs=((INT, combine), (INT, addr_reg)),
                            mem_addr=mem_addr))
            pc += 4
            for extra in range(extra_stores):
                mem_addr = out_stream.base + (out_offset % out_stream.footprint)
                out_offset += out_stream.stride
                append(Inst(pc=pc, op=STORE,
                            srcs=((INT, chain_heads[extra % n_chains]),
                                  (INT, addr_reg)),
                            mem_addr=mem_addr))
                pc += 4
            loop_count += 1
            taken = (loop_count % trip) != 0
            ghist = ((ghist << 1) | taken) & 0xFFFF
            key = ("br", loop_pc, addr_reg, taken)
            inst = memo.get(key)
            if inst is None:
                inst = Inst(pc=loop_pc, op=BR, srcs=((INT, addr_reg),),
                            taken=taken, target=loop_target)
                memo[key] = inst
            append(inst)
            iteration += 1
            bounds.append(len(out))
        st.int_rot_cursor = icur
        st.out_offset = out_offset
        st.loop_branch_count = loop_count
        st.hammock_branch_count += k
        st.ghist = ghist
        st.iteration = iteration
        self.write_back_chunk_state(st)
        return out, bounds


class BranchyKernel(_KernelBase):
    """Branch-dense control flow (gcc / go style).

    The static code consists of ``n_branch_sites`` short basic blocks, each
    ending in a data-dependent branch whose bias varies per site.  Every
    iteration walks all blocks, taking or skipping each block's hammock
    according to the branch outcome, and closes with a loop branch.
    """

    #: repeating outcome patterns assigned round-robin to "pattern" sites.
    _PATTERNS = (
        (True, True, False),
        (True, False, True, True),
        (True, True, True, False, True),
        (False, True, True),
        (True, True, True, True, False, True),
    )

    STATE = (RotationState("int_rot"), SiteCountState("loop_branch"),
             SiteCountsState("sites"))

    def __init__(self, params: KernelParams) -> None:
        super().__init__(params)
        p = params
        self.int_rot = RegisterRotation(list(range(1, 1 + p.int_window)))
        self.data = RandomStream(base=p.data_base, footprint=p.mem_footprint)
        self.sites: List[BranchSite] = []
        rng = np.random.default_rng(p.pc_base)  # deterministic per-site behaviour
        block_span = 4 * (p.block_len + p.hammock_len + 1)
        for s in range(p.n_branch_sites):
            block_pc = p.pc_base + s * block_span
            branch_pc = block_pc + 4 * p.block_len
            target = block_pc + block_span
            if rng.random() < p.pattern_fraction:
                pattern = self._PATTERNS[s % len(self._PATTERNS)]
                self.sites.append(BranchSite(pc=branch_pc, target=target,
                                             kind="pattern", pattern=pattern))
            else:
                bias = float(np.clip(p.branch_bias + rng.normal(0.0, 0.08),
                                     0.60, 0.97))
                self.sites.append(BranchSite(pc=branch_pc, target=target,
                                             kind="correlated", bias=bias,
                                             noise=p.branch_noise))
        self.loop_branch = BranchSite(
            pc=p.pc_base + p.n_branch_sites * block_span,
            target=p.pc_base, kind="loop", trip=p.trip_count)

    def emit_iteration(self, rng: np.random.Generator) -> List[Instruction]:
        p = self.params
        out: List[Instruction] = []
        for s, site in enumerate(self.sites):
            block_pc = site.pc - 4 * p.block_len
            pc = block_pc
            # Each block computes from registers defined a few blocks ago, so
            # consecutive blocks are (mostly) independent of each other.
            local = self.int_rot.recent(3)
            for i in range(p.block_len):
                is_load = i == 0 and s % 3 == 0
                if not is_load and i == p.block_len - 1 and s % 4 == 3:
                    out.append(Instruction(
                        pc=pc, op=OpClass.STORE,
                        srcs=((INT, local), (INT, self.int_rot.recent(4))),
                        mem_addr=self.data.next_address(rng)))
                    pc += 4
                    continue
                dest = self.int_rot.next_dest()
                if is_load:
                    out.append(Instruction(pc=pc, op=OpClass.LOAD, dest=(INT, dest),
                                           srcs=((INT, local),),
                                           mem_addr=self.data.next_address(rng)))
                else:
                    out.append(Instruction(
                        pc=pc, op=OpClass.INT_ALU, dest=(INT, dest),
                        srcs=((INT, local), (INT, self.int_rot.recent(5)))))
                local = dest
                pc += 4
            taken = self._branch_outcome(site, rng)
            out.append(Instruction(pc=site.pc, op=OpClass.BRANCH,
                                   srcs=((INT, local),), taken=taken,
                                   target=site.target))
            if not taken:
                pc = site.pc + 4
                for _ in range(p.hammock_len):
                    dest = self.int_rot.next_dest()
                    out.append(Instruction(pc=pc, op=OpClass.INT_ALU, dest=(INT, dest),
                                           srcs=((INT, local),)))
                    local = dest
                    pc += 4
        out.append(Instruction(pc=self.loop_branch.pc, op=OpClass.BRANCH,
                               srcs=((INT, self.int_rot.recent(1)),),
                               taken=self._branch_outcome(self.loop_branch, rng),
                               target=self.loop_branch.target))
        self.iteration += 1
        return out

    def max_iteration_length(self) -> int:
        p = self.params
        return (len(self.sites) * (p.block_len + 1 + p.hammock_len)
                + 1 + 8)

    def _chunk_schedule(self):
        """The per-iteration draw template and per-site column indices.

        Walking the static site list yields, in draw order: the block's
        load address (sites ``s % 3 == 0``), the block's store address
        (sites ``s % 4 == 3``, unless the single-block load consumed the
        slot), then the site's noise flip (correlated sites only).
        """
        if not hasattr(self, "_schedule"):
            p = self.params
            span = _random_stream_span(self.data)
            template: List[int] = []
            plan = []
            for s, site in enumerate(self.sites):
                load_index = store_index = noise_index = None
                if p.block_len > 0 and s % 3 == 0:
                    load_index = len(template)
                    template.append(span)
                if (p.block_len > 0 and s % 4 == 3
                        and not (p.block_len == 1 and s % 3 == 0)):
                    store_index = len(template)
                    template.append(span)
                if site.kind == "correlated" and site.noise > 0.0:
                    noise_index = len(template)
                    template.append(DOUBLE)
                plan.append((site, load_index, store_index, noise_index))
            self._schedule = (template, plan)
        return self._schedule

    def emit_chunk(self, rng: np.random.Generator, k: int) -> Chunk:
        """Vectorised emitter: one bulk draw covers every site's load and
        store addresses and every correlated site's noise flip for ``k``
        iterations."""
        p = self.params
        template, plan = self._chunk_schedule()
        columns = replay_template(rng, template, k)
        data = self.data
        value_lists = [
            (_random_stream_addresses(data, column) if template[i] != DOUBLE
             else column.tolist())
            for i, column in enumerate(columns)
        ]

        out: List[Instruction] = []
        bounds: List[int] = []
        append = out.append
        memo = self._memo
        Inst = Instruction
        st = self.bind_chunk_state()
        int_rot = self.int_rot
        iwin = int_rot.window
        iwn = len(iwin)
        icur = st.int_rot_cursor
        ihist = st.int_rot_history
        loop = self.loop_branch
        trip, loop_pc, loop_target = loop.trip, loop.pc, loop.target
        loop_count = st.loop_branch_count
        ghist = st.ghist
        block_len, hammock_len = p.block_len, p.hammock_len
        iteration = st.iteration
        ALU, LOAD, STORE, BR = (OpClass.INT_ALU, OpClass.LOAD, OpClass.STORE,
                                OpClass.BRANCH)
        #: per-site dynamic-instance counters (plan order == sites order);
        #: pattern sites walk theirs per iteration, correlated sites
        #: advance by ``k`` in bulk below.
        site_counts = st.sites_counts
        for j in range(k):
            for s, (site, load_index, store_index, noise_index) in enumerate(plan):
                site_pc = site.pc
                pc = site_pc - 4 * block_len
                nh = len(ihist)
                local = (ihist[-3] if nh >= 3 else
                         (ihist[-nh] if nh else iwin[0]))
                for i in range(block_len):
                    is_load = i == 0 and s % 3 == 0
                    if not is_load and i == block_len - 1 and s % 4 == 3:
                        nh = len(ihist)
                        store_src = (ihist[-4] if nh >= 4 else
                                     (ihist[-nh] if nh else iwin[0]))
                        append(Inst(pc=pc, op=STORE,
                                    srcs=((INT, local), (INT, store_src)),
                                    mem_addr=value_lists[store_index][j]))
                        pc += 4
                        continue
                    dest = iwin[icur % iwn]; icur += 1; ihist.append(dest)
                    if is_load:
                        append(Inst(pc=pc, op=LOAD, dest=(INT, dest),
                                    srcs=((INT, local),),
                                    mem_addr=value_lists[load_index][j]))
                    else:
                        nh = len(ihist)
                        alu_src = ihist[-5] if nh >= 5 else ihist[-nh]
                        key = (pc, dest, local, alu_src)
                        inst = memo.get(key)
                        if inst is None:
                            inst = Inst(pc=pc, op=ALU, dest=(INT, dest),
                                        srcs=((INT, local), (INT, alu_src)))
                            memo[key] = inst
                        append(inst)
                    local = dest
                    pc += 4
                if site.kind == "pattern":
                    pattern = site.pattern
                    count = site_counts[s]
                    taken = bool(pattern[count % len(pattern)]) if pattern else False
                    site_counts[s] = count + 1
                else:
                    taken = site.correlated_outcome(ghist)
                    if noise_index is not None and \
                            value_lists[noise_index][j] < site.noise:
                        taken = not taken
                ghist = ((ghist << 1) | taken) & 0xFFFF
                key = ("br", site_pc, local, taken)
                inst = memo.get(key)
                if inst is None:
                    inst = Inst(pc=site_pc, op=BR, srcs=((INT, local),),
                                taken=taken, target=site.target)
                    memo[key] = inst
                append(inst)
                if not taken:
                    pc = site_pc + 4
                    for _ in range(hammock_len):
                        dest = iwin[icur % iwn]; icur += 1; ihist.append(dest)
                        key = (pc, dest, local)
                        inst = memo.get(key)
                        if inst is None:
                            inst = Inst(pc=pc, op=ALU, dest=(INT, dest),
                                        srcs=((INT, local),))
                            memo[key] = inst
                        append(inst)
                        local = dest
                        pc += 4
            loop_count += 1
            taken = (loop_count % trip) != 0
            ghist = ((ghist << 1) | taken) & 0xFFFF
            last = ihist[-1] if ihist else iwin[0]
            key = ("br", loop_pc, last, taken)
            inst = memo.get(key)
            if inst is None:
                inst = Inst(pc=loop_pc, op=BR, srcs=((INT, last),),
                            taken=taken, target=loop_target)
                memo[key] = inst
            append(inst)
            iteration += 1
            bounds.append(len(out))
        st.int_rot_cursor = icur
        st.loop_branch_count = loop_count
        for s, (site, *_rest) in enumerate(plan):
            if site.kind != "pattern":
                site_counts[s] += k
        st.ghist = ghist
        st.iteration = iteration
        self.write_back_chunk_state(st)
        return out, bounds


class PointerChaseKernel(_KernelBase):
    """Dependent-load pointer chasing with interpreted-code control flow (li / perl).

    Models an interpreter working over linked data: two *interleaved*
    pointer chases (the interpreter typically walks the expression and the
    environment at the same time, so the chases overlap in the machine),
    per-node integer work that does not feed back into the chase, a
    highly regular dispatch branch (pattern) plus one data-dependent
    branch, and an occasional store.
    """

    STATE = (RotationState("int_rot"), ChasePositionsState("chases"),
             SiteCountState("pattern_branch"), SiteCountState("cond_branch"),
             SiteCountState("loop_branch"))

    def __init__(self, params: KernelParams) -> None:
        super().__init__(params)
        p = params
        self.int_rot = RegisterRotation(list(range(1, 1 + p.int_window)))
        self.chases = [
            PointerChaseStream(base=p.data_base + i * (p.chase_nodes * 32 + 4096),
                               n_nodes=p.chase_nodes, seed=p.pc_base + i)
            for i in range(2)
        ]
        self.data = RandomStream(base=p.data_base + (1 << 20),
                                 footprint=p.mem_footprint)
        body = 2 * p.load_chain_len * 3 + 8
        self.pattern_branch = BranchSite(
            pc=p.pc_base + 4 * (2 * p.load_chain_len * 3),
            target=p.pc_base + 4 * (2 * p.load_chain_len * 3 + 3),
            kind="pattern", pattern=(True, False, True, True))
        self.cond_branch = BranchSite(
            pc=p.pc_base + 4 * (2 * p.load_chain_len * 3 + 4),
            target=p.pc_base + 4 * (2 * p.load_chain_len * 3 + 4 + p.hammock_len + 1),
            kind="correlated", bias=p.branch_bias, noise=p.branch_noise)
        self.loop_branch = BranchSite(pc=p.pc_base + 4 * body + 64, target=p.pc_base,
                                      kind="loop", trip=p.trip_count)
        #: dedicated pointer registers (outside the rotation window) so each
        #: chase is a true ``p = p->next`` chain across iterations.
        self._ptr_regs = [p.int_window + 1 + i for i in range(2)]

    def prologue(self, rng: np.random.Generator) -> List[Instruction]:
        """Initialise the two chase pointer registers."""
        out = []
        pc = self.params.pc_base - 4 * len(self._ptr_regs)
        for reg in self._ptr_regs:
            out.append(Instruction(pc=pc, op=OpClass.INT_ALU, dest=(INT, reg), srcs=()))
            pc += 4
        return out

    def emit_iteration(self, rng: np.random.Generator) -> List[Instruction]:
        p = self.params
        out: List[Instruction] = []
        pc = p.pc_base
        work_values: List[int] = []
        for _step in range(p.load_chain_len):
            for chase_id, chase in enumerate(self.chases):
                ptr_reg = self._ptr_regs[chase_id]
                # p = p->next: the load reads and redefines the pointer register.
                out.append(Instruction(pc=pc, op=OpClass.LOAD, dest=(INT, ptr_reg),
                                       srcs=((INT, ptr_reg),),
                                       mem_addr=chase.next_address(rng)))
                pc += 4
                # Per-node work: depends on the loaded value but nothing else
                # depends on it, so it runs in parallel with the next hop.
                work = self.int_rot.next_dest()
                out.append(Instruction(pc=pc, op=OpClass.INT_ALU, dest=(INT, work),
                                       srcs=((INT, ptr_reg),)))
                pc += 4
                work_values.append(work)
        taken = self._branch_outcome(self.pattern_branch, rng)
        out.append(Instruction(pc=self.pattern_branch.pc, op=OpClass.BRANCH,
                               srcs=((INT, work_values[0]),), taken=taken,
                               target=self.pattern_branch.target))
        pc = self.pattern_branch.target if taken else self.pattern_branch.pc + 4
        if not taken:
            for _ in range(2):
                dest = self.int_rot.next_dest()
                out.append(Instruction(pc=pc, op=OpClass.INT_ALU, dest=(INT, dest),
                                       srcs=((INT, work_values[-1]),)))
                pc += 4
        taken = self._branch_outcome(self.cond_branch, rng)
        out.append(Instruction(pc=self.cond_branch.pc, op=OpClass.BRANCH,
                               srcs=((INT, work_values[-1]),), taken=taken,
                               target=self.cond_branch.target))
        pc = self.cond_branch.target if taken else self.cond_branch.pc + 4
        if not taken:
            for _ in range(p.hammock_len):
                dest = self.int_rot.next_dest()
                out.append(Instruction(pc=pc, op=OpClass.INT_ALU, dest=(INT, dest),
                                       srcs=((INT, self.int_rot.recent(2)),)))
                pc += 4
        if rng.random() < p.store_fraction:
            out.append(Instruction(
                pc=pc, op=OpClass.STORE,
                srcs=((INT, work_values[-1]), (INT, self._ptr_regs[0])),
                mem_addr=self.data.next_address(rng)))
        out.append(Instruction(pc=self.loop_branch.pc, op=OpClass.BRANCH,
                               srcs=((INT, work_values[0]),),
                               taken=self._branch_outcome(self.loop_branch, rng),
                               target=self.loop_branch.target))
        self.iteration += 1
        return out

    def max_iteration_length(self) -> int:
        p = self.params
        return (2 * p.load_chain_len * len(self.chases) + 1 + 2 + 1
                + p.hammock_len + 1 + 1 + 8)

    def emit_chunk(self, rng: np.random.Generator, k: int) -> Chunk:
        """Vectorised emitter.

        The store-address draw is conditional on the store lottery, so
        the per-iteration raw consumption is data-dependent — this kernel
        replays through a :class:`~repro.trace.draws.RawCursor` scan
        (draw order per iteration: the conditional branch's noise flip,
        the store lottery, then the store address when the lottery hits)
        instead of a fixed column template.
        """
        from repro.trace.draws import bounded_threshold

        p = self.params
        span = _random_stream_span(self.data)
        threshold = bounded_threshold(span)
        cond = self.cond_branch
        noise = cond.noise > 0.0
        # Worst case per iteration: noise flip + store lottery (one raw
        # each) + store address (at most one raw).
        cursor = RawCursor(rng, 3 * k + 2)
        st = self.bind_chunk_state()
        try:
            out: List[Instruction] = []
            bounds: List[int] = []
            append = out.append
            memo = self._memo
            Inst = Instruction
            int_rot = self.int_rot
            iwin = int_rot.window
            iwn = len(iwin)
            icur = st.int_rot_cursor
            ihist = st.int_rot_history
            chases = self.chases
            chase_positions = st.chases_positions
            chase_addrs: List[List[int]] = []
            for chase_id, chase in enumerate(chases):
                chase._ensure_order()
                order = chase._order
                count = k * p.load_chain_len
                idx = (chase_positions[chase_id] + np.arange(count)) % chase.n_nodes
                chase_addrs.append(
                    (chase.base + order[idx] * chase.node_size).tolist())
                chase_positions[chase_id] += count
            chase_cursors = [0] * len(chases)
            ptr_regs = self._ptr_regs
            pattern_branch = self.pattern_branch
            pattern = pattern_branch.pattern
            pattern_len = len(pattern)
            pattern_count = st.pattern_branch_count
            pattern_pc, pattern_target = pattern_branch.pc, pattern_branch.target
            cond_pc, cond_target, cond_noise = cond.pc, cond.target, cond.noise
            loop = self.loop_branch
            trip, loop_pc, loop_target = loop.trip, loop.pc, loop.target
            loop_count = st.loop_branch_count
            data = self.data
            data_base, data_align = data.base, data.align
            ghist = st.ghist
            load_chain_len, hammock_len = p.load_chain_len, p.hammock_len
            store_fraction = p.store_fraction
            pc0 = p.pc_base
            iteration = st.iteration
            ALU, LOAD, STORE, BR = (OpClass.INT_ALU, OpClass.LOAD,
                                    OpClass.STORE, OpClass.BRANCH)
            next_double = cursor.next_double
            next_bounded = cursor.next_bounded
            for _ in range(k):
                pc = pc0
                first_work = last_work = -1
                for _step in range(load_chain_len):
                    for chase_id in range(len(chases)):
                        ptr_reg = ptr_regs[chase_id]
                        addr = chase_addrs[chase_id][chase_cursors[chase_id]]
                        chase_cursors[chase_id] += 1
                        key = (pc, addr)
                        inst = memo.get(key)
                        if inst is None:
                            inst = Inst(pc=pc, op=LOAD, dest=(INT, ptr_reg),
                                        srcs=((INT, ptr_reg),), mem_addr=addr)
                            memo[key] = inst
                        append(inst); pc += 4
                        work = iwin[icur % iwn]; icur += 1; ihist.append(work)
                        key = (pc, work)
                        inst = memo.get(key)
                        if inst is None:
                            inst = Inst(pc=pc, op=ALU, dest=(INT, work),
                                        srcs=((INT, ptr_reg),))
                            memo[key] = inst
                        append(inst); pc += 4
                        if first_work < 0:
                            first_work = work
                        last_work = work
                pattern_count += 1
                taken = (bool(pattern[(pattern_count - 1) % pattern_len])
                         if pattern_len else False)
                ghist = ((ghist << 1) | taken) & 0xFFFF
                key = ("br", pattern_pc, first_work, taken)
                inst = memo.get(key)
                if inst is None:
                    inst = Inst(pc=pattern_pc, op=BR, srcs=((INT, first_work),),
                                taken=taken, target=pattern_target)
                    memo[key] = inst
                append(inst)
                pc = pattern_target if taken else pattern_pc + 4
                if not taken:
                    for _ in range(2):
                        dest = iwin[icur % iwn]; icur += 1; ihist.append(dest)
                        key = (pc, dest, last_work)
                        inst = memo.get(key)
                        if inst is None:
                            inst = Inst(pc=pc, op=ALU, dest=(INT, dest),
                                        srcs=((INT, last_work),))
                            memo[key] = inst
                        append(inst); pc += 4
                taken = cond.correlated_outcome(ghist)
                if noise and next_double() < cond_noise:
                    taken = not taken
                ghist = ((ghist << 1) | taken) & 0xFFFF
                key = ("br", cond_pc, last_work, taken)
                inst = memo.get(key)
                if inst is None:
                    inst = Inst(pc=cond_pc, op=BR, srcs=((INT, last_work),),
                                taken=taken, target=cond_target)
                    memo[key] = inst
                append(inst)
                pc = cond_target if taken else cond_pc + 4
                if not taken:
                    for _ in range(hammock_len):
                        dest = iwin[icur % iwn]; icur += 1; ihist.append(dest)
                        src = ihist[-2] if len(ihist) >= 2 else ihist[-1]
                        key = (pc, dest, src)
                        inst = memo.get(key)
                        if inst is None:
                            inst = Inst(pc=pc, op=ALU, dest=(INT, dest),
                                        srcs=((INT, src),))
                            memo[key] = inst
                        append(inst); pc += 4
                if next_double() < store_fraction:
                    addr = data_base + next_bounded(span, threshold) * data_align
                    key = (pc, last_work, addr)
                    inst = memo.get(key)
                    if inst is None:
                        inst = Inst(pc=pc, op=STORE,
                                    srcs=((INT, last_work), (INT, ptr_regs[0])),
                                    mem_addr=addr)
                        memo[key] = inst
                    append(inst)
                loop_count += 1
                taken = (loop_count % trip) != 0
                ghist = ((ghist << 1) | taken) & 0xFFFF
                key = ("br", loop_pc, first_work, taken)
                inst = memo.get(key)
                if inst is None:
                    inst = Inst(pc=loop_pc, op=BR, srcs=((INT, first_work),),
                                taken=taken, target=loop_target)
                    memo[key] = inst
                append(inst)
                iteration += 1
                bounds.append(len(out))
        finally:
            cursor.finalize()
        st.int_rot_cursor = icur
        st.pattern_branch_count = pattern_count
        st.cond_branch_count += k
        st.loop_branch_count = loop_count
        st.ghist = ghist
        st.iteration = iteration
        self.write_back_chunk_state(st)
        return out, bounds


# ----------------------------------------------------------------------
# Factory helpers (the names exported by :mod:`repro.trace`).
# ----------------------------------------------------------------------
def streaming_fp_kernel(params: Optional[KernelParams] = None) -> StreamingFPKernel:
    """Create a :class:`StreamingFPKernel` with the given (or default) parameters."""
    return StreamingFPKernel(params or KernelParams())


def stencil_fp_kernel(params: Optional[KernelParams] = None) -> StencilFPKernel:
    """Create a :class:`StencilFPKernel` with the given (or default) parameters."""
    return StencilFPKernel(params or KernelParams())


def int_compute_kernel(params: Optional[KernelParams] = None) -> IntComputeKernel:
    """Create an :class:`IntComputeKernel` with the given (or default) parameters."""
    return IntComputeKernel(params or KernelParams())


def branchy_kernel(params: Optional[KernelParams] = None) -> BranchyKernel:
    """Create a :class:`BranchyKernel` with the given (or default) parameters."""
    return BranchyKernel(params or KernelParams())


def pointer_chase_kernel(params: Optional[KernelParams] = None) -> PointerChaseKernel:
    """Create a :class:`PointerChaseKernel` with the given (or default) parameters."""
    return PointerChaseKernel(params or KernelParams())
