"""Parameterised instruction-stream kernels.

Each kernel models one characteristic inner-loop shape of the SPEC95
programs the paper evaluates and emits concrete
:class:`~repro.isa.instructions.Instruction` records one *iteration* at a
time.  The workload profiles in :mod:`repro.trace.workloads` compose and
calibrate these kernels per benchmark.

All kernels share the same conventions:

* every static instruction of the loop body has a fixed pc, so the gshare
  predictor, BTB and instruction cache observe a realistic, repetitive
  static code footprint;
* destination registers are drawn from :class:`RegisterRotation` windows,
  so the def-to-redefine distance (register lifetime under conventional
  release) is controlled by the window size;
* data-dependent branches are modelled as *hammocks*: when the branch is
  taken the next few body instructions are skipped, exactly as the
  dynamic stream of a real if-then region would look.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.isa import Instruction, OpClass, RegClass
from repro.trace.synthetic import (
    BranchSite,
    PointerChaseStream,
    RandomStream,
    RegisterRotation,
    StridedStream,
)

INT = RegClass.INT
FP = RegClass.FP


@dataclass
class KernelParams:
    """Tunable knobs shared by the kernel generators.

    Only a subset is meaningful to any given kernel; unspecified knobs keep
    their defaults.  See the individual kernel classes for which knobs they
    honour.
    """

    #: base address of the kernel's code (each kernel gets a disjoint range).
    pc_base: int = 0x10000
    #: base address of the kernel's data.
    data_base: int = 0x100000
    #: number of independent array streams (FP kernels).
    n_streams: int = 4
    #: length of the dependent arithmetic chain per loaded value.
    chain_len: int = 3
    #: FP destination-register rotation window size.
    fp_window: int = 20
    #: integer destination-register rotation window size.
    int_window: int = 8
    #: loop branch trip count.
    trip_count: int = 128
    #: probability that a data-dependent branch is taken.
    branch_bias: float = 0.75
    #: number of static data-dependent branch sites (branchy kernels).
    n_branch_sites: int = 12
    #: instructions per basic block in branchy kernels.
    block_len: int = 4
    #: instructions skipped when a hammock branch is taken.
    hammock_len: int = 3
    #: memory footprint per stream, in bytes.
    mem_footprint: int = 1 << 17
    #: address stride of the FP array streams, in bytes.  64 (one element per
    #: cache line, e.g. a column walk or a padded multi-field array) makes the
    #: streams L1-resident-never / L2-resident, the regime of the SPECfp95
    #: streaming codes; 8 models a dense unit-stride walk.
    stream_stride: int = 64
    #: emit one FP divide every this many iterations (0 = never).
    div_interval: int = 0
    #: emit one integer multiply every this many iterations (0 = never).
    mult_interval: int = 0
    #: length of the dependent load chain (pointer-chase kernel).
    load_chain_len: int = 3
    #: number of nodes in the pointer-chase working set.
    chase_nodes: int = 2048
    #: fraction of iterations that perform a store.
    store_fraction: float = 1.0
    #: number of independent work chains per iteration (integer kernels);
    #: controls the instruction-level parallelism of the synthetic code.
    n_parallel_chains: int = 3
    #: fraction of data-dependent branch sites whose outcome follows a
    #: repeating (history-predictable) pattern rather than a history-correlated
    #: function.
    pattern_fraction: float = 0.5
    #: flip probability of history-correlated branch outcomes; sets the floor
    #: of the achievable branch misprediction rate for the integer codes.
    branch_noise: float = 0.05


class _KernelBase:
    """Shared plumbing: pc bookkeeping, iteration counting, branch history."""

    def __init__(self, params: KernelParams) -> None:
        self.params = params
        self.iteration = 0
        #: recent branch outcomes of the whole kernel (LSB = most recent);
        #: consumed by history-correlated branch sites.
        self.ghist = 0

    def _branch_outcome(self, site: BranchSite, rng: np.random.Generator) -> bool:
        """Draw the site's next outcome and append it to the global history."""
        taken = site.next_outcome(rng, self.ghist)
        self.ghist = ((self.ghist << 1) | int(taken)) & 0xFFFF
        return taken

    # Subclasses implement this.
    def emit_iteration(self, rng: np.random.Generator) -> List[Instruction]:
        """Return the dynamic instructions of one loop iteration."""
        raise NotImplementedError

    def prologue(self, rng: np.random.Generator) -> List[Instruction]:
        """Return set-up instructions executed once before the loop."""
        return []


class StreamingFPKernel(_KernelBase):
    """Unit-stride streaming FP loop (swim / mgrid style).

    Per iteration and per stream: one FP load, a short dependent FP chain
    against persistent coefficient registers, and one FP store.  Induction
    variables are updated with integer ALU operations and a single
    highly-predictable loop branch closes the iteration.
    """

    #: FP registers reserved for loop-invariant coefficients.
    N_COEF = 4

    def __init__(self, params: KernelParams) -> None:
        super().__init__(params)
        p = params
        value_regs = list(range(self.N_COEF, self.N_COEF + p.fp_window))
        self.fp_rot = RegisterRotation(value_regs)
        self.int_rot = RegisterRotation(list(range(1, 1 + p.int_window)))
        self.streams = [
            StridedStream(base=p.data_base + s * (p.mem_footprint + 4096),
                          stride=p.stream_stride, footprint=p.mem_footprint)
            for s in range(p.n_streams)
        ]
        self.out_stream = StridedStream(
            base=p.data_base + p.n_streams * (p.mem_footprint + 4096),
            stride=p.stream_stride, footprint=p.mem_footprint)
        body = p.n_streams * (4 + p.chain_len) + 3
        self.loop_branch = BranchSite(
            pc=p.pc_base + 4 * body, target=p.pc_base,
            kind="loop", trip=p.trip_count)

    def prologue(self, rng: np.random.Generator) -> List[Instruction]:
        """Define the coefficient registers once, before the loop."""
        out = []
        pc = self.params.pc_base - 4 * self.N_COEF
        for c in range(self.N_COEF):
            out.append(Instruction(pc=pc, op=OpClass.FP_ADD, dest=(FP, c), srcs=()))
            pc += 4
        return out

    def emit_iteration(self, rng: np.random.Generator) -> List[Instruction]:
        p = self.params
        out: List[Instruction] = []
        pc = p.pc_base
        addr_reg = self.int_rot.next_dest()
        out.append(Instruction(pc=pc, op=OpClass.INT_ALU, dest=(INT, addr_reg),
                               srcs=((INT, self.int_rot.recent(2)),)))
        pc += 4
        last_values = []
        for s, stream in enumerate(self.streams):
            # Per-stream address arithmetic (integer overhead of compiled code).
            stream_addr = self.int_rot.next_dest()
            out.append(Instruction(pc=pc, op=OpClass.INT_ALU, dest=(INT, stream_addr),
                                   srcs=((INT, addr_reg),)))
            pc += 4
            load_dest = self.fp_rot.next_dest()
            out.append(Instruction(pc=pc, op=OpClass.FP_LOAD, dest=(FP, load_dest),
                                   srcs=((INT, stream_addr),),
                                   mem_addr=stream.next_address(rng)))
            pc += 4
            prev = load_dest
            for c in range(p.chain_len):
                dest = self.fp_rot.next_dest()
                coef = (s + c) % self.N_COEF
                op = OpClass.FP_MULT if (c % 2 == 1) else OpClass.FP_ADD
                out.append(Instruction(pc=pc, op=op, dest=(FP, dest),
                                       srcs=((FP, prev), (FP, coef))))
                pc += 4
                prev = dest
            last_values.append(prev)
            index_reg = self.int_rot.next_dest()
            out.append(Instruction(pc=pc, op=OpClass.INT_ALU, dest=(INT, index_reg),
                                   srcs=((INT, stream_addr),)))
            pc += 4
            out.append(Instruction(pc=pc, op=OpClass.FP_STORE,
                                   srcs=((FP, prev), (INT, index_reg)),
                                   mem_addr=self.out_stream.next_address(rng)))
            pc += 4
        if p.div_interval and self.iteration % p.div_interval == 0 and last_values:
            dest = self.fp_rot.next_dest()
            out.append(Instruction(pc=pc, op=OpClass.FP_DIV, dest=(FP, dest),
                                   srcs=((FP, last_values[0]), (FP, 0))))
        pc += 4
        idx_reg = self.int_rot.next_dest()
        out.append(Instruction(pc=pc, op=OpClass.INT_ALU, dest=(INT, idx_reg),
                               srcs=((INT, addr_reg),)))
        pc += 4
        out.append(Instruction(pc=self.loop_branch.pc, op=OpClass.BRANCH,
                               srcs=((INT, idx_reg),),
                               taken=self._branch_outcome(self.loop_branch, rng),
                               target=self.loop_branch.target))
        self.iteration += 1
        return out


class StencilFPKernel(_KernelBase):
    """Neighbour-gather stencil loop (tomcatv / applu / hydro2d style).

    Each iteration loads several neighbouring points, combines them in a
    long cross-dependent FP chain, performs an occasional FP divide, and
    stores one or two results.  The long chains plus the divides keep many
    FP values live at once — this is the highest-register-pressure kernel.
    """

    N_COEF = 6

    def __init__(self, params: KernelParams) -> None:
        super().__init__(params)
        p = params
        value_regs = list(range(self.N_COEF, self.N_COEF + p.fp_window))
        self.fp_rot = RegisterRotation(value_regs)
        self.int_rot = RegisterRotation(list(range(1, 1 + p.int_window)))
        self.streams = [
            StridedStream(base=p.data_base + s * (p.mem_footprint + 8192),
                          stride=p.stream_stride, footprint=p.mem_footprint)
            for s in range(p.n_streams)
        ]
        self.out_stream = StridedStream(
            base=p.data_base + (p.n_streams + 1) * (p.mem_footprint + 8192),
            stride=p.stream_stride, footprint=p.mem_footprint)
        body = 2 + 2 * p.n_streams + 2 * p.chain_len + 4
        self.loop_branch = BranchSite(pc=p.pc_base + 4 * body, target=p.pc_base,
                                      kind="loop", trip=p.trip_count)

    def prologue(self, rng: np.random.Generator) -> List[Instruction]:
        """Define the stencil coefficient registers once."""
        out = []
        pc = self.params.pc_base - 4 * self.N_COEF
        for c in range(self.N_COEF):
            out.append(Instruction(pc=pc, op=OpClass.FP_MULT, dest=(FP, c), srcs=()))
            pc += 4
        return out

    def emit_iteration(self, rng: np.random.Generator) -> List[Instruction]:
        p = self.params
        out: List[Instruction] = []
        pc = p.pc_base
        addr_reg = self.int_rot.next_dest()
        out.append(Instruction(pc=pc, op=OpClass.INT_ALU, dest=(INT, addr_reg),
                               srcs=((INT, self.int_rot.recent(2)),)))
        pc += 4
        addr2_reg = self.int_rot.next_dest()
        out.append(Instruction(pc=pc, op=OpClass.INT_ALU, dest=(INT, addr2_reg),
                               srcs=((INT, addr_reg),)))
        pc += 4
        loaded: List[int] = []
        for s, stream in enumerate(self.streams):
            stream_addr = self.int_rot.next_dest()
            out.append(Instruction(pc=pc, op=OpClass.INT_ALU, dest=(INT, stream_addr),
                                   srcs=((INT, addr_reg if s % 2 == 0 else addr2_reg),)))
            pc += 4
            dest = self.fp_rot.next_dest()
            out.append(Instruction(pc=pc, op=OpClass.FP_LOAD, dest=(FP, dest),
                                   srcs=((INT, stream_addr),),
                                   mem_addr=stream.next_address(rng)))
            pc += 4
            loaded.append(dest)
        # Cross-combine neighbours: a reduction tree followed by a chain.
        prev = loaded[0]
        for i, other in enumerate(loaded[1:]):
            dest = self.fp_rot.next_dest()
            op = OpClass.FP_ADD if i % 2 == 0 else OpClass.FP_MULT
            out.append(Instruction(pc=pc, op=op, dest=(FP, dest),
                                   srcs=((FP, prev), (FP, other))))
            pc += 4
            prev = dest
        for c in range(p.chain_len):
            dest = self.fp_rot.next_dest()
            coef = c % self.N_COEF
            op = OpClass.FP_MULT if c % 2 == 0 else OpClass.FP_ADD
            out.append(Instruction(pc=pc, op=op, dest=(FP, dest),
                                   srcs=((FP, prev), (FP, coef))))
            pc += 4
            prev = dest
        if p.div_interval and self.iteration % p.div_interval == 0:
            dest = self.fp_rot.next_dest()
            out.append(Instruction(pc=pc, op=OpClass.FP_DIV, dest=(FP, dest),
                                   srcs=((FP, prev), (FP, 1))))
            prev = dest
        pc += 4
        out.append(Instruction(pc=pc, op=OpClass.FP_STORE,
                               srcs=((FP, prev), (INT, addr_reg)),
                               mem_addr=self.out_stream.next_address(rng)))
        pc += 4
        idx_reg = self.int_rot.next_dest()
        out.append(Instruction(pc=pc, op=OpClass.INT_ALU, dest=(INT, idx_reg),
                               srcs=((INT, addr_reg),)))
        pc += 4
        out.append(Instruction(pc=self.loop_branch.pc, op=OpClass.BRANCH,
                               srcs=((INT, idx_reg),),
                               taken=self._branch_outcome(self.loop_branch, rng),
                               target=self.loop_branch.target))
        self.iteration += 1
        return out


class IntComputeKernel(_KernelBase):
    """Integer compute loop with a data-dependent hammock (compress style).

    Each iteration runs ``n_parallel_chains`` *independent* short work
    chains (load + a few dependent ALU operations each), combines one value
    into a running result, takes one data-dependent hammock branch, stores
    a result and closes with the loop branch.  The independent chains give
    the out-of-order core realistic integer ILP; the serial part of the
    iteration is only the induction variable and the combine step.
    """

    def __init__(self, params: KernelParams) -> None:
        super().__init__(params)
        p = params
        self.int_rot = RegisterRotation(list(range(1, 1 + p.int_window)))
        self.data = RandomStream(base=p.data_base, footprint=p.mem_footprint)
        self.out = StridedStream(base=p.data_base + 2 * p.mem_footprint,
                                 stride=8, footprint=p.mem_footprint)
        chain_block = 1 + p.chain_len
        body = 1 + p.n_parallel_chains * chain_block + p.hammock_len + 4
        self.hammock_branch = BranchSite(
            pc=p.pc_base + 4 * (1 + p.n_parallel_chains * chain_block),
            target=p.pc_base + 4 * (1 + p.n_parallel_chains * chain_block
                                    + p.hammock_len + 1),
            kind="correlated", bias=p.branch_bias, noise=p.branch_noise)
        self.loop_branch = BranchSite(pc=p.pc_base + 4 * body, target=p.pc_base,
                                      kind="loop", trip=p.trip_count)

    def emit_iteration(self, rng: np.random.Generator) -> List[Instruction]:
        p = self.params
        out: List[Instruction] = []
        pc = p.pc_base
        addr_reg = self.int_rot.next_dest()
        out.append(Instruction(pc=pc, op=OpClass.INT_ALU, dest=(INT, addr_reg),
                               srcs=((INT, self.int_rot.recent(2)),)))
        pc += 4
        chain_heads: List[int] = []
        for chain in range(p.n_parallel_chains):
            load_dest = self.int_rot.next_dest()
            out.append(Instruction(pc=pc, op=OpClass.LOAD, dest=(INT, load_dest),
                                   srcs=((INT, addr_reg),),
                                   mem_addr=self.data.next_address(rng)))
            pc += 4
            prev = load_dest
            for _ in range(p.chain_len):
                dest = self.int_rot.next_dest()
                out.append(Instruction(pc=pc, op=OpClass.INT_ALU, dest=(INT, dest),
                                       srcs=((INT, prev),)))
                pc += 4
                prev = dest
            chain_heads.append(prev)
        combine = self.int_rot.next_dest()
        out.append(Instruction(pc=pc, op=OpClass.INT_ALU, dest=(INT, combine),
                               srcs=((INT, chain_heads[0]),
                                     (INT, chain_heads[-1]))))
        pc += 4
        taken = self._branch_outcome(self.hammock_branch, rng)
        out.append(Instruction(pc=self.hammock_branch.pc, op=OpClass.BRANCH,
                               srcs=((INT, chain_heads[0]),), taken=taken,
                               target=self.hammock_branch.target))
        pc = self.hammock_branch.pc + 4
        if not taken:
            prev = combine
            for _ in range(p.hammock_len):
                dest = self.int_rot.next_dest()
                out.append(Instruction(pc=pc, op=OpClass.INT_ALU, dest=(INT, dest),
                                       srcs=((INT, prev),)))
                pc += 4
                prev = dest
        else:
            pc = self.hammock_branch.target
        if p.mult_interval and self.iteration % p.mult_interval == 0:
            dest = self.int_rot.next_dest()
            out.append(Instruction(pc=pc, op=OpClass.INT_MULT, dest=(INT, dest),
                                   srcs=((INT, chain_heads[-1]),)))
        pc += 4
        if rng.random() < p.store_fraction:
            out.append(Instruction(pc=pc, op=OpClass.STORE,
                                   srcs=((INT, combine), (INT, addr_reg)),
                                   mem_addr=self.out.next_address(rng)))
        pc += 4
        out.append(Instruction(pc=self.loop_branch.pc, op=OpClass.BRANCH,
                               srcs=((INT, addr_reg),),
                               taken=self._branch_outcome(self.loop_branch, rng),
                               target=self.loop_branch.target))
        self.iteration += 1
        return out


class BranchyKernel(_KernelBase):
    """Branch-dense control flow (gcc / go style).

    The static code consists of ``n_branch_sites`` short basic blocks, each
    ending in a data-dependent branch whose bias varies per site.  Every
    iteration walks all blocks, taking or skipping each block's hammock
    according to the branch outcome, and closes with a loop branch.
    """

    #: repeating outcome patterns assigned round-robin to "pattern" sites.
    _PATTERNS = (
        (True, True, False),
        (True, False, True, True),
        (True, True, True, False, True),
        (False, True, True),
        (True, True, True, True, False, True),
    )

    def __init__(self, params: KernelParams) -> None:
        super().__init__(params)
        p = params
        self.int_rot = RegisterRotation(list(range(1, 1 + p.int_window)))
        self.data = RandomStream(base=p.data_base, footprint=p.mem_footprint)
        self.sites: List[BranchSite] = []
        rng = np.random.default_rng(p.pc_base)  # deterministic per-site behaviour
        block_span = 4 * (p.block_len + p.hammock_len + 1)
        for s in range(p.n_branch_sites):
            block_pc = p.pc_base + s * block_span
            branch_pc = block_pc + 4 * p.block_len
            target = block_pc + block_span
            if rng.random() < p.pattern_fraction:
                pattern = self._PATTERNS[s % len(self._PATTERNS)]
                self.sites.append(BranchSite(pc=branch_pc, target=target,
                                             kind="pattern", pattern=pattern))
            else:
                bias = float(np.clip(p.branch_bias + rng.normal(0.0, 0.08),
                                     0.60, 0.97))
                self.sites.append(BranchSite(pc=branch_pc, target=target,
                                             kind="correlated", bias=bias,
                                             noise=p.branch_noise))
        self.loop_branch = BranchSite(
            pc=p.pc_base + p.n_branch_sites * block_span,
            target=p.pc_base, kind="loop", trip=p.trip_count)

    def emit_iteration(self, rng: np.random.Generator) -> List[Instruction]:
        p = self.params
        out: List[Instruction] = []
        for s, site in enumerate(self.sites):
            block_pc = site.pc - 4 * p.block_len
            pc = block_pc
            # Each block computes from registers defined a few blocks ago, so
            # consecutive blocks are (mostly) independent of each other.
            local = self.int_rot.recent(3)
            for i in range(p.block_len):
                if i == 0 and s % 3 == 0:
                    dest = self.int_rot.next_dest()
                    out.append(Instruction(pc=pc, op=OpClass.LOAD, dest=(INT, dest),
                                           srcs=((INT, local),),
                                           mem_addr=self.data.next_address(rng)))
                elif i == p.block_len - 1 and s % 4 == 3:
                    out.append(Instruction(
                        pc=pc, op=OpClass.STORE,
                        srcs=((INT, local), (INT, self.int_rot.recent(4))),
                        mem_addr=self.data.next_address(rng)))
                    pc += 4
                    continue
                else:
                    dest = self.int_rot.next_dest()
                    out.append(Instruction(
                        pc=pc, op=OpClass.INT_ALU, dest=(INT, dest),
                        srcs=((INT, local), (INT, self.int_rot.recent(5)))))
                local = dest
                pc += 4
            taken = self._branch_outcome(site, rng)
            out.append(Instruction(pc=site.pc, op=OpClass.BRANCH,
                                   srcs=((INT, local),), taken=taken,
                                   target=site.target))
            if not taken:
                pc = site.pc + 4
                for _ in range(p.hammock_len):
                    dest = self.int_rot.next_dest()
                    out.append(Instruction(pc=pc, op=OpClass.INT_ALU, dest=(INT, dest),
                                           srcs=((INT, local),)))
                    local = dest
                    pc += 4
        out.append(Instruction(pc=self.loop_branch.pc, op=OpClass.BRANCH,
                               srcs=((INT, self.int_rot.recent(1)),),
                               taken=self._branch_outcome(self.loop_branch, rng),
                               target=self.loop_branch.target))
        self.iteration += 1
        return out


class PointerChaseKernel(_KernelBase):
    """Dependent-load pointer chasing with interpreted-code control flow (li / perl).

    Models an interpreter working over linked data: two *interleaved*
    pointer chases (the interpreter typically walks the expression and the
    environment at the same time, so the chases overlap in the machine),
    per-node integer work that does not feed back into the chase, a
    highly regular dispatch branch (pattern) plus one data-dependent
    branch, and an occasional store.
    """

    def __init__(self, params: KernelParams) -> None:
        super().__init__(params)
        p = params
        self.int_rot = RegisterRotation(list(range(1, 1 + p.int_window)))
        self.chases = [
            PointerChaseStream(base=p.data_base + i * (p.chase_nodes * 32 + 4096),
                               n_nodes=p.chase_nodes, seed=p.pc_base + i)
            for i in range(2)
        ]
        self.data = RandomStream(base=p.data_base + (1 << 20),
                                 footprint=p.mem_footprint)
        body = 2 * p.load_chain_len * 3 + 8
        self.pattern_branch = BranchSite(
            pc=p.pc_base + 4 * (2 * p.load_chain_len * 3),
            target=p.pc_base + 4 * (2 * p.load_chain_len * 3 + 3),
            kind="pattern", pattern=(True, False, True, True))
        self.cond_branch = BranchSite(
            pc=p.pc_base + 4 * (2 * p.load_chain_len * 3 + 4),
            target=p.pc_base + 4 * (2 * p.load_chain_len * 3 + 4 + p.hammock_len + 1),
            kind="correlated", bias=p.branch_bias, noise=p.branch_noise)
        self.loop_branch = BranchSite(pc=p.pc_base + 4 * body + 64, target=p.pc_base,
                                      kind="loop", trip=p.trip_count)
        #: dedicated pointer registers (outside the rotation window) so each
        #: chase is a true ``p = p->next`` chain across iterations.
        self._ptr_regs = [p.int_window + 1 + i for i in range(2)]

    def prologue(self, rng: np.random.Generator) -> List[Instruction]:
        """Initialise the two chase pointer registers."""
        out = []
        pc = self.params.pc_base - 4 * len(self._ptr_regs)
        for reg in self._ptr_regs:
            out.append(Instruction(pc=pc, op=OpClass.INT_ALU, dest=(INT, reg), srcs=()))
            pc += 4
        return out

    def emit_iteration(self, rng: np.random.Generator) -> List[Instruction]:
        p = self.params
        out: List[Instruction] = []
        pc = p.pc_base
        work_values: List[int] = []
        for step in range(p.load_chain_len):
            for chase_id, chase in enumerate(self.chases):
                ptr_reg = self._ptr_regs[chase_id]
                # p = p->next: the load reads and redefines the pointer register.
                out.append(Instruction(pc=pc, op=OpClass.LOAD, dest=(INT, ptr_reg),
                                       srcs=((INT, ptr_reg),),
                                       mem_addr=chase.next_address(rng)))
                pc += 4
                # Per-node work: depends on the loaded value but nothing else
                # depends on it, so it runs in parallel with the next hop.
                work = self.int_rot.next_dest()
                out.append(Instruction(pc=pc, op=OpClass.INT_ALU, dest=(INT, work),
                                       srcs=((INT, ptr_reg),)))
                pc += 4
                work_values.append(work)
        taken = self._branch_outcome(self.pattern_branch, rng)
        out.append(Instruction(pc=self.pattern_branch.pc, op=OpClass.BRANCH,
                               srcs=((INT, work_values[0]),), taken=taken,
                               target=self.pattern_branch.target))
        pc = self.pattern_branch.target if taken else self.pattern_branch.pc + 4
        if not taken:
            for _ in range(2):
                dest = self.int_rot.next_dest()
                out.append(Instruction(pc=pc, op=OpClass.INT_ALU, dest=(INT, dest),
                                       srcs=((INT, work_values[-1]),)))
                pc += 4
        taken = self._branch_outcome(self.cond_branch, rng)
        out.append(Instruction(pc=self.cond_branch.pc, op=OpClass.BRANCH,
                               srcs=((INT, work_values[-1]),), taken=taken,
                               target=self.cond_branch.target))
        pc = self.cond_branch.target if taken else self.cond_branch.pc + 4
        if not taken:
            for _ in range(p.hammock_len):
                dest = self.int_rot.next_dest()
                out.append(Instruction(pc=pc, op=OpClass.INT_ALU, dest=(INT, dest),
                                       srcs=((INT, self.int_rot.recent(2)),)))
                pc += 4
        if rng.random() < p.store_fraction:
            out.append(Instruction(
                pc=pc, op=OpClass.STORE,
                srcs=((INT, work_values[-1]), (INT, self._ptr_regs[0])),
                mem_addr=self.data.next_address(rng)))
        out.append(Instruction(pc=self.loop_branch.pc, op=OpClass.BRANCH,
                               srcs=((INT, work_values[0]),),
                               taken=self._branch_outcome(self.loop_branch, rng),
                               target=self.loop_branch.target))
        self.iteration += 1
        return out


# ----------------------------------------------------------------------
# Factory helpers (the names exported by :mod:`repro.trace`).
# ----------------------------------------------------------------------
def streaming_fp_kernel(params: Optional[KernelParams] = None) -> StreamingFPKernel:
    """Create a :class:`StreamingFPKernel` with the given (or default) parameters."""
    return StreamingFPKernel(params or KernelParams())


def stencil_fp_kernel(params: Optional[KernelParams] = None) -> StencilFPKernel:
    """Create a :class:`StencilFPKernel` with the given (or default) parameters."""
    return StencilFPKernel(params or KernelParams())


def int_compute_kernel(params: Optional[KernelParams] = None) -> IntComputeKernel:
    """Create an :class:`IntComputeKernel` with the given (or default) parameters."""
    return IntComputeKernel(params or KernelParams())


def branchy_kernel(params: Optional[KernelParams] = None) -> BranchyKernel:
    """Create a :class:`BranchyKernel` with the given (or default) parameters."""
    return BranchyKernel(params or KernelParams())


def pointer_chase_kernel(params: Optional[KernelParams] = None) -> PointerChaseKernel:
    """Create a :class:`PointerChaseKernel` with the given (or default) parameters."""
    return PointerChaseKernel(params or KernelParams())
