"""Synthetic workload (dynamic trace) generation.

The paper evaluates ten SPEC95 programs (five integer, five floating point)
run to completion under SimpleScalar.  SPEC95 binaries, their reference
inputs and the Alpha compilers are not available here, so this package
builds *synthetic equivalents*: parameterised trace generators whose
dynamic properties — instruction mix, branch density and predictability,
register lifetime structure (and therefore physical-register pressure),
and memory locality — are chosen per benchmark to land in the regime the
paper describes:

* floating-point codes: few and highly predictable branches, long value
  lifetimes, long-latency operations that keep the out-of-order window
  full, hence *high* register pressure;
* integer codes: branch dense, hard-to-predict control flow, short value
  lifetimes, hence *low* register pressure.

See DESIGN.md ("Reproduction substitutions") for the argument why this
substitution preserves the behaviour the paper measures.

Public entry points
-------------------
:func:`get_workload`   — build the dynamic trace of one named benchmark.
:data:`WORKLOADS`      — the ten benchmark profiles (name → profile).
:func:`integer_workloads` / :func:`fp_workloads` — the two suites.
"""

from repro.trace.records import Trace, TraceSummary
from repro.trace.synthetic import (
    AddressStream,
    BranchSite,
    RegisterRotation,
    StridedStream,
    RandomStream,
)
from repro.trace.kernels import (
    KernelParams,
    streaming_fp_kernel,
    stencil_fp_kernel,
    int_compute_kernel,
    branchy_kernel,
    pointer_chase_kernel,
)
from repro.trace.workloads import (
    BenchmarkProfile,
    SCENARIOS,
    ScenarioPhase,
    ScenarioProfile,
    WORKLOADS,
    get_workload,
    get_profile,
    get_scenario,
    generate_trace,
    generate_scenario_trace,
    has_workload,
    integer_workloads,
    fp_workloads,
    load_scenario_file,
    profile_digest,
    register_scenario,
    register_scenario_file,
    scenario_workloads,
    unregister_scenario,
    workload_digest,
)
from repro.trace.wrongpath import WrongPathGenerator

__all__ = [
    "Trace",
    "TraceSummary",
    "AddressStream",
    "BranchSite",
    "RegisterRotation",
    "StridedStream",
    "RandomStream",
    "KernelParams",
    "streaming_fp_kernel",
    "stencil_fp_kernel",
    "int_compute_kernel",
    "branchy_kernel",
    "pointer_chase_kernel",
    "BenchmarkProfile",
    "SCENARIOS",
    "ScenarioPhase",
    "ScenarioProfile",
    "WORKLOADS",
    "get_workload",
    "get_profile",
    "get_scenario",
    "generate_trace",
    "generate_scenario_trace",
    "has_workload",
    "integer_workloads",
    "fp_workloads",
    "load_scenario_file",
    "profile_digest",
    "register_scenario",
    "register_scenario_file",
    "scenario_workloads",
    "unregister_scenario",
    "workload_digest",
    "WrongPathGenerator",
]
