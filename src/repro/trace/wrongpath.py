"""Wrong-path instruction synthesis.

SimpleScalar's ``sim-outorder`` is execution driven: after a branch
misprediction it keeps fetching and renaming the *actual* wrong-path
instructions until the branch resolves, and those instructions consume
physical registers, issue-queue slots and — for the paper's Section 4
mechanism — schedule conditional releases that must be squashed.

A trace-driven simulator only has the correct path, so this module
supplies a statistically similar stand-in: after the fetch unit follows a
mispredicted branch it draws instructions from a
:class:`WrongPathGenerator` seeded with the benchmark's instruction mix
until the branch resolves.  The injected instructions exercise the exact
same rename / conditional-release / squash machinery (see DESIGN.md,
"Reproduction substitutions").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.isa import Instruction, OpClass, RegClass
from repro.trace.draws import (RawCursor, ReplayUnsupported,
                               bounded_threshold, replay_supported,
                               vectorized_enabled)
from repro.trace.records import Trace


@dataclass
class WrongPathMix:
    """Operation mix used when synthesising wrong-path instructions.

    The fractions need not sum to one; the remainder is filled with integer
    ALU operations.
    """

    load: float = 0.22
    store: float = 0.10
    branch: float = 0.12
    fp: float = 0.0
    fp_load_share: float = 0.4

    @staticmethod
    def from_trace(trace: Trace) -> "WrongPathMix":
        """Derive a mix from the correct-path trace statistics."""
        summary = trace.summary()
        fp_ops = sum(frac for name, frac in summary.mix.items()
                     if name in ("FP_ADD", "FP_MULT", "FP_DIV"))
        return WrongPathMix(
            load=summary.load_fraction,
            store=summary.store_fraction,
            branch=summary.branch_fraction,
            fp=fp_ops,
        )


class WrongPathGenerator:
    """Generates synthetic instructions for the wrong path of a misprediction.

    Wrong-path control flow is simplified in one respect: wrong-path
    branches always resolve the way they were predicted, so they never
    trigger *nested* recoveries (the fetch unit enforces this by stamping
    the predicted outcome into the injected record).  They still allocate
    rename checkpoints and Release Queue levels, which is the resource
    pressure that matters for the mechanisms under study.
    """

    #: pre-drawn instructions per bulk refill of the vectorised path.
    BLOCK = 64

    def __init__(self, mix: WrongPathMix, seed: int = 0,
                 int_window: int = 10, fp_window: int = 16,
                 vectorized: Optional[bool] = None) -> None:
        self.mix = mix
        self._rng = np.random.default_rng(seed)
        self._int_regs = list(range(1, 1 + int_window))
        self._fp_regs = list(range(0, fp_window))
        self._int_cursor = 0
        self._fp_cursor = 0
        self._data_base = 0xF00000
        #: pc-agnostic pre-drawn payloads (the vectorised path); consumed
        #: in order across misprediction episodes — exactly as the scalar
        #: generator's RNG stream persists across recoveries — so no
        #: rewind is ever needed at recovery time.
        self._pending: List[tuple] = []
        self._pending_head = 0
        self._vectorized = vectorized_enabled(vectorized) and replay_supported()

    # ------------------------------------------------------------------
    def _next_int_reg(self) -> int:
        reg = self._int_regs[self._int_cursor % len(self._int_regs)]
        self._int_cursor += 1
        return reg

    def _next_fp_reg(self) -> int:
        reg = self._fp_regs[self._fp_cursor % len(self._fp_regs)]
        self._fp_cursor += 1
        return reg

    def _random_addr(self) -> int:
        return self._data_base + int(self._rng.integers(0, 1 << 11)) * 8

    # ------------------------------------------------------------------
    def next_instruction(self, pc: int) -> Instruction:
        """Synthesise the wrong-path instruction at address ``pc``.

        The vectorised path materialises from a pc-agnostic pre-drawn
        payload (the RNG draws are the pc-independent part of an
        instruction; the actual pc — which depends on the front end's
        predicted-taken redirects — is stamped in here, at fetch time).
        Produces bit-identically the instructions of the scalar oracle.
        """
        if self._vectorized:
            if self._pending_head >= len(self._pending):
                if not self._refill():
                    return self._next_instruction_scalar(pc)
            payload = self._pending[self._pending_head]
            self._pending_head += 1
            kind = payload[0]
            if kind == "a":
                return Instruction(pc=pc, op=OpClass.INT_ALU,
                                   dest=(RegClass.INT, payload[1]),
                                   srcs=((RegClass.INT, payload[2]),),
                                   wrong_path=True)
            if kind == "b":
                return Instruction(pc=pc, op=OpClass.BRANCH,
                                   srcs=((RegClass.INT, payload[1]),),
                                   taken=payload[2],
                                   target=pc + payload[3] * 4,
                                   wrong_path=True)
            if kind == "li":
                return Instruction(pc=pc, op=OpClass.LOAD,
                                   dest=(RegClass.INT, payload[1]),
                                   srcs=((RegClass.INT, payload[2]),),
                                   mem_addr=payload[3], wrong_path=True)
            if kind == "lf":
                return Instruction(pc=pc, op=OpClass.FP_LOAD,
                                   dest=(RegClass.FP, payload[1]),
                                   srcs=((RegClass.INT, payload[2]),),
                                   mem_addr=payload[3], wrong_path=True)
            if kind == "s":
                return Instruction(pc=pc, op=OpClass.STORE,
                                   srcs=((RegClass.INT, payload[1]),
                                         (RegClass.INT, payload[2])),
                                   mem_addr=payload[3], wrong_path=True)
            # kind == "f"
            return Instruction(pc=pc, op=payload[1],
                               dest=(RegClass.FP, payload[2]),
                               srcs=((RegClass.FP, payload[3]),),
                               wrong_path=True)
        return self._next_instruction_scalar(pc)

    def _refill(self) -> bool:
        """Pre-draw :data:`BLOCK` instruction payloads in one bulk scan.

        Replays the scalar draw cascade (category, then the category's
        own draws) from one bulk raw block, then rewinds the overdraw, so
        the generator's RNG state after ``n`` consumed instructions is
        identical to ``n`` scalar calls.  Returns False (and disables the
        vectorised path) if the bit generator cannot be replayed.
        """
        block = self.BLOCK
        try:
            cursor = RawCursor(self._rng, 3 * block + 4)
        except ReplayUnsupported:
            self._vectorized = False
            return False
        mix = self.mix
        # The category cascade must replicate the scalar path's
        # subtract-then-compare sequence bit-for-bit (cumulative cuts are
        # not float-equivalent to repeated subtraction).
        mix_branch, mix_load, mix_store, mix_fp = (mix.branch, mix.load,
                                                   mix.store, mix.fp)
        fp_share = mix.fp_load_share
        has_fp = mix_fp > 0
        int_regs, fp_regs = self._int_regs, self._fp_regs
        n_int, n_fp = len(int_regs), len(fp_regs)
        int_cursor, fp_cursor = self._int_cursor, self._fp_cursor
        data_base = self._data_base
        threshold_248 = bounded_threshold(248)
        next_double = cursor.next_double
        next_bounded = cursor.next_bounded
        payloads: List[tuple] = []
        append = payloads.append
        try:
            for _ in range(block):
                draw = next_double()
                int_src = int_regs[int_cursor % n_int]
                if draw < mix_branch:
                    taken = next_double() < 0.5
                    delta = 8 + next_bounded(248, threshold_248)
                    append(("b", int_src, taken, delta))
                    continue
                draw -= mix_branch
                if draw < mix_load:
                    fp_draw = next_double()
                    addr = data_base + next_bounded(2048, 0) * 8
                    if fp_draw < fp_share and has_fp:
                        reg = fp_regs[fp_cursor % n_fp]
                        fp_cursor += 1
                        append(("lf", reg, int_src, addr))
                    else:
                        reg = int_regs[int_cursor % n_int]
                        int_cursor += 1
                        append(("li", reg, int_src, addr))
                    continue
                draw -= mix_load
                if draw < mix_store:
                    value = int_regs[int_cursor % n_int]
                    int_cursor += 1
                    # The scalar path evaluates ``srcs`` before
                    # ``mem_addr``, but neither the value register pick
                    # nor the address consult each other's state; the
                    # address source register is the *pre-advance* peek.
                    addr = data_base + next_bounded(2048, 0) * 8
                    append(("s", value, int_src, addr))
                    continue
                draw -= mix_store
                if draw < mix_fp:
                    op = (OpClass.FP_MULT if next_double() < 0.5
                          else OpClass.FP_ADD)
                    reg = fp_regs[fp_cursor % n_fp]
                    fp_cursor += 1
                    src = fp_regs[fp_cursor % n_fp]
                    append(("f", op, reg, src))
                    continue
                reg = int_regs[int_cursor % n_int]
                int_cursor += 1
                append(("a", reg, int_src))
        finally:
            cursor.finalize()
        self._int_cursor, self._fp_cursor = int_cursor, fp_cursor
        self._pending = payloads
        self._pending_head = 0
        return True

    def _next_instruction_scalar(self, pc: int) -> Instruction:
        """The scalar oracle (the original draw-per-field path)."""
        rng = self._rng
        draw = rng.random()
        mix = self.mix
        int_src = (RegClass.INT, self._int_regs[self._int_cursor % len(self._int_regs)])
        if draw < mix.branch:
            return Instruction(pc=pc, op=OpClass.BRANCH, srcs=(int_src,),
                               taken=bool(rng.random() < 0.5),
                               target=pc + int(rng.integers(8, 256)) * 4,
                               wrong_path=True)
        draw -= mix.branch
        if draw < mix.load:
            if rng.random() < mix.fp_load_share and mix.fp > 0:
                return Instruction(pc=pc, op=OpClass.FP_LOAD,
                                   dest=(RegClass.FP, self._next_fp_reg()),
                                   srcs=(int_src,), mem_addr=self._random_addr(),
                                   wrong_path=True)
            return Instruction(pc=pc, op=OpClass.LOAD,
                               dest=(RegClass.INT, self._next_int_reg()),
                               srcs=(int_src,), mem_addr=self._random_addr(),
                               wrong_path=True)
        draw -= mix.load
        if draw < mix.store:
            value_src = (RegClass.INT, self._next_int_reg())
            return Instruction(pc=pc, op=OpClass.STORE,
                               srcs=(value_src, int_src),
                               mem_addr=self._random_addr(), wrong_path=True)
        draw -= mix.store
        if draw < mix.fp:
            op = OpClass.FP_MULT if rng.random() < 0.5 else OpClass.FP_ADD
            return Instruction(pc=pc, op=op,
                               dest=(RegClass.FP, self._next_fp_reg()),
                               srcs=((RegClass.FP, self._fp_regs[self._fp_cursor % len(self._fp_regs)]),),
                               wrong_path=True)
        return Instruction(pc=pc, op=OpClass.INT_ALU,
                           dest=(RegClass.INT, self._next_int_reg()),
                           srcs=(int_src,), wrong_path=True)

    def next_instructions(self, pc: int, count: int) -> List[Instruction]:
        """Synthesise ``count`` consecutive wrong-path instructions from ``pc``."""
        out: List[Instruction] = []
        for i in range(count):
            out.append(self.next_instruction(pc + 4 * i))
        return out

    @staticmethod
    def for_trace(trace: Trace, seed: int = 0) -> "WrongPathGenerator":
        """Build a generator whose mix mirrors ``trace``."""
        return WrongPathGenerator(WrongPathMix.from_trace(trace), seed=seed)
