"""Wrong-path instruction synthesis.

SimpleScalar's ``sim-outorder`` is execution driven: after a branch
misprediction it keeps fetching and renaming the *actual* wrong-path
instructions until the branch resolves, and those instructions consume
physical registers, issue-queue slots and — for the paper's Section 4
mechanism — schedule conditional releases that must be squashed.

A trace-driven simulator only has the correct path, so this module
supplies a statistically similar stand-in: after the fetch unit follows a
mispredicted branch it draws instructions from a
:class:`WrongPathGenerator` seeded with the benchmark's instruction mix
until the branch resolves.  The injected instructions exercise the exact
same rename / conditional-release / squash machinery (see DESIGN.md,
"Reproduction substitutions").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.isa import Instruction, OpClass, RegClass
from repro.trace.records import Trace


@dataclass
class WrongPathMix:
    """Operation mix used when synthesising wrong-path instructions.

    The fractions need not sum to one; the remainder is filled with integer
    ALU operations.
    """

    load: float = 0.22
    store: float = 0.10
    branch: float = 0.12
    fp: float = 0.0
    fp_load_share: float = 0.4

    @staticmethod
    def from_trace(trace: Trace) -> "WrongPathMix":
        """Derive a mix from the correct-path trace statistics."""
        summary = trace.summary()
        fp_ops = sum(frac for name, frac in summary.mix.items()
                     if name in ("FP_ADD", "FP_MULT", "FP_DIV"))
        return WrongPathMix(
            load=summary.load_fraction,
            store=summary.store_fraction,
            branch=summary.branch_fraction,
            fp=fp_ops,
        )


class WrongPathGenerator:
    """Generates synthetic instructions for the wrong path of a misprediction.

    Wrong-path control flow is simplified in one respect: wrong-path
    branches always resolve the way they were predicted, so they never
    trigger *nested* recoveries (the fetch unit enforces this by stamping
    the predicted outcome into the injected record).  They still allocate
    rename checkpoints and Release Queue levels, which is the resource
    pressure that matters for the mechanisms under study.
    """

    def __init__(self, mix: WrongPathMix, seed: int = 0,
                 int_window: int = 10, fp_window: int = 16) -> None:
        self.mix = mix
        self._rng = np.random.default_rng(seed)
        self._int_regs = list(range(1, 1 + int_window))
        self._fp_regs = list(range(0, fp_window))
        self._int_cursor = 0
        self._fp_cursor = 0
        self._data_base = 0xF00000

    # ------------------------------------------------------------------
    def _next_int_reg(self) -> int:
        reg = self._int_regs[self._int_cursor % len(self._int_regs)]
        self._int_cursor += 1
        return reg

    def _next_fp_reg(self) -> int:
        reg = self._fp_regs[self._fp_cursor % len(self._fp_regs)]
        self._fp_cursor += 1
        return reg

    def _random_addr(self) -> int:
        return self._data_base + int(self._rng.integers(0, 1 << 11)) * 8

    # ------------------------------------------------------------------
    def next_instruction(self, pc: int) -> Instruction:
        """Synthesise the wrong-path instruction at address ``pc``."""
        rng = self._rng
        draw = rng.random()
        mix = self.mix
        int_src = (RegClass.INT, self._int_regs[self._int_cursor % len(self._int_regs)])
        if draw < mix.branch:
            return Instruction(pc=pc, op=OpClass.BRANCH, srcs=(int_src,),
                               taken=bool(rng.random() < 0.5),
                               target=pc + int(rng.integers(8, 256)) * 4,
                               wrong_path=True)
        draw -= mix.branch
        if draw < mix.load:
            if rng.random() < mix.fp_load_share and mix.fp > 0:
                return Instruction(pc=pc, op=OpClass.FP_LOAD,
                                   dest=(RegClass.FP, self._next_fp_reg()),
                                   srcs=(int_src,), mem_addr=self._random_addr(),
                                   wrong_path=True)
            return Instruction(pc=pc, op=OpClass.LOAD,
                               dest=(RegClass.INT, self._next_int_reg()),
                               srcs=(int_src,), mem_addr=self._random_addr(),
                               wrong_path=True)
        draw -= mix.load
        if draw < mix.store:
            value_src = (RegClass.INT, self._next_int_reg())
            return Instruction(pc=pc, op=OpClass.STORE,
                               srcs=(value_src, int_src),
                               mem_addr=self._random_addr(), wrong_path=True)
        draw -= mix.store
        if draw < mix.fp:
            op = OpClass.FP_MULT if rng.random() < 0.5 else OpClass.FP_ADD
            return Instruction(pc=pc, op=op,
                               dest=(RegClass.FP, self._next_fp_reg()),
                               srcs=((RegClass.FP, self._fp_regs[self._fp_cursor % len(self._fp_regs)]),),
                               wrong_path=True)
        return Instruction(pc=pc, op=OpClass.INT_ALU,
                           dest=(RegClass.INT, self._next_int_reg()),
                           srcs=(int_src,), wrong_path=True)

    def next_instructions(self, pc: int, count: int) -> List[Instruction]:
        """Synthesise ``count`` consecutive wrong-path instructions from ``pc``."""
        out: List[Instruction] = []
        for i in range(count):
            out.append(self.next_instruction(pc + 4 * i))
        return out

    @staticmethod
    def for_trace(trace: Trace, seed: int = 0) -> "WrongPathGenerator":
        """Build a generator whose mix mirrors ``trace``."""
        return WrongPathGenerator(WrongPathMix.from_trace(trace), seed=seed)
