"""Trace containers and summary statistics.

A :class:`Trace` is an ordered sequence of
:class:`~repro.isa.instructions.Instruction` records together with the
metadata the experiment harness needs (benchmark name, which register file
the paper's figures measure for this program, the generator seed).  The
:class:`TraceSummary` gives the aggregate properties that the workload
calibration tests assert on (instruction mix, branch density, register
working sets).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence

from repro.isa import Instruction, OpClass, RegClass


@dataclass(frozen=True)
class TraceSummary:
    """Aggregate statistics of a dynamic trace.

    Attributes
    ----------
    length:
        Number of dynamic instructions.
    mix:
        Fraction of instructions per :class:`OpClass` name.
    branch_fraction:
        Fraction of instructions that are branches.
    load_fraction / store_fraction:
        Fractions of loads and stores.
    int_regs_written / fp_regs_written:
        Number of distinct logical registers of each class that appear as a
        destination anywhere in the trace (the "register working set").
    avg_def_use_distance:
        Mean distance, in dynamic instructions, between an instruction that
        defines a logical register and the *last* read of that definition
        before its next redefinition.  This is the quantity that drives
        Idle time (Figure 3 of the paper).
    avg_def_redefine_distance:
        Mean distance between a definition of a logical register and its
        next redefinition (the conventional-release lifetime).
    """

    length: int
    mix: Dict[str, float]
    branch_fraction: float
    load_fraction: float
    store_fraction: float
    int_regs_written: int
    fp_regs_written: int
    avg_def_use_distance: float
    avg_def_redefine_distance: float


@dataclass
class Trace:
    """A dynamic instruction trace for one synthetic benchmark.

    Attributes
    ----------
    name:
        Benchmark name ("swim", "gcc", ...).
    focus_class:
        The register class whose file the paper measures for this program:
        integer programs report the integer file, FP programs the FP file
        (Section 2: "We consider only integer registers for integer
        programs and FP registers for FP programs").
    instructions:
        The dynamic instruction sequence.
    seed:
        RNG seed used to generate the trace (for reproducibility).
    """

    name: str
    focus_class: RegClass
    instructions: List[Instruction]
    seed: int = 0
    #: memoised :meth:`summary` result.  Traces are cached and shared
    #: across whole sweeps, and every simulation engine consults the
    #: summary (via the wrong-path mix derivation) at construction.
    _summary: object = field(default=None, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    # ------------------------------------------------------------------
    def summary(self) -> TraceSummary:
        """Aggregate statistics used by calibration tests and reports.

        Computed once per trace and memoised: the instruction list is
        treated as immutable after construction.
        """
        if self._summary is None:
            self._summary = self._compute_summary()
        return self._summary

    def _compute_summary(self) -> TraceSummary:
        instructions = self.instructions
        n = len(instructions)
        if n == 0:
            return TraceSummary(
                length=0, mix={}, branch_fraction=0.0, load_fraction=0.0,
                store_fraction=0.0, int_regs_written=0, fp_regs_written=0,
                avg_def_use_distance=0.0, avg_def_redefine_distance=0.0,
            )

        counts: Counter = Counter(inst.op for inst in instructions)
        mix = {op.name: counts.get(op, 0) / n for op in OpClass if counts.get(op, 0)}
        branches = sum(1 for inst in instructions if inst.is_branch)
        loads = sum(1 for inst in instructions if inst.is_load)
        stores = sum(1 for inst in instructions if inst.is_store)

        int_written = set()
        fp_written = set()
        # Per logical register: position of the current definition and of the
        # latest read of that definition.
        last_def: Dict[tuple, int] = {}
        last_read: Dict[tuple, int] = {}
        use_distances: List[int] = []
        redefine_distances: List[int] = []

        for pos, inst in enumerate(instructions):
            for src in inst.srcs:
                if src in last_def:
                    last_read[src] = pos
            if inst.dest is not None:
                reg = inst.dest
                if reg[0] is RegClass.INT or reg[0] == RegClass.INT:
                    int_written.add(reg[1])
                else:
                    fp_written.add(reg[1])
                if reg in last_def:
                    def_pos = last_def[reg]
                    redefine_distances.append(pos - def_pos)
                    use_pos = last_read.get(reg, def_pos)
                    if use_pos >= def_pos:
                        use_distances.append(use_pos - def_pos)
                last_def[reg] = pos
                last_read.pop(reg, None)

        avg_use = sum(use_distances) / len(use_distances) if use_distances else 0.0
        avg_redef = (
            sum(redefine_distances) / len(redefine_distances)
            if redefine_distances
            else 0.0
        )
        return TraceSummary(
            length=n,
            mix=mix,
            branch_fraction=branches / n,
            load_fraction=loads / n,
            store_fraction=stores / n,
            int_regs_written=len(int_written),
            fp_regs_written=len(fp_written),
            avg_def_use_distance=avg_use,
            avg_def_redefine_distance=avg_redef,
        )

    # ------------------------------------------------------------------
    def truncated(self, max_instructions: int) -> "Trace":
        """Return a copy limited to the first ``max_instructions`` records."""
        if max_instructions >= len(self.instructions):
            return self
        return Trace(
            name=self.name,
            focus_class=self.focus_class,
            instructions=self.instructions[:max_instructions],
            seed=self.seed,
        )

    @staticmethod
    def concatenate(name: str, focus_class: RegClass,
                    pieces: Sequence[Sequence[Instruction]], seed: int = 0) -> "Trace":
        """Build a trace by concatenating instruction sequences in order."""
        instructions: List[Instruction] = []
        for piece in pieces:
            instructions.extend(piece)
        return Trace(name=name, focus_class=focus_class,
                     instructions=instructions, seed=seed)
