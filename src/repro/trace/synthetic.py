"""Low-level building blocks for synthetic trace generation.

Three properties of the dynamic instruction stream drive everything the
paper measures, and each has a dedicated helper here:

* **register lifetime structure** — :class:`RegisterRotation` controls how
  far apart definitions of the same logical register are (the
  def-to-redefine distance is what the conventional release policy pays
  for) and is shared by all kernels;
* **branch behaviour** — :class:`BranchSite` produces outcome streams with
  a controlled amount of learnable structure (loop trip counts, biased
  data-dependent branches, repeating patterns) so the simulated gshare
  predictor reaches realistic accuracy on each benchmark class;
* **memory locality** — :class:`StridedStream` and :class:`RandomStream`
  produce address streams whose footprint relative to the cache sizes in
  Table 2 yields the intended hit rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Sequence

import numpy as np


class AddressStream(Protocol):
    """Protocol for effective-address generators used by loads and stores."""

    def next_address(self, rng: np.random.Generator) -> int:
        """Return the next effective address of the stream."""
        ...


@dataclass
class StridedStream:
    """Sequential array walk: ``base + (i * stride) mod footprint``.

    Models the unit- or small-stride array traversals of the SPEC95 FP
    codes (swim, mgrid, ...).  ``footprint`` bounds the touched region so
    the L1/L2 behaviour can be dialled in: a footprint larger than the
    32 KB L1 but smaller than the 1 MB L2 gives the "misses L1, hits L2"
    regime typical of these programs.
    """

    base: int
    stride: int = 8
    footprint: int = 1 << 18
    offset: int = 0

    def next_address(self, rng: np.random.Generator) -> int:
        """Return the next address and advance the walk."""
        addr = self.base + (self.offset % self.footprint)
        self.offset += self.stride
        return addr

    def reset(self) -> None:
        """Restart the walk from the stream base."""
        self.offset = 0


@dataclass
class RandomStream:
    """Uniformly random addresses over a working set.

    Models the irregular heap/pointer accesses of the integer codes.  A
    working set comparable to (or somewhat larger than) the L1 data cache
    produces the moderate L1 miss rates typical of gcc/go/li.
    """

    base: int
    footprint: int = 1 << 15
    align: int = 8

    def next_address(self, rng: np.random.Generator) -> int:
        """Return a random aligned address inside the working set."""
        span = max(self.footprint // self.align, 1)
        return self.base + int(rng.integers(0, span)) * self.align


@dataclass
class PointerChaseStream:
    """Pseudo pointer-chasing: the next address depends on the previous one.

    A fixed random permutation over ``n_nodes`` "nodes" is walked one node
    per call, reproducing the dependent-load behaviour of linked-list and
    tree traversals (li, perl) without simulating data values.
    """

    base: int
    n_nodes: int = 4096
    node_size: int = 32
    seed: int = 1234
    _order: Optional[np.ndarray] = field(default=None, repr=False)
    _pos: int = 0

    def _ensure_order(self) -> None:
        if self._order is None:
            rng = np.random.default_rng(self.seed)
            self._order = rng.permutation(self.n_nodes)

    def next_address(self, rng: np.random.Generator) -> int:
        """Return the address of the next node in the chase order."""
        self._ensure_order()
        node = int(self._order[self._pos % self.n_nodes])
        self._pos += 1
        return self.base + node * self.node_size


@dataclass
class RegisterRotation:
    """Round-robin allocator over a window of logical register indices.

    Calling :meth:`next_dest` returns the logical register to use as the
    next destination; the same register will not be returned again until
    ``len(window)`` further calls, so the def-to-redefine distance (and
    with it the register lifetime seen by the release policies) is
    directly proportional to the window size times the number of
    instructions emitted between destination writes.

    :meth:`recent` returns recently defined registers to be used as
    sources, which keeps the def-to-last-use distance short relative to
    the redefine distance — the gap between the two is exactly the Idle
    interval the paper's early-release schemes reclaim.
    """

    window: Sequence[int]
    _cursor: int = 0
    _history: List[int] = field(default_factory=list)

    def next_dest(self) -> int:
        """Return the next destination register of the rotation."""
        reg = self.window[self._cursor % len(self.window)]
        self._cursor += 1
        self._history.append(reg)
        if len(self._history) > 4 * len(self.window):
            del self._history[: 2 * len(self.window)]
        return reg

    def recent(self, k: int = 1) -> int:
        """Return the register defined ``k`` destinations ago (1 = most recent).

        Before any destination has been produced, the first register of the
        window is returned so callers always get a valid source.
        """
        if not self._history:
            return self.window[0]
        k = min(k, len(self._history))
        return self._history[-k]

    @property
    def live_count(self) -> int:
        """Number of distinct registers handed out so far (≤ window size)."""
        return min(self._cursor, len(self.window))


@dataclass
class BranchSite:
    """A static branch with a parameterised outcome model.

    ``kind`` selects the outcome model:

    ``"loop"``
        Taken ``trip - 1`` consecutive times, then not taken once
        (classic backward loop branch).  Almost perfectly predictable by
        gshare once warmed up, provided the trip count is not tiny.
    ``"bernoulli"``
        Independent outcomes, taken with probability ``bias``.  The best
        any predictor can do is ``max(bias, 1 - bias)``; used sparingly,
        for genuinely data-dependent branches.
    ``"pattern"``
        A repeating fixed pattern of outcomes (e.g. "TTNT"), learnable by
        a history-based predictor; used for well-structured but non-loop
        control flow.
    ``"correlated"``
        The outcome is a fixed (per-site, pseudo-random) boolean function
        of the recent *global* branch history, flipped with probability
        ``noise``.  This reproduces what makes real integer branches
        predictable: they correlate with the outcomes of preceding
        branches, so a global-history predictor learns them, while the
        ``noise`` term sets the floor on the achievable misprediction
        rate.  Callers must pass the running global outcome history to
        :meth:`next_outcome`.
    """

    pc: int
    target: int
    kind: str = "loop"
    trip: int = 64
    bias: float = 0.5
    pattern: Sequence[bool] = ()
    #: probability of flipping the history-determined outcome ("correlated").
    noise: float = 0.05
    #: number of global-history bits the correlated outcome depends on.
    context_bits: int = 8
    _count: int = 0
    _context_table: dict = field(default_factory=dict, repr=False)

    def next_outcome(self, rng: np.random.Generator, global_history: int = 0) -> bool:
        """Return the actual outcome (taken?) of the next dynamic instance.

        ``global_history`` (least-significant bit = most recent branch
        outcome of the whole kernel) is only consulted by ``"correlated"``
        sites.
        """
        self._count += 1
        if self.kind == "loop":
            return (self._count % self.trip) != 0
        if self.kind == "bernoulli":
            return bool(rng.random() < self.bias)
        if self.kind == "pattern":
            if not self.pattern:
                return False
            return bool(self.pattern[(self._count - 1) % len(self.pattern)])
        if self.kind == "correlated":
            outcome = self.correlated_outcome(global_history)
            if self.noise > 0.0 and rng.random() < self.noise:
                outcome = not outcome
            return outcome
        raise ValueError(f"unknown branch site kind: {self.kind!r}")

    def correlated_outcome(self, global_history: int) -> bool:
        """The history-determined outcome of a ``"correlated"`` site,
        *before* the noise flip.

        Shared by :meth:`next_outcome` and the vectorised chunk emitters
        (which draw their noise flips from pre-drawn columns), so the
        correlated model lives in exactly one place.
        """
        context = global_history & ((1 << self.context_bits) - 1)
        outcome = self._context_table.get(context)
        if outcome is None:
            # The per-context outcome is a fixed property of the site,
            # drawn once with a deterministic per-site generator so the
            # warm-up and measured segments see the same function.
            site_rng = np.random.default_rng((self.pc << 10) ^ context)
            outcome = bool(site_rng.random() < self.bias)
            self._context_table[context] = outcome
        return outcome

    def reset(self) -> None:
        """Reset the dynamic instance counter (used between trace segments)."""
        self._count = 0
