"""Cycle-level out-of-order processor model.

:class:`~repro.pipeline.config.ProcessorConfig` carries the paper's
Table 2 parameters (all overridable), :class:`~repro.pipeline.processor.Processor`
is the pipeline facade over :mod:`repro.engine`, and
:func:`~repro.pipeline.processor.simulate` is the one-call entry point
used by the experiment harness.

``Processor`` / ``simulate`` / ``DeadlockError`` are resolved lazily
(PEP 562): the facade imports :mod:`repro.engine`, which itself needs
:mod:`repro.pipeline.config`, and the deferred lookup keeps that cycle
harmless regardless of which package is imported first.
"""

from repro.pipeline.config import ProcessorConfig
from repro.pipeline.stats import SimStats

__all__ = ["ProcessorConfig", "SimStats", "Processor", "simulate", "DeadlockError"]


def __getattr__(name):
    if name in ("Processor", "simulate", "DeadlockError"):
        from repro.pipeline import processor

        return getattr(processor, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
