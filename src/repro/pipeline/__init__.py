"""Cycle-level out-of-order processor model.

:class:`~repro.pipeline.config.ProcessorConfig` carries the paper's
Table 2 parameters (all overridable), :class:`~repro.pipeline.processor.Processor`
is the pipeline itself, and :func:`~repro.pipeline.processor.simulate`
is the one-call entry point used by the experiment harness.
"""

from repro.pipeline.config import ProcessorConfig
from repro.pipeline.stats import SimStats
from repro.pipeline.processor import Processor, simulate

__all__ = ["ProcessorConfig", "SimStats", "Processor", "simulate"]
