"""The cycle-level out-of-order processor.

The pipeline processes, each cycle and in reverse order so same-cycle
producer/consumer interactions behave like a real machine:

1. **commit**    — retire up to ``commit_width`` completed head entries,
   update the in-order map table, drive the release policy's commit hooks,
   take exceptions;
2. **writeback** — finish instructions whose execution latency expires this
   cycle, wake their consumers, resolve branches (confirm or recover);
3. **issue**     — select up to ``issue_width`` ready instructions,
   oldest first, subject to functional-unit and load/store-queue rules;
4. **rename**    — rename/dispatch up to ``rename_width`` decoded
   instructions, allocating physical registers, ROS/LSQ entries and branch
   checkpoints, and invoking the release policy's rename hooks (this is
   where early releases are scheduled and where register-shortage stalls
   happen);
5. **fetch**     — fetch up to ``fetch_width`` instructions from the trace
   (or the wrong-path generator) into the front-end pipe.

The processor itself implements the
:class:`repro.core.release_policy.PipelineView` protocol the policies use.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.backend.functional_units import FunctionalUnitPool
from repro.backend.lsq import LoadStoreQueue
from repro.backend.ros import ROSEntry, ReorderStructure
from repro.core import make_release_policy
from repro.core.release_policy import PolicyOptions, ReleasePolicy
from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.fetch import FetchedOp, FetchUnit
from repro.frontend.gshare import GsharePredictor
from repro.isa import OpClass, RegClass
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.config import ProcessorConfig
from repro.pipeline.stats import RegisterFileStats, SimStats
from repro.rename.checkpoints import Checkpoint, CheckpointStack
from repro.rename.iomt import InOrderMapTable
from repro.rename.map_table import MapTable
from repro.rename.register_file import PhysicalRegisterFile
from repro.trace.records import Trace
from repro.trace.wrongpath import WrongPathGenerator

#: Dispatch stall reason labels used in :attr:`SimStats.dispatch_stalls`.
STALL_ROS_FULL = "ros_full"
STALL_LSQ_FULL = "lsq_full"
STALL_CHECKPOINTS_FULL = "checkpoints_full"
STALL_NO_FREE_INT = "no_free_int_register"
STALL_NO_FREE_FP = "no_free_fp_register"


class DeadlockError(RuntimeError):
    """Raised when the pipeline makes no forward progress for many cycles."""


class Processor:
    """Trace-driven cycle-level out-of-order processor (paper Table 2)."""

    def __init__(self, trace: Trace, config: Optional[ProcessorConfig] = None) -> None:
        self.trace = trace
        self.config = config or ProcessorConfig()
        cfg = self.config

        # ------------------------------------------------------------ memory & front end
        self.memory = MemoryHierarchy(cfg.memory)
        self.predictor = GsharePredictor(history_bits=cfg.gshare_history_bits)
        self.btb = BranchTargetBuffer(entries=cfg.btb_entries,
                                      associativity=cfg.btb_associativity)
        wrongpath = (WrongPathGenerator.for_trace(trace, seed=cfg.seed)
                     if cfg.enable_wrong_path else None)
        self.fetch_unit = FetchUnit(
            trace, self.predictor, self.btb, self.memory, wrongpath,
            fetch_width=cfg.fetch_width,
            max_taken_per_cycle=cfg.max_taken_branches_per_cycle)

        # ------------------------------------------------------------ rename substrate
        self.register_files: Dict[RegClass, PhysicalRegisterFile] = {
            RegClass.INT: PhysicalRegisterFile(RegClass.INT, cfg.num_physical_int,
                                               cfg.num_logical_int),
            RegClass.FP: PhysicalRegisterFile(RegClass.FP, cfg.num_physical_fp,
                                              cfg.num_logical_fp),
        }
        self.map_tables: Dict[RegClass, MapTable] = {
            rc: MapTable(rf.num_logical, range(rf.num_logical))
            for rc, rf in self.register_files.items()
        }
        self.iomts: Dict[RegClass, InOrderMapTable] = {
            rc: InOrderMapTable(rf.num_logical, range(rf.num_logical))
            for rc, rf in self.register_files.items()
        }
        self.checkpoints = CheckpointStack(capacity=cfg.max_pending_branches)

        options = PolicyOptions(reuse_on_committed_lu=cfg.reuse_on_committed_lu)
        self.policies: Dict[RegClass, ReleasePolicy] = {
            rc: make_release_policy(cfg.release_policy, rc, self.register_files[rc],
                                    self.map_tables[rc], self.iomts[rc], self,
                                    options=options)
            for rc in (RegClass.INT, RegClass.FP)
        }

        # ------------------------------------------------------------ back end
        self.ros = ReorderStructure(capacity=cfg.ros_size)
        self.lsq = LoadStoreQueue(capacity=cfg.lsq_size)
        self.fus = FunctionalUnitPool(cfg.functional_units)

        # ------------------------------------------------------------ pipeline state
        self.cycle = 0
        self._seq = 0
        self._committed_watermark = -1
        #: front-end pipe: (cycle the op becomes available to rename, op).
        self._decode_queue: Deque[Tuple[int, FetchedOp]] = deque()
        #: completion events: cycle -> entries finishing execution.
        self._completions: Dict[int, List[ROSEntry]] = {}
        #: consumers waiting on a producer seq (wakeup lists).
        self._consumers: Dict[int, List[ROSEntry]] = {}
        self._exception_rng = np.random.default_rng(cfg.seed + 0xE)

        # ------------------------------------------------------------ statistics
        self.stats = SimStats(benchmark=trace.name, release_policy=cfg.release_policy)
        self.stats.dispatch_stalls = {
            STALL_ROS_FULL: 0, STALL_LSQ_FULL: 0, STALL_CHECKPOINTS_FULL: 0,
            STALL_NO_FREE_INT: 0, STALL_NO_FREE_FP: 0,
        }
        self._last_commit_cycle = 0

        if cfg.warmup:
            self._warm_state()

    # ------------------------------------------------------------------
    def _warm_state(self) -> None:
        """Bring caches, BTB and branch predictor to steady state.

        The paper measures multi-hundred-million-instruction runs, so its
        structures are warm for essentially the whole measurement.  The
        scaled-down traces used here would otherwise be dominated by cold
        misses and predictor training; one functional pass (no timing) over
        a *different* segment of the same benchmark removes that artefact.

        The warm-up segment is generated from the same benchmark profile
        with a different seed, so the predictor learns the benchmark's
        static branch sites and statistical behaviour but cannot memorise
        the exact dynamic outcome sequence it will be measured on.  When the
        trace does not come from the workload registry (hand-built test
        traces), the trace itself is used.  Statistics are reset afterwards
        so reported rates cover only the measured run.
        """
        warmup_trace = self._build_warmup_trace()
        memory = self.memory
        predictor = self.predictor
        btb = self.btb
        for inst in warmup_trace:
            memory.instruction_access(inst.pc)
            if inst.is_mem:
                if inst.is_store:
                    memory.data_write(inst.mem_addr)
                else:
                    memory.data_read(inst.mem_addr)
            if inst.is_branch:
                record = predictor.predict(inst.pc)
                predictor.resolve(record, inst.taken)
                if inst.taken:
                    btb.update(inst.pc, inst.target)
        memory.reset_statistics()
        btb.reset_statistics()
        predictor.reset_statistics()

    def _build_warmup_trace(self) -> Trace:
        """Return the instruction sequence used for warm-up (see :meth:`_warm_state`)."""
        from repro.trace.workloads import WORKLOADS, get_workload

        profile = WORKLOADS.get(self.trace.name)
        if profile is None:
            return self.trace
        length = min(len(self.trace), 20_000)
        # get_workload caches, so repeated simulations of the same benchmark
        # (different policies / register sizes) reuse the warm-up segment.
        return get_workload(self.trace.name, length, seed=self.trace.seed + 7919)

    # ==================================================================
    # PipelineView protocol (used by the release policies)
    # ==================================================================
    def is_committed(self, seq: int) -> bool:
        """In-order commit watermark test (the paper's LUs Table C bit)."""
        return seq <= self._committed_watermark

    def has_pending_branch_younger_than(self, seq: int) -> bool:
        """True when an unresolved branch younger than ``seq`` is in flight."""
        return self.checkpoints.has_pending_younger_than(seq)

    def count_pending_branches(self) -> int:
        """Number of unresolved branches (Release Queue TAIL level)."""
        return self.checkpoints.count_pending()

    def ros_entry(self, seq: int) -> Optional[ROSEntry]:
        """In-flight ROS entry with sequence number ``seq``."""
        return self.ros.find(seq)

    def current_cycle(self) -> int:
        """Current simulation cycle."""
        return self.cycle

    # ==================================================================
    # Top-level driver
    # ==================================================================
    def step(self) -> None:
        """Simulate exactly one cycle (commit → writeback → issue → rename → fetch)."""
        self._commit_stage()
        self._writeback_stage()
        self._issue_stage()
        self._rename_stage()
        self._fetch_stage()
        self.cycle += 1

    @property
    def finished(self) -> bool:
        """True when every fetched instruction has drained from the pipeline."""
        return (self.fetch_unit.trace_exhausted and not self._decode_queue
                and self.ros.is_empty)

    def run(self, max_instructions: Optional[int] = None,
            max_cycles: Optional[int] = None,
            deadlock_threshold: int = 50_000) -> SimStats:
        """Run the simulation until the trace drains (or a limit is hit)."""
        limit = max_instructions if max_instructions is not None else len(self.trace)
        while True:
            self.step()
            if self.stats.committed_instructions >= limit:
                break
            if self.finished:
                break
            if max_cycles is not None and self.cycle >= max_cycles:
                break
            if self.cycle - self._last_commit_cycle > deadlock_threshold:
                raise DeadlockError(
                    f"no instruction committed for {deadlock_threshold} cycles "
                    f"(cycle={self.cycle}, ROS={len(self.ros)}, "
                    f"head={self.ros.head()!r})")
        return self._collect_stats()

    # ==================================================================
    # Stage 1: commit
    # ==================================================================
    def _commit_stage(self) -> None:
        committed = 0
        while committed < self.config.commit_width:
            entry = self.ros.head()
            if entry is None or not entry.completed:
                break
            self.ros.pop_head()
            committed += 1
            self._committed_watermark = entry.seq
            self._last_commit_cycle = self.cycle
            self.stats.committed_instructions += 1
            op_name = entry.inst.op.name
            self.stats.committed_by_class[op_name] = \
                self.stats.committed_by_class.get(op_name, 0) + 1

            # Architectural (in-order) map table update.
            if entry.has_dest:
                assert entry.dest_class is not None and entry.dest_logical is not None
                self.iomts[entry.dest_class].commit_mapping(entry.dest_logical,
                                                            entry.pd)
            # Release-policy commit hooks (both register classes see every entry).
            for policy in self.policies.values():
                policy.on_commit(entry, self.cycle)

            # Occupancy accounting: this commit is (potentially) the last use
            # of each source register, and of the destination if never read.
            for reg_class, _logical, physical in entry.src_regs:
                self.register_files[reg_class].note_use_commit(physical, self.cycle)
            if entry.has_dest:
                self.register_files[entry.dest_class].note_use_commit(entry.pd,
                                                                      self.cycle)

            # Memory operations leave the LSQ at commit; stores write the cache.
            if entry.inst.is_store:
                self.memory.data_write(entry.inst.mem_addr)
                self.lsq.remove(entry.seq)
            elif entry.inst.is_load:
                self.lsq.remove(entry.seq)

            if entry.exception:
                self.stats.exceptions_taken += 1
                self._exception_flush(entry)
                break

    # ------------------------------------------------------------------
    def _exception_flush(self, excepting: ROSEntry) -> None:
        """Precise-exception recovery: flush, rebuild the map from the IOMT."""
        squashed = self.ros.squash_all()
        self._undo_squashed(squashed)
        self.lsq.clear()
        self.checkpoints.clear()
        for reg_class, map_table in self.map_tables.items():
            map_table.restore_architectural(self.iomts[reg_class].snapshot())
        for policy in self.policies.values():
            policy.on_exception_flush(self.cycle)
        self._decode_queue.clear()
        if excepting.resume_cursor >= 0:
            self.fetch_unit.recover(excepting.resume_cursor)

    # ==================================================================
    # Stage 2: writeback / branch resolution
    # ==================================================================
    def _writeback_stage(self) -> None:
        entries = self._completions.pop(self.cycle, None)
        if not entries:
            return
        for entry in entries:
            if entry.squashed:
                continue
            entry.completed = True
            entry.complete_cycle = self.cycle
            if entry.has_dest:
                self.register_files[entry.dest_class].mark_written(entry.pd, self.cycle)
            # Wake up consumers.
            for consumer in self._consumers.pop(entry.seq, ()):
                consumer.wait_producers.discard(entry.seq)
            if entry.inst.is_load:
                self.lsq.mark_done(entry.seq)
            if entry.inst.is_branch:
                self._resolve_branch(entry)

    # ------------------------------------------------------------------
    def _resolve_branch(self, entry: ROSEntry) -> None:
        entry.branch_resolved = True
        taken = entry.inst.taken
        if entry.prediction is not None:
            self.predictor.resolve(entry.prediction, taken)
        if taken:
            self.btb.update(entry.inst.pc, entry.inst.target)
        if not entry.wrong_path:
            self.stats.branches_resolved += 1

        if entry.fetch_mispredicted:
            self.stats.branch_mispredictions += 1
            self._recover_from_misprediction(entry)
        else:
            self.checkpoints.confirm(entry.seq)
            for policy in self.policies.values():
                policy.on_branch_confirmed(entry.seq)

    def _recover_from_misprediction(self, branch: ROSEntry) -> None:
        """Squash younger instructions and restore checkpointed state."""
        squashed = self.ros.squash_younger_than(branch.seq)
        self._undo_squashed(squashed)
        self.lsq.squash_younger_than(branch.seq)

        # Conditional releases scheduled by the squashed path disappear.
        for policy in self.policies.values():
            policy.on_branch_mispredicted(branch.seq)

        checkpoint = self.checkpoints.mispredict(branch.seq)
        if checkpoint is not None:
            for reg_class, snapshot in checkpoint.map_snapshots.items():
                self.map_tables[reg_class].restore(snapshot)
            for reg_class, snapshot in checkpoint.policy_snapshots.items():
                self.policies[reg_class].restore_state(snapshot)

        self._decode_queue.clear()
        if branch.resume_cursor >= 0:
            self.fetch_unit.recover(branch.resume_cursor)

    def _undo_squashed(self, squashed: List[ROSEntry]) -> None:
        """Free resources of squashed entries (called youngest first)."""
        for entry in squashed:
            entry.squashed = True
            self.stats.squashed_instructions += 1
            if entry.has_dest and entry.allocated_new:
                self.register_files[entry.dest_class].release(entry.pd, self.cycle)
            elif entry.has_dest and entry.reused:
                # The reused register's value is still the committed one.
                self.register_files[entry.dest_class].set_producer(entry.pd, None)
            for policy in self.policies.values():
                policy.on_squash(entry, self.cycle)
            self._consumers.pop(entry.seq, None)

    # ==================================================================
    # Stage 3: issue / execute
    # ==================================================================
    def _issue_stage(self) -> None:
        issued = 0
        for entry in self.ros:
            if issued >= self.config.issue_width:
                break
            if entry.issued or entry.completed:
                continue
            if entry.wait_producers:
                continue
            inst = entry.inst
            if inst.is_load and not self.lsq.load_may_issue(entry.seq):
                continue
            if not self.fus.can_issue(inst.op, self.cycle):
                self.fus.note_structural_stall()
                continue
            latency = self.fus.issue(inst.op, self.cycle)
            entry.issued = True
            entry.issue_cycle = self.cycle
            issued += 1

            if inst.is_load:
                self.lsq.mark_address_known(entry.seq)
                if self.lsq.store_forwards_to(entry.seq, inst.mem_addr):
                    mem_latency = 1
                else:
                    mem_latency = self.memory.data_read(inst.mem_addr)
                entry.mem_latency = mem_latency
                complete_at = self.cycle + latency + mem_latency
            elif inst.is_store:
                self.lsq.mark_address_known(entry.seq)
                complete_at = self.cycle + latency
            else:
                complete_at = self.cycle + latency
            self._completions.setdefault(complete_at, []).append(entry)

    # ==================================================================
    # Stage 4: rename / dispatch
    # ==================================================================
    def _rename_stage(self) -> None:
        renamed = 0
        while renamed < self.config.rename_width and self._decode_queue:
            ready_cycle, op = self._decode_queue[0]
            if ready_cycle > self.cycle:
                break
            if not self._rename_one(op):
                break
            self._decode_queue.popleft()
            renamed += 1

    def _rename_one(self, op: FetchedOp) -> bool:
        """Rename a single instruction; returns False (and stalls) on a resource hazard."""
        inst = op.inst
        cfg = self.config

        if self.ros.is_full:
            self.stats.dispatch_stalls[STALL_ROS_FULL] += 1
            return False
        if inst.is_mem and self.lsq.is_full:
            self.stats.dispatch_stalls[STALL_LSQ_FULL] += 1
            return False
        if inst.is_branch and self.checkpoints.is_full:
            self.stats.dispatch_stalls[STALL_CHECKPOINTS_FULL] += 1
            return False
        if inst.dest is not None:
            dest_class = RegClass(inst.dest[0])
            if not self.register_files[dest_class].can_allocate() and \
                    not self._may_avoid_allocation(dest_class, inst.dest[1]):
                key = STALL_NO_FREE_INT if dest_class is RegClass.INT else STALL_NO_FREE_FP
                self.stats.dispatch_stalls[key] += 1
                return False

        entry = ROSEntry(self._seq, inst)
        self._seq += 1
        entry.rename_cycle = self.cycle
        entry.resume_cursor = op.resume_cursor
        entry.prediction = op.prediction
        entry.predicted_taken = op.predicted_taken
        entry.fetch_mispredicted = op.mispredicted

        # ------------------------------------------------------- sources
        for slot, (reg_class, logical) in enumerate(inst.srcs):
            reg_class = RegClass(reg_class)
            physical = self.map_tables[reg_class].lookup(logical)
            entry.src_regs.append((reg_class, logical, physical))
            # Stores wait only for their *address* operands before issuing
            # (slot 0 is the value by trace convention): the paper's rule is
            # that loads wait for prior store addresses, and the data is
            # needed no earlier than commit, which in-order retirement of
            # the older producer already guarantees.
            wait_for_issue = not (inst.is_store and slot == 0)
            if wait_for_issue:
                producer = self.register_files[reg_class].producer_of(physical)
                if producer is not None:
                    entry.wait_producers.add(producer)
                    self._consumers.setdefault(producer, []).append(entry)
            self.policies[reg_class].note_source_use(entry, slot, logical, physical)

        # ------------------------------------------------------- destination
        if inst.dest is not None:
            dest_class = RegClass(inst.dest[0])
            dest_logical = inst.dest[1]
            policy = self.policies[dest_class]
            register_file = self.register_files[dest_class]
            old_pd = self.map_tables[dest_class].lookup(dest_logical)
            outcome = policy.rename_destination(entry, dest_logical, old_pd)
            if outcome.reuse_previous:
                pd = old_pd
                entry.allocated_new = False
                entry.reused = True
                register_file.set_producer(pd, entry.seq)
            else:
                pd = register_file.allocate(self.cycle, entry.seq)
                self.map_tables[dest_class].set_mapping(dest_logical, pd)
                entry.allocated_new = True
            entry.dest_class = dest_class
            entry.dest_logical = dest_logical
            entry.pd = pd
            entry.old_pd = old_pd
            entry.rel_old = outcome.release_previous_at_commit
            policy.note_dest_definition(entry, dest_logical)

        # ------------------------------------------------------- branches
        if inst.is_branch:
            checkpoint = Checkpoint(
                branch_seq=entry.seq,
                map_snapshots={rc: mt.snapshot() for rc, mt in self.map_tables.items()},
                policy_snapshots={rc: p.snapshot_state()
                                  for rc, p in self.policies.items()},
            )
            self.checkpoints.push(checkpoint)
            for policy in self.policies.values():
                policy.on_branch_renamed(entry)

        # ------------------------------------------------------- memory ops
        if inst.is_mem:
            self.lsq.insert(entry.seq, inst.is_store, inst.mem_addr)

        # ------------------------------------------------------- exceptions
        if (cfg.exception_rate > 0.0 and not entry.wrong_path
                and self._exception_rng.random() < cfg.exception_rate):
            entry.exception = True

        self.ros.append(entry)
        self.stats.renamed_instructions += 1

        # Instructions with no execution dependencies and no FU requirement
        # (NOPs) complete immediately at the next writeback.
        if inst.op is OpClass.NOP:
            self._completions.setdefault(self.cycle + 1, []).append(entry)
            entry.issued = True
        return True

    def _may_avoid_allocation(self, dest_class: RegClass, logical: int) -> bool:
        """Side-effect-free probe: could rename proceed without a free register?

        True when the release policy would either reuse the previous
        version or release it immediately (committed LU, no pending
        branches), so a stalled free list does not have to stall rename.
        """
        policy = self.policies[dest_class]
        if not hasattr(policy, "lus_table"):
            return False
        if self.map_tables[dest_class].is_stale(logical):
            return False
        lu = policy.lus_table.lookup(logical)
        if lu is None:
            # Unknown LU: basic falls back to conventional, extended treats it
            # as committed; only the extended policy can proceed.
            return policy.name == "extended" and self.count_pending_branches() == 0
        if self.has_pending_branch_younger_than(lu.seq):
            return False
        if policy.name == "basic" and self.count_pending_branches() > 0 and \
                self.has_pending_branch_younger_than(lu.seq):
            return False
        if not self.is_committed(lu.seq):
            return False
        if policy.name == "extended" and self.count_pending_branches() > 0:
            return False
        return True

    # ==================================================================
    # Stage 5: fetch
    # ==================================================================
    def _fetch_stage(self) -> None:
        # Bound the front-end pipe: enough to cover the fetch-to-rename
        # latency at full width plus two groups of slack.
        capacity = (self.config.frontend_stages + 2) * self.config.fetch_width
        if len(self._decode_queue) >= capacity:
            return
        group = self.fetch_unit.fetch_cycle(self.cycle)
        ready = self.cycle + self.config.frontend_stages
        for op in group:
            self._decode_queue.append((ready, op))
        self.stats.fetched_instructions += len(group)
        self.stats.fetched_wrong_path += sum(1 for op in group if op.wrong_path)

    # ==================================================================
    # Statistics collection
    # ==================================================================
    def _collect_stats(self) -> SimStats:
        stats = self.stats
        stats.cycles = self.cycle
        stats.btb_hit_rate = self.btb.hit_rate
        stats.l1i_miss_rate = self.memory.l1i.miss_rate
        stats.l1d_miss_rate = self.memory.l1d.miss_rate
        stats.l2_miss_rate = self.memory.l2.miss_rate
        stats.forwarded_loads = self.lsq.forwarded_loads
        stats.structural_stalls = self.fus.structural_stalls

        for reg_class, label in ((RegClass.INT, "int"), (RegClass.FP, "fp")):
            register_file = self.register_files[reg_class]
            policy = self.policies[reg_class]
            totals = register_file.finalize_occupancy(self.cycle)
            file_stats = RegisterFileStats(
                num_physical=register_file.num_physical,
                allocations=register_file.allocations,
                releases=register_file.releases,
                early_releases=register_file.early_releases,
                register_reuses=policy.register_reuses,
                immediate_releases=policy.immediate_releases,
                scheduled_early_releases=policy.early_releases_scheduled,
                conventional_releases=policy.conventional_releases,
                conditional_schedulings=getattr(policy, "conditional_schedulings", 0),
                occupancy=totals.averages(),
            )
            if label == "int":
                stats.int_registers = file_stats
            else:
                stats.fp_registers = file_stats
        return stats


def simulate(trace: Trace, config: Optional[ProcessorConfig] = None,
             max_instructions: Optional[int] = None,
             max_cycles: Optional[int] = None) -> SimStats:
    """Build a :class:`Processor` for ``trace`` and run it to completion.

    This is the main public entry point: every experiment and example uses
    it.  ``max_instructions`` limits the number of *committed* instructions
    (defaults to the trace length); ``max_cycles`` is a safety bound.
    """
    processor = Processor(trace, config)
    return processor.run(max_instructions=max_instructions, max_cycles=max_cycles)
