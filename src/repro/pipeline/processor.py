"""The cycle-level out-of-order processor (facade).

The simulation kernel lives in :mod:`repro.engine`: the five stages
(commit, writeback, issue, rename, fetch) are composable
:class:`~repro.engine.stages.Stage` objects operating on an explicit
shared :class:`~repro.engine.state.MachineState`, wired together by a
:class:`~repro.engine.engine.SimulationEngine` whose event-driven clock
fast-forwards across provably idle cycles.

This module keeps the historical public surface — :class:`Processor` and
:func:`simulate` — as thin facades over the engine so experiments, tests
and examples written against the monolithic processor keep working.
Attribute access on a :class:`Processor` (``register_files``, ``ros``,
``lsq``, ``cycle``, ``stats``, …) resolves against the underlying
:class:`MachineState`.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.engine.clock import CycleClock, EventClock
from repro.engine.engine import DeadlockError, SimulationEngine
from repro.engine.engine import simulate as _engine_simulate
from repro.engine.state import (
    STALL_CHECKPOINTS_FULL,
    STALL_LSQ_FULL,
    STALL_NO_FREE_FP,
    STALL_NO_FREE_INT,
    STALL_ROS_FULL,
    MachineState,
)
from repro.pipeline.config import ProcessorConfig
from repro.pipeline.stats import SimStats
from repro.trace.records import Trace

__all__ = [
    "Processor", "simulate", "DeadlockError",
    "STALL_ROS_FULL", "STALL_LSQ_FULL", "STALL_CHECKPOINTS_FULL",
    "STALL_NO_FREE_INT", "STALL_NO_FREE_FP",
]


class Processor:
    """Trace-driven cycle-level out-of-order processor (paper Table 2).

    Facade over :class:`repro.engine.SimulationEngine`; pass
    ``clock=CycleClock()`` to force classic per-cycle stepping instead of
    the event-driven default.
    """

    def __init__(self, trace: Trace, config: Optional[ProcessorConfig] = None,
                 clock: Union[None, CycleClock, EventClock] = None) -> None:
        self.engine = SimulationEngine(trace, config, clock=clock)
        self.state = self.engine.state

    # ------------------------------------------------------------------
    def __getattr__(self, name: str):
        # Fallback for everything MachineState owns (register_files, ros,
        # lsq, cycle, stats, policies, PipelineView methods, ...).  Only
        # called when normal attribute lookup fails.
        try:
            return getattr(self.__dict__["state"], name)
        except KeyError:  # pragma: no cover - partially constructed object
            raise AttributeError(name) from None

    def __setattr__(self, name: str, value) -> None:
        # Writes forward to the machine state too — otherwise an
        # assignment like ``processor.cycle = 0`` would land on the facade
        # and silently diverge from the state the engine mutates.
        if name in ("engine", "state") or "state" not in self.__dict__:
            object.__setattr__(self, name, value)
        else:
            setattr(self.__dict__["state"], name, value)

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Simulate exactly one cycle (commit → writeback → issue → rename → fetch)."""
        self.engine.step()

    @property
    def finished(self) -> bool:
        """True when every fetched instruction has drained from the pipeline."""
        return self.state.finished

    def run(self, max_instructions: Optional[int] = None,
            max_cycles: Optional[int] = None,
            deadlock_threshold: int = 50_000) -> SimStats:
        """Run the simulation until the trace drains (or a limit is hit)."""
        return self.engine.run(max_instructions=max_instructions,
                               max_cycles=max_cycles,
                               deadlock_threshold=deadlock_threshold)


def simulate(trace: Trace, config: Optional[ProcessorConfig] = None,
             max_instructions: Optional[int] = None,
             max_cycles: Optional[int] = None,
             clock: Union[None, CycleClock, EventClock] = None) -> SimStats:
    """Simulate ``trace`` to completion and return its :class:`SimStats`.

    This is the main public entry point: every experiment and example uses
    it.  ``max_instructions`` limits the number of *committed* instructions
    (defaults to the trace length); ``max_cycles`` is a safety bound;
    ``clock`` selects the stepping strategy (event-driven by default).
    """
    return _engine_simulate(trace, config, max_instructions=max_instructions,
                            max_cycles=max_cycles, clock=clock)
