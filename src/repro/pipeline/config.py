"""Processor configuration (paper Table 2 defaults).

=======================  ==========================================================
Parameter                Paper value (Table 2)
=======================  ==========================================================
Fetch width              8 instructions, up to 2 taken branches
L1 I-cache               32 KB, 2-way, 32-byte lines, 1-cycle hit
Branch prediction        18-bit gshare, speculative updates, ≤20 pending branches
ROS size                 128 entries
Functional units         8 simple int (1), 4 int mult (7), 6 simple FP (4),
                         4 FP mult (4), 4 FP div (16), 4 load/store
Load/store queue         64 entries, store-load forwarding
Issue mechanism          out-of-order; loads wait for all prior store addresses
Physical registers       40–160 int / 40–160 FP (32 int / 32 FP logical)
L1 D-cache               32 KB, 2-way, 64-byte lines, 1-cycle hit
L2 unified               1 MB, 2-way, 64-byte lines, 12-cycle hit
Main memory              unbounded, 50 cycles
Commit width             8 instructions
=======================  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.backend.functional_units import FUConfig
from repro.isa.registers import NUM_LOGICAL_FP, NUM_LOGICAL_INT
from repro.memory.hierarchy import MemoryConfig


@dataclass(frozen=True)
class ProcessorConfig:
    """Complete configuration of the simulated processor.

    The defaults correspond to the paper's aggressive 8-way configuration
    with a 96+96 physical register file; experiments override
    ``num_physical_int`` / ``num_physical_fp`` and ``release_policy``.
    """

    # -------------------------------------------------------- pipeline widths
    fetch_width: int = 8
    rename_width: int = 8
    issue_width: int = 8
    commit_width: int = 8
    max_taken_branches_per_cycle: int = 2
    #: fetch-to-rename latency in cycles (front-end pipeline depth); together
    #: with resolution-time recovery this sets the misprediction penalty.
    frontend_stages: int = 3

    # -------------------------------------------------------- window sizes
    ros_size: int = 128
    lsq_size: int = 64
    max_pending_branches: int = 20

    # -------------------------------------------------------- register files
    num_physical_int: int = 96
    num_physical_fp: int = 96
    num_logical_int: int = NUM_LOGICAL_INT
    num_logical_fp: int = NUM_LOGICAL_FP

    # -------------------------------------------------------- front end
    gshare_history_bits: int = 18
    btb_entries: int = 2048
    btb_associativity: int = 4

    # -------------------------------------------------------- policies
    #: "conv" | "basic" | "extended"
    release_policy: str = "conv"
    #: reuse the previous-version register when its last use has committed
    #: (paper Section 3, Renaming 2); disabling it is an ablation knob.
    reuse_on_committed_lu: bool = True

    # -------------------------------------------------------- behaviour knobs
    #: warm the caches, BTB and branch predictor with one pass over the trace
    #: before the measured run.  The paper simulates 47M–472M instructions,
    #: so its measurements are of steady-state behaviour; with the scaled-down
    #: traces used here, cold-start effects would otherwise dominate.
    warmup: bool = True
    #: inject synthetic wrong-path instructions after a misprediction.
    enable_wrong_path: bool = True
    #: per-committed-instruction probability of raising an exception
    #: (0 = never; used by the precise-exception tests, not by the paper's
    #: experiments).
    exception_rate: float = 0.0
    #: RNG seed for exception injection and wrong-path synthesis.
    seed: int = 0
    #: simulation engine backend: "auto" (defer to ``$REPRO_ENGINE``),
    #: "python" (pure-Python stage loop) or "compiled" (C core with
    #: bit-identical statistics and automatic fallback; see
    #: :mod:`repro.engine.accel`).
    engine: str = "auto"

    # -------------------------------------------------------- substructures
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    functional_units: FUConfig = field(default_factory=FUConfig)

    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        if self.num_physical_int < self.num_logical_int:
            raise ValueError("need at least as many physical as logical int registers")
        if self.num_physical_fp < self.num_logical_fp:
            raise ValueError("need at least as many physical as logical FP registers")
        for name in ("fetch_width", "rename_width", "issue_width", "commit_width",
                     "ros_size", "lsq_size", "max_pending_branches",
                     "frontend_stages"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if not (0.0 <= self.exception_rate <= 1.0):
            raise ValueError("exception_rate must be a probability")
        if self.release_policy not in ("conv", "conventional", "basic", "extended"):
            raise ValueError(f"unknown release policy {self.release_policy!r}")
        if self.engine not in ("auto", "python", "compiled"):
            raise ValueError(f"unknown engine backend {self.engine!r}")

    # ------------------------------------------------------------------
    def with_registers(self, num_int: Optional[int] = None,
                       num_fp: Optional[int] = None) -> "ProcessorConfig":
        """Copy of the configuration with different register file sizes."""
        return replace(self,
                       num_physical_int=self.num_physical_int if num_int is None else num_int,
                       num_physical_fp=self.num_physical_fp if num_fp is None else num_fp)

    def with_policy(self, policy: str) -> "ProcessorConfig":
        """Copy of the configuration with a different release policy."""
        return replace(self, release_policy=policy)

    @property
    def is_loose_int(self) -> bool:
        """Paper Section 2: a *loose* file has P ≥ L + N (never stalls for registers)."""
        return self.num_physical_int >= self.num_logical_int + self.ros_size

    @property
    def is_loose_fp(self) -> bool:
        """Same loose/tight classification for the FP file."""
        return self.num_physical_fp >= self.num_logical_fp + self.ros_size
