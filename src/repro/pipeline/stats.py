"""Simulation statistics.

:class:`SimStats` is a plain, pickleable container (the parallel sweep
runner ships it across process boundaries) holding everything the paper's
figures need: IPC, branch behaviour, cache behaviour, dispatch stall
breakdown, per-register-file occupancy (Empty/Ready/Idle) and the release
policy's own counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.register_state import OccupancyAverages


@dataclass
class RegisterFileStats:
    """Per-register-file statistics."""

    num_physical: int = 0
    allocations: int = 0
    releases: int = 0
    early_releases: int = 0
    register_reuses: int = 0
    immediate_releases: int = 0
    scheduled_early_releases: int = 0
    conventional_releases: int = 0
    conditional_schedulings: int = 0
    occupancy: Optional[OccupancyAverages] = None

    @property
    def early_release_fraction(self) -> float:
        """Fraction of all releases performed early."""
        return 0.0 if self.releases == 0 else self.early_releases / self.releases


@dataclass
class SimStats:
    """Aggregate results of one simulation run."""

    benchmark: str = ""
    release_policy: str = ""
    cycles: int = 0
    committed_instructions: int = 0
    committed_by_class: Dict[str, int] = field(default_factory=dict)

    fetched_instructions: int = 0
    fetched_wrong_path: int = 0
    renamed_instructions: int = 0
    squashed_instructions: int = 0
    exceptions_taken: int = 0

    branches_resolved: int = 0
    branch_mispredictions: int = 0
    btb_hit_rate: float = 0.0

    l1i_miss_rate: float = 0.0
    l1d_miss_rate: float = 0.0
    l2_miss_rate: float = 0.0
    forwarded_loads: int = 0

    dispatch_stalls: Dict[str, int] = field(default_factory=dict)
    structural_stalls: int = 0

    int_registers: RegisterFileStats = field(default_factory=RegisterFileStats)
    fp_registers: RegisterFileStats = field(default_factory=RegisterFileStats)

    # ------------------------------------------------------------------
    @property
    def ipc(self) -> float:
        """Committed instructions per cycle (the metric of Figures 10 and 11)."""
        return 0.0 if self.cycles == 0 else self.committed_instructions / self.cycles

    @property
    def branch_misprediction_rate(self) -> float:
        """Fraction of resolved (correct-path) branches that were mispredicted."""
        if self.branches_resolved == 0:
            return 0.0
        return self.branch_mispredictions / self.branches_resolved

    @property
    def wrong_path_fraction(self) -> float:
        """Share of fetched instructions that were wrong-path injections."""
        if self.fetched_instructions == 0:
            return 0.0
        return self.fetched_wrong_path / self.fetched_instructions

    def stall_fraction(self, reason: str) -> float:
        """Dispatch stall cycles of ``reason`` per total cycle."""
        if self.cycles == 0:
            return 0.0
        return self.dispatch_stalls.get(reason, 0) / self.cycles

    def register_stats(self, focus: str) -> RegisterFileStats:
        """Per-file statistics for ``focus`` ("int" or "fp")."""
        return self.int_registers if focus == "int" else self.fp_registers

    # ------------------------------------------------------------------
    def summary_line(self) -> str:
        """One-line human-readable summary (used by examples and the CLI)."""
        return (f"{self.benchmark:<10s} {self.release_policy:<9s} "
                f"IPC={self.ipc:5.3f}  cycles={self.cycles:>8d}  "
                f"insts={self.committed_instructions:>8d}  "
                f"br-mispred={self.branch_misprediction_rate:6.2%}  "
                f"int-early={self.int_registers.early_releases:>6d}  "
                f"fp-early={self.fp_registers.early_releases:>6d}")
