"""Release Queue (RelQue) of the extended mechanism (paper Section 4.1/4.2).

One *level* exists per branch pending verification.  A level holds the
conditional release schedulings made by next-version instructions decoded
while that branch was the youngest pending branch:

* ``rwns`` ("Release when Non-Speculative") — releases whose last-use
  instruction has already committed; the paper stores these as a bit
  vector over physical registers, here a mapping from ``(physical,
  logical)`` pairs to the scheduling NV's sequence number (the logical
  register is carried only for the stale-architectural-mapping
  bookkeeping, not because the hardware needs it).
* ``rwc`` ("Release when Commit") — releases whose last-use instruction is
  still in flight, keyed by the LU's ROS identifier with a per-slot-bit
  map to the scheduling NV, to be merged with the LU entry's plain
  early-release bits (``RwC0``) once the speculation in front of the NV
  is resolved.

Every scheduling is tagged with the sequence number of the next-version
instruction that made it.  Level clears cover the common squash case (the
NV's scheduling lives at the level of a branch older than the NV, and a
misprediction clears that level together with all younger ones), but a
scheduling can outlive its level through confirmation *merges*; tagging
lets :meth:`ReleaseQueue.cancel_younger_than` drop any scheduling whose
NV falls inside a squashed window, wherever the scheduling ended up.

Level movements follow the paper's steps: a branch confirmation merges its
level into the next older one (or, for the oldest level, releases the
``rwns`` registers and promotes the ``rwc`` bits to ``RwC0``); a
misprediction clears the level and every younger one; the commit of an LU
instruction moves its ``rwc`` bits into the same level's ``rwns``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple


@dataclass
class ReleaseQueueLevel:
    """Conditional releases guarded by one pending branch."""

    branch_seq: int
    #: (physical, logical) -> sequence number of the scheduling NV.
    rwns: Dict[Tuple[int, Optional[int]], int] = field(default_factory=dict)
    #: LU seq -> {slot bit -> sequence number of the scheduling NV}.
    rwc: Dict[int, Dict[int, int]] = field(default_factory=dict)

    @property
    def n_scheduled(self) -> int:
        """Number of conditional releases held at this level."""
        return len(self.rwns) + sum(len(bits) for bits in self.rwc.values())


class ReleaseQueue:
    """The stack of conditional-release levels, one per pending branch."""

    def __init__(self, capacity: int = 20) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._levels: List[ReleaseQueueLevel] = []
        # statistics
        self.confirm_releases = 0
        self.squashed_schedulings = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._levels)

    @property
    def depth(self) -> int:
        """Number of occupied levels (the TAIL pointer of the paper)."""
        return len(self._levels)

    def levels(self) -> List[ReleaseQueueLevel]:
        """The levels, oldest branch first (for inspection/tests)."""
        return list(self._levels)

    def total_scheduled(self) -> int:
        """Total number of conditional releases currently queued."""
        return sum(level.n_scheduled for level in self._levels)

    # ------------------------------------------------------------------
    # Step 1: branch decode appends a level.
    # ------------------------------------------------------------------
    def push_level(self, branch_seq: int) -> None:
        """A branch was renamed: append an empty level at TAIL."""
        if len(self._levels) >= self.capacity:
            raise RuntimeError("Release Queue overflow: rename must stall instead")
        if self._levels and branch_seq <= self._levels[-1].branch_seq:
            raise ValueError("levels must be pushed in program order")
        self._levels.append(ReleaseQueueLevel(branch_seq=branch_seq))

    # ------------------------------------------------------------------
    # Step 2: speculative NV decode marks the TAIL level.
    # ------------------------------------------------------------------
    def schedule_committed_lu(self, physical: int, logical: Optional[int],
                              nv_seq: int) -> None:
        """Conditional release of ``physical`` whose LU has already committed (RwNS).

        ``nv_seq`` is the sequence number of the scheduling next-version
        instruction, kept so a squash of the NV cancels the scheduling.
        """
        if not self._levels:
            raise RuntimeError("no pending branch: the release is not conditional")
        self._levels[-1].rwns[(physical, logical)] = nv_seq

    def schedule_inflight_lu(self, lu_seq: int, slot_bit: int, nv_seq: int) -> None:
        """Conditional release tied to the in-flight LU ``lu_seq`` (RwC)."""
        if not self._levels:
            raise RuntimeError("no pending branch: the release is not conditional")
        self._levels[-1].rwc.setdefault(lu_seq, {})[slot_bit] = nv_seq

    # ------------------------------------------------------------------
    # Step 5: commit of an LU instruction moves its RwC bits to RwNS.
    # ------------------------------------------------------------------
    def on_lu_commit(self, lu_seq: int,
                     slot_resolver: Callable[[int], Tuple[int, Optional[int]]]) -> None:
        """The LU ``lu_seq`` commits before its speculation resolves.

        ``slot_resolver`` maps a slot bit to ``(physical, logical)`` using
        the committing ROS entry (the "decoding of the register
        identifiers located at the ROS head" of the paper).
        """
        for level in self._levels:
            bits = level.rwc.pop(lu_seq, None)
            if bits:
                for slot_bit, nv_seq in bits.items():
                    level.rwns[slot_resolver(slot_bit)] = nv_seq

    # ------------------------------------------------------------------
    # Steps 3/4/6: branch resolution.
    # ------------------------------------------------------------------
    def on_branch_confirmed(self, branch_seq: int,
                            release: Callable[[int, Optional[int]], None],
                            promote_rwc0: Callable[[int, int], None]) -> None:
        """Branch ``branch_seq`` verified correct: collapse its level.

        For the oldest level this performs the Branch-Confirm Release of
        the ``rwns`` registers (via ``release(physical, logical)``) and
        promotes the ``rwc`` bits to the LU entries' plain early-release
        bits (via ``promote_rwc0(lu_seq, mask)``); for any other level the
        contents are OR-ed into the next older level.
        """
        index = self._find(branch_seq)
        if index is None:
            return
        level = self._levels.pop(index)
        if index == 0:
            for physical, logical in level.rwns:
                release(physical, logical)
                self.confirm_releases += 1
            for lu_seq, bits in level.rwc.items():
                mask = 0
                for slot_bit in bits:
                    mask |= slot_bit
                promote_rwc0(lu_seq, mask)
        else:
            older = self._levels[index - 1]
            older.rwns.update(level.rwns)
            for lu_seq, bits in level.rwc.items():
                older.rwc.setdefault(lu_seq, {}).update(bits)

    def on_branch_mispredicted(self, branch_seq: int) -> int:
        """Branch ``branch_seq`` mispredicted: clear its level and all younger ones.

        Returns the number of conditional releases squashed.  Callers must
        follow up with :meth:`cancel_younger_than` so schedulings by NVs
        inside the squashed window that were *merged* into surviving
        levels are cancelled too.
        """
        index = self._find(branch_seq)
        if index is None:
            return 0
        dropped = sum(level.n_scheduled for level in self._levels[index:])
        del self._levels[index:]
        self.squashed_schedulings += dropped
        return dropped

    def cancel_younger_than(self, squash_seq: int) -> int:
        """Drop every scheduling made by an NV younger than ``squash_seq``.

        A squashed next-version instruction never redefines its logical
        register, so the previous version it conditionally released stays
        live — its scheduling must not survive, no matter which level
        confirmation merges moved it to.  Returns the number cancelled.
        """
        dropped = 0
        for level in self._levels:
            stale = [key for key, nv_seq in level.rwns.items() if nv_seq > squash_seq]
            for key in stale:
                del level.rwns[key]
            dropped += len(stale)
            for lu_seq in list(level.rwc):
                bits = level.rwc[lu_seq]
                stale_bits = [bit for bit, nv_seq in bits.items()
                              if nv_seq > squash_seq]
                for bit in stale_bits:
                    del bits[bit]
                dropped += len(stale_bits)
                if not bits:
                    del level.rwc[lu_seq]
        self.squashed_schedulings += dropped
        return dropped

    def clear(self) -> int:
        """Full flush (exception): drop every level; returns schedulings dropped."""
        dropped = self.total_scheduled()
        self.squashed_schedulings += dropped
        self._levels.clear()
        return dropped

    # ------------------------------------------------------------------
    def _find(self, branch_seq: int) -> Optional[int]:
        for index, level in enumerate(self._levels):
            if level.branch_seq == branch_seq:
                return index
        return None
