"""Release Queue (RelQue) of the extended mechanism (paper Section 4.1/4.2).

One *level* exists per branch pending verification.  A level holds the
conditional release schedulings made by next-version instructions decoded
while that branch was the youngest pending branch:

* ``rwns`` ("Release when Non-Speculative") — releases whose last-use
  instruction has already committed; the paper stores these as a bit
  vector over physical registers, here a set of ``(physical, logical)``
  pairs (the logical register is carried only for the stale-architectural-
  mapping bookkeeping, not because the hardware needs it).
* ``rwc`` ("Release when Commit") — releases whose last-use instruction is
  still in flight, keyed by the LU's ROS identifier with a 3-bit slot
  mask, to be merged with the LU entry's plain early-release bits
  (``RwC0``) once the speculation in front of the NV is resolved.

Level movements follow the paper's steps: a branch confirmation merges its
level into the next older one (or, for the oldest level, releases the
``rwns`` registers and promotes the ``rwc`` bits to ``RwC0``); a
misprediction clears the level and every younger one; the commit of an LU
instruction moves its ``rwc`` bits into the same level's ``rwns``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple


@dataclass
class ReleaseQueueLevel:
    """Conditional releases guarded by one pending branch."""

    branch_seq: int
    rwns: Set[Tuple[int, Optional[int]]] = field(default_factory=set)
    rwc: Dict[int, int] = field(default_factory=dict)

    @property
    def n_scheduled(self) -> int:
        """Number of conditional releases held at this level."""
        return len(self.rwns) + sum(bin(mask).count("1") for mask in self.rwc.values())


class ReleaseQueue:
    """The stack of conditional-release levels, one per pending branch."""

    def __init__(self, capacity: int = 20) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._levels: List[ReleaseQueueLevel] = []
        # statistics
        self.confirm_releases = 0
        self.squashed_schedulings = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._levels)

    @property
    def depth(self) -> int:
        """Number of occupied levels (the TAIL pointer of the paper)."""
        return len(self._levels)

    def levels(self) -> List[ReleaseQueueLevel]:
        """The levels, oldest branch first (for inspection/tests)."""
        return list(self._levels)

    def total_scheduled(self) -> int:
        """Total number of conditional releases currently queued."""
        return sum(level.n_scheduled for level in self._levels)

    # ------------------------------------------------------------------
    # Step 1: branch decode appends a level.
    # ------------------------------------------------------------------
    def push_level(self, branch_seq: int) -> None:
        """A branch was renamed: append an empty level at TAIL."""
        if len(self._levels) >= self.capacity:
            raise RuntimeError("Release Queue overflow: rename must stall instead")
        if self._levels and branch_seq <= self._levels[-1].branch_seq:
            raise ValueError("levels must be pushed in program order")
        self._levels.append(ReleaseQueueLevel(branch_seq=branch_seq))

    # ------------------------------------------------------------------
    # Step 2: speculative NV decode marks the TAIL level.
    # ------------------------------------------------------------------
    def schedule_committed_lu(self, physical: int, logical: Optional[int]) -> None:
        """Conditional release of ``physical`` whose LU has already committed (RwNS)."""
        if not self._levels:
            raise RuntimeError("no pending branch: the release is not conditional")
        self._levels[-1].rwns.add((physical, logical))

    def schedule_inflight_lu(self, lu_seq: int, slot_bit: int) -> None:
        """Conditional release tied to the in-flight LU ``lu_seq`` (RwC)."""
        if not self._levels:
            raise RuntimeError("no pending branch: the release is not conditional")
        level = self._levels[-1]
        level.rwc[lu_seq] = level.rwc.get(lu_seq, 0) | slot_bit

    # ------------------------------------------------------------------
    # Step 5: commit of an LU instruction moves its RwC bits to RwNS.
    # ------------------------------------------------------------------
    def on_lu_commit(self, lu_seq: int,
                     slot_resolver: Callable[[int], Tuple[int, Optional[int]]]) -> None:
        """The LU ``lu_seq`` commits before its speculation resolves.

        ``slot_resolver`` maps a slot bit to ``(physical, logical)`` using
        the committing ROS entry (the "decoding of the register
        identifiers located at the ROS head" of the paper).
        """
        for level in self._levels:
            mask = level.rwc.pop(lu_seq, 0)
            bit = 1
            while mask:
                if mask & bit:
                    level.rwns.add(slot_resolver(bit))
                    mask &= ~bit
                bit <<= 1

    # ------------------------------------------------------------------
    # Steps 3/4/6: branch resolution.
    # ------------------------------------------------------------------
    def on_branch_confirmed(self, branch_seq: int,
                            release: Callable[[int, Optional[int]], None],
                            promote_rwc0: Callable[[int, int], None]) -> None:
        """Branch ``branch_seq`` verified correct: collapse its level.

        For the oldest level this performs the Branch-Confirm Release of
        the ``rwns`` registers (via ``release(physical, logical)``) and
        promotes the ``rwc`` bits to the LU entries' plain early-release
        bits (via ``promote_rwc0(lu_seq, mask)``); for any other level the
        contents are OR-ed into the next older level.
        """
        index = self._find(branch_seq)
        if index is None:
            return
        level = self._levels.pop(index)
        if index == 0:
            for physical, logical in level.rwns:
                release(physical, logical)
                self.confirm_releases += 1
            for lu_seq, mask in level.rwc.items():
                promote_rwc0(lu_seq, mask)
        else:
            older = self._levels[index - 1]
            older.rwns |= level.rwns
            for lu_seq, mask in level.rwc.items():
                older.rwc[lu_seq] = older.rwc.get(lu_seq, 0) | mask

    def on_branch_mispredicted(self, branch_seq: int) -> int:
        """Branch ``branch_seq`` mispredicted: clear its level and all younger ones.

        Returns the number of conditional releases squashed.
        """
        index = self._find(branch_seq)
        if index is None:
            return 0
        dropped = sum(level.n_scheduled for level in self._levels[index:])
        del self._levels[index:]
        self.squashed_schedulings += dropped
        return dropped

    def clear(self) -> int:
        """Full flush (exception): drop every level; returns schedulings dropped."""
        dropped = self.total_scheduled()
        self.squashed_schedulings += dropped
        self._levels.clear()
        return dropped

    # ------------------------------------------------------------------
    def _find(self, branch_seq: int) -> Optional[int]:
        for index, level in enumerate(self._levels):
            if level.branch_seq == branch_seq:
                return index
        return None
