"""Last-Uses Table (LUs Table) — paper Section 3.1.

For every logical register the table records which in-flight (or already
committed) instruction used it last, and in which operand role
(src1/src2/dst).  When a next-version (NV) instruction is renamed, the
table is looked up with the NV's destination logical register to find the
last-use (LU) instruction of the *previous* version, so the previous
version's release can be tied to the LU's commit instead of the NV's.

The paper's entry holds three fields: ``ROSid`` (the LU instruction),
``Kind`` (src1/src2/dst) and a commit bit ``C``.  This implementation
stores ``(seq, slot)`` and *derives* the commit bit from the in-order
commit watermark (``seq <= last committed seq``), which is exactly
equivalent to the paper's scheme of setting C at commit and propagating it
into every checkpointed copy — with the advantage that consistency across
copies holds by construction.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Tuple

#: Slot identifier for a destination ("Kind = dst" in the paper).
DST_SLOT = 3


class LastUse(NamedTuple):
    """One LUs Table entry: the last user of a logical register.

    ``slot`` is 0..2 for source operand positions and :data:`DST_SLOT` for
    the destination (the "Kind" field of the paper).  A ``NamedTuple``
    rather than a dataclass: one entry is built per renamed source
    operand, so construction cost is on the rename hot path.
    """

    seq: int
    slot: int

    @property
    def is_dest_use(self) -> bool:
        """True when the last use is the defining instruction itself."""
        return self.slot == DST_SLOT


class LastUsesTable:
    """Last-use tracking for one register class (one table per register file)."""

    def __init__(self, num_logical: int) -> None:
        self.num_logical = num_logical
        self._entries: List[Optional[LastUse]] = [None] * num_logical

    # ------------------------------------------------------------------
    def record_use(self, logical: int, seq: int, slot: int) -> None:
        """Record that instruction ``seq`` uses ``logical`` in operand ``slot``.

        Calls must be made in rename (program) order so the entry always
        holds the youngest use.
        """
        self._entries[logical] = LastUse(seq=seq, slot=slot)

    def lookup(self, logical: int) -> Optional[LastUse]:
        """Return the recorded last use of ``logical`` (None if unknown)."""
        return self._entries[logical]

    def clear(self, logical: int) -> None:
        """Forget the last use of ``logical``."""
        self._entries[logical] = None

    def reset(self) -> None:
        """Forget everything (used on an exception flush: nothing is in flight).

        In place: the early-release policies hold a direct reference to
        the entry list on their rename fast path.
        """
        self._entries[:] = [None] * self.num_logical

    # ------------------------------------------------------------------
    def snapshot(self) -> Tuple[Optional[LastUse], ...]:
        """Copy of the table taken at each branch prediction (paper Section 3.1)."""
        return tuple(self._entries)

    def restore(self, snapshot: Tuple[Optional[LastUse], ...]) -> None:
        """Restore the copy belonging to a mispredicted branch (in place,
        for the same list-identity reason as :meth:`reset`)."""
        if len(snapshot) != self.num_logical:
            raise ValueError("LUs table snapshot size mismatch")
        self._entries[:] = snapshot

    def entries(self) -> Dict[int, LastUse]:
        """Mapping of logical register → last use, for inspection/tests."""
        return {logical: entry for logical, entry in enumerate(self._entries)
                if entry is not None}
