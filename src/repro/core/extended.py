"""Extended early-release mechanism (paper Section 4).

The extended mechanism handles the case the basic one gives up on: a
next-version (NV) instruction decoded while branches are still pending
between it and the last use (LU) of the previous register version.  Such
releases are *conditional* and live in the Release Queue until the
speculation in front of the NV resolves:

* every renamed branch appends a Release Queue level;
* a speculative NV schedules the release at the TAIL level, in ``RwNS``
  form if its LU has committed and in ``RwC`` form (tied to the LU's ROS
  entry) otherwise;
* branch confirmation collapses the level toward ``RwC0``; confirmation of
  the *oldest* branch releases the level's ``RwNS`` registers outright;
* branch misprediction clears the level and every younger one;
* commit of an LU moves its still-conditional ``RwC`` bits to ``RwNS``.

Because every previous-version release is routed through the mechanism,
the conventional ``old_pd``/``rel_old`` fields of the ROS are no longer
used (the paper points this out as a storage saving).
"""

from __future__ import annotations

from typing import ClassVar, Optional, Tuple

from repro.backend.ros import DEST_SLOT_BIT, ROSEntry, src_slot_bit
from repro.core.lus_table import DST_SLOT, LastUse, LastUsesTable
from repro.core.release_policy import DestRenameOutcome, ReleasePolicy
from repro.core.release_queue import ReleaseQueue


def _slot_bit(slot: int) -> int:
    """ROS early-release mask bit for an LUs-table slot value."""
    return DEST_SLOT_BIT if slot == DST_SLOT else src_slot_bit(slot)


class ExtendedEarlyRelease(ReleasePolicy):
    """Early release with conditional (speculative) schedulings (Section 4)."""

    name: ClassVar[str] = "extended"

    def __init__(self, *args, release_queue_capacity: int = 20, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.lus_table = LastUsesTable(self.map_table.num_logical)
        #: direct view of the table's entry list (identity-stable across
        #: reset/restore); written once per renamed operand.
        self._lus_entries = self.lus_table._entries
        self.release_queue = ReleaseQueue(capacity=release_queue_capacity)
        self.conditional_schedulings = 0

    # ------------------------------------------------------------------
    # Rename-time hooks
    # ------------------------------------------------------------------
    def note_source_use(self, entry: ROSEntry, slot: int, logical: int,
                        physical: int) -> None:
        """Record this instruction as the last user of ``logical``."""
        self._lus_entries[logical] = LastUse(entry.seq, slot)

    def note_dest_definition(self, entry: ROSEntry, logical: int) -> None:
        """Record the definition as a (Kind=dst) use."""
        self._lus_entries[logical] = LastUse(entry.seq, DST_SLOT)

    def on_branch_renamed(self, entry: ROSEntry) -> None:
        """Step 1: append a Release Queue level for the new pending branch."""
        self.release_queue.push_level(entry.seq)

    def rename_destination(self, entry: ROSEntry, logical: int,
                           old_pd: int) -> DestRenameOutcome:
        """Schedule the previous-version release (conditionally if speculative)."""
        if self.map_table.is_stale(logical):
            # The mapping names a register released before an exception flush
            # (Section 4.3): there is nothing left to release or reuse.
            return DestRenameOutcome(release_previous_at_commit=False)

        lu: Optional[LastUse] = self.lus_table.lookup(logical)
        pending = self.view.count_pending_branches()
        lu_committed = lu is None or lu.seq <= self.view.committed_watermark

        if lu_committed:
            if pending == 0:
                # Same rules as the basic mechanism (paper Section 4.2, last
                # paragraph): release immediately or reuse the register.
                if self.options.reuse_on_committed_lu:
                    self.register_reuses += 1
                    return DestRenameOutcome(reuse_previous=True,
                                             release_previous_at_commit=False)
                self._release_physical(old_pd, logical,
                                       self.view.current_cycle(), early=True)
                self.immediate_releases += 1
                return DestRenameOutcome(released_immediately=True,
                                         release_previous_at_commit=False)
            # Step 2, first case: conditional release in decoded (RwNS) form.
            self.release_queue.schedule_committed_lu(old_pd, logical, entry.seq)
            self.conditional_schedulings += 1
            return DestRenameOutcome(scheduled_early=True,
                                     release_previous_at_commit=False)

        if lu.seq == entry.seq:
            # The renaming instruction reads its own destination register
            # (e.g. the ``p = p->next`` load of a pointer chase), so *it*
            # is the last use of the previous version.  Its ROS entry is
            # not published to the seq index until rename finishes, so the
            # generic lookup below would miss it — and the historical
            # "treat an unknown LU as committed" fallback then scheduled
            # an RwNS release of a register whose definer could still be
            # in flight, double-releasing it when an exception flush later
            # returned the squashed definer's allocation (the last
            # remaining seed-era ``FreeListError`` family).
            lu_entry = entry
        else:
            lu_entry = self.view.ros_entry(lu.seq)
        if lu_entry is None:
            # Defensive: treat an unknown in-flight LU as committed.  The
            # scheduling carries the NV's seq, so a squash of the NV
            # cancels it before it can fire.
            if pending == 0:
                self._release_physical(old_pd, logical,
                                       self.view.current_cycle(), early=True)
                self.immediate_releases += 1
                return DestRenameOutcome(released_immediately=True,
                                         release_previous_at_commit=False)
            self.release_queue.schedule_committed_lu(old_pd, logical, entry.seq)
            self.conditional_schedulings += 1
            return DestRenameOutcome(scheduled_early=True,
                                     release_previous_at_commit=False)

        bit = _slot_bit(lu.slot)
        _cls, physical, _logical = lu_entry.physical_of_slot(bit)
        assert physical == old_pd, (
            "LUs table slot does not name the previous version: "
            f"slot maps to p{physical}, expected p{old_pd}")

        if pending == 0:
            # Non-speculative: plain RwC0 early-release bit on the LU entry.
            lu_entry.early_release_mask |= bit
            self.early_releases_scheduled += 1
            return DestRenameOutcome(scheduled_early=True,
                                     release_previous_at_commit=False)

        # Step 2, second case: conditional release tied to the in-flight LU.
        self.release_queue.schedule_inflight_lu(lu.seq, bit, entry.seq)
        self.conditional_schedulings += 1
        return DestRenameOutcome(scheduled_early=True,
                                 release_previous_at_commit=False)

    # ------------------------------------------------------------------
    # Resolution-time hooks
    # ------------------------------------------------------------------
    def on_branch_confirmed(self, branch_seq: int) -> None:
        """Step 4/6: collapse the confirmed branch's level toward RwC0."""
        cycle = self.view.current_cycle()

        def release(physical: int, logical: Optional[int]) -> None:
            self._release_physical(physical, logical, cycle, early=True)

        def promote_rwc0(lu_seq: int, mask: int) -> None:
            lu_entry = self.view.ros_entry(lu_seq)
            assert lu_entry is not None, (
                "RwC scheduling references an instruction that is neither in "
                "flight nor was moved to RwNS at its commit")
            lu_entry.early_release_mask |= mask

        self.release_queue.on_branch_confirmed(branch_seq, release, promote_rwc0)

    def on_branch_mispredicted(self, branch_seq: int) -> None:
        """Step 3: clear the level of the mispredicted branch and all younger ones.

        Confirmation merges can move a squashed NV's scheduling into a
        level *older* than the mispredicted branch, so the level clear is
        followed by an NV-tag sweep over the surviving levels.
        """
        self.release_queue.on_branch_mispredicted(branch_seq)
        self.release_queue.cancel_younger_than(branch_seq)

    # ------------------------------------------------------------------
    # Commit / flush hooks
    # ------------------------------------------------------------------
    def on_commit(self, entry: ROSEntry, cycle: int) -> None:
        """Step 5/6: release RwC0 registers; move conditional RwC bits to RwNS.

        As in the basic mechanism, the architectural-liveness update for the
        entry's own destination must run *before* the mask releases so that
        a destination-slot self-release leaves ``arch_version_released``
        set (see :meth:`BasicEarlyRelease.on_commit`).
        """
        if entry.dest_class is self.reg_class:
            assert entry.dest_logical is not None
            self._note_architectural_update(entry.dest_logical)
        mask = entry.early_release_mask
        if mask:
            bit = 1
            while bit <= DEST_SLOT_BIT:
                if mask & bit:
                    reg_class, physical, logical = entry.physical_of_slot(bit)
                    if reg_class is self.reg_class:
                        self._release_physical(physical, logical, cycle, early=True)
                bit <<= 1

        def slot_resolver(slot_bit: int) -> Tuple[int, Optional[int]]:
            _cls, physical, logical = entry.physical_of_slot(slot_bit)
            return physical, logical

        self.release_queue.on_lu_commit(entry.seq, slot_resolver)

    def on_exception_flush(self, cycle: int) -> None:
        """Nothing is in flight: forget last uses and drop conditional releases."""
        super().on_exception_flush(cycle)
        self.lus_table.reset()
        self.release_queue.clear()

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def snapshot_state(self):
        """Checkpoint the LUs Table (the Release Queue is repaired by level clears)."""
        return self.lus_table.snapshot()

    def restore_state(self, snapshot) -> None:
        """Restore the LUs Table copy of a mispredicted branch."""
        if snapshot is not None:
            self.lus_table.restore(snapshot)
