"""Basic early-release mechanism (paper Section 3).

When a next-version (NV) instruction is renamed and **no unresolved
branches exist between it and the last-use (LU) instruction** of the
previous version, the release of the previous version is tied to the LU
instruction instead of the NV instruction:

* LU still in flight → set the appropriate early-release bit
  (``rel1``/``rel2``/``reld``) in the LU's ROS entry and clear the NV's
  ``rel_old`` bit; the register is released when the LU commits.
* LU already committed → the register can be released immediately; the
  paper additionally allows *reusing* it as the NV's own destination
  without touching the mapping (enabled by default, see
  :class:`repro.core.release_policy.PolicyOptions`).

In every other case (an unresolved branch between LU and NV) the policy
falls back to conventional release, which is why the basic mechanism
helps FP codes (few branches) much more than integer codes.
"""

from __future__ import annotations

from typing import ClassVar, Optional

from repro.backend.ros import DEST_SLOT_BIT, ROSEntry, src_slot_bit
from repro.core.lus_table import DST_SLOT, LastUse, LastUsesTable
from repro.core.release_policy import DestRenameOutcome, ReleasePolicy


def _slot_bit(slot: int) -> int:
    """ROS early-release mask bit for an LUs-table slot value."""
    return DEST_SLOT_BIT if slot == DST_SLOT else src_slot_bit(slot)


class BasicEarlyRelease(ReleasePolicy):
    """Early release restricted to non-speculative LU/NV pairs (Section 3)."""

    name: ClassVar[str] = "basic"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.lus_table = LastUsesTable(self.map_table.num_logical)
        #: direct view of the table's entry list (identity-stable across
        #: reset/restore); written once per renamed operand.
        self._lus_entries = self.lus_table._entries
        self.fallback_conventional = 0

    # ------------------------------------------------------------------
    # Rename-time hooks
    # ------------------------------------------------------------------
    def note_source_use(self, entry: ROSEntry, slot: int, logical: int,
                        physical: int) -> None:
        """Renaming 1 (paper): record this instruction as the last user of ``logical``."""
        self._lus_entries[logical] = LastUse(entry.seq, slot)

    def note_dest_definition(self, entry: ROSEntry, logical: int) -> None:
        """Renaming 1 (paper): record the definition as a (Kind=dst) use."""
        self._lus_entries[logical] = LastUse(entry.seq, DST_SLOT)

    def rename_destination(self, entry: ROSEntry, logical: int,
                           old_pd: int) -> DestRenameOutcome:
        """Renaming 2 (paper): schedule an early release or reuse the register."""
        if self.map_table.is_stale(logical):
            # The mapping names a register that was already released before
            # an exception flush (Section 4.3): nothing to release or reuse.
            return DestRenameOutcome(release_previous_at_commit=False)

        lu: Optional[LastUse] = self.lus_table.lookup(logical)
        if lu is None:
            # Unknown last use (cold table): conventional release.
            self.fallback_conventional += 1
            return DestRenameOutcome(release_previous_at_commit=True)

        if self.view.has_pending_branch_younger_than(lu.seq):
            # Case 2 of the paper: a branch is pending between LU and NV —
            # the basic mechanism gives up and releases conventionally.
            self.fallback_conventional += 1
            return DestRenameOutcome(release_previous_at_commit=True)

        if lu.seq <= self.view.committed_watermark:
            # LU already committed: release immediately, or reuse the register.
            if self.options.reuse_on_committed_lu:
                self.register_reuses += 1
                return DestRenameOutcome(reuse_previous=True,
                                         release_previous_at_commit=False)
            self._release_physical(old_pd, logical,
                                   self.view.current_cycle(), early=True)
            self.immediate_releases += 1
            return DestRenameOutcome(released_immediately=True,
                                     release_previous_at_commit=False)

        lu_entry = self.view.ros_entry(lu.seq)
        if lu_entry is None:
            # The LU left the window without committing (squashed): the LUs
            # snapshot should have prevented this; fall back conservatively.
            self.fallback_conventional += 1
            return DestRenameOutcome(release_previous_at_commit=True)

        bit = _slot_bit(lu.slot)
        _cls, physical, _logical = lu_entry.physical_of_slot(bit)
        if physical != old_pd:
            # The recorded slot no longer names the previous version (defensive
            # check; cannot happen when the LUs table is managed correctly).
            self.fallback_conventional += 1
            return DestRenameOutcome(release_previous_at_commit=True)

        lu_entry.early_release_mask |= bit
        self.early_releases_scheduled += 1
        return DestRenameOutcome(scheduled_early=True,
                                 release_previous_at_commit=False)

    # ------------------------------------------------------------------
    # Commit / flush hooks
    # ------------------------------------------------------------------
    def on_commit(self, entry: ROSEntry, cycle: int) -> None:
        """Release the registers whose early-release bits point at this entry.

        The architectural-liveness update for the entry's own destination
        runs *before* the mask releases: when the entry's destination slot
        bit is set (its version was last used by its own definition), the
        release below frees the register the IOMT now names, and the
        resulting ``arch_version_released`` flag must survive this commit —
        updating afterwards would clear it and let a later exception flush
        rebuild a live-looking mapping to a freed register.
        """
        if entry.dest_class is self.reg_class:
            assert entry.dest_logical is not None
            self._note_architectural_update(entry.dest_logical)
        mask = entry.early_release_mask
        if mask:
            bit = 1
            while bit <= DEST_SLOT_BIT:
                if mask & bit:
                    reg_class, physical, logical = entry.physical_of_slot(bit)
                    if reg_class is self.reg_class:
                        self._release_physical(physical, logical, cycle, early=True)
                bit <<= 1
        if entry.dest_class is self.reg_class:
            if entry.rel_old and entry.allocated_new and entry.old_pd is not None:
                self._release_physical(entry.old_pd, entry.dest_logical, cycle,
                                       early=False)
                self.conventional_releases += 1

    def on_exception_flush(self, cycle: int) -> None:
        """Nothing is in flight any more: forget all recorded last uses."""
        super().on_exception_flush(cycle)
        self.lus_table.reset()

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def snapshot_state(self):
        """Checkpoint the LUs Table (one copy per predicted branch, Section 3.1)."""
        return self.lus_table.snapshot()

    def restore_state(self, snapshot) -> None:
        """Restore the LUs Table copy of a mispredicted branch."""
        if snapshot is not None:
            self.lus_table.restore(snapshot)
