"""The paper's contribution: physical-register release policies.

Three policies are provided, all operating on the same rename substrate
(:mod:`repro.rename`) and driven by the same pipeline hooks:

* :class:`ConventionalRelease` — previous version released at next-version
  commit (Section 2, the baseline every figure compares against);
* :class:`BasicEarlyRelease` — release tied to the last-use commit when no
  branches are pending between the last use and the redefinition
  (Section 3);
* :class:`ExtendedEarlyRelease` — conditional releases through a Release
  Queue so speculative redefinitions can also release early (Section 4).

Use :func:`make_release_policy` to construct a policy by its short name
("conv", "basic", "extended"), which is how
:class:`repro.pipeline.config.ProcessorConfig` selects the scheme.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from repro.core.register_state import (
    OccupancyAverages,
    OccupancyTotals,
    RegisterOccupancyTracker,
    RegState,
)
from repro.core.lus_table import DST_SLOT, LastUse, LastUsesTable
from repro.core.release_policy import (
    DestRenameOutcome,
    PipelineView,
    PolicyOptions,
    ReleasePolicy,
)
from repro.core.conventional import ConventionalRelease
from repro.core.basic import BasicEarlyRelease
from repro.core.release_queue import ReleaseQueue, ReleaseQueueLevel
from repro.core.extended import ExtendedEarlyRelease

#: Registry of release policies by short name.
POLICIES: Dict[str, Type[ReleasePolicy]] = {
    ConventionalRelease.name: ConventionalRelease,
    BasicEarlyRelease.name: BasicEarlyRelease,
    ExtendedEarlyRelease.name: ExtendedEarlyRelease,
    # Friendlier aliases.
    "conventional": ConventionalRelease,
}


def make_release_policy(name: str, *args, options: Optional[PolicyOptions] = None,
                        **kwargs) -> ReleasePolicy:
    """Instantiate the release policy registered under ``name``.

    ``name`` is one of ``"conv"``/``"conventional"``, ``"basic"`` or
    ``"extended"``; the remaining arguments are forwarded to the policy
    constructor (register class, register file, map table, IOMT, pipeline
    view).
    """
    try:
        policy_cls = POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(POLICIES))
        raise ValueError(f"unknown release policy {name!r}; known: {known}") from None
    return policy_cls(*args, options=options, **kwargs)


__all__ = [
    "RegState",
    "OccupancyTotals",
    "OccupancyAverages",
    "RegisterOccupancyTracker",
    "LastUse",
    "LastUsesTable",
    "DST_SLOT",
    "DestRenameOutcome",
    "PipelineView",
    "PolicyOptions",
    "ReleasePolicy",
    "ConventionalRelease",
    "BasicEarlyRelease",
    "ExtendedEarlyRelease",
    "ReleaseQueue",
    "ReleaseQueueLevel",
    "POLICIES",
    "make_release_policy",
]
