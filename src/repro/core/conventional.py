"""Conventional release policy (the paper's baseline, Section 2).

The previous version of a logical register is released when the
instruction that redefines the register (the next version, NV) commits:
at rename the previous mapping is saved into the ROS entry (``old_pd``)
and at commit it is handed back to the free list.  This retains registers
through the whole Idle interval the paper measures in Figure 3.
"""

from __future__ import annotations

from typing import ClassVar

from repro.backend.ros import ROSEntry
from repro.core.release_policy import DestRenameOutcome, ReleasePolicy


class ConventionalRelease(ReleasePolicy):
    """Release the previous version at next-version commit (paper Figure 1)."""

    name: ClassVar[str] = "conv"

    # ------------------------------------------------------------------
    def rename_destination(self, entry: ROSEntry, logical: int,
                           old_pd: int) -> DestRenameOutcome:
        """Keep the previous version until this instruction commits."""
        if self.map_table.is_stale(logical):
            # The mapping was rebuilt from the IOMT after an exception while
            # the architectural version had already been released (cannot
            # happen under *pure* conventional release, but keep the same
            # safety rule as the early-release policies).
            return DestRenameOutcome(release_previous_at_commit=False)
        return DestRenameOutcome(release_previous_at_commit=True)

    # ------------------------------------------------------------------
    def on_commit(self, entry: ROSEntry, cycle: int) -> None:
        """Release ``old_pd`` now that the redefining instruction commits."""
        if entry.dest_class is not self.reg_class:
            return
        assert entry.dest_logical is not None
        if entry.rel_old and entry.allocated_new and entry.old_pd is not None:
            self._release_physical(entry.old_pd, entry.dest_logical, cycle,
                                   early=False)
            self.conventional_releases += 1
        self._note_architectural_update(entry.dest_logical)
