"""Physical register state accounting (Figure 2 / Figure 3 of the paper).

The paper classifies an *Allocated* physical register as:

* **Empty** — from allocation (rename of the producing instruction) until
  the value is actually written (producer writeback);
* **Ready** — from the write until the commit of the instruction that uses
  the register for the last time;
* **Idle**  — from that last-use commit until the register is released
  (under conventional release: the commit of the next-version
  instruction).

The tracker below reproduces that classification *exactly but
retrospectively*: the boundary between Ready and Idle (the last-use
commit) is only known once the register's lifetime closes, so intervals
are attributed when the register is released (or when the simulation
ends), which yields the same per-cycle averages as sampling every cycle
would, at a fraction of the cost.  This follows the optimisation guidance
of the session's coding guides — the measurement was restructured, not the
simulated behaviour.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional


class RegState(enum.Enum):
    """Lifecycle states of a physical register (paper Figure 2a)."""

    FREE = "free"
    EMPTY = "empty"
    READY = "ready"
    IDLE = "idle"


@dataclass
class OccupancyTotals:
    """Aggregate register-state occupancy over a simulation.

    All values are in register-cycles except ``cycles``; divide by
    ``cycles`` to obtain the average number of registers in each state
    (the quantity plotted in Figure 3).
    """

    cycles: int = 0
    empty: float = 0.0
    ready: float = 0.0
    idle: float = 0.0

    @property
    def allocated(self) -> float:
        """Total allocated register-cycles (empty + ready + idle)."""
        return self.empty + self.ready + self.idle

    def averages(self) -> "OccupancyAverages":
        """Per-cycle averages (0 if the simulation ran for zero cycles)."""
        if self.cycles == 0:
            return OccupancyAverages(0.0, 0.0, 0.0)
        return OccupancyAverages(self.empty / self.cycles,
                                 self.ready / self.cycles,
                                 self.idle / self.cycles)


@dataclass(frozen=True)
class OccupancyAverages:
    """Average number of registers in each allocated state (Figure 3 bars)."""

    empty: float
    ready: float
    idle: float

    @property
    def allocated(self) -> float:
        """Average number of allocated registers."""
        return self.empty + self.ready + self.idle

    @property
    def used(self) -> float:
        """Average number of *used* registers (empty + ready), paper Section 2."""
        return self.empty + self.ready

    @property
    def idle_overhead(self) -> float:
        """Idle registers as a fraction of used registers.

        The paper reports this as "the late release policy ... increases
        the number of used registers by 45.8% for integer programs, and by
        16.8% for FP programs".
        """
        return 0.0 if self.used == 0 else self.idle / self.used


class RegisterOccupancyTracker:
    """Tracks Empty/Ready/Idle intervals for one physical register file."""

    def __init__(self, num_registers: int) -> None:
        self.num_registers = num_registers
        self._alloc_cycle: List[Optional[int]] = [None] * num_registers
        self._write_cycle: List[Optional[int]] = [None] * num_registers
        self._last_use_commit: List[Optional[int]] = [None] * num_registers
        self.totals = OccupancyTotals()

    # ------------------------------------------------------------------
    # Event hooks (called by the physical register file)
    # ------------------------------------------------------------------
    def on_allocate(self, reg: int, cycle: int) -> None:
        """Register ``reg`` allocated at ``cycle`` (state becomes Empty)."""
        self._alloc_cycle[reg] = cycle
        self._write_cycle[reg] = None
        self._last_use_commit[reg] = None

    def on_write(self, reg: int, cycle: int) -> None:
        """Register ``reg`` written (producer writeback) at ``cycle``."""
        if self._write_cycle[reg] is None:
            self._write_cycle[reg] = cycle

    def on_use_commit(self, reg: int, cycle: int) -> None:
        """An instruction reading (or producing) ``reg`` committed at ``cycle``."""
        self._last_use_commit[reg] = cycle

    def on_release(self, reg: int, cycle: int) -> None:
        """Register ``reg`` released at ``cycle``; attribute its intervals."""
        self._attribute(reg, cycle)
        self._alloc_cycle[reg] = None
        self._write_cycle[reg] = None
        self._last_use_commit[reg] = None

    def state_of(self, reg: int, committed_watermark_cycle: Optional[int] = None) -> RegState:
        """Current lifecycle state of ``reg`` (used by tests and Figure 2)."""
        if self._alloc_cycle[reg] is None:
            return RegState.FREE
        if self._write_cycle[reg] is None:
            return RegState.EMPTY
        if self._last_use_commit[reg] is None:
            return RegState.READY
        return RegState.IDLE

    # ------------------------------------------------------------------
    def _attribute(self, reg: int, end_cycle: int) -> None:
        # Conditionals instead of min()/max() builtins: this runs once per
        # register release, several of them per committed instruction.
        alloc = self._alloc_cycle[reg]
        if alloc is None:
            return
        write = self._write_cycle[reg]
        totals = self.totals
        if write is None:
            # Never written (e.g. squashed producer): the whole interval is Empty.
            if end_cycle > alloc:
                totals.empty += end_cycle - alloc
            return
        if write < alloc:
            write = alloc
        if write > alloc:
            totals.empty += write - alloc
        last_use = self._last_use_commit[reg]
        if last_use is None or last_use < write:
            last_use = write
        if last_use > end_cycle:
            last_use = end_cycle
        if last_use > write:
            totals.ready += last_use - write
        if end_cycle > last_use:
            totals.idle += end_cycle - last_use

    def finalize(self, end_cycle: int, allocated_registers: List[int]) -> OccupancyTotals:
        """Attribute intervals of still-allocated registers and close the books."""
        for reg in allocated_registers:
            self._attribute(reg, end_cycle)
        self.totals.cycles = end_cycle
        return self.totals
