"""Release-policy interface shared by conventional and early-release schemes.

A release policy instance manages the physical register file of *one*
register class (the paper keeps separate integer and FP files and LUs
Tables).  The pipeline calls the hooks below at well-defined points:

=======================  ======================================================
Hook                     Called
=======================  ======================================================
``note_source_use``      at rename, for every source operand of this class,
                         *before* the destination is processed
``rename_destination``   at rename, for a destination of this class, before a
                         new physical register is allocated; decides whether
                         the previous version can be reused and/or schedules
                         its early release
``note_dest_definition`` at rename, after the destination mapping is updated
``on_branch_renamed``    at rename of a branch (any class)
``on_branch_confirmed``  when a branch resolves correctly
``on_branch_mispredicted`` when a branch resolves incorrectly, *before* the
                         map table is restored
``on_commit``            when an instruction reaches the commit stage
``on_squash``            for every squashed entry, youngest first, after the
                         destination allocation has been undone
``on_exception_flush``   after a full pipeline flush
=======================  ======================================================

The policy sees the rest of the pipeline through the read-only
:class:`PipelineView` protocol, which keeps the policies unit-testable
without a full processor.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, ClassVar, Optional, Protocol, runtime_checkable

from repro.backend.ros import ROSEntry
from repro.isa import RegClass
from repro.rename.iomt import InOrderMapTable
from repro.rename.map_table import MapTable
from repro.rename.register_file import PhysicalRegisterFile


@runtime_checkable
class PipelineView(Protocol):
    """Read-only view of pipeline state needed by the release policies."""

    #: sequence number of the youngest committed instruction (-1 before
    #: the first commit).  Exposed as data because the policies test
    #: "has this LU committed?" once per renamed destination.
    committed_watermark: int

    def is_committed(self, seq: int) -> bool:
        """True when instruction ``seq`` has committed (in-order commit watermark)."""
        ...

    def has_pending_branch_younger_than(self, seq: int) -> bool:
        """True when an unresolved branch younger than ``seq`` exists."""
        ...

    def count_pending_branches(self) -> int:
        """Number of unresolved branches currently in flight."""
        ...

    def ros_entry(self, seq: int) -> Optional[ROSEntry]:
        """The in-flight ROS entry with sequence ``seq``, or None."""
        ...

    def current_cycle(self) -> int:
        """The current simulation cycle."""
        ...


@dataclass(frozen=True)
class DestRenameOutcome:
    """Decision returned by :meth:`ReleasePolicy.rename_destination`.

    Attributes
    ----------
    reuse_previous:
        True when the previous-version physical register is reused as the
        destination (no new allocation, mapping untouched) — the paper's
        "register reuse" optimisation for an already-committed LU.
    release_previous_at_commit:
        True when the conventional release of the previous version (at NV
        commit) stays enabled — i.e. the ``rel_old`` bit value.
    released_immediately:
        True when the previous version was released during this call.
    scheduled_early:
        True when an early release was scheduled (on the LU's commit or in
        the Release Queue).
    """

    reuse_previous: bool = False
    release_previous_at_commit: bool = True
    released_immediately: bool = False
    scheduled_early: bool = False


@dataclass
class PolicyOptions:
    """Tunable behaviour shared by the early-release policies.

    ``reuse_on_committed_lu`` enables the paper's register-reuse shortcut
    ("we can reuse the same physical register leaving the mapping
    untouched and not reclaiming any new register"); disabling it releases
    the register and allocates a fresh one instead (an ablation knob).
    """

    reuse_on_committed_lu: bool = True


class ReleasePolicy(abc.ABC):
    """Base class for the physical-register release policies of one register class."""

    #: short name used by :func:`repro.core.make_release_policy` and reports.
    name: ClassVar[str] = "abstract"

    def __init__(self, reg_class: RegClass, register_file: PhysicalRegisterFile,
                 map_table: MapTable, iomt: InOrderMapTable, view: PipelineView,
                 options: Optional[PolicyOptions] = None) -> None:
        self.reg_class = reg_class
        self.register_file = register_file
        self.map_table = map_table
        self.iomt = iomt
        self.view = view
        self.options = options or PolicyOptions()
        #: logical registers whose *architectural* (IOMT) version has already
        #: been released early.  Consulted only at exception-flush time to
        #: mark the rebuilt map-table entries as stale (paper Section 4.3);
        #: reset when a newer version of the logical register commits.
        self.arch_version_released = [False] * map_table.num_logical
        # statistics
        self.early_releases_scheduled = 0
        self.immediate_releases = 0
        self.register_reuses = 0
        self.conventional_releases = 0

    # ------------------------------------------------------------------
    # Rename-time hooks
    # ------------------------------------------------------------------
    def note_source_use(self, entry: ROSEntry, slot: int, logical: int,
                        physical: int) -> None:
        """Record that ``entry`` reads ``logical`` (operand slot ``slot``)."""

    @abc.abstractmethod
    def rename_destination(self, entry: ROSEntry, logical: int,
                           old_pd: int) -> DestRenameOutcome:
        """Decide how the previous version ``old_pd`` of ``logical`` will be released."""

    def note_dest_definition(self, entry: ROSEntry, logical: int) -> None:
        """Record that ``entry`` defines ``logical`` (after the mapping update)."""

    def on_branch_renamed(self, entry: ROSEntry) -> None:
        """A branch was renamed (a new speculation level begins)."""

    # ------------------------------------------------------------------
    # Resolution-time hooks
    # ------------------------------------------------------------------
    def on_branch_confirmed(self, branch_seq: int) -> None:
        """Branch ``branch_seq`` resolved correctly."""

    def on_branch_mispredicted(self, branch_seq: int) -> None:
        """Branch ``branch_seq`` resolved incorrectly (younger state will be squashed)."""

    # ------------------------------------------------------------------
    # Commit / squash / flush hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def on_commit(self, entry: ROSEntry, cycle: int) -> None:
        """Instruction ``entry`` commits: perform the releases this policy owns."""

    def on_squash(self, entry: ROSEntry, cycle: int) -> None:
        """Entry squashed (its own destination allocation is undone by the caller)."""

    def on_exception_flush(self, cycle: int) -> None:
        """The whole pipeline was flushed and the map table rebuilt from the IOMT.

        The base implementation marks as *stale* every rebuilt mapping whose
        architectural version had already been released early, so the next
        redefinition of that logical register neither releases nor reuses
        the (no longer owned) register.
        """
        for logical, released in enumerate(self.arch_version_released):
            if released:
                self.map_table.mark_stale(logical)

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Any:
        """Policy-private state to store in a branch checkpoint (None = nothing)."""
        return

    def restore_state(self, snapshot: Any) -> None:
        """Restore policy-private state from a branch checkpoint."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _release_physical(self, physical: int, logical: Optional[int],
                          cycle: int, early: bool) -> None:
        """Release ``physical``, flagging a stale architectural mapping if needed."""
        self.register_file.release(physical, cycle, early=early)
        if logical is not None and self.iomt.lookup(logical) == physical:
            # The register still holds the architectural version of
            # ``logical``: remember that the mapping is stale so an
            # exception recovery (which rebuilds the map table from the
            # IOMT) does not try to release or reuse it again.
            self.arch_version_released[logical] = True

    def _note_architectural_update(self, logical: int) -> None:
        """A new version of ``logical`` committed: its mapping is live again."""
        self.arch_version_released[logical] = False
