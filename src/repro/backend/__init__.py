"""Out-of-order back end: reorder structure, functional units, load/store queue.

The Reorder Structure (ROS) follows the paper's terminology: a FIFO of all
uncommitted instructions whose entries carry both the current-version
destination identifier (as an indirect reorder buffer would) and the
previous-version identifier (as an indirect history buffer would), plus
the early-release bits added by the Section 3/4 mechanisms.
"""

from repro.backend.ros import ROSEntry, ReorderStructure
from repro.backend.functional_units import FunctionalUnitPool, FUConfig
from repro.backend.lsq import LoadStoreQueue, LSQEntry

__all__ = [
    "ROSEntry",
    "ReorderStructure",
    "FunctionalUnitPool",
    "FUConfig",
    "LoadStoreQueue",
    "LSQEntry",
]
