"""Load/Store Queue with store-to-load forwarding (Table 2: 64 entries).

The paper's issue rule is conservative: "Loads are executed when all
previously store addresses are known".  Store addresses become known when
the store issues (address generation); stores update the data cache at
commit.

Loads blocked by that rule do not sit in the scheduler's ready set being
re-tested every cycle: they park on the wait list of their *first* older
store with an unknown address (:meth:`LoadStoreQueue.park_blocked_load`),
and :meth:`LoadStoreQueue.mark_address_known` hands the parked loads back
to the issue stage when that store computes its address.  Blocking is
monotone — older stores only ever *gain* known addresses, and a store can
never be squashed without also squashing every younger parked load — so
parking on the first blocker is exact, not heuristic.

The queue itself is a deque ordered by program order with a seq-keyed
side index, so the per-instruction operations are O(1): commit removes
from the front (retirement is in order), squash pops from the back, and
the completion/address-known updates resolve their entry through the
index instead of scanning.

Parked references are stored seq-tagged: the columnar Reorder Structure
recycles its row handles, so a load squashed while parked may have its
handle reused by a later instruction.  :meth:`mark_address_known`
compares the recorded sequence number against ``entry.seq`` and drops
dead references instead of waking the row's new occupant.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple


@dataclass(slots=True)
class LSQEntry:
    """One in-flight memory operation."""

    seq: int
    is_store: bool
    address: int
    addr_known: bool = False
    done: bool = False


class LoadStoreQueue:
    """Program-ordered queue of in-flight loads and stores."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: Deque[LSQEntry] = deque()
        #: seq -> entry, kept in lockstep with the deque (O(1) find).
        self._by_seq: Dict[int, LSQEntry] = {}
        #: store seq -> seq-tagged ROS entries of loads parked until its
        #: address is known (tag validated at drain; see module docstring).
        self._waiters: Dict[int, List[Tuple[int, object]]] = {}
        self.forwarded_loads = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        """True when dispatch of another memory operation must stall."""
        return len(self._entries) >= self.capacity

    def insert(self, seq: int, is_store: bool, address: int) -> LSQEntry:
        """Add a renamed memory operation at the queue tail."""
        if len(self._entries) >= self.capacity:
            raise RuntimeError("LSQ overflow: dispatch must stall instead")
        if self._entries and seq <= self._entries[-1].seq:
            raise ValueError("LSQ entries must be inserted in program order")
        entry = LSQEntry(seq=seq, is_store=is_store, address=address)
        self._entries.append(entry)
        self._by_seq[seq] = entry
        return entry

    def find(self, seq: int) -> Optional[LSQEntry]:
        """Entry for instruction ``seq``, or None (O(1))."""
        return self._by_seq.get(seq)

    # ------------------------------------------------------------------
    def load_may_issue(self, seq: int) -> bool:
        """Paper issue rule: every older store's address must be known."""
        for entry in self._entries:
            if entry.seq >= seq:
                break
            if entry.is_store and not entry.addr_known:
                return False
        return True

    def store_forwards_to(self, seq: int, address: int, line_mask: int = ~7) -> bool:
        """True when the youngest older store to the same (8-byte) word
        can forward its data to the load ``seq``."""
        best: Optional[LSQEntry] = None
        target = address & line_mask
        for entry in self._entries:
            if entry.seq >= seq:
                break
            if entry.is_store and entry.addr_known and \
                    (entry.address & line_mask) == target:
                best = entry
        if best is not None:
            self.forwarded_loads += 1
            return True
        return False

    def park_blocked_load(self, seq: int, ros_entry: object) -> bool:
        """Park ``ros_entry`` on its first older unknown-address store.

        Returns True when the load was parked (it may not issue yet) and
        False when no older store blocks it (the load is issue-ready).
        The parked reference is handed back by :meth:`mark_address_known`
        when the blocking store computes its address.
        """
        for entry in self._entries:
            if entry.seq >= seq:
                break
            if entry.is_store and not entry.addr_known:
                self._waiters.setdefault(entry.seq, []).append((seq, ros_entry))
                return True
        return False

    def mark_address_known(self, seq: int) -> List[object]:
        """The memory operation ``seq`` has computed its effective address.

        Returns the *live* loads that were parked on it; each must be
        re-examined by the caller (re-parked on the next unknown older
        store, or promoted to the ready set).  Parked loads that were
        squashed — or whose recycled handle now belongs to a different
        instruction — are dropped here.
        """
        entry = self._by_seq.get(seq)
        if entry is not None:
            entry.addr_known = True
        parked = self._waiters.pop(seq, None)
        if not parked:
            return []
        return [load for load_seq, load in parked
                if load.seq == load_seq and not load.squashed]

    def mark_done(self, seq: int) -> None:
        """The memory operation ``seq`` completed execution."""
        entry = self._by_seq.get(seq)
        if entry is not None:
            entry.done = True

    # ------------------------------------------------------------------
    def remove(self, seq: int) -> None:
        """Remove the entry of ``seq`` (at commit).

        Commit is in order and the queue is program-ordered, so the entry
        is (almost) always the queue head; the defensive fallback scans.
        """
        if self._by_seq.pop(seq, None) is None:
            return
        entries = self._entries
        if entries and entries[0].seq == seq:
            entries.popleft()
        else:  # pragma: no cover - unreachable under in-order commit
            for entry in entries:
                if entry.seq == seq:
                    entries.remove(entry)
                    break
        # A committing store has issued, so its wait list was drained at
        # issue; popping defensively keeps the invariant obvious.
        if self._waiters:
            self._waiters.pop(seq, None)

    def squash_younger_than(self, seq: int) -> None:
        """Drop every entry younger than ``seq`` (misprediction recovery).

        Wait lists keyed by squashed stores go too; loads parked on
        *surviving* stores may themselves be squashed — the seq tags
        filter those when the list is drained.
        """
        entries = self._entries
        by_seq = self._by_seq
        while entries and entries[-1].seq > seq:
            del by_seq[entries.pop().seq]
        if self._waiters:
            self._waiters = {store_seq: waiters
                             for store_seq, waiters in self._waiters.items()
                             if store_seq <= seq}

    def clear(self) -> None:
        """Drop every entry (exception flush)."""
        self._entries.clear()
        self._by_seq.clear()
        self._waiters.clear()
