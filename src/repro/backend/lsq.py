"""Load/Store Queue with store-to-load forwarding (Table 2: 64 entries).

The paper's issue rule is conservative: "Loads are executed when all
previously store addresses are known".  Store addresses become known when
the store issues (address generation); stores update the data cache at
commit.

Loads blocked by that rule do not sit in the scheduler's ready set being
re-tested every cycle: they park on the wait list of their *first* older
store with an unknown address (:meth:`LoadStoreQueue.park_blocked_load`),
and :meth:`LoadStoreQueue.mark_address_known` hands the parked loads back
to the issue stage when that store computes its address.  Blocking is
monotone — older stores only ever *gain* known addresses, and a store can
never be squashed without also squashing every younger parked load — so
parking on the first blocker is exact, not heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass
class LSQEntry:
    """One in-flight memory operation."""

    seq: int
    is_store: bool
    address: int
    addr_known: bool = False
    done: bool = False


class LoadStoreQueue:
    """Program-ordered queue of in-flight loads and stores."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: List[LSQEntry] = []
        #: store seq -> ROS entries of loads parked until its address is known.
        self._waiters: Dict[int, List[object]] = {}
        self.forwarded_loads = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        """True when dispatch of another memory operation must stall."""
        return len(self._entries) >= self.capacity

    def insert(self, seq: int, is_store: bool, address: int) -> LSQEntry:
        """Add a renamed memory operation at the queue tail."""
        if self.is_full:
            raise RuntimeError("LSQ overflow: dispatch must stall instead")
        if self._entries and seq <= self._entries[-1].seq:
            raise ValueError("LSQ entries must be inserted in program order")
        entry = LSQEntry(seq=seq, is_store=is_store, address=address)
        self._entries.append(entry)
        return entry

    def find(self, seq: int) -> Optional[LSQEntry]:
        """Entry for instruction ``seq``, or None."""
        for entry in self._entries:
            if entry.seq == seq:
                return entry
        return None

    # ------------------------------------------------------------------
    def load_may_issue(self, seq: int) -> bool:
        """Paper issue rule: every older store's address must be known."""
        for entry in self._entries:
            if entry.seq >= seq:
                break
            if entry.is_store and not entry.addr_known:
                return False
        return True

    def store_forwards_to(self, seq: int, address: int, line_mask: int = ~7) -> bool:
        """True when the youngest older store to the same (8-byte) word
        can forward its data to the load ``seq``."""
        best: Optional[LSQEntry] = None
        for entry in self._entries:
            if entry.seq >= seq:
                break
            if entry.is_store and entry.addr_known and \
                    (entry.address & line_mask) == (address & line_mask):
                best = entry
        if best is not None:
            self.forwarded_loads += 1
            return True
        return False

    def park_blocked_load(self, seq: int, ros_entry: object) -> bool:
        """Park ``ros_entry`` on its first older unknown-address store.

        Returns True when the load was parked (it may not issue yet) and
        False when no older store blocks it (the load is issue-ready).
        The parked reference is handed back by :meth:`mark_address_known`
        when the blocking store computes its address.
        """
        for entry in self._entries:
            if entry.seq >= seq:
                break
            if entry.is_store and not entry.addr_known:
                self._waiters.setdefault(entry.seq, []).append(ros_entry)
                return True
        return False

    def mark_address_known(self, seq: int) -> List[object]:
        """The memory operation ``seq`` has computed its effective address.

        Returns the loads that were parked on it; each must be re-examined
        by the caller (re-parked on the next unknown older store, or
        promoted to the ready set).
        """
        entry = self.find(seq)
        if entry is not None:
            entry.addr_known = True
        return self._waiters.pop(seq, [])

    def mark_done(self, seq: int) -> None:
        """The memory operation ``seq`` completed execution."""
        entry = self.find(seq)
        if entry is not None:
            entry.done = True

    # ------------------------------------------------------------------
    def remove(self, seq: int) -> None:
        """Remove the entry of ``seq`` (at commit)."""
        self._entries = [entry for entry in self._entries if entry.seq != seq]
        # A committing store has issued, so its wait list was drained at
        # issue; popping defensively keeps the invariant obvious.
        self._waiters.pop(seq, None)

    def squash_younger_than(self, seq: int) -> None:
        """Drop every entry younger than ``seq`` (misprediction recovery).

        Wait lists keyed by squashed stores go too; loads parked on
        *surviving* stores may themselves be squashed — the issue stage
        skips those when the list is drained.
        """
        self._entries = [entry for entry in self._entries if entry.seq <= seq]
        if self._waiters:
            self._waiters = {store_seq: waiters
                             for store_seq, waiters in self._waiters.items()
                             if store_seq <= seq}

    def clear(self) -> None:
        """Drop every entry (exception flush)."""
        self._entries.clear()
        self._waiters.clear()
