"""Load/Store Queue with store-to-load forwarding (Table 2: 64 entries).

The paper's issue rule is conservative: "Loads are executed when all
previously store addresses are known".  Store addresses become known when
the store issues (address generation); stores update the data cache at
commit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass
class LSQEntry:
    """One in-flight memory operation."""

    seq: int
    is_store: bool
    address: int
    addr_known: bool = False
    done: bool = False


class LoadStoreQueue:
    """Program-ordered queue of in-flight loads and stores."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: List[LSQEntry] = []
        self.forwarded_loads = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        """True when dispatch of another memory operation must stall."""
        return len(self._entries) >= self.capacity

    def insert(self, seq: int, is_store: bool, address: int) -> LSQEntry:
        """Add a renamed memory operation at the queue tail."""
        if self.is_full:
            raise RuntimeError("LSQ overflow: dispatch must stall instead")
        if self._entries and seq <= self._entries[-1].seq:
            raise ValueError("LSQ entries must be inserted in program order")
        entry = LSQEntry(seq=seq, is_store=is_store, address=address)
        self._entries.append(entry)
        return entry

    def find(self, seq: int) -> Optional[LSQEntry]:
        """Entry for instruction ``seq``, or None."""
        for entry in self._entries:
            if entry.seq == seq:
                return entry
        return None

    # ------------------------------------------------------------------
    def load_may_issue(self, seq: int) -> bool:
        """Paper issue rule: every older store's address must be known."""
        for entry in self._entries:
            if entry.seq >= seq:
                break
            if entry.is_store and not entry.addr_known:
                return False
        return True

    def store_forwards_to(self, seq: int, address: int, line_mask: int = ~7) -> bool:
        """True when the youngest older store to the same (8-byte) word
        can forward its data to the load ``seq``."""
        best: Optional[LSQEntry] = None
        for entry in self._entries:
            if entry.seq >= seq:
                break
            if entry.is_store and entry.addr_known and \
                    (entry.address & line_mask) == (address & line_mask):
                best = entry
        if best is not None:
            self.forwarded_loads += 1
            return True
        return False

    def mark_address_known(self, seq: int) -> None:
        """The memory operation ``seq`` has computed its effective address."""
        entry = self.find(seq)
        if entry is not None:
            entry.addr_known = True

    def mark_done(self, seq: int) -> None:
        """The memory operation ``seq`` completed execution."""
        entry = self.find(seq)
        if entry is not None:
            entry.done = True

    # ------------------------------------------------------------------
    def remove(self, seq: int) -> None:
        """Remove the entry of ``seq`` (at commit)."""
        self._entries = [entry for entry in self._entries if entry.seq != seq]

    def squash_younger_than(self, seq: int) -> None:
        """Drop every entry younger than ``seq`` (misprediction recovery)."""
        self._entries = [entry for entry in self._entries if entry.seq <= seq]

    def clear(self) -> None:
        """Drop every entry (exception flush)."""
        self._entries.clear()
