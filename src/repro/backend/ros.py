"""Reorder Structure (ROS) and its entries.

Every renamed, uncommitted instruction occupies one :class:`ROSEntry`.
The entry carries the conventional-renaming fields of paper Figure 1
(``old_pd``, ``rd``, ``pd``) and the fields added by the basic mechanism
in Figure 5 (logical/physical source identifiers, the previous-version
release bit ``rel_old`` and the early-release bits ``rel1/rel2/reld``,
stored here as a slot bitmask).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, List, Optional, Tuple

from repro.isa import Instruction, RegClass


#: Bit of ``ROSEntry.early_release_mask`` corresponding to source slot *i*.
def src_slot_bit(slot: int) -> int:
    """Mask bit for source slot ``slot`` (0-based)."""
    return 1 << slot


#: Bit of ``ROSEntry.early_release_mask`` corresponding to the destination slot.
DEST_SLOT_BIT = 1 << 3


class ROSEntry:
    """One uncommitted instruction in the Reorder Structure."""

    __slots__ = (
        "seq", "inst", "wrong_path", "resume_cursor", "prediction",
        "predicted_taken", "fetch_mispredicted",
        "dest_class", "dest_logical", "pd", "old_pd", "allocated_new", "reused",
        "rel_old", "early_release_mask",
        "src_regs", "wait_producers",
        "issued", "completed", "complete_cycle", "rename_cycle", "issue_cycle",
        "branch_resolved", "lsq_index", "exception", "mem_latency", "squashed",
    )

    def __init__(self, seq: int, inst: Instruction) -> None:
        self.seq = seq
        self.inst = inst
        self.wrong_path = inst.wrong_path
        self.resume_cursor = -1
        self.prediction = None
        self.predicted_taken = False
        self.fetch_mispredicted = False

        self.dest_class: Optional[RegClass] = None
        self.dest_logical: Optional[int] = None
        self.pd: Optional[int] = None
        self.old_pd: Optional[int] = None
        self.allocated_new = False
        self.reused = False

        #: conventional previous-version release enable (paper ``rel_old``).
        self.rel_old = False
        #: early-release bits: bits 0..2 = source slots, bit 3 = destination.
        self.early_release_mask = 0

        #: per source slot: (reg_class, logical, physical).
        self.src_regs: List[Tuple[RegClass, int, int]] = []
        #: producer sequence numbers this instruction still waits on.
        self.wait_producers: set = set()

        self.issued = False
        self.completed = False
        self.complete_cycle = -1
        self.rename_cycle = -1
        self.issue_cycle = -1
        self.branch_resolved = False
        self.lsq_index: Optional[int] = None
        self.exception = False
        self.mem_latency = 0
        self.squashed = False

    # ------------------------------------------------------------------
    @property
    def has_dest(self) -> bool:
        """True when the entry allocated (or reused) a destination register."""
        return self.dest_class is not None

    @property
    def ready(self) -> bool:
        """True when every source operand is available (may issue)."""
        return not self.wait_producers

    def physical_of_slot(self, slot_bit: int) -> Tuple[RegClass, int, Optional[int]]:
        """Return ``(reg_class, physical, logical)`` for an early-release slot bit."""
        if slot_bit == DEST_SLOT_BIT:
            assert self.dest_class is not None and self.pd is not None
            return self.dest_class, self.pd, self.dest_logical
        slot = slot_bit.bit_length() - 1
        reg_class, logical, physical = self.src_regs[slot]
        return reg_class, physical, logical

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ROSEntry(seq={self.seq}, op={self.inst.op.name}, "
                f"pd={self.pd}, old_pd={self.old_pd}, "
                f"issued={self.issued}, completed={self.completed})")


class ReorderStructure:
    """FIFO of uncommitted instructions (the paper's ROS, Table 2: 128 entries)."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: Deque[ROSEntry] = deque()
        #: seq -> entry index kept in lockstep by every mutator, so
        #: :meth:`find` (the release policies' LU lookups) is O(1).
        self._by_seq: Dict[int, ROSEntry] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ROSEntry]:
        return iter(self._entries)

    @property
    def is_full(self) -> bool:
        """True when dispatch must stall."""
        return len(self._entries) >= self.capacity

    @property
    def is_empty(self) -> bool:
        """True when no instruction is in flight."""
        return not self._entries

    def head(self) -> Optional[ROSEntry]:
        """Oldest uncommitted instruction, or None when empty."""
        return self._entries[0] if self._entries else None

    def tail(self) -> Optional[ROSEntry]:
        """Youngest uncommitted instruction, or None when empty."""
        return self._entries[-1] if self._entries else None

    # ------------------------------------------------------------------
    def append(self, entry: ROSEntry) -> None:
        """Insert a newly renamed instruction at the tail."""
        if self.is_full:
            raise RuntimeError("ROS overflow: dispatch must stall instead")
        if self._entries and entry.seq <= self._entries[-1].seq:
            raise ValueError("ROS entries must be appended in program order")
        self._entries.append(entry)
        self._by_seq[entry.seq] = entry

    def pop_head(self) -> ROSEntry:
        """Remove and return the committing head entry."""
        entry = self._entries.popleft()
        del self._by_seq[entry.seq]
        return entry

    def squash_younger_than(self, seq: int) -> List[ROSEntry]:
        """Remove every entry younger than ``seq``; youngest first.

        Returning youngest-first lets callers undo rename state in reverse
        program order, which is required for walk-based free-list repair.
        """
        squashed: List[ROSEntry] = []
        while self._entries and self._entries[-1].seq > seq:
            entry = self._entries.pop()
            del self._by_seq[entry.seq]
            squashed.append(entry)
        return squashed

    def squash_all(self) -> List[ROSEntry]:
        """Remove every entry (exception flush); youngest first."""
        squashed = list(self._entries)[::-1]
        self._entries.clear()
        self._by_seq.clear()
        return squashed

    def find(self, seq: int) -> Optional[ROSEntry]:
        """Return the in-flight entry with sequence number ``seq`` (O(1))."""
        return self._by_seq.get(seq)
