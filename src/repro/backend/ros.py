"""Columnar Reorder Structure (ROS) and its row-handle entries.

Every renamed, uncommitted instruction occupies one *row* of the
:class:`ReorderStructure`.  Since PR 3 the structure is columnar: the
fields the batched kernels operate on — sequence number, the
completed/squashed/exception flags and the completion cycle — live in
preallocated numpy arrays indexed by row, while :class:`ROSEntry` objects
are recycled *handles* over rows that keep the remaining per-instruction
rename state (the conventional-renaming fields of paper Figure 1
(``old_pd``, ``rd``, ``pd``) and the fields added by the basic mechanism
in Figure 5: logical/physical source identifiers, the previous-version
release bit ``rel_old`` and the early-release bits ``rel1/rel2/reld``,
stored here as a slot bitmask).

Invariants
----------
**Age order.**  Rows form a ring buffer: the oldest instruction sits at
``_head`` and rows are occupied in strictly increasing sequence-number
order.  ``append``/``push`` enforce this; ``pop_head`` retires from the
old end and squashes trim the young end, so the occupied window is always
contiguous (modulo wraparound) and age-sorted.

**Row-id stability.**  A row id (``ROSEntry.row``) is fixed for the
lifetime of the in-flight instruction: neither squash nor the commit of
older entries moves a live entry to a different row.  Row ids (and their
handle objects) are recycled only after the occupant has left the window,
which is why every index that can hold a stale reference across a squash
(the completion queue, the wakeup lists, the LSQ wait lists — see
:mod:`repro.engine.events` and :mod:`repro.backend.lsq`) stores the
sequence number alongside the handle and validates ``entry.seq`` before
acting.  Sequence numbers are never reused, so the check is exact.

**Index/column consistency.**  The object fields mirrored in columns
(``completed``, ``squashed``, ``exception``, ``complete_cycle``, ``seq``)
are only written through :class:`ReorderStructure` methods
(:meth:`ReorderStructure.note_completed`, the squash kernels, row
allocation), which update the handle and the column together.  The
``_by_seq`` map is kept in lockstep by every mutator, so :meth:`find`
(the release policies' LU lookups) is O(1).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.isa import Instruction, RegClass


#: Bit of ``ROSEntry.early_release_mask`` corresponding to source slot *i*.
def src_slot_bit(slot: int) -> int:
    """Mask bit for source slot ``slot`` (0-based)."""
    return 1 << slot


#: Bit of ``ROSEntry.early_release_mask`` corresponding to the destination slot.
DEST_SLOT_BIT = 1 << 3


class ROSEntry:
    """One uncommitted instruction: a (recyclable) handle over a ROS row.

    Entries owned by a :class:`ReorderStructure` carry the row id they
    were renamed into (:attr:`row`); standalone entries built by tests
    use ``row = -1`` until appended.  All per-field access is plain
    attribute access — the numpy columns mirror only the flags the
    batched commit/squash kernels slice.
    """

    __slots__ = (
        "row",
        "seq", "inst", "wrong_path", "resume_cursor", "prediction",
        "predicted_taken", "fetch_mispredicted",
        "dest_class", "dest_logical", "pd", "old_pd", "allocated_new", "reused",
        "rel_old", "early_release_mask",
        "src_regs", "wait_producers",
        "issued", "completed", "complete_cycle", "rename_cycle", "issue_cycle",
        "branch_resolved", "lsq_index", "exception", "mem_latency", "squashed",
    )

    def __init__(self, seq: int, inst: Optional[Instruction],
                 row: int = -1) -> None:
        self.row = row
        self.src_regs: List[Tuple[RegClass, int, int]] = []
        self.wait_producers: set = set()
        # Front-end fields: defaults live here, not in reset() — the
        # rename stage assigns all four unconditionally right after
        # obtaining a (possibly recycled) handle, so the recycle path
        # skips them.
        self.resume_cursor = -1
        self.prediction = None
        self.predicted_taken = False
        self.fetch_mispredicted = False
        self.reset(seq, inst)

    def reset(self, seq: int, inst: Optional[Instruction]) -> None:
        """(Re-)initialise the handle for a freshly renamed instruction.

        Called once at construction and again each time the row is
        recycled for a new instruction; :attr:`row` is preserved and the
        front-end fields (``resume_cursor``, ``prediction``,
        ``predicted_taken``, ``fetch_mispredicted``) are left stale — the
        rename stage overwrites them before the entry is published.
        """
        self.seq = seq
        self.inst = inst
        self.wrong_path = inst.wrong_path if inst is not None else False

        self.dest_class: Optional[RegClass] = None
        self.dest_logical: Optional[int] = None
        self.pd: Optional[int] = None
        self.old_pd: Optional[int] = None
        self.allocated_new = False
        self.reused = False

        #: conventional previous-version release enable (paper ``rel_old``).
        self.rel_old = False
        #: early-release bits: bits 0..2 = source slots, bit 3 = destination.
        self.early_release_mask = 0

        #: per source slot: (reg_class, logical, physical).
        self.src_regs.clear()
        #: producer sequence numbers this instruction still waits on.
        self.wait_producers.clear()

        self.issued = False
        self.completed = False
        self.complete_cycle = -1
        self.rename_cycle = -1
        self.issue_cycle = -1
        self.branch_resolved = False
        self.lsq_index: Optional[int] = None
        self.exception = False
        self.mem_latency = 0
        self.squashed = False

    # ------------------------------------------------------------------
    @property
    def has_dest(self) -> bool:
        """True when the entry allocated (or reused) a destination register."""
        return self.dest_class is not None

    @property
    def ready(self) -> bool:
        """True when every source operand is available (may issue)."""
        return not self.wait_producers

    def physical_of_slot(self, slot_bit: int) -> Tuple[RegClass, int, Optional[int]]:
        """Return ``(reg_class, physical, logical)`` for an early-release slot bit."""
        if slot_bit == DEST_SLOT_BIT:
            assert self.dest_class is not None and self.pd is not None
            return self.dest_class, self.pd, self.dest_logical
        slot = slot_bit.bit_length() - 1
        reg_class, logical, physical = self.src_regs[slot]
        return reg_class, physical, logical

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        op = self.inst.op.name if self.inst is not None else "?"
        return (f"ROSEntry(seq={self.seq}, row={self.row}, op={op}, "
                f"pd={self.pd}, old_pd={self.old_pd}, "
                f"issued={self.issued}, completed={self.completed})")


class ReorderStructure:
    """Columnar FIFO of uncommitted instructions (the paper's ROS, Table 2).

    Rows live in a fixed ring of ``capacity`` slots.  The numeric/flag
    columns are preallocated numpy arrays so the batched kernels —
    :meth:`completed_prefix` (commit), :meth:`squash_younger_than` and
    :meth:`squash_all` (recovery) — operate on contiguous ring slices
    instead of per-entry Python attribute walks.  See the module
    docstring for the age-order, row-stability and column-consistency
    invariants.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._head = 0
        self._count = 0
        #: row handles; populated lazily and recycled thereafter.
        self._rows: List[Optional[ROSEntry]] = [None] * capacity
        # ------------------------------------------------------ columns
        # Out-of-window rows always hold cleared flags: the retire and
        # squash kernels slice-reset the rows they vacate, so the rename
        # fast path (`push`) only writes the seq column (plus the rare
        # exception flag) instead of re-initialising every column.
        self.col_seq = np.full(capacity, -1, dtype=np.int64)
        self.col_completed = np.zeros(capacity, dtype=bool)
        self.col_squashed = np.zeros(capacity, dtype=bool)
        self.col_exception = np.zeros(capacity, dtype=bool)
        self.col_complete_cycle = np.full(capacity, -1, dtype=np.int64)
        #: sticky marker: at least one excepting entry was ever pushed, so
        #: the commit kernel must consult the exception column at all.
        self._seen_exception = False
        #: seq -> entry, kept in lockstep by every mutator, so
        #: :meth:`find` (the release policies' LU lookups) is O(1).
        self._by_seq: Dict[int, ROSEntry] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[ROSEntry]:
        """Iterate the occupied rows in age (program) order."""
        head, count, capacity = self._head, self._count, self.capacity
        rows = self._rows
        for offset in range(count):
            yield rows[(head + offset) % capacity]

    @property
    def is_full(self) -> bool:
        """True when dispatch must stall."""
        return self._count >= self.capacity

    @property
    def is_empty(self) -> bool:
        """True when no instruction is in flight."""
        return self._count == 0

    def head(self) -> Optional[ROSEntry]:
        """Oldest uncommitted instruction, or None when empty."""
        return self._rows[self._head] if self._count else None

    def tail(self) -> Optional[ROSEntry]:
        """Youngest uncommitted instruction, or None when empty."""
        if not self._count:
            return None
        return self._rows[(self._head + self._count - 1) % self.capacity]

    # ------------------------------------------------------------------
    # Row allocation (engine fast path) and append (compatibility path)
    # ------------------------------------------------------------------
    def begin_rename(self, seq: int, inst: Instruction) -> ROSEntry:
        """Hand out the next row's (recycled) handle for an instruction
        being renamed, *without* publishing it.

        The rename stage fills the handle (sources, destination, branch
        and memory state) and then calls :meth:`push`; until that point
        the entry is invisible to :meth:`find`, iteration and the
        head/tail probes, which preserves the pre-columnar semantics that
        an instruction is not in the window while its own rename hooks
        run.  The caller must not interleave other ROS mutations between
        the two calls.
        """
        if self._count >= self.capacity:
            raise RuntimeError("ROS overflow: dispatch must stall instead")
        row = (self._head + self._count) % self.capacity
        entry = self._rows[row]
        if entry is None:
            entry = ROSEntry(seq, inst, row)
            self._rows[row] = entry
        else:
            # A handle parked at this row keeps its row id; only reset it.
            entry.reset(seq, inst)
        return entry

    def push(self, entry: ROSEntry) -> None:
        """Publish a handle obtained from :meth:`begin_rename`.

        The vacating kernels guarantee the row's flag columns are already
        clear (class docstring), so only the seq column — and, rarely,
        the exception flag — is written here.
        """
        row = entry.row
        self.col_seq[row] = entry.seq
        self.col_squashed[row] = False
        if entry.exception:
            self.col_exception[row] = True
            self._seen_exception = True
        self._by_seq[entry.seq] = entry
        self._count += 1

    def append(self, entry: ROSEntry) -> None:
        """Insert an externally built entry at the tail (tests/harnesses).

        The engine's rename stage uses the :meth:`begin_rename`/
        :meth:`push` pair instead, which recycles row handles.
        """
        if self._count >= self.capacity:
            raise RuntimeError("ROS overflow: dispatch must stall instead")
        if self._count and entry.seq <= self.tail().seq:
            raise ValueError("ROS entries must be appended in program order")
        row = (self._head + self._count) % self.capacity
        entry.row = row
        self._rows[row] = entry
        self.col_seq[row] = entry.seq
        self.col_completed[row] = entry.completed
        self.col_squashed[row] = entry.squashed
        self.col_exception[row] = entry.exception
        self.col_complete_cycle[row] = entry.complete_cycle
        if entry.exception:
            self._seen_exception = True
        self._by_seq[entry.seq] = entry
        self._count += 1

    def pop_head(self) -> ROSEntry:
        """Remove and return the committing head entry.

        Single-entry compatibility path; the engine's commit stage
        retires whole completed prefixes through :meth:`retire_prefix`.
        """
        if not self._count:
            raise IndexError("pop_head() on an empty ROS")
        row = self._head
        entry = self._rows[row]
        self.col_seq[row] = -1
        self.col_completed[row] = False
        self.col_exception[row] = False
        self.col_complete_cycle[row] = -1
        self._head = (row + 1) % self.capacity
        self._count -= 1
        del self._by_seq[entry.seq]
        return entry

    #: window width above which the kernels switch from scalar column
    #: probes to vectorised slices.  Below it, numpy's fixed per-op cost
    #: exceeds the whole scalar walk (commit batches are commit-width
    #: sized; squash windows after a late misprediction are ROS-sized).
    _VECTOR_THRESHOLD = 16

    def retire_prefix(self, count: int) -> List[ROSEntry]:
        """Batched commit: remove and return the ``count`` oldest entries.

        The vacated rows' completion/exception flags are reset — in one
        masked slice per ring segment for wide batches, by scalar probes
        for commit-width ones — restoring the cleared-outside-the-window
        invariant :meth:`push` relies on.  The returned handles are valid
        until their rows are recycled by later renames.
        """
        if count > self._count:
            raise IndexError("retire_prefix() beyond the occupied window")
        head, capacity, rows = self._head, self.capacity, self._rows
        col_completed = self.col_completed
        clear_exceptions = self._seen_exception
        if count <= self._VECTOR_THRESHOLD:
            retired = []
            col_exception = self.col_exception
            row = head
            for _ in range(count):
                retired.append(rows[row])
                col_completed[row] = False
                if clear_exceptions:
                    col_exception[row] = False
                row = row + 1 if row + 1 < capacity else 0
        else:
            retired = [rows[(head + offset) % capacity]
                       for offset in range(count)]
            for window in self._window(0, count):
                if window.stop == 0:
                    continue
                col_completed[window] = False
                if clear_exceptions:
                    self.col_exception[window] = False
        self._head = (head + count) % capacity
        self._count -= count
        by_seq = self._by_seq
        for entry in retired:
            del by_seq[entry.seq]
        return retired

    # ------------------------------------------------------------------
    # Batched kernels
    # ------------------------------------------------------------------
    def _window(self, start_offset: int, length: int) -> Tuple[slice, slice]:
        """Ring slices covering ``length`` rows from ``head + start_offset``."""
        start = (self._head + start_offset) % self.capacity
        first = min(length, self.capacity - start)
        return slice(start, start + first), slice(0, length - first)

    def completed_prefix(self, limit: int) -> int:
        """Length of the contiguous completed run at the head, capped at
        ``limit`` — the number of entries the commit stage may retire this
        cycle before looking at exception flags.

        The common quiescent case (head not completed) is answered by a
        single scalar probe; otherwise one vectorised slice over the
        ``completed`` column replaces the per-entry ``head().completed``
        re-checks of the scalar commit loop.
        """
        n = self._count
        if limit < n:
            n = limit
        col = self.col_completed
        if n <= 0 or not col[self._head]:
            return 0
        capacity = self.capacity
        if n <= self._VECTOR_THRESHOLD:
            run = 1
            row = self._head + 1
            if row >= capacity:
                row = 0
            while run < n and col[row]:
                run += 1
                row = row + 1 if row + 1 < capacity else 0
            return run
        lo, hi = self._window(0, n)
        window = col[lo]
        if hi.stop:
            window = np.concatenate((window, col[hi]))
        return n if window.all() else int(np.argmin(window))

    def exception_in_prefix(self, length: int) -> int:
        """Offset of the first excepting entry among the head ``length``
        rows, or -1.  Lets the commit stage truncate a batched retire at
        the excepting instruction without touching each handle.  Free
        when no excepting entry was ever pushed (the sticky marker)."""
        if length <= 0:
            return -1
        if not self._seen_exception:
            return -1
        col = self.col_exception
        capacity = self.capacity
        if length <= self._VECTOR_THRESHOLD:
            row = self._head
            for offset in range(length):
                if col[row]:
                    return offset
                row = row + 1 if row + 1 < capacity else 0
            return -1
        lo, hi = self._window(0, length)
        window = col[lo]
        if hi.stop:
            window = np.concatenate((window, col[hi]))
        if not window.any():
            return -1
        return int(np.argmax(window))

    def note_completed(self, entry: ROSEntry, cycle: int) -> None:
        """Writeback: mark ``entry`` finished, mirroring the columns."""
        entry.completed = True
        entry.complete_cycle = cycle
        row = entry.row
        self.col_completed[row] = True
        self.col_complete_cycle[row] = cycle

    def _squash_window(self, keep: int) -> List[ROSEntry]:
        """Masked column reset of every row younger than offset ``keep``.

        Returns the squashed handles youngest first (the order squash
        undo requires) after resetting the vacated rows' columns in one
        slice assignment per ring segment — including the completion and
        exception flags, so a later rename can recycle the rows without
        re-initialising them (class docstring).  The ``squashed`` column
        marks the vacated window until recycling clears it.
        """
        drop = self._count - keep
        if drop <= 0:
            return []
        clear_exceptions = self._seen_exception
        if drop <= self._VECTOR_THRESHOLD:
            col_squashed = self.col_squashed
            col_completed = self.col_completed
            col_exception = self.col_exception
            head, capacity = self._head, self.capacity
            for offset in range(keep, self._count):
                row = (head + offset) % capacity
                col_squashed[row] = True
                col_completed[row] = False
                if clear_exceptions:
                    col_exception[row] = False
        else:
            for window in self._window(keep, drop):
                if window.stop == 0:
                    continue
                self.col_squashed[window] = True
                self.col_completed[window] = False
                if clear_exceptions:
                    self.col_exception[window] = False
        head, capacity, rows = self._head, self.capacity, self._rows
        by_seq = self._by_seq
        squashed: List[ROSEntry] = []
        for offset in range(self._count - 1, keep - 1, -1):
            entry = rows[(head + offset) % capacity]
            entry.squashed = True
            del by_seq[entry.seq]
            squashed.append(entry)
        self._count = keep
        return squashed

    def squash_younger_than(self, seq: int) -> List[ROSEntry]:
        """Remove every entry younger than ``seq``; youngest first.

        Returning youngest-first lets callers undo rename state in reverse
        program order, which is required for walk-based free-list repair.
        The age-order invariant turns the membership test into a binary
        search over the seq column; the flag updates are masked column
        resets (one slice per ring segment).
        """
        count = self._count
        if not count:
            return []
        # Hybrid boundary search: squash windows are usually shallow, so
        # walk handles back from the tail first; a deep window falls back
        # to a binary search over the (age-sorted) seq column.
        head, capacity, rows = self._head, self.capacity, self._rows
        keep = count
        steps = 0
        while keep > 0 and steps < self._VECTOR_THRESHOLD:
            if rows[(head + keep - 1) % capacity].seq <= seq:
                break
            keep -= 1
            steps += 1
        else:
            if keep > 0:
                lo, hi = self._window(0, keep)
                seqs = self.col_seq[lo]
                if hi.stop:
                    seqs = np.concatenate((seqs, self.col_seq[hi]))
                keep = int(np.searchsorted(seqs, seq, side="right"))
        return self._squash_window(keep)

    def squash_all(self) -> List[ROSEntry]:
        """Remove every entry (exception flush); youngest first."""
        return self._squash_window(0)

    def find(self, seq: int) -> Optional[ROSEntry]:
        """Return the in-flight entry with sequence number ``seq`` (O(1))."""
        return self._by_seq.get(seq)
