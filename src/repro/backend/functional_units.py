"""Functional unit pools (Table 2 of the paper).

Eight simple integer units (1 cycle), four integer multipliers (7 cycles),
six simple FP units (4 cycles), four FP multipliers (4 cycles), four FP
dividers (16 cycles, not pipelined) and four load/store units.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping

from repro.isa import FUKind, FU_KIND, DEFAULT_LATENCY, OpClass


@dataclass(frozen=True)
class FUConfig:
    """Number of units, result latency and pipelining of each pool."""

    counts: Mapping[FUKind, int] = field(default_factory=lambda: {
        FUKind.SIMPLE_INT: 8,
        FUKind.INT_MULT: 4,
        FUKind.SIMPLE_FP: 6,
        FUKind.FP_MULT: 4,
        FUKind.FP_DIV: 4,
        FUKind.LOAD_STORE: 4,
    })
    latencies: Mapping[OpClass, int] = field(default_factory=lambda: dict(DEFAULT_LATENCY))
    #: pools whose units are busy for the full latency of each operation.
    unpipelined: frozenset = frozenset({FUKind.FP_DIV})


class FunctionalUnitPool:
    """Tracks per-cycle availability of every functional unit pool."""

    def __init__(self, config: FUConfig | None = None) -> None:
        self.config = config or FUConfig()
        #: per pool: the cycle at which each unit can accept a new operation.
        self._free_at: Dict[FUKind, List[int]] = {
            kind: [0] * count for kind, count in self.config.counts.items()
        }
        self.issues: Dict[FUKind, int] = {kind: 0 for kind in self._free_at}
        self.structural_stalls = 0

    # ------------------------------------------------------------------
    def latency_of(self, op: OpClass) -> int:
        """Execution latency of ``op`` (excluding cache access time)."""
        return self.config.latencies[op]

    def kind_of(self, op: OpClass) -> FUKind:
        """Functional unit pool that executes ``op``."""
        return FU_KIND[op]

    def can_issue(self, op: OpClass, cycle: int) -> bool:
        """True when a unit of the right kind is available at ``cycle``."""
        kind = FU_KIND[op]
        return any(free <= cycle for free in self._free_at[kind])

    def next_free_cycle(self, op: OpClass) -> int:
        """Earliest cycle at which a unit executing ``op`` accepts work.

        In the past (≤ current cycle) when a unit is already available.
        The event clock uses this to bound fast-forwards across windows in
        which every ready instruction is structurally stalled — mostly
        runs of operations on the unpipelined FP dividers.
        """
        return min(self._free_at[FU_KIND[op]])

    def issue(self, op: OpClass, cycle: int) -> int:
        """Reserve a unit for ``op`` at ``cycle``; returns the result latency.

        Raises :class:`RuntimeError` when no unit is available (callers use
        :meth:`can_issue` and count a structural stall instead).
        """
        kind = FU_KIND[op]
        latency = self.config.latencies[op]
        occupancy = latency if kind in self.config.unpipelined else 1
        units = self._free_at[kind]
        for index, free in enumerate(units):
            if free <= cycle:
                units[index] = cycle + occupancy
                self.issues[kind] += 1
                return latency
        raise RuntimeError(f"no {kind.name} unit available at cycle {cycle}")

    def note_structural_stall(self, count: int = 1) -> None:
        """Record that a ready instruction could not issue for lack of a unit.

        ``count`` lets the event clock book the stalls of a whole skipped
        window (one per blocked ready instruction per skipped cycle) in a
        single call.
        """
        self.structural_stalls += count
