"""Functional unit pools (Table 2 of the paper).

Eight simple integer units (1 cycle), four integer multipliers (7 cycles),
six simple FP units (4 cycles), four FP multipliers (4 cycles), four FP
dividers (16 cycles, not pipelined) and four load/store units.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping

from repro.isa import FUKind, FU_KIND, DEFAULT_LATENCY, OpClass


@dataclass(frozen=True)
class FUConfig:
    """Number of units, result latency and pipelining of each pool."""

    counts: Mapping[FUKind, int] = field(default_factory=lambda: {
        FUKind.SIMPLE_INT: 8,
        FUKind.INT_MULT: 4,
        FUKind.SIMPLE_FP: 6,
        FUKind.FP_MULT: 4,
        FUKind.FP_DIV: 4,
        FUKind.LOAD_STORE: 4,
    })
    latencies: Mapping[OpClass, int] = field(default_factory=lambda: dict(DEFAULT_LATENCY))
    #: pools whose units are busy for the full latency of each operation.
    unpipelined: frozenset = frozenset({FUKind.FP_DIV})


class FunctionalUnitPool:
    """Tracks per-cycle availability of every functional unit pool.

    Pipelined pools (unit busy for one cycle) are represented in O(1) as
    ``[cycle_of_last_issue, issues_that_cycle]``: a unit is free unless
    all ``count`` units issued in the current cycle, which is exactly the
    per-unit ``free_at`` bookkeeping collapsed (every busy unit's
    ``free_at`` equals ``cycle + 1``).  Unpipelined pools (the FP
    dividers, busy for the full latency) keep the per-unit list.
    """

    def __init__(self, config: FUConfig | None = None) -> None:
        self.config = config or FUConfig()
        unpipelined = self.config.unpipelined
        #: unpipelined pools: the cycle at which each unit frees up.
        self._free_at: Dict[FUKind, List[int]] = {
            kind: [0] * count for kind, count in self.config.counts.items()
            if kind in unpipelined
        }
        #: pipelined pools: [cycle of last issue, issues in that cycle].
        self._pipelined: Dict[FUKind, List[int]] = {
            kind: [-1, 0] for kind in self.config.counts
            if kind not in unpipelined
        }
        self._counts: Dict[FUKind, int] = dict(self.config.counts)
        self._latencies = self.config.latencies
        self.issues: Dict[FUKind, int] = {kind: 0 for kind in self.config.counts}
        self.structural_stalls = 0

    # ------------------------------------------------------------------
    def latency_of(self, op: OpClass) -> int:
        """Execution latency of ``op`` (excluding cache access time)."""
        return self.config.latencies[op]

    def kind_of(self, op: OpClass) -> FUKind:
        """Functional unit pool that executes ``op``."""
        return FU_KIND[op]

    def can_issue(self, op: OpClass, cycle: int) -> bool:
        """True when a unit of the right kind is available at ``cycle``."""
        kind = FU_KIND[op]
        state = self._pipelined.get(kind)
        if state is not None:
            return state[0] != cycle or state[1] < self._counts[kind]
        return any(free <= cycle for free in self._free_at[kind])

    def next_free_cycle(self, op: OpClass) -> int:
        """Earliest cycle at which a unit executing ``op`` accepts work.

        In the past (≤ current cycle) when a unit is already available.
        The event clock uses this to bound fast-forwards across windows in
        which every ready instruction is structurally stalled — mostly
        runs of operations on the unpipelined FP dividers.
        """
        kind = FU_KIND[op]
        state = self._pipelined.get(kind)
        if state is not None:
            # A full pipelined pool frees up one cycle after its (current)
            # issue burst; otherwise a unit is available now.
            if state[1] >= self._counts[kind]:
                return state[0] + 1
            return state[0]
        return min(self._free_at[kind])

    def try_issue(self, op: OpClass, cycle: int) -> int | None:
        """Reserve a unit for ``op`` at ``cycle`` if one is available.

        Returns the result latency, or None when the pool is fully busy
        (the caller books a structural stall).  Fused
        :meth:`can_issue`/:meth:`issue` for the issue stage's hot loop —
        one pool lookup instead of two.
        """
        kind = FU_KIND[op]
        state = self._pipelined.get(kind)
        if state is not None:
            if state[0] != cycle:
                state[0] = cycle
                state[1] = 1
            elif state[1] < self._counts[kind]:
                state[1] += 1
            else:
                return None
            self.issues[kind] += 1
            return self._latencies[op]
        units = self._free_at[kind]
        for index, free in enumerate(units):
            if free <= cycle:
                latency = self._latencies[op]
                units[index] = cycle + latency
                self.issues[kind] += 1
                return latency
        return None

    def issue(self, op: OpClass, cycle: int) -> int:
        """Reserve a unit for ``op`` at ``cycle``; returns the result latency.

        Raises :class:`RuntimeError` when no unit is available (callers use
        :meth:`can_issue` and count a structural stall instead).  Thin
        wrapper over :meth:`try_issue` — the reservation logic lives in
        one place.
        """
        latency = self.try_issue(op, cycle)
        if latency is None:
            raise RuntimeError(
                f"no {FU_KIND[op].name} unit available at cycle {cycle}")
        return latency

    def note_structural_stall(self, count: int = 1) -> None:
        """Record that a ready instruction could not issue for lack of a unit.

        ``count`` lets the event clock book the stalls of a whole skipped
        window (one per blocked ready instruction per skipped cycle) in a
        single call.
        """
        self.structural_stalls += count
