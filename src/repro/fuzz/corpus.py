"""The committed replay corpus: serialised (shrunk) fuzz samples.

Every failure the fuzzer has ever found and fixed lives on as a JSON
file under ``tests/fuzz/corpus/`` and is replayed by tier-1 on every
run — the regression never comes back silently.  The entry format is
deliberately built from existing public pieces:

* the ``scenario`` block is exactly the mapping shape accepted by
  :func:`repro.trace.workloads.parse_scenario_config` (the
  ``--scenario-file`` JSON format), so a corpus entry's scenario can be
  registered and swept by hand;
* the ``config`` block is the ``{field: value}`` overrides mapping of
  :func:`repro.fuzz.sampling.config_from_overrides` — only non-default
  fields, so entries stay reviewable.

Top-level keys::

    format        entry-format version (currently 1)
    comment       what bug this entry pinned (free text)
    oracles       oracle names this entry must pass on replay
    scenario      parse_scenario_config-compatible scenario mapping
    config        ProcessorConfig overrides (fuzzable fields only)
    trace_length  instructions to generate
    trace_seed    trace-generation seed
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Iterable, List, Tuple

from repro.trace.workloads import KernelParams, parse_scenario_config

from repro.fuzz.oracles import resolve_oracle_names
from repro.fuzz.sampling import (FuzzSample, config_from_overrides,
                                 config_overrides, params_overrides)

#: Current on-disk entry format.
CORPUS_FORMAT = 1

#: Repo-relative home of the committed corpus.
CORPUS_DIR = Path("tests/fuzz/corpus")


@dataclasses.dataclass(frozen=True)
class CorpusEntry:
    """One replayable corpus item: a sample plus the oracles it pins."""

    sample: FuzzSample
    oracles: Tuple[str, ...]
    comment: str = ""
    source: str = "<corpus entry>"


def sample_to_entry_dict(sample: FuzzSample, oracles: Iterable[str],
                         comment: str = "") -> dict:
    """Serialise a sample as a ready-to-commit corpus entry mapping."""
    scenario = sample.scenario
    return {
        "format": CORPUS_FORMAT,
        "comment": comment,
        "oracles": list(oracles),
        "scenario": {
            "name": scenario.name,
            "suite": scenario.suite,
            "description": scenario.description,
            "phase_length": scenario.phase_length,
            "phases": [
                {"kernel": phase.kernel,
                 "params": params_overrides(phase.params)}
                for phase in scenario.phases
            ],
        },
        "config": config_overrides(sample.config),
        "trace_length": sample.trace_length,
        "trace_seed": sample.trace_seed,
    }


def entry_from_dict(data: dict, source: str = "<corpus entry>") -> CorpusEntry:
    """Parse one corpus entry mapping (checked, error messages name keys)."""
    if not isinstance(data, dict):
        raise ValueError(f"{source}: corpus entry must be a mapping")
    fmt = data.get("format")
    if fmt != CORPUS_FORMAT:
        raise ValueError(f"{source}: unsupported corpus format {fmt!r} "
                         f"(this build reads format {CORPUS_FORMAT})")
    known = {"format", "comment", "oracles", "scenario", "config",
             "trace_length", "trace_seed"}
    extra = set(data) - known
    if extra:
        raise ValueError(f"{source}: unknown corpus keys {sorted(extra)}")
    for key in ("scenario", "trace_length", "trace_seed"):
        if key not in data:
            raise ValueError(f"{source}: missing required key {key!r}")
    profiles = parse_scenario_config(data["scenario"], source=source)
    if len(profiles) != 1:
        raise ValueError(f"{source}: a corpus entry pins exactly one "
                         f"scenario, got {len(profiles)}")
    trace_length = data["trace_length"]
    trace_seed = data["trace_seed"]
    if not isinstance(trace_length, int) or trace_length <= 0:
        raise ValueError(f"{source}: trace_length must be a positive integer")
    if not isinstance(trace_seed, int) or trace_seed < 0:
        raise ValueError(f"{source}: trace_seed must be a non-negative "
                         f"integer")
    config = config_from_overrides(dict(data.get("config", {})),
                                   source=source)
    oracles = data.get("oracles")
    if oracles is None:
        oracle_names = resolve_oracle_names(None)
    else:
        if (not isinstance(oracles, list)
                or not all(isinstance(name, str) for name in oracles)):
            raise ValueError(f"{source}: 'oracles' must be a list of oracle "
                             f"names")
        try:
            oracle_names = resolve_oracle_names(tuple(oracles))
        except ValueError as exc:
            raise ValueError(f"{source}: {exc}") from None
    comment = data.get("comment", "")
    if not isinstance(comment, str):
        raise ValueError(f"{source}: 'comment' must be a string")
    sample = FuzzSample(scenario=profiles[0], config=config,
                        trace_length=trace_length, trace_seed=trace_seed)
    return CorpusEntry(sample=sample, oracles=oracle_names, comment=comment,
                       source=source)


def load_corpus_file(path) -> CorpusEntry:
    """Load one ``*.json`` corpus entry from disk."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON ({exc})") from None
    return entry_from_dict(data, source=str(path))


def load_corpus(path) -> List[CorpusEntry]:
    """Load a corpus entry file, or every ``*.json`` under a directory."""
    path = Path(path)
    if path.is_dir():
        files = sorted(path.glob("*.json"))
        if not files:
            raise ValueError(f"{path}: no *.json corpus entries found")
        return [load_corpus_file(item) for item in files]
    return [load_corpus_file(path)]


def default_corpus_dir(repo_root=None) -> Path:
    """The committed corpus directory (best effort from this file)."""
    if repo_root is None:
        repo_root = Path(__file__).resolve().parents[3]
    return repo_root / CORPUS_DIR


# Re-exported so corpus consumers need not import workloads directly.
__all__ = ["CORPUS_DIR", "CORPUS_FORMAT", "CorpusEntry", "KernelParams",
           "default_corpus_dir", "entry_from_dict", "load_corpus",
           "load_corpus_file", "sample_to_entry_dict"]
