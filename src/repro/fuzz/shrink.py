"""Minimising shrinker for failing fuzz samples.

Given a failing :class:`~repro.fuzz.sampling.FuzzSample` and a predicate
("does this candidate still fail the same oracle?"), :func:`shrink`
greedily applies structure-reducing transformations until a fixpoint or
the evaluation budget runs out:

1. **trace-length halving** toward :data:`~repro.fuzz.sampling
   .MIN_TRACE_LENGTH` — shorter traces replay and debug faster;
2. **phase removal** — a multi-phase scenario is cut down to the phases
   the failure actually needs;
3. **phase-length halving** — fewer instructions per kernel iteration
   block;
4. **kernel-parameter simplification** — each non-default
   :class:`KernelParams` field is first snapped to its default, then
   bisected toward it (integer fields only);
5. **config simplification** — warm-up off, wrong-path fetch off,
   exceptions off, widths/structures snapped to defaults where the
   failure survives.

Every candidate is re-validated through ``validate_scenario_profile``
before evaluation, so the shrinker can never hand the predicate (or the
corpus) an impossible scenario.  The predicate is typically
``lambda s: run_oracle(name, s).failed`` — re-running the failing oracle
from scratch each time, which keeps shrinking honest at the cost of a
few hundred milliseconds per candidate; the default budget of 60
evaluations bounds the total to well under a minute.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterator, List

from repro.pipeline.config import ProcessorConfig
from repro.trace.workloads import (KernelParams, ScenarioProfile,
                                   validate_scenario_profile)

from repro.fuzz.sampling import MIN_TRACE_LENGTH, FuzzSample

#: Default cap on predicate evaluations per shrink run.
DEFAULT_BUDGET = 60

#: Config fields worth simplifying, with their "simplest" value; tried
#: in order (behavioural toggles first — they delete whole mechanisms).
_CONFIG_SIMPLIFICATIONS = (
    ("warmup", False),
    ("enable_wrong_path", False),
    ("exception_rate", 0.0),
    ("reuse_on_committed_lu", True),
    ("frontend_stages", None),              # None = snap to default
    ("gshare_history_bits", None),
    ("fetch_width", None),
    ("rename_width", None),
    ("issue_width", None),
    ("commit_width", None),
    ("max_taken_branches_per_cycle", None),
)

#: KernelParams fields never simplified: the address bases keep phases
#: disjoint and carry no behavioural weight of their own.
_PARAM_SKIP = ("pc_base", "data_base")


def _with_scenario(sample: FuzzSample,
                   scenario: ScenarioProfile) -> FuzzSample:
    return dataclasses.replace(sample, scenario=scenario)


def _valid(scenario: ScenarioProfile) -> bool:
    try:
        validate_scenario_profile(scenario)
    except ValueError:
        return False
    return True


def _candidates(sample: FuzzSample) -> Iterator[FuzzSample]:
    """Yield one-step-reduced candidates, most promising first."""
    scenario = sample.scenario
    config = sample.config

    # 1. Trace-length halving.
    if sample.trace_length > MIN_TRACE_LENGTH:
        yield dataclasses.replace(
            sample,
            trace_length=max(MIN_TRACE_LENGTH, sample.trace_length // 2))

    # 2. Phase removal.
    if len(scenario.phases) > 1:
        for drop in range(len(scenario.phases)):
            phases = tuple(phase for index, phase
                           in enumerate(scenario.phases) if index != drop)
            candidate = dataclasses.replace(scenario, phases=phases)
            if _valid(candidate):
                yield _with_scenario(sample, candidate)

    # 3. Phase-length halving.
    if scenario.phase_length > 50:
        candidate = dataclasses.replace(
            scenario, phase_length=max(50, scenario.phase_length // 2))
        yield _with_scenario(sample, candidate)

    # 4. Kernel-parameter simplification.
    default_params = KernelParams()
    for phase_index, phase in enumerate(scenario.phases):
        for field in dataclasses.fields(KernelParams):
            if field.name in _PARAM_SKIP:
                continue
            value = getattr(phase.params, field.name)
            default = getattr(default_params, field.name)
            if value == default:
                continue
            steps = [default]
            if (isinstance(value, int) and isinstance(default, int)
                    and not isinstance(value, bool)
                    and abs(value - default) > 1):
                steps.append((value + default) // 2)
            for new_value in steps:
                params = dataclasses.replace(phase.params,
                                             **{field.name: new_value})
                phases = list(scenario.phases)
                phases[phase_index] = dataclasses.replace(phase,
                                                          params=params)
                candidate = dataclasses.replace(scenario,
                                                phases=tuple(phases))
                if _valid(candidate):
                    yield _with_scenario(sample, candidate)

    # 5. Config simplification.
    default_config = ProcessorConfig()
    for field_name, simple in _CONFIG_SIMPLIFICATIONS:
        if simple is None:
            simple = getattr(default_config, field_name)
        if getattr(config, field_name) != simple:
            yield dataclasses.replace(
                sample,
                config=dataclasses.replace(config, **{field_name: simple}))


def shrink(sample: FuzzSample,
           still_fails: Callable[[FuzzSample], bool],
           budget: int = DEFAULT_BUDGET) -> FuzzSample:
    """Greedily minimise ``sample`` while ``still_fails`` holds.

    Restarts the candidate pass after every accepted reduction (an
    accepted phase removal unlocks further parameter shrinks, and so on)
    and stops at a fixpoint — a full pass with no accepted candidate —
    or when ``budget`` predicate evaluations have been spent.  The
    returned sample is always a failing one (the original if nothing
    smaller still fails).
    """
    current = sample
    evaluations = 0
    progress = True
    while progress and evaluations < budget:
        progress = False
        for candidate in _candidates(current):
            if evaluations >= budget:
                break
            evaluations += 1
            if still_fails(candidate):
                current = candidate
                progress = True
                break
    return current


def shrink_trail(sample: FuzzSample, shrunk: FuzzSample) -> List[str]:
    """Human-readable summary of what the shrinker removed."""
    notes: List[str] = []
    if shrunk.trace_length != sample.trace_length:
        notes.append(f"trace length {sample.trace_length} -> "
                     f"{shrunk.trace_length}")
    if len(shrunk.scenario.phases) != len(sample.scenario.phases):
        notes.append(f"phases {len(sample.scenario.phases)} -> "
                     f"{len(shrunk.scenario.phases)}")
    if shrunk.scenario.phase_length != sample.scenario.phase_length:
        notes.append(f"phase length {sample.scenario.phase_length} -> "
                     f"{shrunk.scenario.phase_length}")
    if shrunk.config != sample.config:
        changed = [field.name for field in dataclasses.fields(ProcessorConfig)
                   if getattr(shrunk.config, field.name)
                   != getattr(sample.config, field.name)]
        notes.append("config simplified: " + ", ".join(changed))
    if shrunk.scenario.phases != sample.scenario.phases and \
            len(shrunk.scenario.phases) == len(sample.scenario.phases):
        notes.append("kernel parameters simplified")
    if not notes:
        notes.append("already minimal")
    return notes
