"""The ``repro-experiments fuzz`` subcommand.

Random mode (the default) samples fresh scenario/config points::

    repro-experiments fuzz --seed 20260808 --samples 80
    repro-experiments fuzz --budget-seconds 60 --report fuzz-report.json

Directed mode fuzzes registered scenarios (built-in names through
``--scenarios``, user-defined ones through ``--scenario-file``) with
sampled machine configs::

    repro-experiments fuzz --samples 40 --scenarios br_entropy,ptr_chase
    repro-experiments fuzz --samples 40 --scenario-file mine.toml

Replay mode re-runs committed corpus entries (a file or a directory of
``*.json`` entries) through their pinned oracles::

    repro-experiments fuzz --replay tests/fuzz/corpus
    repro-experiments fuzz --replay entry.json --oracles conservation

On failure the exit status is 1 and every failure is written — as a
ready-to-commit corpus entry plus the exact repro command — to
``--failure-dir`` (default ``fuzz-failures/``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.fuzz.corpus import load_corpus
from repro.fuzz.oracles import DEFAULT_ORACLES, ORACLES, resolve_oracle_names
from repro.fuzz.runner import FuzzReport, replay_corpus, run_fuzz
from repro.fuzz.shrink import DEFAULT_BUDGET


def _parse_oracles(value: Optional[str], parser: argparse.ArgumentParser):
    if value is None:
        return None
    names = tuple(name.strip() for name in value.split(",") if name.strip())
    try:
        return resolve_oracle_names(names)
    except ValueError as exc:
        parser.error(str(exc))
        return None  # pragma: no cover - parser.error raises SystemExit


def _write_failures(report: FuzzReport, failure_dir: Path) -> List[Path]:
    """Write one corpus-entry JSON per failure; return the paths."""
    failure_dir.mkdir(parents=True, exist_ok=True)
    paths: List[Path] = []
    for failure in report.failures:
        path = (failure_dir /
                f"seed{report.master_seed}-s{failure.index:05d}-"
                f"{failure.oracle}.json")
        with path.open("w", encoding="utf-8") as handle:
            json.dump(failure.corpus_entry(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        paths.append(path)
    return paths


def _replay_main(args, parser: argparse.ArgumentParser,
                 oracles) -> int:
    entries = []
    for target in args.replay:
        try:
            entries.extend(load_corpus(target))
        except (OSError, ValueError) as exc:
            parser.error(f"--replay {target}: {exc}")
    if oracles is not None:
        import dataclasses
        entries = [dataclasses.replace(entry, oracles=oracles)
                   for entry in entries]
    results = replay_corpus(entries)
    failed = 0
    for result in results:
        print(result.describe())
        for oracle, status in result.statuses.items():
            if status == "fail":
                failed += 1
                print(f"  FAIL [{oracle}]: {result.details[oracle]}")
            elif status == "skip":
                print(f"  skip [{oracle}]: {result.details[oracle]}")
    print(f"replayed {len(results)} corpus entries: "
          f"{failed} oracle failures")
    return 1 if failed else 0


def fuzz_main(argv: List[str]) -> int:
    """Entry point for ``repro-experiments fuzz`` (see module docstring)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments fuzz",
        description="Differential scenario fuzzer: random workloads and "
                    "tight machine configs cross-checked between clocks, "
                    "engine backends and trace-generation paths, plus "
                    "engine-internal conservation invariants.")
    parser.add_argument("--seed", type=int, default=0,
                        help="master seed; sample i depends only on "
                             "(seed, i), so runs are reproducible (default "
                             "0)")
    parser.add_argument("--samples", type=int, default=None, metavar="N",
                        help="stop after N samples")
    parser.add_argument("--budget-seconds", type=float, default=None,
                        metavar="S",
                        help="stop when S seconds have elapsed (checked "
                             "between samples)")
    parser.add_argument("--oracles", default=None, metavar="NAMES",
                        help="comma-separated oracle subset (default: all "
                             "of %s)" % ",".join(DEFAULT_ORACLES))
    parser.add_argument("--replay", action="append", default=[],
                        metavar="PATH",
                        help="replay corpus entries (a *.json file or a "
                             "directory of them; repeatable) instead of "
                             "sampling")
    parser.add_argument("--scenario-file", action="append", default=[],
                        metavar="PATH",
                        help="register user-defined scenarios from this "
                             "TOML/JSON config (repeatable) and fuzz them "
                             "with sampled machine configs")
    parser.add_argument("--scenarios", default=None, metavar="NAMES",
                        help="comma-separated registered scenario names to "
                             "fuzz (directed mode; unknown names are an "
                             "error)")
    parser.add_argument("--failure-dir", default="fuzz-failures",
                        metavar="DIR",
                        help="where failure corpus entries are written "
                             "(default: fuzz-failures/)")
    parser.add_argument("--report", default=None, metavar="PATH",
                        help="also write the full report as JSON here")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report failures without minimising them")
    parser.add_argument("--shrink-budget", type=int, default=DEFAULT_BUDGET,
                        metavar="N",
                        help="max oracle evaluations per shrink (default "
                             f"{DEFAULT_BUDGET})")
    args = parser.parse_args(argv)

    oracles = _parse_oracles(args.oracles, parser)

    if args.replay:
        if args.samples is not None or args.budget_seconds is not None:
            parser.error("--replay replays committed entries; it does not "
                         "take --samples/--budget-seconds")
        return _replay_main(args, parser, oracles)

    if args.samples is None and args.budget_seconds is None:
        parser.error("need --samples, --budget-seconds, or --replay")
    if args.samples is not None and args.samples <= 0:
        parser.error("--samples must be positive")
    if args.budget_seconds is not None and args.budget_seconds <= 0:
        parser.error("--budget-seconds must be positive")

    scenario_pool = None
    if args.scenario_file or args.scenarios is not None:
        from repro.experiments.scenarios import resolve_scenario_names
        from repro.trace.workloads import (get_scenario,
                                           register_scenario_file)

        registered: List[str] = []
        for path in args.scenario_file:
            try:
                names = register_scenario_file(path, replace=True)
            except (OSError, ValueError) as exc:
                parser.error(f"--scenario-file {path}: {exc}")
            registered.extend(names)
            print(f"registered scenarios from {path}: {', '.join(names)}")
        if args.scenarios is not None:
            requested = [name.strip() for name in args.scenarios.split(",")
                         if name.strip()]
        else:
            # --scenario-file without --scenarios fuzzes the registered
            # files' scenarios.
            requested = registered
        try:
            # Same validation path as the scenario-grid experiments:
            # unknown names raise, listing known scenarios sorted.
            names = resolve_scenario_names(requested)
        except ValueError as exc:
            parser.error(str(exc))
        scenario_pool = [get_scenario(name) for name in names]
        print(f"directed mode: fuzzing {len(scenario_pool)} registered "
              f"scenarios ({', '.join(names)})")

    report = run_fuzz(
        master_seed=args.seed,
        samples=args.samples,
        budget_seconds=args.budget_seconds,
        oracles=oracles,
        scenario_pool=scenario_pool,
        shrink_failures=not args.no_shrink,
        shrink_budget=args.shrink_budget,
        progress=lambda line: print(f"  {line}", file=sys.stderr))

    entry_paths: List[Path] = []
    if report.failures:
        entry_paths = _write_failures(report, Path(args.failure_dir))
    if args.report:
        report_dict = report.to_dict()
        for failure_dict, path in zip(report_dict["failures"], entry_paths, strict=True):
            failure_dict["entry_path"] = str(path)
            failure_dict["repro_command"] = (
                f"repro-experiments fuzz --replay {path} "
                f"--oracles {failure_dict['oracle']}")
        report_path = Path(args.report)
        if report_path.parent != Path(""):
            report_path.parent.mkdir(parents=True, exist_ok=True)
        with report_path.open("w", encoding="utf-8") as handle:
            json.dump(report_dict, handle, indent=2, sort_keys=True)
            handle.write("\n")

    print(report.summary())
    for failure, path in zip(report.failures, entry_paths, strict=True):
        print(f"  corpus entry written: {path}")
        print(f"  repro: repro-experiments fuzz --replay {path} "
              f"--oracles {failure.oracle}")
        print(f"  commit it to tests/fuzz/corpus/ once fixed to pin the "
              f"regression")
    return 1 if report.failed else 0


# ORACLES re-exported for the runner module docs / tests.
__all__ = ["fuzz_main", "ORACLES"]
