"""Random scenario/config sampling for the differential fuzzer.

Every sample is a complete simulation point: a freshly composed
:class:`~repro.trace.workloads.ScenarioProfile` (random phase count,
phase lengths and kernel mix, with :class:`KernelParams` drawn from their
validated ranges), a trace length and seed, and a
:class:`~repro.pipeline.config.ProcessorConfig` biased toward *tight*
machines near the structural limits (small register files, shallow ROS /
LSQ / checkpoint stacks) where the release policies, the squash paths and
the Release Queue are actually stressed.

Sampling is fully deterministic: sample ``i`` of master seed ``s``
depends only on ``(s, i)`` (each sample owns a
``SeedSequence((FUZZ_STREAM, s, i))``-derived generator), so a failure
report's sample can be regenerated regardless of how many samples a
budget-bounded run managed before it, and two runs with the same seed
draw the same sample sequence.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.pipeline.config import ProcessorConfig
from repro.trace.workloads import (KernelParams, ScenarioPhase,
                                   ScenarioProfile, validate_scenario_profile)

#: Stream-domain tag keeping fuzz draws disjoint from every other
#: SeedSequence user in the repo.
FUZZ_STREAM = 0xF0220
#: Shortest trace the sampler (and the shrinker) will go down to.
MIN_TRACE_LENGTH = 400
#: Kernel families the sampler composes (the full registry).
KERNEL_FAMILIES = ("streaming", "stencil", "int_compute", "branchy",
                   "pointer_chase")

#: ProcessorConfig fields the fuzzer samples (and the corpus serialises).
#: Everything else keeps its default — in particular the memory hierarchy
#: and functional-unit tables, which the compiled backend models exactly.
CONFIG_FIELDS: Tuple[str, ...] = (
    "fetch_width", "rename_width", "issue_width", "commit_width",
    "max_taken_branches_per_cycle", "frontend_stages",
    "ros_size", "lsq_size", "max_pending_branches",
    "num_physical_int", "num_physical_fp",
    "gshare_history_bits",
    "release_policy", "reuse_on_committed_lu",
    "warmup", "enable_wrong_path", "exception_rate", "seed",
)


@dataclass(frozen=True)
class FuzzSample:
    """One sampled simulation point (comparable by value for dedup)."""

    scenario: ScenarioProfile
    config: ProcessorConfig
    trace_length: int
    trace_seed: int

    def describe(self) -> str:
        """One-line human summary (failure reports and progress lines)."""
        kernels = "+".join(phase.kernel for phase in self.scenario.phases)
        cfg = self.config
        return (f"{self.scenario.name} [{kernels}] len={self.trace_length} "
                f"tseed={self.trace_seed} policy={cfg.release_policy} "
                f"P={cfg.num_physical_int}i/{cfg.num_physical_fp}f "
                f"ros={cfg.ros_size} lsq={cfg.lsq_size} "
                f"ck={cfg.max_pending_branches} "
                f"exc={cfg.exception_rate:g} warm={int(cfg.warmup)} "
                f"wp={int(cfg.enable_wrong_path)}")


def sample_rng(master_seed: int, index: int) -> np.random.Generator:
    """The per-sample generator: a pure function of ``(master_seed, index)``."""
    return np.random.default_rng(
        np.random.SeedSequence((FUZZ_STREAM, master_seed, index)))


def _i(rng: np.random.Generator, lo: int, hi: int) -> int:
    """Inclusive integer draw as a plain ``int`` (numpy scalars would leak
    into profile reprs and change every content digest)."""
    return int(rng.integers(lo, hi + 1))


def _f(rng: np.random.Generator, lo: float, hi: float) -> float:
    return float(round(lo + (hi - lo) * rng.random(), 4))


def _sample_params(rng: np.random.Generator, kernel: str,
                   phase_index: int) -> KernelParams:
    """Draw kernel parameters from their validated ranges.

    Each phase gets disjoint pc/data ranges (like the built-in scenarios)
    so multi-phase samples do not alias code or data footprints.
    """
    common = dict(
        pc_base=0x400000 + phase_index * 0x10000,
        data_base=0x40_00000 + phase_index * 0x10_0000,
        int_window=_i(rng, 4, 12),
        trip_count=_i(rng, 8, 192),
        hammock_len=_i(rng, 1, 4),
        branch_bias=_f(rng, 0.55, 0.97),
        branch_noise=_f(rng, 0.0, 0.3),
        mem_footprint=1 << _i(rng, 12, 16),
    )
    if kernel in ("streaming", "stencil"):
        return KernelParams(
            n_streams=_i(rng, 1, 5), chain_len=_i(rng, 1, 4),
            fp_window=_i(rng, 6, 26),
            stream_stride=int(rng.choice((8, 16, 64))),
            div_interval=int(rng.choice((0, 0, 3, 4, 6, 8))),
            **common)
    if kernel == "int_compute":
        return KernelParams(
            chain_len=_i(rng, 1, 4), n_parallel_chains=_i(rng, 1, 4),
            mult_interval=int(rng.choice((0, 0, 4, 6, 8))),
            store_fraction=_f(rng, 0.0, 1.0),
            extra_stores=_i(rng, 0, 3),
            **common)
    if kernel == "branchy":
        return KernelParams(
            n_branch_sites=_i(rng, 4, 48), block_len=_i(rng, 2, 6),
            pattern_fraction=_f(rng, 0.0, 1.0),
            **common)
    if kernel == "pointer_chase":
        return KernelParams(
            load_chain_len=_i(rng, 1, 6),
            chase_nodes=_i(rng, 64, 2048),
            store_fraction=_f(rng, 0.0, 1.0),
            **common)
    raise ValueError(f"unknown kernel family {kernel!r}")


def sample_profile(rng: np.random.Generator, name: str) -> ScenarioProfile:
    """Compose a random (validated) scenario profile."""
    n_phases = _i(rng, 1, 3)
    phases = []
    has_fp = False
    for phase_index in range(n_phases):
        kernel = str(rng.choice(KERNEL_FAMILIES))
        has_fp = has_fp or kernel in ("streaming", "stencil")
        phases.append(ScenarioPhase(
            kernel=kernel, params=_sample_params(rng, kernel, phase_index)))
    profile = ScenarioProfile(
        name=name,
        suite="fp" if has_fp else "int",
        phases=tuple(phases),
        phase_length=_i(rng, 250, 1200),
        description="sampled by the differential scenario fuzzer",
    )
    validate_scenario_profile(profile)
    return profile


def sample_config(rng: np.random.Generator) -> ProcessorConfig:
    """Draw a machine configuration near the structural limits.

    Register files stay *tight* (33–72 physical over 32 logical), the ROS
    / LSQ / checkpoint stack shallow, and the front end narrow — the
    regimes where release-policy and recovery bugs live.  ``engine`` is
    left ``"auto"``; each oracle pins the backend it compares.
    """
    policy = str(rng.choice(("conv", "basic", "extended", "extended")))
    return ProcessorConfig(
        fetch_width=_i(rng, 2, 8),
        rename_width=_i(rng, 2, 8),
        issue_width=_i(rng, 2, 8),
        commit_width=_i(rng, 2, 8),
        max_taken_branches_per_cycle=_i(rng, 1, 2),
        frontend_stages=_i(rng, 1, 4),
        ros_size=_i(rng, 16, 64),
        lsq_size=_i(rng, 8, 32),
        max_pending_branches=_i(rng, 2, 12),
        num_physical_int=_i(rng, 33, 72),
        num_physical_fp=_i(rng, 33, 72),
        gshare_history_bits=_i(rng, 8, 18),
        release_policy=policy,
        reuse_on_committed_lu=bool(rng.random() < 0.85),
        warmup=bool(rng.random() < 0.5),
        enable_wrong_path=bool(rng.random() < 0.8),
        exception_rate=float(rng.choice((0.0, 0.0, 0.002, 0.01))),
        seed=_i(rng, 0, 1 << 16),
    )


def sample(master_seed: int, index: int,
           scenario_pool: Optional[Sequence[ScenarioProfile]] = None,
           ) -> FuzzSample:
    """Draw fuzz sample ``index`` of ``master_seed``.

    ``scenario_pool`` replaces the random profile with a registered
    profile cycled from the pool (the ``--scenarios`` directed mode);
    machine config, trace length and trace seed are still sampled.
    """
    rng = sample_rng(master_seed, index)
    if scenario_pool:
        scenario = scenario_pool[index % len(scenario_pool)]
        # Burn the profile draws so directed and random modes stay
        # index-aligned on the config/length draws below.
        sample_profile(rng, f"fuzz.s{index:05d}")
    else:
        scenario = sample_profile(rng, f"fuzz.s{index:05d}")
    config = sample_config(rng)
    trace_length = _i(rng, MIN_TRACE_LENGTH, 2400)
    trace_seed = _i(rng, 0, 1 << 12)
    return FuzzSample(scenario=scenario, config=config,
                      trace_length=trace_length, trace_seed=trace_seed)


def config_overrides(config: ProcessorConfig) -> dict:
    """The sampled config as a ``{field: non-default value}`` mapping."""
    default = ProcessorConfig()
    return {name: getattr(config, name) for name in CONFIG_FIELDS
            if getattr(config, name) != getattr(default, name)}


def config_from_overrides(overrides: dict, source: str = "<fuzz config>",
                          ) -> ProcessorConfig:
    """Rebuild a sampled config from its overrides mapping (checked)."""
    unknown = set(overrides) - set(CONFIG_FIELDS)
    if unknown:
        raise ValueError(f"{source}: unknown config fields {sorted(unknown)}; "
                         f"fuzzable fields: {', '.join(CONFIG_FIELDS)}")
    return ProcessorConfig(**overrides)


def params_overrides(params: KernelParams) -> dict:
    """Non-default kernel parameters (corpus entries stay readable)."""
    default = KernelParams()
    return {field.name: getattr(params, field.name)
            for field in dataclasses.fields(KernelParams)
            if getattr(params, field.name) != getattr(default, field.name)}
