"""Engine-internal conservation invariants checked by the fuzzer.

The checks split into three tiers:

* **per-cycle** (cheap, every executed cycle): structural occupancy
  bounds — ROS, LSQ, checkpoint stack and Release-Queue depth can never
  exceed their configured capacities;
* **periodic** (every :data:`DEEP_CHECK_INTERVAL` cycles, and once at the
  end): free-list accounting — the free deque and the per-register free
  flags must agree, free + allocated must equal P, and every register the
  Release Queue still plans to release must currently be allocated (a
  scheduled release of a free register is the double-release family of
  seed-era ``FreeListError`` bugs, caught *before* the checked free list
  trips);
* **final** (after the run): statistic identities — fetched ≥ renamed-
  correct-path ≥ committed, committed equals the trace length,
  mispredictions ≤ resolved branches, early releases ≤ releases, and the
  allocation/release counters must reconcile exactly with the end-state
  free-list occupancy.

The probes attach to :class:`repro.engine.engine.SimulationEngine` via
its ``probe`` hook and therefore observe the Python engine; the compiled
backend is covered differentially by the backend-equivalence oracle
instead.
"""

from __future__ import annotations

from typing import List

from repro.isa import RegClass
from repro.pipeline.stats import SimStats

#: Cycle interval of the deep (free-list / Release-Queue) checks.
DEEP_CHECK_INTERVAL = 32


class InvariantViolation(AssertionError):
    """An engine-internal conservation law failed during a fuzz run."""


class InvariantProbe:
    """Per-cycle invariant checker attached to a ``SimulationEngine``.

    Instantiate one probe per run; it keeps the number of executed
    cycles so the deep checks run on a stride (plus once in
    :meth:`final_check`).
    """

    def __init__(self, deep_interval: int = DEEP_CHECK_INTERVAL) -> None:
        self.deep_interval = deep_interval
        self.cycles_probed = 0
        self.deep_checks = 0

    # ------------------------------------------------------------------
    def __call__(self, state) -> None:
        self.cycles_probed += 1
        cfg = state.config
        ros_count = len(state.ros)
        if not 0 <= ros_count <= cfg.ros_size:
            raise InvariantViolation(
                f"ROS occupancy {ros_count} outside [0, {cfg.ros_size}] "
                f"at cycle {state.cycle}")
        lsq_count = len(state.lsq)
        if not 0 <= lsq_count <= cfg.lsq_size:
            raise InvariantViolation(
                f"LSQ occupancy {lsq_count} outside [0, {cfg.lsq_size}] "
                f"at cycle {state.cycle}")
        if len(state.checkpoints) > cfg.max_pending_branches:
            raise InvariantViolation(
                f"checkpoint stack depth {len(state.checkpoints)} exceeds "
                f"max_pending_branches={cfg.max_pending_branches} "
                f"at cycle {state.cycle}")
        for policy in state.policy_list:
            queue = getattr(policy, "release_queue", None)
            if queue is not None and queue.depth > queue.capacity:
                raise InvariantViolation(
                    f"Release Queue depth {queue.depth} exceeds capacity "
                    f"{queue.capacity} at cycle {state.cycle}")
        if self.cycles_probed % self.deep_interval == 0:
            self.deep_check(state)

    # ------------------------------------------------------------------
    def deep_check(self, state) -> None:
        """Free-list accounting and Release-Queue liveness (slower)."""
        self.deep_checks += 1
        for reg_class, reg_file in state.register_files.items():
            free_list = reg_file.free_list
            flagged = sum(free_list._is_free)
            if flagged != len(free_list._free):
                raise InvariantViolation(
                    f"{reg_class.name} free-list deque ({len(free_list._free)} "
                    f"entries) disagrees with the free flags ({flagged} set) "
                    f"at cycle {state.cycle}")
            if free_list.n_free + free_list.n_allocated != reg_file.num_physical:
                raise InvariantViolation(
                    f"{reg_class.name} free + allocated != P "
                    f"at cycle {state.cycle}")
            policy = state.policies[reg_class]
            queue = getattr(policy, "release_queue", None)
            if queue is None:
                continue
            for level in queue.levels():
                for (physical, _logical) in level.rwns:
                    if free_list.is_free(physical):
                        raise InvariantViolation(
                            f"{reg_class.name} Release Queue holds an RwNS "
                            f"scheduling for p{physical}, which is already "
                            f"free, at cycle {state.cycle} (double-release "
                            f"in flight)")

    # ------------------------------------------------------------------
    def final_check(self, state, stats: SimStats) -> None:
        """End-of-run stat identities plus one last deep sweep."""
        self.deep_check(state)
        problems: List[str] = []
        trace_len = len(state.trace)
        if stats.committed_instructions != trace_len:
            problems.append(
                f"committed {stats.committed_instructions} != trace length "
                f"{trace_len}")
        if stats.fetched_instructions < stats.committed_instructions:
            problems.append(
                f"fetched {stats.fetched_instructions} < committed "
                f"{stats.committed_instructions}")
        if stats.renamed_instructions < stats.committed_instructions:
            problems.append(
                f"renamed {stats.renamed_instructions} < committed "
                f"{stats.committed_instructions}")
        if stats.branch_mispredictions > stats.branches_resolved:
            problems.append(
                f"mispredictions {stats.branch_mispredictions} > resolved "
                f"branches {stats.branches_resolved}")
        if stats.cycles <= 0:
            problems.append(f"cycles {stats.cycles} <= 0")
        for label, reg_file in (("int", state.register_files[RegClass.INT]),
                                ("fp", state.register_files[RegClass.FP])):
            if reg_file.early_releases > reg_file.releases:
                problems.append(
                    f"{label} early releases {reg_file.early_releases} > "
                    f"releases {reg_file.releases}")
            # Counter/structure reconciliation: the file starts with the
            # logical registers allocated, so
            #   L + allocations - releases == allocated-now.
            expected = (reg_file.num_logical + reg_file.allocations
                        - reg_file.releases)
            if expected != reg_file.n_allocated:
                problems.append(
                    f"{label} allocation ledger drift: L + alloc - release = "
                    f"{expected} but {reg_file.n_allocated} registers are "
                    f"allocated")
        if problems:
            raise InvariantViolation(
                "final stat identities violated: " + "; ".join(problems))
