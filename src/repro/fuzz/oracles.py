"""The fuzzer's differential oracles.

Each oracle takes one :class:`~repro.fuzz.sampling.FuzzSample` plus a
shared per-sample :class:`SampleContext` and returns an
:class:`OracleOutcome` — ``pass``, ``fail`` (with a detail string) or
``skip`` (with the reason).  Skips are first-class: a missing C
toolchain, a config outside the compiled envelope or a scalar-replay
probe trip must surface as a *counted skip* in the fuzz report, never as
a silent pass.

Oracles:

``generation``
    Vectorised vs scalar trace generation must emit identical
    instruction streams **and** leave the shared ``numpy`` bit generator
    in the identical state (so any scalar/vector hand-off consumed
    exactly the same draws).
``clocks``
    ``EventClock`` (fast-forwarding) vs ``CycleClock`` (reference
    per-cycle stepping) must produce field-identical ``SimStats``.
``backend``
    The compiled C core vs the Python engine must produce
    field-identical ``SimStats`` — honouring ``unsupported_reason()``
    and every fallback layer as skips.
``conservation``
    A ``CycleClock`` Python run with an :class:`InvariantProbe` attached:
    free-list accounting, structural occupancy bounds, Release-Queue
    liveness and the final stat identities; any engine exception
    (``FreeListError``, ``DeadlockError``, …) is a failure too.
"""

from __future__ import annotations

import contextlib
import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Tuple

import numpy as np

from repro.engine.clock import CycleClock, EventClock
from repro.engine.engine import SimulationEngine
from repro.fuzz.invariants import InvariantProbe, InvariantViolation
from repro.fuzz.sampling import FuzzSample
from repro.pipeline.stats import SimStats
from repro.trace.draws import replay_supported, vectorized_enabled
from repro.trace.records import Trace
from repro.trace.workloads import (_scenario_stream_seed,
                                   generate_scenario_trace, get_workload,
                                   install_ephemeral_profiles,
                                   uninstall_ephemeral_profiles)

#: Default oracle set, in execution order (cheap generation check first,
#: conservation last so its probe run reuses the generated trace).
DEFAULT_ORACLES: Tuple[str, ...] = ("generation", "clocks", "backend",
                                    "conservation")


@dataclass(frozen=True)
class OracleOutcome:
    """Result of one oracle on one sample."""

    status: str                 # "pass" | "fail" | "skip"
    detail: str = ""

    @property
    def failed(self) -> bool:
        return self.status == "fail"


def _passed() -> OracleOutcome:
    return OracleOutcome("pass")


def _failed(detail: str) -> OracleOutcome:
    return OracleOutcome("fail", detail)


def _skipped(reason: str) -> OracleOutcome:
    return OracleOutcome("skip", reason)


@contextlib.contextmanager
def ephemeral_scenario(profile) -> Iterator[None]:
    """Make a sampled profile name-resolvable for the duration of a block.

    Uses the sweep layer's ephemeral-profile machinery (the same path
    that ships registered/derived profiles to pool workers), so the
    simulator's warm-up pass — which re-resolves ``trace.name`` through
    ``get_workload`` — sees the sampled scenario exactly like a
    registered one, without ever entering the user-visible registry.
    """
    install_ephemeral_profiles([profile])
    try:
        yield
    finally:
        uninstall_ephemeral_profiles([profile.name])


class SampleContext:
    """Shared per-sample state: the generated trace and the Python stats.

    The clock, backend and conservation oracles all need the Python
    reference run; computing it once per sample keeps the fuzz loop's
    cost at roughly three simulations instead of five.
    """

    def __init__(self, sample: FuzzSample) -> None:
        self.sample = sample
        self._trace: Optional[Trace] = None
        self._python_stats: Optional[SimStats] = None

    # ------------------------------------------------------------------
    def trace(self) -> Trace:
        """The sample's trace (memoised content-keyed via get_workload)."""
        if self._trace is None:
            sample = self.sample
            self._trace = get_workload(
                sample.scenario.name, sample.trace_length, sample.trace_seed,
                scenario_profiles=(sample.scenario,))
        return self._trace

    def python_stats(self) -> SimStats:
        """Reference Python-engine stats (EventClock), computed once."""
        if self._python_stats is None:
            sample = self.sample
            config = dataclasses.replace(sample.config, engine="python")
            with ephemeral_scenario(sample.scenario):
                engine = SimulationEngine(self.trace(), config,
                                          clock=EventClock())
                self._python_stats = engine.run()
        return self._python_stats


def _stats_diff(left: SimStats, right: SimStats,
                left_label: str, right_label: str) -> Optional[str]:
    """Human-readable field diff of two stats objects (None when equal)."""
    left_dict = dataclasses.asdict(left)
    right_dict = dataclasses.asdict(right)
    if left_dict == right_dict:
        return None
    fields = [name for name in left_dict
              if left_dict[name] != right_dict[name]]
    parts = [f"{name}: {left_label}={left_dict[name]!r} "
             f"{right_label}={right_dict[name]!r}" for name in fields[:6]]
    if len(fields) > 6:
        parts.append(f"... and {len(fields) - 6} more fields")
    return "; ".join(parts)


# ----------------------------------------------------------------------
# Oracles
# ----------------------------------------------------------------------
def check_generation(sample: FuzzSample, ctx: SampleContext) -> OracleOutcome:
    """Vectorised vs scalar generation: identical stream + RNG state."""
    if not vectorized_enabled(None):
        return _skipped("REPRO_TRACE_SCALAR forces the scalar path; "
                        "nothing to compare differentially")
    if not replay_supported():
        return _skipped("vectorised replay unsupported on this numpy build "
                        "(scalar-fallback probe tripped)")

    def fresh_rng() -> np.random.Generator:
        return np.random.default_rng(np.random.SeedSequence(
            (sample.trace_seed, _scenario_stream_seed(sample.scenario.name))))

    try:
        rng_vec = fresh_rng()
        trace_vec = generate_scenario_trace(
            sample.scenario, sample.trace_length, sample.trace_seed,
            vectorized=True, rng=rng_vec)
        rng_scalar = fresh_rng()
        trace_scalar = generate_scenario_trace(
            sample.scenario, sample.trace_length, sample.trace_seed,
            vectorized=False, rng=rng_scalar)
    except Exception as exc:  # a generation crash is a finding, not noise
        return _failed(f"trace generation raised {type(exc).__name__}: {exc}")
    if len(trace_vec) != len(trace_scalar):
        return _failed(
            f"vectorised trace has {len(trace_vec)} instructions, scalar "
            f"oracle {len(trace_scalar)}")
    for index, (vec, scalar) in enumerate(
            zip(trace_vec.instructions, trace_scalar.instructions,
                strict=True)):
        if vec != scalar:
            return _failed(
                f"instruction {index} diverges: vectorised {vec!r} vs "
                f"scalar {scalar!r}")
    if rng_vec.bit_generator.state != rng_scalar.bit_generator.state:
        return _failed(
            "bit-generator state diverges after generation (a hand-off "
            "consumed a different number of draws): "
            f"vectorised={rng_vec.bit_generator.state!r} "
            f"scalar={rng_scalar.bit_generator.state!r}")
    return _passed()


def check_clocks(sample: FuzzSample, ctx: SampleContext) -> OracleOutcome:
    """EventClock vs CycleClock bit-identical ``SimStats``."""
    config = dataclasses.replace(sample.config, engine="python")
    try:
        event_stats = ctx.python_stats()
        with ephemeral_scenario(sample.scenario):
            cycle_stats = SimulationEngine(ctx.trace(), config,
                                           clock=CycleClock()).run()
    except Exception as exc:
        return _failed(f"simulation raised {type(exc).__name__}: {exc}")
    diff = _stats_diff(event_stats, cycle_stats, "event", "cycle")
    if diff:
        return _failed(f"clock divergence: {diff}")
    return _passed()


def check_backend(sample: FuzzSample, ctx: SampleContext) -> OracleOutcome:
    """Compiled C core vs Python engine bit-identical ``SimStats``."""
    from repro.engine import accel
    from repro.engine.accel.compiled import unsupported_reason

    reason = unsupported_reason(sample.config)
    if reason is not None:
        return _skipped(f"config outside the compiled envelope: {reason}")
    compiled_config = dataclasses.replace(sample.config, engine="compiled")
    if accel.resolve_engine_backend(compiled_config) != "compiled":
        fallback = accel.backend_fallback_reason() or "availability probe failed"
        return _skipped(f"compiled backend unavailable: {fallback}")
    try:
        python_stats = ctx.python_stats()
        with ephemeral_scenario(sample.scenario):
            engine = SimulationEngine(ctx.trace(), compiled_config)
            compiled_stats = engine.run()
    except Exception as exc:
        return _failed(f"simulation raised {type(exc).__name__}: {exc}")
    if engine.backend_used != "compiled":
        return _skipped("per-run fallback to the Python engine "
                        "(core escape or partially modelled state)")
    diff = _stats_diff(compiled_stats, python_stats, "compiled", "python")
    if diff:
        return _failed(f"backend divergence: {diff}")
    return _passed()


def check_conservation(sample: FuzzSample, ctx: SampleContext) -> OracleOutcome:
    """Engine-internal invariants under a per-cycle probe."""
    config = dataclasses.replace(sample.config, engine="python")
    probe = InvariantProbe()
    try:
        with ephemeral_scenario(sample.scenario):
            engine = SimulationEngine(ctx.trace(), config, clock=CycleClock(),
                                      probe=probe)
            stats = engine.run()
            probe.final_check(engine.state, stats)
    except InvariantViolation as exc:
        return _failed(f"invariant violated: {exc}")
    except Exception as exc:
        return _failed(f"engine raised {type(exc).__name__}: {exc}")
    return _passed()


#: Oracle registry: name -> callable(sample, ctx) -> OracleOutcome.
ORACLES: Dict[str, Callable[[FuzzSample, SampleContext], OracleOutcome]] = {
    "generation": check_generation,
    "clocks": check_clocks,
    "backend": check_backend,
    "conservation": check_conservation,
}


def resolve_oracle_names(names: Optional[Tuple[str, ...]]) -> Tuple[str, ...]:
    """Validate an oracle selection (None = the default set, in order)."""
    if names is None:
        return DEFAULT_ORACLES
    unknown = [name for name in names if name not in ORACLES]
    if unknown:
        raise ValueError(
            f"unknown oracles: {', '.join(sorted(unknown))}; known oracles: "
            f"{', '.join(sorted(ORACLES))}")
    if not names:
        raise ValueError(
            f"empty oracle selection; known oracles: "
            f"{', '.join(sorted(ORACLES))}")
    return tuple(names)


def run_oracle(name: str, sample: FuzzSample,
               ctx: Optional[SampleContext] = None) -> OracleOutcome:
    """Run one oracle by name on one sample (fresh context by default)."""
    if ctx is None:
        ctx = SampleContext(sample)
    return ORACLES[name](sample, ctx)


# Imported for the docstring contract; re-exported for probe-equipped
# callers (the mutation smoke test builds its own engines).
__all__ = ["DEFAULT_ORACLES", "ORACLES", "OracleOutcome", "SampleContext",
           "check_backend", "check_clocks", "check_conservation",
           "check_generation", "ephemeral_scenario", "resolve_oracle_names",
           "run_oracle"]
