"""Differential scenario fuzzer (``repro.fuzz``).

Property-based cross-checking of the simulator against itself: random
scenario profiles and tight machine configurations, each run through a
pluggable oracle set —

* **generation** — vectorised vs scalar trace generation (instruction
  streams and bit-generator state must match exactly);
* **clocks** — ``EventClock`` vs ``CycleClock`` ``SimStats`` equality;
* **backend** — compiled C core vs Python engine ``SimStats`` equality
  (honouring every documented skip/fallback path);
* **conservation** — engine-internal invariants checked by a per-cycle
  probe (free-list accounting, occupancy bounds, Release-Queue
  liveness, final stat identities).

Failures are minimised by a greedy shrinker and serialised as corpus
entries; committed entries under ``tests/fuzz/corpus/`` replay in
tier-1.  Run it with ``repro-experiments fuzz`` — see ``docs/fuzzing.md``.
"""

from repro.fuzz.corpus import (CorpusEntry, entry_from_dict, load_corpus,
                               load_corpus_file, sample_to_entry_dict)
from repro.fuzz.invariants import InvariantProbe, InvariantViolation
from repro.fuzz.oracles import (DEFAULT_ORACLES, ORACLES, OracleOutcome,
                                SampleContext, ephemeral_scenario,
                                resolve_oracle_names, run_oracle)
from repro.fuzz.runner import (FuzzFailure, FuzzReport, ReplayResult,
                               replay_corpus, run_fuzz)
from repro.fuzz.sampling import (FUZZ_STREAM, MIN_TRACE_LENGTH, FuzzSample,
                                 sample, sample_config, sample_profile,
                                 sample_rng)
from repro.fuzz.shrink import shrink, shrink_trail

__all__ = [
    "CorpusEntry", "DEFAULT_ORACLES", "FUZZ_STREAM", "FuzzFailure",
    "FuzzReport", "FuzzSample", "InvariantProbe", "InvariantViolation",
    "MIN_TRACE_LENGTH", "ORACLES", "OracleOutcome", "ReplayResult",
    "SampleContext", "entry_from_dict", "ephemeral_scenario",
    "load_corpus", "load_corpus_file", "replay_corpus",
    "resolve_oracle_names", "run_fuzz", "run_oracle", "sample",
    "sample_config", "sample_profile", "sample_rng",
    "sample_to_entry_dict", "shrink", "shrink_trail",
]
