"""The fuzz loop: sample → oracles → shrink → report.

:func:`run_fuzz` drives the differential fuzzer: deterministic samples
from :mod:`repro.fuzz.sampling`, each run through the selected oracles
(:mod:`repro.fuzz.oracles`), failures minimised by
:mod:`repro.fuzz.shrink` and packaged — as a ready-to-commit corpus
entry plus the exact reproduction command — into a
:class:`FuzzReport`.

Determinism contract: with the same master seed and oracle set, two
runs visit the same sample sequence and produce the same outcomes;
``--budget-seconds`` only decides *how far* into that sequence a run
gets (a budget-stopped run is a prefix of a longer one, never a
different sequence).

Skips are counted, never silent: the report carries per-oracle
pass/fail/skip tallies and a reason histogram, so "backend oracle
skipped 50/50 times: no C toolchain" is visible in CI artefacts.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.trace.workloads import ScenarioProfile

from repro.fuzz import sampling
from repro.fuzz.corpus import CorpusEntry, sample_to_entry_dict
from repro.fuzz.oracles import (ORACLES, SampleContext,
                                resolve_oracle_names)
from repro.fuzz.sampling import FuzzSample
from repro.fuzz.shrink import DEFAULT_BUDGET, shrink, shrink_trail


@dataclasses.dataclass
class FuzzFailure:
    """One oracle failure: the original and shrunk samples plus repro."""

    index: int
    oracle: str
    detail: str
    sample: FuzzSample
    shrunk: FuzzSample
    shrunk_detail: str
    shrink_notes: List[str]
    master_seed: int

    # ------------------------------------------------------------------
    def corpus_entry(self) -> dict:
        """Ready-to-commit corpus entry for the shrunk sample."""
        return sample_to_entry_dict(
            self.shrunk, (self.oracle,),
            comment=(f"fuzz seed={self.master_seed} sample={self.index} "
                     f"{self.oracle} oracle: {self.detail}"))

    def repro_command(self, entry_path: str = "<entry.json>") -> str:
        """The exact command that replays this failure from its entry."""
        return (f"repro-experiments fuzz --replay {entry_path} "
                f"--oracles {self.oracle}")

    def to_dict(self, entry_path: str = "<entry.json>") -> dict:
        return {
            "index": self.index,
            "oracle": self.oracle,
            "detail": self.detail,
            "sample": self.sample.describe(),
            "shrunk_sample": self.shrunk.describe(),
            "shrunk_detail": self.shrunk_detail,
            "shrink_notes": self.shrink_notes,
            "corpus_entry": self.corpus_entry(),
            "repro_command": self.repro_command(entry_path),
        }


@dataclasses.dataclass
class FuzzReport:
    """Outcome of one fuzz run (JSON-serialisable via :meth:`to_dict`)."""

    master_seed: int
    oracles: Tuple[str, ...]
    samples_run: int = 0
    elapsed_seconds: float = 0.0
    stopped_by: str = ""               # "samples" | "budget"
    #: oracle -> {"pass": n, "fail": n, "skip": n}
    outcomes: Dict[str, Dict[str, int]] = dataclasses.field(
        default_factory=dict)
    #: oracle -> {skip reason: count}
    skip_reasons: Dict[str, Dict[str, int]] = dataclasses.field(
        default_factory=dict)
    failures: List[FuzzFailure] = dataclasses.field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def failed(self) -> bool:
        return bool(self.failures)

    def record(self, oracle: str, status: str, detail: str) -> None:
        tally = self.outcomes.setdefault(
            oracle, {"pass": 0, "fail": 0, "skip": 0})
        tally[status] += 1
        if status == "skip":
            reasons = self.skip_reasons.setdefault(oracle, {})
            reasons[detail] = reasons.get(detail, 0) + 1

    def to_dict(self) -> dict:
        return {
            "master_seed": self.master_seed,
            "oracles": list(self.oracles),
            "samples_run": self.samples_run,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "stopped_by": self.stopped_by,
            "outcomes": self.outcomes,
            "skip_reasons": self.skip_reasons,
            "failures": [failure.to_dict() for failure in self.failures],
        }

    def summary(self) -> str:
        """Multi-line human summary (the CLI's default output)."""
        lines = [
            f"fuzz: seed={self.master_seed} samples={self.samples_run} "
            f"({self.elapsed_seconds:.1f}s, stopped by {self.stopped_by}) "
            f"failures={len(self.failures)}",
        ]
        for oracle in self.oracles:
            tally = self.outcomes.get(oracle,
                                      {"pass": 0, "fail": 0, "skip": 0})
            line = (f"  {oracle:<12} pass={tally['pass']:<4} "
                    f"fail={tally['fail']:<3} skip={tally['skip']}")
            reasons = self.skip_reasons.get(oracle)
            if reasons:
                top = max(reasons.items(), key=lambda item: item[1])
                line += f"  (top skip: {top[0]} x{top[1]})"
            lines.append(line)
        for failure in self.failures:
            lines.append(f"  FAIL sample {failure.index} "
                         f"[{failure.oracle}]: {failure.detail}")
            lines.append(f"       shrunk to: {failure.shrunk.describe()}")
            lines.append(f"       ({'; '.join(failure.shrink_notes)})")
            lines.append(f"       repro: {failure.repro_command()}")
        return "\n".join(lines)


def _still_fails(oracle: str) -> Callable[[FuzzSample], bool]:
    def predicate(candidate: FuzzSample) -> bool:
        return ORACLES[oracle](candidate, SampleContext(candidate)).failed
    return predicate


def run_fuzz(master_seed: int,
             samples: Optional[int] = None,
             budget_seconds: Optional[float] = None,
             oracles: Optional[Tuple[str, ...]] = None,
             scenario_pool: Optional[Sequence[ScenarioProfile]] = None,
             shrink_failures: bool = True,
             shrink_budget: int = DEFAULT_BUDGET,
             progress: Optional[Callable[[str], None]] = None) -> FuzzReport:
    """Run the differential fuzzer.

    At least one of ``samples`` / ``budget_seconds`` must be given; when
    both are, whichever limit is hit first stops the run.  The budget is
    checked *between* samples, so a run always finishes the sample it
    started (no half-evaluated oracles in the report).
    """
    if samples is None and budget_seconds is None:
        raise ValueError("run_fuzz needs a sample count, a time budget, "
                         "or both")
    oracle_names = resolve_oracle_names(oracles)
    report = FuzzReport(master_seed=master_seed, oracles=oracle_names)
    start = time.perf_counter()
    index = 0
    while True:
        if samples is not None and index >= samples:
            report.stopped_by = "samples"
            break
        if budget_seconds is not None and \
                time.perf_counter() - start >= budget_seconds:
            report.stopped_by = "budget"
            break
        fuzz_sample = sampling.sample(master_seed, index,
                                      scenario_pool=scenario_pool)
        ctx = SampleContext(fuzz_sample)
        for oracle in oracle_names:
            outcome = ORACLES[oracle](fuzz_sample, ctx)
            report.record(oracle, outcome.status, outcome.detail)
            if not outcome.failed:
                continue
            if progress:
                progress(f"sample {index} FAILED {oracle}: "
                         f"{outcome.detail}")
            shrunk = fuzz_sample
            shrunk_detail = outcome.detail
            if shrink_failures:
                shrunk = shrink(fuzz_sample, _still_fails(oracle),
                                budget=shrink_budget)
                shrunk_detail = ORACLES[oracle](
                    shrunk, SampleContext(shrunk)).detail
            report.failures.append(FuzzFailure(
                index=index, oracle=oracle, detail=outcome.detail,
                sample=fuzz_sample, shrunk=shrunk,
                shrunk_detail=shrunk_detail,
                shrink_notes=shrink_trail(fuzz_sample, shrunk),
                master_seed=master_seed))
        report.samples_run = index + 1
        if progress and (index + 1) % 25 == 0:
            elapsed = time.perf_counter() - start
            progress(f"{index + 1} samples in {elapsed:.1f}s")
        index += 1
    report.elapsed_seconds = time.perf_counter() - start
    return report


@dataclasses.dataclass
class ReplayResult:
    """Outcome of replaying one corpus entry."""

    entry: CorpusEntry
    #: oracle -> OracleOutcome status ("pass"/"fail"/"skip")
    statuses: Dict[str, str]
    details: Dict[str, str]

    @property
    def failed(self) -> bool:
        return any(status == "fail" for status in self.statuses.values())

    def describe(self) -> str:
        parts = [f"{oracle}={status}"
                 for oracle, status in self.statuses.items()]
        return f"{self.entry.source}: {' '.join(parts)}"


def replay_corpus(entries: Sequence[CorpusEntry]) -> List[ReplayResult]:
    """Replay committed corpus entries through their pinned oracles.

    A ``fail`` status means the pinned regression is back; ``skip``
    (e.g. the backend oracle without a C toolchain) is preserved so the
    caller can decide whether skipping is acceptable in its context.
    """
    results: List[ReplayResult] = []
    for entry in entries:
        ctx = SampleContext(entry.sample)
        statuses: Dict[str, str] = {}
        details: Dict[str, str] = {}
        for oracle in entry.oracles:
            outcome = ORACLES[oracle](entry.sample, ctx)
            statuses[oracle] = outcome.status
            details[oracle] = outcome.detail
        results.append(ReplayResult(entry=entry, statuses=statuses,
                                    details=details))
    return results


__all__ = ["FuzzFailure", "FuzzReport", "ReplayResult", "replay_corpus",
           "run_fuzz"]
