"""In-Order Map Table (IOMT) — the architectural/retirement mapping.

Updated at commit with the destination mapping of each committing
instruction; consulted for precise-exception recovery so the Reorder
Structure never has to be rolled back entry by entry (paper Section 2).
Intel's name for the same structure is the Retirement Register Alias
Table.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


class InOrderMapTable:
    """Architectural logical→physical mapping for one register class."""

    def __init__(self, num_logical: int, initial_mapping: Sequence[int]) -> None:
        if len(initial_mapping) != num_logical:
            raise ValueError("initial mapping must cover every logical register")
        self.num_logical = num_logical
        self._map: List[int] = list(initial_mapping)

    def lookup(self, logical: int) -> int:
        """Architectural physical register of ``logical``."""
        return self._map[logical]

    def commit_mapping(self, logical: int, physical: int) -> int:
        """Record that the new version of ``logical`` committed.

        Returns the previous architectural mapping (the register the
        conventional policy releases at this point).
        """
        previous = self._map[logical]
        self._map[logical] = physical
        return previous

    def snapshot(self) -> Tuple[int, ...]:
        """Immutable copy (used to rebuild the speculative map on exceptions)."""
        return tuple(self._map)

    def mapped_registers(self) -> Tuple[int, ...]:
        """Physical registers currently holding architectural state."""
        return tuple(self._map)

    def __len__(self) -> int:
        return self.num_logical
