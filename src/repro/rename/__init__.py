"""Register renaming substrate (paper Figure 1).

The components of the conventional allocate/release mechanism:

* :class:`~repro.rename.map_table.MapTable` — speculative logical→physical
  mapping consulted/updated at rename;
* :class:`~repro.rename.iomt.InOrderMapTable` — the architectural
  (retirement) mapping, updated at commit and used for precise-exception
  recovery;
* :class:`~repro.rename.free_list.FreeList` — pool of free physical
  registers;
* :class:`~repro.rename.register_file.PhysicalRegisterFile` — one merged
  physical register file (free list + producer tracking + occupancy
  accounting);
* :class:`~repro.rename.checkpoints.CheckpointStack` — per-pending-branch
  copies of the map table (and of the release policy's Last-Uses Table)
  used for misprediction recovery.
"""

from repro.rename.free_list import FreeList, FreeListError
from repro.rename.map_table import MapTable
from repro.rename.iomt import InOrderMapTable
from repro.rename.register_file import PhysicalRegisterFile
from repro.rename.checkpoints import Checkpoint, CheckpointStack

__all__ = [
    "FreeList",
    "FreeListError",
    "MapTable",
    "InOrderMapTable",
    "PhysicalRegisterFile",
    "Checkpoint",
    "CheckpointStack",
]
