"""Merged physical register file for one register class.

Combines the free list, producer tracking (which in-flight instruction
will write each register, used by the wakeup logic), and the
Empty/Ready/Idle occupancy accounting of
:class:`repro.core.register_state.RegisterOccupancyTracker`.

At reset, logical register ``i`` maps to physical register ``i`` and the
remaining ``P - L`` registers are free — the paper's "loose vs tight"
discussion is entirely about how large that remainder is relative to the
reorder-structure size.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.register_state import (
    OccupancyTotals,
    RegisterOccupancyTracker,
    RegState,
)
from repro.isa import RegClass
from repro.rename.free_list import FreeList, FreeListError


class PhysicalRegisterFile:
    """One merged (committed + speculative versions) physical register file."""

    def __init__(self, reg_class: RegClass, num_physical: int,
                 num_logical: Optional[int] = None) -> None:
        num_logical = num_logical if num_logical is not None else reg_class.num_logical
        if num_physical < num_logical:
            raise ValueError(
                f"need at least {num_logical} physical registers "
                f"(one per logical register); got {num_physical}")
        self.reg_class = reg_class
        self.num_physical = num_physical
        self.num_logical = num_logical
        self.free_list = FreeList(num_physical,
                                  initially_free=range(num_logical, num_physical))
        #: ROS sequence number of the in-flight producer of each register,
        #: or None when the value is available (or the register is free).
        self._producer: List[Optional[int]] = [None] * num_physical
        self.occupancy = RegisterOccupancyTracker(num_physical)
        # Direct views of the tracker's interval arrays: allocation,
        # producer writeback and last-use commit are per-instruction
        # events, so the accounting below writes the lists without going
        # through two method hops (cooperating classes, measured hot path).
        self._occ_alloc = self.occupancy._alloc_cycle
        self._occ_write = self.occupancy._write_cycle
        self._occ_last_use = self.occupancy._last_use_commit
        # The initial architectural registers are allocated and written "at reset".
        for reg in range(num_logical):
            self.occupancy.on_allocate(reg, 0)
            self.occupancy.on_write(reg, 0)
        # statistics
        self.allocations = 0
        self.releases = 0
        self.early_releases = 0

    # ------------------------------------------------------------------
    @property
    def n_free(self) -> int:
        """Number of free physical registers."""
        return self.free_list.n_free

    @property
    def n_allocated(self) -> int:
        """Number of allocated physical registers."""
        return self.free_list.n_allocated

    def can_allocate(self) -> bool:
        """True when rename can obtain a destination register."""
        return self.free_list.can_allocate()

    def is_free(self, reg: int) -> bool:
        """True when ``reg`` is on the free list."""
        return self.free_list.is_free(reg)

    # ------------------------------------------------------------------
    def allocate(self, cycle: int, producer_seq: Optional[int]) -> int:
        """Allocate a register for the destination of ``producer_seq``."""
        reg = self.free_list.allocate()
        self._producer[reg] = producer_seq
        self._occ_alloc[reg] = cycle
        self._occ_write[reg] = None
        self._occ_last_use[reg] = None
        self.allocations += 1
        return reg

    def release(self, reg: int, cycle: int, early: bool = False) -> None:
        """Return ``reg`` to the free list (conventional or early release)."""
        self.free_list.release(reg)
        self._producer[reg] = None
        occupancy = self.occupancy
        occupancy._attribute(reg, cycle)
        self._occ_alloc[reg] = None
        self._occ_write[reg] = None
        self._occ_last_use[reg] = None
        self.releases += 1
        if early:
            self.early_releases += 1

    def release_many(self, regs: List[int], cycle: int) -> None:
        """Bulk variant of :meth:`release` for squash recovery.

        Frees the whole batch through the checked free list in one call
        and accumulates the release statistics width-wide; the per-register
        occupancy accounting is inherently per-identifier and stays a loop.
        """
        self.free_list.release_many(regs)
        producer = self._producer
        occupancy = self.occupancy
        occ_alloc, occ_write = self._occ_alloc, self._occ_write
        occ_last_use = self._occ_last_use
        for reg in regs:
            producer[reg] = None
            occupancy._attribute(reg, cycle)
            occ_alloc[reg] = None
            occ_write[reg] = None
            occ_last_use[reg] = None
        self.releases += len(regs)

    def set_producer(self, reg: int, producer_seq: Optional[int]) -> None:
        """Re-arm the producer of ``reg`` (used by the register-reuse case)."""
        self._producer[reg] = producer_seq

    def producer_of(self, reg: int) -> Optional[int]:
        """In-flight producer of ``reg`` (None when the value is available)."""
        return self._producer[reg]

    def mark_written(self, reg: int, cycle: int) -> None:
        """Producer writeback: the value of ``reg`` is now available."""
        self._producer[reg] = None
        if self._occ_write[reg] is None:
            self._occ_write[reg] = cycle

    def note_use_commit(self, reg: int, cycle: int) -> None:
        """An instruction that read (or produced) ``reg`` committed at ``cycle``."""
        self._occ_last_use[reg] = cycle

    # ------------------------------------------------------------------
    def state_of(self, reg: int) -> RegState:
        """Lifecycle state of ``reg`` (paper Figure 2a)."""
        if self.free_list.is_free(reg):
            return RegState.FREE
        return self.occupancy.state_of(reg)

    def allocated_registers(self) -> List[int]:
        """Identifiers of all currently allocated registers."""
        return [reg for reg in range(self.num_physical)
                if not self.free_list.is_free(reg)]

    def finalize_occupancy(self, end_cycle: int) -> OccupancyTotals:
        """Close the occupancy books at the end of the simulation."""
        return self.occupancy.finalize(end_cycle, self.allocated_registers())

    def check_invariants(self) -> None:
        """Raise :class:`FreeListError` if free + allocated != P."""
        if self.free_list.n_free + self.free_list.n_allocated != self.num_physical:
            raise FreeListError("free + allocated != total physical registers")
