"""Per-branch checkpoints (map table + Last-Uses Table copies).

The paper assumes the classic checkpoint-repair scheme: "we assume that an
LUs Table copy is made at each branch prediction, so that a branch
misprediction recovery can retrieve the proper copy" (Section 3.1), on top
of the usual Map Table copies.  The processor supports up to 20 branches
pending verification (Table 2); renaming a branch when all checkpoints are
in use stalls the front end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.isa import RegClass


@dataclass
class Checkpoint:
    """State snapshot taken when a branch is renamed.

    Attributes
    ----------
    branch_seq:
        Sequence number of the branch instruction owning this checkpoint.
    map_snapshots:
        Map Table contents per register class.
    policy_snapshots:
        Release-policy private state per register class (the Last-Uses
        Table copy for the early-release policies; ``None`` for
        conventional release).
    """

    branch_seq: int
    map_snapshots: Dict[RegClass, Tuple[int, ...]]
    policy_snapshots: Dict[RegClass, Any] = field(default_factory=dict)


class CheckpointStack:
    """Ordered collection of at most ``capacity`` outstanding branch checkpoints."""

    def __init__(self, capacity: int = 20) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._checkpoints: List[Checkpoint] = []

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._checkpoints)

    @property
    def is_full(self) -> bool:
        """True when renaming another branch must stall."""
        return len(self._checkpoints) >= self.capacity

    def pending_branch_seqs(self) -> List[int]:
        """Sequence numbers of all unresolved branches, oldest first."""
        return [cp.branch_seq for cp in self._checkpoints]

    def newest_pending_seq(self) -> Optional[int]:
        """Sequence number of the youngest unresolved branch, or None."""
        return self._checkpoints[-1].branch_seq if self._checkpoints else None

    def has_pending_younger_than(self, seq: int) -> bool:
        """True when an unresolved branch younger than ``seq`` exists.

        This is exactly the "pending branches between the LU and NV
        instructions" test of the basic mechanism: at NV rename time every
        unresolved branch is older than NV, so an unresolved branch younger
        than the LU instruction lies between the two.
        """
        newest = self.newest_pending_seq()
        return newest is not None and newest > seq

    def count_pending(self) -> int:
        """Number of unresolved branches (the RelQue TAIL level number)."""
        return len(self._checkpoints)

    # ------------------------------------------------------------------
    def push(self, checkpoint: Checkpoint) -> None:
        """Record the checkpoint of a newly renamed branch (program order)."""
        if self.is_full:
            raise RuntimeError("checkpoint stack overflow: rename must stall instead")
        if self._checkpoints and checkpoint.branch_seq <= self._checkpoints[-1].branch_seq:
            raise ValueError("checkpoints must be pushed in program order")
        self._checkpoints.append(checkpoint)

    def confirm(self, branch_seq: int) -> Optional[Checkpoint]:
        """Branch ``branch_seq`` resolved correctly: discard (and return) its checkpoint.

        Branches may resolve out of order, so the checkpoint can be
        anywhere in the stack.  Returns None if the branch is unknown
        (e.g. already squashed by an older misprediction).
        """
        for pos, checkpoint in enumerate(self._checkpoints):
            if checkpoint.branch_seq == branch_seq:
                return self._checkpoints.pop(pos)
        return None

    def mispredict(self, branch_seq: int) -> Optional[Checkpoint]:
        """Branch ``branch_seq`` mispredicted: pop its checkpoint and all younger ones.

        Returns the checkpoint to restore from, or None if the branch is
        unknown (already squashed).
        """
        for pos, checkpoint in enumerate(self._checkpoints):
            if checkpoint.branch_seq == branch_seq:
                recovered = checkpoint
                del self._checkpoints[pos:]
                return recovered
        return None

    def squash_younger_than(self, seq: int) -> List[Checkpoint]:
        """Drop every checkpoint belonging to a branch younger than ``seq``.

        Used by exception recovery (``seq`` = the excepting instruction) and
        returned for inspection/tests.
        """
        kept = [cp for cp in self._checkpoints if cp.branch_seq <= seq]
        dropped = [cp for cp in self._checkpoints if cp.branch_seq > seq]
        self._checkpoints = kept
        return dropped

    def clear(self) -> List[Checkpoint]:
        """Drop every checkpoint (full pipeline flush); returns the dropped ones."""
        dropped = self._checkpoints
        self._checkpoints = []
        return dropped
