"""Speculative Map Table (logical → physical mapping at rename)."""

from __future__ import annotations

from typing import List, Sequence, Tuple


class MapTable:
    """Logical-to-physical register mapping for one register class.

    The Map Table is read at rename to obtain source mappings and the
    previous-version identifier (``old_pd``) of the destination, then
    updated with the newly allocated physical register.  A snapshot of the
    table is taken at every predicted branch (the classic checkpoint-repair
    scheme of Hwu & Patt the paper assumes) and restored on misprediction.

    A mapping can additionally be marked *stale*.  This happens only when
    an exception flush rebuilds the table from the in-order map table while
    the architectural version of a logical register had already been
    released early (the situation Section 4.3 of the paper argues is safe):
    the restored mapping then names a physical register that is no longer
    allocated to this logical register.  The release policies consult the
    flag so the next redefinition neither releases nor reuses that
    register; writing a new mapping clears it.
    """

    def __init__(self, num_logical: int, initial_mapping: Sequence[int]) -> None:
        if len(initial_mapping) != num_logical:
            raise ValueError("initial mapping must cover every logical register")
        self.num_logical = num_logical
        self._map: List[int] = list(initial_mapping)
        self._stale: List[bool] = [False] * num_logical

    # ------------------------------------------------------------------
    def lookup(self, logical: int) -> int:
        """Physical register currently mapped to ``logical``."""
        return self._map[logical]

    def set_mapping(self, logical: int, physical: int) -> None:
        """Map ``logical`` to ``physical`` (rename of a destination)."""
        self._map[logical] = physical
        self._stale[logical] = False

    def is_stale(self, logical: int) -> bool:
        """True when the current mapping names an already-released register."""
        return self._stale[logical]

    def mark_stale(self, logical: int) -> None:
        """Flag the current mapping of ``logical`` as already released."""
        self._stale[logical] = True

    def snapshot(self) -> Tuple[Tuple[int, ...], Tuple[bool, ...]]:
        """Immutable copy of the whole table (branch checkpoint)."""
        return tuple(self._map), tuple(self._stale)

    def restore(self, snapshot: Tuple[Tuple[int, ...], Tuple[bool, ...]]) -> None:
        """Restore the table from a branch checkpoint.

        In-place (slice) assignment: the rename fast path holds direct
        references to the mapping list, so restores must preserve list
        identity.
        """
        mappings, stale = snapshot
        if len(mappings) != self.num_logical or len(stale) != self.num_logical:
            raise ValueError("snapshot size mismatch")
        self._map[:] = mappings
        self._stale[:] = stale

    def restore_architectural(self, mappings: Sequence[int]) -> None:
        """Rebuild the table from the in-order map table (exception recovery).

        All stale flags are cleared; the caller re-marks the logical
        registers whose architectural version had been released early.
        In-place for the same list-identity reason as :meth:`restore`.
        """
        if len(mappings) != self.num_logical:
            raise ValueError("snapshot size mismatch")
        self._map[:] = mappings
        self._stale[:] = [False] * self.num_logical

    def mapped_registers(self) -> Tuple[int, ...]:
        """The set of physical registers currently referenced by the table."""
        return tuple(self._map)

    def __len__(self) -> int:
        return self.num_logical
