"""Free list of physical registers.

The free list is the structure the release policies act on: conventional
release returns the previous-version register at next-version commit,
while the paper's early-release mechanisms return it at last-use commit
(or immediately).  Because an incorrect policy implementation shows up as
a leaked or doubly-freed register, the free list is *checked*: it tracks
which identifiers are free and raises :class:`FreeListError` on any
double-release or double-allocation, and the property-based tests assert
``free + allocated == P`` at every step.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List


class FreeListError(RuntimeError):
    """Raised on an inconsistent free-list operation (double free/allocate)."""


class FreeList:
    """FIFO free list over physical register identifiers ``0..num_registers-1``."""

    def __init__(self, num_registers: int, initially_free: Iterable[int]) -> None:
        self.num_registers = num_registers
        self._free: Deque[int] = deque()
        self._is_free: List[bool] = [False] * num_registers
        for reg in initially_free:
            if not (0 <= reg < num_registers):
                raise ValueError(f"register {reg} out of range")
            if self._is_free[reg]:
                raise FreeListError(f"register {reg} listed as free twice")
            self._free.append(reg)
            self._is_free[reg] = True

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._free)

    @property
    def n_free(self) -> int:
        """Number of free registers."""
        return len(self._free)

    @property
    def n_allocated(self) -> int:
        """Number of allocated registers."""
        return self.num_registers - len(self._free)

    def is_free(self, reg: int) -> bool:
        """True when ``reg`` is currently on the free list."""
        return self._is_free[reg]

    def can_allocate(self) -> bool:
        """True when at least one register is available."""
        return bool(self._free)

    # ------------------------------------------------------------------
    def allocate(self) -> int:
        """Pop a free register; raises :class:`FreeListError` when empty.

        Callers (the rename stage) must check :meth:`can_allocate` first
        and stall instead of catching the exception: running out of
        registers is an expected stall condition, not an error.
        """
        if not self._free:
            raise FreeListError("allocate() on an empty free list")
        reg = self._free.popleft()
        self._is_free[reg] = False
        return reg

    def release(self, reg: int) -> None:
        """Return ``reg`` to the free list; raises on double release."""
        if not (0 <= reg < self.num_registers):
            raise FreeListError(f"release of out-of-range register {reg}")
        if self._is_free[reg]:
            raise FreeListError(f"double release of register {reg}")
        self._free.append(reg)
        self._is_free[reg] = True

    def release_many(self, regs: Iterable[int]) -> None:
        """Return a batch of registers to the free list in the given order.

        Same checked semantics as per-register :meth:`release`, applied
        in order — a double release or out-of-range identifier (including
        a duplicate within the batch) raises at the offending register.
        Used by squash recovery, which frees the whole squashed window at
        once.
        """
        is_free = self._is_free
        num_registers = self.num_registers
        append = self._free.append
        for reg in regs:
            if not (0 <= reg < num_registers):
                raise FreeListError(f"release of out-of-range register {reg}")
            if is_free[reg]:
                raise FreeListError(f"double release of register {reg}")
            append(reg)
            is_free[reg] = True

    def snapshot_free_set(self) -> frozenset:
        """Immutable view of the currently free identifiers (for invariant checks)."""
        return frozenset(self._free)
