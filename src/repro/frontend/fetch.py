"""Trace-driven fetch unit with wrong-path injection.

Responsibilities (per Table 2 of the paper):

* fetch up to 8 instructions per cycle, ending the group after the second
  predicted-taken branch;
* predict every branch with the gshare predictor (speculative history
  update) and the BTB (a predicted-taken branch missing in the BTB cannot
  be redirected and is treated as not taken);
* model instruction-cache misses as front-end stall cycles;
* after fetching a branch whose prediction disagrees with the trace
  outcome, switch to the wrong-path generator until the back end resolves
  the branch and calls :meth:`FetchUnit.recover`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from repro.isa import Instruction
from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.gshare import GsharePredictor, PredictionRecord
from repro.memory.hierarchy import MemoryHierarchy
from repro.trace.records import Trace
from repro.trace.wrongpath import WrongPathGenerator


@dataclass(slots=True)
class FetchedOp:
    """A fetched instruction plus the front-end metadata the back end needs.

    Attributes
    ----------
    inst:
        The instruction record (correct-path trace entry or synthetic
        wrong-path instruction).
    prediction:
        Predictor record for branches (None otherwise).
    predicted_taken:
        Final front-end direction decision (gshare direction gated by BTB
        hit), for branches.
    mispredicted:
        True when the front-end decision disagrees with the actual outcome.
        Known at fetch time in a trace-driven simulator; the back end only
        acts on it when the branch executes.
    resume_cursor:
        Trace index of the next correct-path instruction after this one;
        used to re-steer fetch on recovery.  ``-1`` for wrong-path ops.
    wrong_path:
        True when the op was synthesised by the wrong-path generator.
    """

    inst: Instruction
    prediction: Optional[PredictionRecord] = None
    predicted_taken: bool = False
    mispredicted: bool = False
    resume_cursor: int = -1
    wrong_path: bool = False


class FetchUnit:
    """Fetches instructions from a trace, or from the wrong-path generator."""

    def __init__(self, trace: Trace, predictor: GsharePredictor,
                 btb: BranchTargetBuffer, memory: Optional[MemoryHierarchy],
                 wrongpath: Optional[WrongPathGenerator] = None,
                 fetch_width: int = 8, max_taken_per_cycle: int = 2) -> None:
        self.trace = trace
        #: the raw instruction list and its length, hoisted out of the
        #: per-instruction fetch path (Trace.__getitem__ is a delegation).
        self._instructions = trace.instructions
        self._trace_len = len(trace.instructions)
        self.predictor = predictor
        self.btb = btb
        self.memory = memory
        self.wrongpath = wrongpath
        self.fetch_width = fetch_width
        self.max_taken_per_cycle = max_taken_per_cycle

        self.cursor = 0
        self.on_wrong_path = False
        self._wrong_path_pc = 0
        self._stall_until = 0
        # statistics
        self.fetched_correct = 0
        self.fetched_wrong = 0
        self.icache_stall_cycles = 0

    # ------------------------------------------------------------------
    @property
    def trace_exhausted(self) -> bool:
        """True when every correct-path instruction has been fetched."""
        return self.cursor >= self._trace_len and not self.on_wrong_path

    @property
    def stalled_until(self) -> int:
        """First cycle at which fetch can deliver again after an I-cache
        miss (in the past when not stalled).  Public probe for the
        event-driven clock's quiescence test."""
        return self._stall_until

    def recover(self, resume_cursor: int) -> None:
        """Re-steer fetch to the correct path after a branch misprediction
        or an exception flush.

        ``resume_cursor`` is the trace index of the first instruction to
        fetch next (the value captured in :attr:`FetchedOp.resume_cursor`).
        """
        if resume_cursor < 0:
            raise ValueError("cannot recover to a wrong-path position")
        self.cursor = resume_cursor
        self.on_wrong_path = False

    # ------------------------------------------------------------------
    def _next_correct_path(self) -> Optional[Instruction]:
        if self.cursor >= self._trace_len:
            return None
        inst = self._instructions[self.cursor]
        self.cursor += 1
        return inst

    def _fetch_one(self, cycle: int) -> Optional[FetchedOp]:
        """Fetch a single instruction (correct path or wrong path)."""
        if self.on_wrong_path:
            if self.wrongpath is None:
                return None
            inst = self.wrongpath.next_instruction(self._wrong_path_pc)
            self._wrong_path_pc += 4
            op = FetchedOp(inst, None, False, False, -1, True)
            self.fetched_wrong += 1
            if inst.is_branch:
                record = self.predictor.predict(inst.pc)
                predicted = record.predicted_taken
                if predicted and self.btb.lookup(inst.pc) is None:
                    predicted = False
                # Wrong-path branches always resolve as predicted so they
                # never trigger nested recoveries (DESIGN.md).
                op.inst = replace(inst, taken=predicted,
                                  target=inst.target if predicted else inst.pc + 4)
                op.prediction = record
                op.predicted_taken = predicted
                op.mispredicted = False
                if predicted:
                    self._wrong_path_pc = op.inst.target
            return op

        inst = self._next_correct_path()
        if inst is None:
            return None
        op = FetchedOp(inst, None, False, False, self.cursor, False)
        self.fetched_correct += 1
        if inst.is_branch:
            record = self.predictor.predict(inst.pc)
            predicted = record.predicted_taken
            if predicted and self.btb.lookup(inst.pc) is None:
                # Direction says taken but no target available: fall through.
                predicted = False
            op.prediction = record
            op.predicted_taken = predicted
            op.mispredicted = predicted != inst.taken
            if op.mispredicted:
                # Continue down the (wrong) predicted path.
                self.on_wrong_path = True
                self._wrong_path_pc = (inst.target if predicted else inst.pc + 4)
        return op

    # ------------------------------------------------------------------
    def fetch_cycle(self, cycle: int) -> List[FetchedOp]:
        """Fetch up to ``fetch_width`` instructions for this cycle."""
        if cycle < self._stall_until:
            return []
        group: List[FetchedOp] = []
        taken_seen = 0

        # Model the instruction-cache access for the group's leading pc.
        leading_pc = None
        if self.on_wrong_path:
            leading_pc = self._wrong_path_pc
        elif self.cursor < self._trace_len:
            leading_pc = self._instructions[self.cursor].pc
        if leading_pc is not None and self.memory is not None:
            latency = self.memory.instruction_access(leading_pc)
            if latency > 1:
                self._stall_until = cycle + latency
                self.icache_stall_cycles += latency - 1
                return []

        while len(group) < self.fetch_width:
            op = self._fetch_one(cycle)
            if op is None:
                break
            group.append(op)
            if op.inst.is_branch and op.predicted_taken:
                taken_seen += 1
                if taken_seen >= self.max_taken_per_cycle:
                    break
        return group
