"""Front-end models: branch prediction and instruction fetch.

The processor of Table 2 fetches 8 instructions per cycle (at most two
taken branches), predicts branches with an 18-bit gshare predictor updated
speculatively, and supports up to 20 branches pending verification.  The
fetch unit here is trace driven; after a misprediction it switches to a
:class:`repro.trace.WrongPathGenerator` until the mispredicted branch
resolves (see DESIGN.md).
"""

from repro.frontend.gshare import GsharePredictor
from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.ras import ReturnAddressStack
from repro.frontend.fetch import FetchUnit, FetchedOp

__all__ = [
    "GsharePredictor",
    "BranchTargetBuffer",
    "ReturnAddressStack",
    "FetchUnit",
    "FetchedOp",
]
