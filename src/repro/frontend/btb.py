"""Branch target buffer (BTB).

The direction predictor says *taken or not*; the BTB supplies the target
address at fetch time.  A predicted-taken branch that misses in the BTB
cannot be redirected in the front end, so the fetch unit treats it as
not-taken (and pays the full misprediction penalty if it was in fact
taken) — the standard conservative model.
"""

from __future__ import annotations

from typing import List, Optional, Tuple


class BranchTargetBuffer:
    """Set-associative branch target buffer with LRU replacement."""

    def __init__(self, entries: int = 2048, associativity: int = 4) -> None:
        if entries <= 0 or associativity <= 0:
            raise ValueError("entries and associativity must be positive")
        if entries % associativity != 0:
            raise ValueError("entries must be a multiple of associativity")
        self.entries = entries
        self.associativity = associativity
        self.n_sets = entries // associativity
        # Each set is a list of (tag, target) in LRU order (index 0 = MRU).
        self._sets: List[List[Tuple[int, int]]] = [[] for _ in range(self.n_sets)]
        self.hits = 0
        self.misses = 0

    def _locate(self, pc: int) -> Tuple[int, int]:
        index = (pc >> 2) % self.n_sets
        tag = pc >> 2
        return index, tag

    def lookup(self, pc: int) -> Optional[int]:
        """Return the predicted target for the branch at ``pc``, or None on miss."""
        index, tag = self._locate(pc)
        ways = self._sets[index]
        for pos, (entry_tag, target) in enumerate(ways):
            if entry_tag == tag:
                ways.insert(0, ways.pop(pos))
                self.hits += 1
                return target
        self.misses += 1
        return None

    def update(self, pc: int, target: int) -> None:
        """Install/refresh the target of the (taken) branch at ``pc``."""
        index, tag = self._locate(pc)
        ways = self._sets[index]
        for pos, (entry_tag, _target) in enumerate(ways):
            if entry_tag == tag:
                ways.pop(pos)
                break
        ways.insert(0, (tag, target))
        if len(ways) > self.associativity:
            ways.pop()

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (1.0 if there were no lookups)."""
        total = self.hits + self.misses
        return 1.0 if total == 0 else self.hits / total

    def reset_statistics(self) -> None:
        """Zero the hit/miss counters (contents are preserved)."""
        self.hits = 0
        self.misses = 0
