"""Gshare branch direction predictor with speculative history update.

Table 2 of the paper specifies an ``18-bit gshare`` with *speculative
updates* and up to 20 pending branches, i.e. the global history register
(GHR) is updated with the predicted outcome at prediction time and must be
repaired when a branch turns out to have been mispredicted.  The repair
uses the history snapshot captured at prediction time (the same snapshot
the rename checkpoints hold for the map tables).
"""

from __future__ import annotations

from array import array
from typing import NamedTuple


class PredictionRecord(NamedTuple):
    """Everything needed to update/repair the predictor for one branch.

    A ``NamedTuple``: one record is created per predicted branch (fetch
    path and warm-up pass), so construction cost matters.

    Attributes
    ----------
    predicted_taken:
        Direction predicted at fetch time.
    table_index:
        Index of the 2-bit counter consulted (captured so the update at
        resolution uses the same entry that produced the prediction).
    history_before:
        GHR value *before* this branch was shifted in; used to rebuild the
        correct history on a misprediction (correct outcome is shifted onto
        this value).
    """

    predicted_taken: bool
    table_index: int
    history_before: int


class GsharePredictor:
    """Gshare: PC xor global-history indexed table of 2-bit saturating counters."""

    def __init__(self, history_bits: int = 18, initial_counter: int = 2) -> None:
        if not (1 <= history_bits <= 24):
            raise ValueError("history_bits must be between 1 and 24")
        self.history_bits = history_bits
        self.table_size = 1 << history_bits
        self._mask = self.table_size - 1
        #: 2-bit saturating counters; 0-1 predict not taken, 2-3 predict taken.
        self.table = array("b", [initial_counter]) * self.table_size
        #: speculative global history register.
        self.history = 0
        # statistics
        self.predictions = 0
        self.mispredictions = 0

    # ------------------------------------------------------------------
    def _index(self, pc: int, history: int) -> int:
        return ((pc >> 2) ^ history) & self._mask

    def predict(self, pc: int) -> PredictionRecord:
        """Predict the branch at ``pc`` and speculatively update the history."""
        history_before = self.history
        index = self._index(pc, history_before)
        predicted = self.table[index] >= 2
        # Speculative history update with the *predicted* outcome.
        self.history = ((history_before << 1) | int(predicted)) & self._mask
        self.predictions += 1
        return PredictionRecord(predicted_taken=predicted, table_index=index,
                                history_before=history_before)

    def resolve(self, record: PredictionRecord, taken: bool) -> bool:
        """Update the counters with the actual outcome; return True on mispredict.

        On a misprediction the speculative history is repaired: the history
        that existed before the branch, extended with the *actual* outcome.
        (Younger speculative history bits belong to squashed branches and
        are discarded — exactly what restoring the checkpoint does in
        hardware.)
        """
        counter = self.table[record.table_index]
        if taken:
            if counter < 3:
                self.table[record.table_index] = counter + 1
        else:
            if counter > 0:
                self.table[record.table_index] = counter - 1
        mispredicted = taken != record.predicted_taken
        if mispredicted:
            self.mispredictions += 1
            self.history = ((record.history_before << 1) | int(taken)) & self._mask
        return mispredicted

    # ------------------------------------------------------------------
    @property
    def accuracy(self) -> float:
        """Fraction of resolved predictions that were correct (1.0 if none yet)."""
        if self.predictions == 0:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions

    def reset_statistics(self) -> None:
        """Zero the prediction/misprediction counters (tables keep their state)."""
        self.predictions = 0
        self.mispredictions = 0
