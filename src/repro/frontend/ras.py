"""Return address stack (RAS).

The synthetic workloads of this reproduction model calls/returns only
implicitly (as ordinary branches), so the RAS is not on the critical path
of any experiment; it is provided for completeness of the front-end
substrate and is exercised by its own unit tests.
"""

from __future__ import annotations

from typing import List, Optional


class ReturnAddressStack:
    """Fixed-depth circular return-address stack.

    Overflow overwrites the oldest entry and underflow returns ``None``,
    matching the behaviour of real hardware RAS implementations (they
    silently mispredict rather than fault).
    """

    def __init__(self, depth: int = 16) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.depth = depth
        self._stack: List[int] = []
        self.pushes = 0
        self.pops = 0
        self.underflows = 0

    def push(self, return_address: int) -> None:
        """Push a return address (a call was fetched)."""
        self._stack.append(return_address)
        self.pushes += 1
        if len(self._stack) > self.depth:
            self._stack.pop(0)

    def pop(self) -> Optional[int]:
        """Pop the predicted return address (a return was fetched)."""
        self.pops += 1
        if not self._stack:
            self.underflows += 1
            return None
        return self._stack.pop()

    def snapshot(self) -> List[int]:
        """Copy of the stack contents for checkpoint/restore."""
        return list(self._stack)

    def restore(self, snapshot: List[int]) -> None:
        """Restore the stack contents from a checkpoint."""
        self._stack = list(snapshot)

    def __len__(self) -> int:
        return len(self._stack)
