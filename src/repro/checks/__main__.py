"""``python -m repro.checks`` — same driver as the ``repro-lint`` script."""

from repro.checks.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
