"""Rule ``determinism``: no unseeded randomness, clocks or set iteration
inside the deterministic simulation subtree.

Every simulation result in this repository is a pure function of
``(workload, config, trace length, seed)`` — the sweep cache, the
compiled-backend self-check and the differential fuzzer all assume it.
This checker walks the subtree that must uphold that contract
(:data:`DETERMINISTIC_DIRS`) and flags the three classic ways the
contract breaks:

* draws from a process-global RNG (``random.random()``,
  ``np.random.rand()``, an argument-less ``np.random.default_rng()``)
  instead of an explicitly seeded ``np.random.Generator``;
* wall-clock reads (``time.time()``, ``datetime.now()``,
  ``time.perf_counter()`` and friends) — timing belongs in the bench
  harness, never in simulation code;
* iteration over unordered sets (``for x in {…}``, ``list(set(…))``),
  whose order varies with ``PYTHONHASHSEED`` — iterate a ``sorted(…)``
  view instead.

Only syntactically certain cases are flagged (a ``for`` loop directly
over a set expression, a call chain that resolves to the global RNG
through this file's imports); the checker never guesses at types, so a
clean run stays meaningful.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.checks.base import (Checker, Finding, Project, import_aliases,
                               qualified_name, register)

#: Subdirectories of ``src/repro`` bound by the determinism contract.
DETERMINISTIC_DIRS = ("core", "engine", "trace", "backend", "rename",
                      "pipeline", "frontend", "isa", "memory")

#: numpy.random attributes that *construct seeded generators* and are
#: therefore fine; everything else on ``numpy.random`` is the global RNG.
_NUMPY_SEEDED_OK = frozenset({
    "Generator", "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
    "SeedSequence", "BitGenerator", "RandomState", "default_rng",
})

#: Wall-clock reads (dotted names after import resolution).
_CLOCK_READS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.clock_gettime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})


def _is_set_expression(node: ast.AST) -> bool:
    """True for expressions that are unambiguously an unordered set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) and \
            node.func.id in ("set", "frozenset"):
        return True
    return False


@register
class DeterminismChecker(Checker):
    rule = "determinism"
    description = ("unseeded RNG draws, wall-clock reads and unordered set "
                   "iteration in the deterministic simulation subtree")

    def run(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        for path in project.python_files(*DETERMINISTIC_DIRS):
            tree, error = project.ast_for(path)
            if tree is None:
                findings.append(self.finding(
                    project, path, 0, f"cannot analyse file: {error}"))
                continue
            findings.extend(self._check_file(project, path, tree))
        return findings

    # ------------------------------------------------------------------
    def _check_file(self, project: Project, path, tree) -> List[Finding]:
        aliases = import_aliases(tree)
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                findings.extend(self._check_call(project, path, node, aliases))
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expression(node.iter):
                    findings.append(self.finding(
                        project, path, node.lineno,
                        "iteration over an unordered set; iterate "
                        "sorted(...) for a reproducible order"))
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                                   ast.DictComp, ast.SetComp)):
                for gen in node.generators:
                    if _is_set_expression(gen.iter):
                        findings.append(self.finding(
                            project, path, node.lineno,
                            "comprehension over an unordered set; iterate "
                            "sorted(...) for a reproducible order"))
        return findings

    def _check_call(self, project: Project, path, node: ast.Call,
                    aliases) -> List[Finding]:
        findings: List[Finding] = []
        name = qualified_name(node.func, aliases)
        if name is None:
            return findings
        # list(set(...)) / tuple(set(...)) / enumerate(set(...)) collapse
        # an unordered set into an ordered container nondeterministically.
        if name in ("list", "tuple", "enumerate") and node.args and \
                _is_set_expression(node.args[0]):
            findings.append(self.finding(
                project, path, node.lineno,
                f"{name}() over an unordered set; wrap the set in "
                f"sorted(...) for a reproducible order"))

        if name in _CLOCK_READS:
            findings.append(self.finding(
                project, path, node.lineno,
                f"wall-clock read {name}() in the deterministic subtree; "
                f"timing belongs in scripts/bench_baseline.py, simulation "
                f"state must derive from the seed"))
            return findings

        parts = name.split(".")
        if parts[0] == "random" and len(parts) > 1:
            # The stdlib global-RNG module.  Seeded instances
            # (random.Random(seed)) are fine; everything module-level is
            # the shared process RNG.
            if parts[1] == "Random" and node.args:
                return findings
            findings.append(self.finding(
                project, path, node.lineno,
                f"{name}() draws from the process-global stdlib RNG; use "
                f"an explicitly seeded np.random.Generator instead"))
        elif len(parts) >= 3 and parts[0] == "numpy" and parts[1] == "random":
            attr = parts[2]
            if attr == "default_rng" and not node.args:
                findings.append(self.finding(
                    project, path, node.lineno,
                    "np.random.default_rng() without a seed produces a "
                    "fresh OS-entropy stream; pass an explicit seed"))
            elif attr not in _NUMPY_SEEDED_OK:
                findings.append(self.finding(
                    project, path, node.lineno,
                    f"{name}() uses numpy's process-global RNG; construct "
                    f"a seeded np.random.Generator instead"))
        return findings
