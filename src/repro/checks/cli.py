"""Command-line driver for ``repro-lint``.

Exposed three ways — the ``repro-lint`` console script,
``repro-experiments lint`` and ``python -m repro.checks`` — all of which
call :func:`main`.

Exit codes: **0** clean (suppressed/baselined findings don't fail the
run), **1** at least one live finding, **2** usage or configuration
error (unknown rule, unreadable baseline, no repository root).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.checks.base import (BASELINE_NAME, CHECKERS, Baseline, Project,
                               find_project_root, run_checks)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Contract-checking static analysis for this repository "
                    "(determinism, stats-ABI drift, cache-key completeness, "
                    "async-blocking, exception discipline).")
    parser.add_argument(
        "--root", type=Path, default=None,
        help="repository root (default: found by walking up from the "
             "current directory to the first one containing src/repro)")
    parser.add_argument(
        "--rules", default=None, metavar="RULE[,RULE...]",
        help="comma-separated subset of rules to run (default: all)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format on stdout (default: text)")
    parser.add_argument(
        "--output", type=Path, default=None, metavar="FILE",
        help="also write the full JSON report to FILE (independent of "
             "--format; this is what CI archives)")
    parser.add_argument(
        "--baseline", type=Path, default=None, metavar="FILE",
        help=f"baseline file of grandfathered findings "
             f"(default: <root>/{BASELINE_NAME})")
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline: report every finding, including "
             "grandfathered ones")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline file from this run's live findings "
             "(existing justifications are preserved) and exit 0")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rules and exit")
    return parser


def _print_text_report(result) -> None:
    for finding in result.findings:
        print(finding.format())
    if result.stale_baseline:
        print()
        for entry in result.stale_baseline:
            print(f"stale baseline entry {entry.get('fingerprint')} "
                  f"({entry.get('rule')} @ {entry.get('path')}): no longer "
                  f"matches any finding — remove it from {BASELINE_NAME}")
    counts = (f"{len(result.findings)} finding(s), "
              f"{len(result.suppressed)} suppressed, "
              f"{len(result.baselined)} baselined, "
              f"{len(result.stale_baseline)} stale baseline entr(y|ies)")
    ok = result.clean and not result.stale_baseline
    print(("clean: " if ok else "FAILED: ") + counts)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)

    if args.list_rules:
        for rule in sorted(CHECKERS):
            print(f"{rule:16s} {CHECKERS[rule].description}")
        return 0

    try:
        root = (Path(args.root).resolve() if args.root is not None
                else find_project_root())
        if not (root / "src" / "repro").is_dir():
            raise FileNotFoundError(
                f"{root} is not a repository root (no src/repro inside)")
    except FileNotFoundError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2
    project = Project(root)

    rules: Optional[List[str]] = None
    if args.rules is not None:
        rules = [rule.strip() for rule in args.rules.split(",") if rule.strip()]

    baseline_path = args.baseline or (root / BASELINE_NAME)
    try:
        baseline = (Baseline() if args.no_baseline
                    else Baseline.load(baseline_path))
    except ValueError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    try:
        result = run_checks(project, rules=rules, baseline=baseline)
    except ValueError as exc:  # unknown rule name
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        justifications = {fp: entry.get("justification", "")
                          for fp, entry in baseline.entries.items()
                          if entry.get("justification")}
        updated = Baseline.from_findings(result.findings + result.baselined,
                                         justifications=justifications)
        updated.dump(baseline_path)
        print(f"wrote {len(updated.entries)} entr(y|ies) to {baseline_path}")
        return 0

    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(
            json.dumps(result.to_dict(), indent=2) + "\n", encoding="utf-8")

    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2))
    else:
        _print_text_report(result)

    return 0 if result.clean and not result.stale_baseline else 1


if __name__ == "__main__":  # pragma: no cover - exercised via repro-lint
    raise SystemExit(main())
