"""``repro-lint``: contract-checking static analysis for this repository.

The simulator's correctness story rests on invariants that ordinary
linters cannot see because they span files, languages and subsystems:

* **determinism** — the simulation subtree (``core/``, ``engine/``,
  ``trace/``, ``backend/``, ``rename/``, ``pipeline/``) must draw every
  random number from an explicitly seeded generator and must never read
  wall-clock time or iterate over unordered sets;
* **stats-ABI** — the :class:`~repro.pipeline.stats.SimStats` dataclass,
  the ``STATS`` slot enum in ``engine/accel/core.c``, the mirrored
  namespaces in ``engine/accel/loader.py`` and the stats assembly in
  ``engine/accel/compiled.py`` must agree field for field (the drift
  class the gshare ``pred_raw`` incident came from);
* **cache-key completeness** — every ``ProcessorConfig`` field the
  engine reads must be covered by the sweep-cache key derivation in
  ``analysis/cache.py``, so a new config knob can never silently serve
  stale cache hits;
* **async-blocking** — ``async def`` bodies under ``serve/`` must never
  call blocking primitives (``time.sleep``, sync ``urllib``, file I/O,
  ``subprocess``) directly;
* **exception discipline** — ``except Exception`` handlers must log,
  re-raise or attach the caught exception to structured context, never
  swallow it silently.

The fuzzer (PR 8) catches violations of these contracts at runtime *if a
sample happens to hit them*; this package catches the whole class at
lint time.  Run it as ``repro-lint``, ``repro-experiments lint`` or
``python -m repro.checks``; the rule catalogue, the suppression syntax
(``# repro-lint: disable=<rule> -- reason``) and the baseline workflow
are documented in ``docs/static-analysis.md``.

The package is deliberately stdlib-only (``ast`` + text parsing): the CI
``lint-contracts`` job runs it without installing the simulator's
runtime dependencies.
"""

from repro.checks.base import (CHECKERS, Baseline, Checker, Finding, Project,
                               register, run_checks)

# Importing the checker modules populates the registry.
from repro.checks import (async_blocking, cache_key, determinism,  # noqa: E402
                          exceptions, stats_abi)

__all__ = ["CHECKERS", "Baseline", "Checker", "Finding", "Project",
           "register", "run_checks",
           "async_blocking", "cache_key", "determinism", "exceptions",
           "stats_abi"]
